//! The PartSJ join loop (§3.2, Algorithm 1).
//!
//! Trees are processed in ascending size order. For each tree `T_i`:
//!
//! 1. **Probe.** Every node `N` of `T_i`'s LC-RS representation probes the
//!    two-layer index of every size list `I_n`, `n ∈ [|T_i| − τ, |T_i|]`.
//!    Retrieved subgraphs are matched at `N`; the first successful match
//!    for a container tree `T_j` makes `(T_i, T_j)` a candidate pair.
//! 2. **Verify.** Candidates are checked with exact TED (`≤ τ`).
//! 3. **Insert.** `T_i` is δ-partitioned (`δ = 2τ + 1`) with the
//!    max-min-size scheme and its subgraphs join the index for subsequent
//!    probes. Trees smaller than `δ` cannot be δ-partitioned; they go to a
//!    size-keyed side list and are verified directly by later probes
//!    (Lemma 2 offers no filter for them — the paper leaves this case
//!    implicit).
//!
//! No offline index is built: the index grows while the join runs, so each
//! unordered pair is considered exactly once (when its larger tree probes).

use crate::config::{PartSjConfig, WindowPolicy};
use crate::index::{LayerId, MatchCache, SubgraphIndex};
use crate::partition::cuts_for;
use crate::probe::{probe_tree_nodes, resolve_layers, ProbeCounters, ProbeScratch, StampSink};
use crate::subgraph::build_subgraphs;
use crate::verify::{VerifyData, VerifyEngine};
use std::time::Instant;
use tsj_ted::{JoinOutcome, JoinStats, TreeIdx};
use tsj_tree::{FxHashMap, Tree};

/// PartSJ-specific instrumentation beyond the common [`JoinStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PartSjDetail {
    /// Subgraphs built and inserted into the index.
    pub subgraphs_built: u64,
    /// Total `(position, twig)` group registrations in the index.
    pub index_registrations: u64,
    /// Index probes issued (node × *populated* size-layer combinations;
    /// empty size classes are skipped when the window is resolved per
    /// tree).
    pub probes: u64,
    /// Subgraph match attempts (handles surfaced by the index).
    pub match_attempts: u64,
    /// Match attempts that succeeded (≥ candidates; one pair can match
    /// several times before it is stamped).
    pub matches: u64,
    /// Candidate pairs contributed by the small-tree side list.
    pub small_tree_candidates: u64,
}

/// Runs PartSJ with the default configuration (max-min partitioning,
/// provably complete general-postorder window).
pub fn partsj_join(trees: &[Tree], tau: u32) -> JoinOutcome {
    partsj_join_with(trees, tau, &PartSjConfig::default())
}

/// Runs PartSJ with an explicit configuration.
pub fn partsj_join_with(trees: &[Tree], tau: u32, config: &PartSjConfig) -> JoinOutcome {
    partsj_join_detailed(trees, tau, config).0
}

/// Runs PartSJ and also returns the detailed instrumentation.
pub fn partsj_join_detailed(
    trees: &[Tree],
    tau: u32,
    config: &PartSjConfig,
) -> (JoinOutcome, PartSjDetail) {
    let delta = 2 * tau as usize + 1;
    let mut stats = JoinStats::default();
    let mut detail = PartSjDetail::default();
    // Observability handles, hoisted out of the probe loop (handle lookup
    // locks the registry; recording is a relaxed atomic). None of this
    // affects results: the ON/DISABLED equivalence is property-tested.
    let obs = tsj_obs::global();
    let obs_on = obs.is_enabled();
    let join_span = tsj_obs::span("core.join", "core");
    let fanout_hist = obs.histogram("tsj_core_probe_fanout_layers");
    let cand_hist = obs.histogram("tsj_core_probe_candidates");

    // Preprocessing: per-tree verification data, batch-prepared through
    // one shared set of build temporaries (charged to candidate
    // generation, like the baselines' traversal strings and branch
    // bags). LC-RS representations and postorder numbers are rebuilt in
    // place per probing tree below — each is only needed during its own
    // iteration, so one scratch replaces two O(collection) arrays.
    let setup_start = Instant::now();
    let data: Vec<VerifyData> = VerifyData::batch_for_config(trees, &config.verify);
    let mut order: Vec<TreeIdx> = (0..trees.len() as TreeIdx).collect();
    order.sort_by_key(|&i| (trees[i as usize].len(), i));
    stats.candidate_time += setup_start.elapsed();

    let mut index = SubgraphIndex::new(tau, config.window);
    let mut small_by_size: FxHashMap<u32, Vec<TreeIdx>> = FxHashMap::default();
    // Pair-dedup stamps: stamp[j] == i means (i, j) is already a candidate
    // of the current probe i.
    let mut stamp: Vec<TreeIdx> = vec![TreeIdx::MAX; trees.len()];
    let mut verify = VerifyEngine::new(tau, config);
    let mut pairs: Vec<(TreeIdx, TreeIdx)> = Vec::new();
    // Scratch buffers reused across trees: candidate list, the resolved
    // size-layer window, and the per-node match memo.
    let mut candidates: Vec<TreeIdx> = Vec::new();
    let mut layer_window: Vec<LayerId> = Vec::new();
    let mut match_cache = MatchCache::new();
    let mut counters = ProbeCounters::default();
    let mut probe_scratch = ProbeScratch::new();

    for &i in &order {
        let tree = &trees[i as usize];
        let (binary, posts) = probe_scratch.prepare(tree);
        let size_i = binary.len() as u32;
        let lo = size_i.saturating_sub(tau).max(1);

        let cand_start = Instant::now();
        candidates.clear();

        // Small trees cannot be δ-partitioned: every size-compatible one is
        // a direct candidate.
        for n in lo..=size_i {
            if let Some(list) = small_by_size.get(&n) {
                for &j in list {
                    if stamp[j as usize] != i {
                        stamp[j as usize] = i;
                        candidates.push(j);
                        detail.small_tree_candidates += 1;
                    }
                }
            }
        }

        // Index probes: every node of T_i against every populated size
        // layer of `[lo, size_i]` (resolved once per tree). Positions are
        // general-tree postorder numbers (edit-stable); twig children come
        // from the LC-RS structure.
        resolve_layers(&index, lo, size_i, &mut layer_window);
        let mut sink = StampSink {
            stamp: &mut stamp,
            marker: i,
            candidates: &mut candidates,
        };
        probe_tree_nodes(
            &index,
            &layer_window,
            binary,
            posts,
            size_i,
            config.matching,
            &mut match_cache,
            &mut counters,
            &mut sink,
        );
        stats.candidates += candidates.len() as u64;
        stats.pairs_examined += candidates.len() as u64;
        stats.candidate_time += cand_start.elapsed();
        if obs_on {
            fanout_hist.record(layer_window.len() as u64);
            cand_hist.record(candidates.len() as u64);
        }

        // Verification through the configured filter chain (cheap bounds
        // first, exact TED only for undecided pairs — see
        // [`crate::verify`] for the chain and its cost model).
        let verify_start = Instant::now();
        for &j in &candidates {
            if verify.check(&data[i as usize], &data[j as usize]).is_some() {
                pairs.push((j, i));
            }
        }
        stats.verify_time += verify_start.elapsed();

        // Partition T_i and publish its subgraphs (or side-list it).
        let insert_start = Instant::now();
        if (size_i as usize) < delta {
            small_by_size.entry(size_i).or_default().push(i);
        } else {
            let cuts = cuts_for(binary, delta, config.partitioning, u64::from(i));
            let subgraphs = build_subgraphs(binary, posts, &cuts, i);
            detail.subgraphs_built += subgraphs.len() as u64;
            index.insert_tree(size_i, subgraphs);
        }
        stats.candidate_time += insert_start.elapsed();
    }

    detail.probes = counters.probes;
    detail.match_attempts = counters.match_attempts;
    detail.matches = counters.matches;
    detail.index_registrations = index.registrations();
    verify.fold_into(&mut stats);
    if obs_on {
        obs.counter("tsj_core_joins_total").inc();
        obs.counter("tsj_core_candidates_total")
            .add(stats.candidates);
        obs.counter("tsj_core_ted_calls_total").add(stats.ted_calls);
        obs.counter("tsj_core_result_pairs_total")
            .add(pairs.len() as u64);
        obs.histogram("tsj_core_candidate_ms")
            .record(stats.candidate_time.as_millis() as u64);
        obs.histogram("tsj_core_verify_ms")
            .record(stats.verify_time.as_millis() as u64);
    }
    join_span.end();
    (JoinOutcome::new(pairs, stats), detail)
}

/// Convenience: PartSJ with the literal-paper absolute-postorder window
/// (incomplete; for the correction ablation only).
pub fn partsj_join_paper_window(trees: &[Tree], tau: u32) -> JoinOutcome {
    partsj_join_with(
        trees,
        tau,
        &PartSjConfig::with_window(WindowPolicy::PaperAbsolute),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PartitionScheme;
    use tsj_tree::{parse_bracket, LabelInterner};

    fn collection(specs: &[&str]) -> Vec<Tree> {
        let mut labels = LabelInterner::new();
        specs
            .iter()
            .map(|s| parse_bracket(s, &mut labels).unwrap())
            .collect()
    }

    #[test]
    fn finds_exact_duplicates_at_tau_zero() {
        let trees = collection(&["{a{b}{c}}", "{a{b}{c}}", "{a{b}{d}}", "{a{b}{c}}"]);
        let outcome = partsj_join(&trees, 0);
        assert_eq!(outcome.pairs, vec![(0, 1), (0, 3), (1, 3)]);
    }

    #[test]
    fn finds_near_duplicates_small_tau() {
        let trees = collection(&[
            "{a{b}{c}{d}}",
            "{a{b}{c}{e}}", // one rename away from 0
            "{a{b}{c}}",    // one delete away from 0
            "{z{y}{x}{w}{v}{u}}",
        ]);
        let outcome = partsj_join(&trees, 1);
        assert_eq!(outcome.pairs, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn small_trees_are_joined_via_side_list() {
        // With τ = 2, δ = 5: trees below 5 nodes use the side list.
        let trees = collection(&["{a}", "{a{b}}", "{a{b}{c}}", "{x}"]);
        let (outcome, detail) = partsj_join_detailed(&trees, 2, &PartSjConfig::default());
        // d({a},{a{b}})=1, d({a},{a{b}{c}})=2, d({a{b}},{a{b}{c}})=1,
        // d({a},{x})=1, d({a{b}},{x})=2, d({a{b}{c}},{x})=3 (too far).
        assert_eq!(outcome.pairs, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)]);
        assert!(detail.small_tree_candidates > 0);
        assert_eq!(detail.subgraphs_built, 0, "no tree reaches δ = 5 nodes");
    }

    #[test]
    fn mixed_small_and_large_trees() {
        let trees = collection(&[
            "{a{b{c}{d}}{e{f}{g}}}", // 7 nodes
            "{a{b{c}{d}}{e{f}{h}}}", // 7 nodes, one rename away
            "{a{b}}",                // 2 nodes
            "{a}",                   // 1 node
        ]);
        let outcome = partsj_join(&trees, 1);
        assert_eq!(outcome.pairs, vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn candidate_counts_are_sane() {
        let trees = collection(&[
            "{a{b}{c}{d}}",
            "{a{b}{c}{e}}",
            "{a{b}{c}}",
            "{q{w}{e}{r}}",
            "{q{w}{e}{r}}",
        ]);
        let (outcome, detail) = partsj_join_detailed(&trees, 1, &PartSjConfig::default());
        assert!(outcome.stats.candidates >= outcome.stats.results);
        assert!(detail.match_attempts >= detail.matches);
        // Every candidate is resolved exactly once: rejected by a lower
        // bound, admitted by an upper bound, or TED-verified.
        assert_eq!(
            outcome.stats.ted_calls + outcome.stats.prefilter_skips + outcome.stats.early_accepts,
            outcome.stats.candidates
        );
        // The per-stage breakdown sums to the pre-TED resolutions.
        let staged: u64 = outcome.stats.stage_counts.iter().map(|c| c.count).sum();
        assert_eq!(
            staged,
            outcome.stats.prefilter_skips + outcome.stats.early_accepts
        );
    }

    #[test]
    fn all_window_policies_agree_here() {
        // Equal-sized trees: absolute and suffix coordinates coincide, so
        // even the literal paper window is complete on this input.
        let trees = collection(&[
            "{a{b}{c}{d}}",
            "{a{b}{c}{e}}",
            "{a{b}{x}{d}}",
            "{m{n}{o}{p}}",
        ]);
        let tight = partsj_join(&trees, 1);
        let safe = partsj_join_with(
            &trees,
            1,
            &PartSjConfig {
                window: WindowPolicy::Safe,
                ..Default::default()
            },
        );
        let paper = partsj_join_paper_window(&trees, 1);
        assert_eq!(tight.pairs, safe.pairs);
        assert_eq!(tight.pairs, paper.pairs);
    }

    #[test]
    fn random_partitioning_is_correct_but_weaker() {
        let trees = collection(&[
            "{a{b{c}{d}}{e{f}{g}}{h{i}{j}}}",
            "{a{b{c}{d}}{e{f}{g}}{h{i}{k}}}",
            "{z{y{x}{w}}{v{u}{t}}{s{r}{q}}}",
        ]);
        let maxmin = partsj_join(&trees, 1);
        let random = partsj_join_with(
            &trees,
            1,
            &PartSjConfig {
                partitioning: PartitionScheme::Random { seed: 7 },
                ..Default::default()
            },
        );
        assert_eq!(maxmin.pairs, random.pairs, "schemes must agree on results");
    }

    #[test]
    fn empty_and_singleton_collections() {
        let outcome = partsj_join(&[], 2);
        assert!(outcome.pairs.is_empty());
        let trees = collection(&["{a{b}}"]);
        let outcome = partsj_join(&trees, 2);
        assert!(outcome.pairs.is_empty());
    }

    #[test]
    fn detail_counters_populate() {
        let trees = collection(&[
            "{a{b{c}{d}}{e{f}{g}}}",
            "{a{b{c}{d}}{e{f}{g}}}",
            "{a{b{c}{d}}{e{f}{h}}}",
        ]);
        let (_, detail) = partsj_join_detailed(&trees, 1, &PartSjConfig::default());
        assert!(detail.subgraphs_built >= 6, "{detail:?}");
        assert!(detail.index_registrations >= detail.subgraphs_built);
        assert!(detail.probes > 0);
    }
}
