//! The router's resilience policy: bounded retries, exponential backoff
//! with deterministic jitter, per-request timeouts and a per-probe
//! deadline.
//!
//! Backoff is classic exponential-with-jitter, but the jitter comes from
//! the same stateless hash as fault injection ([`crate::fault::mix_unit`]
//! over `(seed, probe, shard, retry)`), so a retry schedule is a pure
//! function of the request's coordinates: tests assert the exact
//! millisecond sequence and production gets decorrelated retries for
//! free. All waiting goes through the injected [`crate::Clock`].

use crate::fault::mix_unit;

/// Retry/backoff/deadline knobs for one router.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per request, the first one included. `1` disables
    /// retries entirely.
    pub max_attempts: u32,
    /// Backoff before the first retry, in milliseconds (before jitter).
    pub base_backoff_ms: u64,
    /// Growth factor per further retry.
    pub multiplier: f64,
    /// Jitter fraction `j ∈ [0, 1]`: each backoff is scaled by a factor
    /// drawn deterministically from `[1 − j, 1 + j)`.
    pub jitter: f64,
    /// Per-attempt budget: a timed-out attempt costs this much of the
    /// probe's deadline.
    pub request_timeout_ms: u64,
    /// Total time budget per probe, across all its shard requests'
    /// faults, backoffs and timeouts. Once spent, remaining failed
    /// requests for the probe degrade instead of retrying.
    pub probe_deadline_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ms: 10,
            multiplier: 2.0,
            jitter: 0.25,
            request_timeout_ms: 50,
            probe_deadline_ms: 1_000,
        }
    }
}

impl RetryPolicy {
    /// The backoff slept before retry `retry` (1-based) of request
    /// `(probe, shard)`, jittered deterministically under `seed`:
    /// `base · multiplier^(retry−1) · f` with
    /// `f ∈ [1 − jitter, 1 + jitter)`. Pure in its arguments.
    pub fn backoff_ms(&self, seed: u64, probe: u32, shard: u32, retry: u32) -> u64 {
        let raw = self.base_backoff_ms as f64 * self.multiplier.powi(retry as i32 - 1);
        let unit = mix_unit(
            seed,
            &[0xB0FF, u64::from(probe), u64::from(shard), u64::from(retry)],
        );
        let factor = 1.0 - self.jitter + 2.0 * self.jitter * unit;
        (raw * factor).round() as u64
    }

    /// Inclusive bounds of [`RetryPolicy::backoff_ms`] for retry `retry`,
    /// over every possible jitter draw — what the deterministic tests
    /// check the schedule against.
    pub fn backoff_bounds_ms(&self, retry: u32) -> (u64, u64) {
        let raw = self.base_backoff_ms as f64 * self.multiplier.powi(retry as i32 - 1);
        (
            (raw * (1.0 - self.jitter)).floor() as u64,
            (raw * (1.0 + self.jitter)).ceil() as u64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let policy = RetryPolicy::default();
        for retry in 1..=4 {
            let (lo, hi) = policy.backoff_bounds_ms(retry);
            for probe in 0..32 {
                let a = policy.backoff_ms(42, probe, 5, retry);
                assert_eq!(a, policy.backoff_ms(42, probe, 5, retry));
                assert!(
                    a >= lo && a <= hi,
                    "retry {retry}: {a} outside [{lo}, {hi}]"
                );
            }
        }
    }

    #[test]
    fn zero_jitter_gives_the_pure_exponential() {
        let policy = RetryPolicy {
            jitter: 0.0,
            base_backoff_ms: 8,
            multiplier: 2.0,
            ..RetryPolicy::default()
        };
        assert_eq!(policy.backoff_ms(1, 0, 0, 1), 8);
        assert_eq!(policy.backoff_ms(1, 0, 0, 2), 16);
        assert_eq!(policy.backoff_ms(1, 0, 0, 3), 32);
    }
}
