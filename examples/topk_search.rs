//! Top-k similarity search: find the k most similar tree pairs without
//! choosing a distance threshold up front.
//!
//! The threshold joins (`partsj_join` and friends) need a `tau`, and
//! picking one blind is a guess: too low and the result is empty, too
//! high and verification drowns in candidates. `partsj_topk` sidesteps
//! the guess — it keeps a bounded heap of the best pairs seen so far and
//! feeds the heap's current worst distance back into the index as the
//! effective threshold, escalating from a tight `tau` only as far as the
//! k-th answer actually requires.
//!
//! ```bash
//! cargo run --release --example topk_search
//! ```

use tree_similarity_join::prelude::*;

fn main() {
    // A product-catalog deduplication scenario: listings arrive from
    // different vendors with near-identical structure. We want the most
    // suspicious (closest) pairs surfaced first, with no idea how close
    // "close" is in this feed.
    let mut labels = LabelInterner::new();
    let sources = [
        "{listing{title{usb-c dock}}{brand{anker}}{ports{hdmi}{usb3}{sd}}}",
        "{listing{title{usb-c dock}}{brand{anker}}{ports{hdmi}{usb3}{tf}}}",
        "{listing{title{usb c dock}}{brand{anker}}{ports{hdmi}{usb3}{sd}}}",
        "{listing{title{laptop stand}}{brand{rain}}{specs{alu}{fixed}}}",
        "{listing{title{laptop stand}}{brand{rain}}{specs{alu}{tilted}}}",
        "{listing{title{hdmi cable}}{brand{generic}}{specs{2m}}}",
        "{article{h1{review}}{p{body text}}{p{more text}}}",
    ];
    let trees: Vec<Tree> = sources
        .iter()
        .map(|s| parse_bracket(s, &mut labels).expect("valid bracket input"))
        .collect();

    let k = 4;
    let outcome = partsj_topk(&trees, k);
    println!(
        "top-{k} of {} trees: {} passes, final effective tau = {}\n",
        trees.len(),
        outcome.passes,
        outcome.final_tau
    );
    for pair in &outcome.pairs {
        println!(
            "  TED(T{}, T{}) = {}   {}",
            pair.i,
            pair.j,
            pair.distance,
            &sources[pair.i as usize][..38.min(sources[pair.i as usize].len())]
        );
    }

    // The heap's worst distance is the threshold the join effectively
    // ran at — compare the work against a naive threshold join that had
    // to guess a tau large enough to be safe.
    let naive = partsj_join(&trees, outcome.final_tau.max(4));
    println!(
        "\nwork: top-k made {} exact TED calls; a threshold join guessing\n\
         tau = {} made {} (and returned {} pairs to re-rank by hand).",
        outcome.stats.ted_calls,
        outcome.final_tau.max(4),
        naive.stats.ted_calls,
        naive.pairs.len()
    );

    // The escalation loop is exact, not approximate: the pairs are the
    // k globally smallest, ties broken by (distance, i, j).
    let mut engine = TedEngine::unit();
    let mut exhaustive: Vec<(u32, u32, u32)> = Vec::new();
    for i in 0..trees.len() {
        for j in i + 1..trees.len() {
            let d = engine.distance_trees(&trees[i], &trees[j]);
            exhaustive.push((d, i as u32, j as u32));
        }
    }
    exhaustive.sort_unstable();
    exhaustive.truncate(k);
    let got: Vec<(u32, u32, u32)> = outcome
        .pairs
        .iter()
        .map(|p| (p.distance, p.i, p.j))
        .collect();
    assert_eq!(got, exhaustive, "top-k must equal the exhaustive prefix");
    println!("\nverified: identical to the exhaustive join's {k} smallest pairs.");
}
