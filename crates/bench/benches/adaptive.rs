//! Adaptive-execution benchmarks: what the self-tuning layer buys.
//!
//! * `adaptive/chain/{fixed,adaptive}/{tau}` — end-to-end join on a
//!   workload engineered so the default chain order is wrong: every tree
//!   carries the *same label multiset* (the histogram lower bound is
//!   always 0 and never kills) but divergent structure (the traversal
//!   bound kills nearly everything). The fixed chain pays the O(n)
//!   histogram merge on every candidate before the stage that actually
//!   decides; the adaptive engine observes the kill rates and promotes
//!   the traversal bound.
//! * `adaptive/shard_build/{hash,balanced}/{shards}` — sharded self-join
//!   on a size-skewed collection where a few container-size classes hold
//!   most of the posting mass: the hash map routes by size alone and can
//!   pile the heavy classes onto one shard, the balanced map bin-packs
//!   them by observed mass.
//!
//! Info lines before the timings report (a) per-stage kill counters and
//! exact-TED calls for the fixed vs adaptive chain — decisions are
//! bit-identical, so `ted_calls` match and only where the kills land
//! (and how much filter work precedes them) changes — and (b) per-shard
//! posting loads under both maps with their max/mean imbalance ratio.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use partsj::{partsj_join_with, AdaptiveConfig, PartSjConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use tsj_bench::stage_count;
use tsj_datagen::{grow_tree, ShapeProfile};
use tsj_shard::{balanced_map_for, build_subgraph_lists, sharded_join, ShardConfig, ShardedIndex};
use tsj_tree::{parse_bracket, BinaryTree, LabelInterner, Tree};

/// Chain workload: label-permutation chains. Identical multisets keep
/// the histogram bound at 0 forever; the divergent vertical orders make
/// the traversal bound the decisive stage.
fn permutation_chains(n: usize, depth: usize, seed: u64) -> Vec<Tree> {
    let mut labels = LabelInterner::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let names: Vec<String> = (0..depth).map(|i| format!("l{i}")).collect();
    (0..n)
        .map(|_| {
            let mut order = names.clone();
            order.shuffle(&mut rng);
            let mut s = String::new();
            for name in &order {
                s.push('{');
                s.push_str(name);
            }
            s.push_str(&"}".repeat(order.len()));
            parse_bracket(&s, &mut labels).unwrap()
        })
        .collect()
}

/// Shard workload: a few heavy container-size classes (many trees of
/// nearly the same size) over a thin uniform background.
fn skewed_sizes(seed: u64) -> Vec<Tree> {
    let mut rng = StdRng::seed_from_u64(seed);
    let profile = ShapeProfile {
        max_fanout: 4,
        max_depth: 14,
        deepen_prob: 0.4,
    };
    let mut trees = Vec::new();
    for heavy in [40usize, 41, 42, 43] {
        for _ in 0..60 {
            trees.push(grow_tree(&mut rng, heavy, 12, &profile));
        }
    }
    for _ in 0..80 {
        let size = rng.gen_range(10usize..90);
        trees.push(grow_tree(&mut rng, size, 12, &profile));
    }
    trees
}

fn adaptive_config() -> PartSjConfig {
    PartSjConfig {
        adaptive: AdaptiveConfig::FULL,
        ..Default::default()
    }
}

fn chain_workload_configs() -> [(&'static str, PartSjConfig); 2] {
    [
        ("fixed", PartSjConfig::default()),
        ("adaptive", adaptive_config()),
    ]
}

fn report_chain_counters(trees: &[Tree]) {
    for tau in [1u32, 2] {
        for (name, config) in chain_workload_configs() {
            let outcome = partsj_join_with(trees, tau, &config);
            let stats = &outcome.stats;
            println!(
                "adaptive: tau={tau} chain={name} candidates={} ted_calls={} size={} \
                 shape-accept={} label-hist={} traversal-sed={}",
                stats.candidates,
                stats.ted_calls,
                stage_count(stats, "size"),
                stage_count(stats, "shape-accept"),
                stage_count(stats, "label-hist"),
                stage_count(stats, "traversal-sed"),
            );
        }
    }
}

/// Builds the sharded index under both maps and reports the per-shard
/// posting loads with their max/mean imbalance.
fn report_shard_loads(trees: &[Tree], shards: usize) {
    let tau = 2u32;
    let delta = 2 * tau as usize + 1;
    let config = PartSjConfig::default();
    let binaries: Vec<BinaryTree> = trees.iter().map(BinaryTree::from_tree).collect();
    let posts: Vec<Vec<u32>> = trees.iter().map(Tree::postorder_numbers).collect();
    let lists = build_subgraph_lists(trees, &binaries, &posts, delta, &config, 1);
    let items: Vec<_> = lists
        .into_iter()
        .enumerate()
        .filter_map(|(i, sg)| sg.map(|sg| (i as u32, trees[i].len() as u32, sg)))
        .collect();
    for balanced in [false, true] {
        let shard_cfg = ShardConfig::with_shards(shards);
        let mut index = ShardedIndex::new(tau, config.window, &shard_cfg).without_replay();
        if balanced {
            index
                .set_shard_map(balanced_map_for(&items, shards))
                .expect("empty index accepts a validated map");
        }
        index.insert_all(items.clone(), false);
        let loads = index.shard_posting_loads();
        let max = loads.iter().copied().max().unwrap_or(0);
        let mean = loads.iter().sum::<u64>() as f64 / loads.len().max(1) as f64;
        println!(
            "adaptive: shards={shards} map={} loads={loads:?} max={max} mean={mean:.1} \
             max_over_mean={:.3}",
            if balanced { "balanced" } else { "hash" },
            max as f64 / mean.max(1.0),
        );
    }
}

fn bench_chain(c: &mut Criterion) {
    let trees = permutation_chains(140, 12, 2015);
    let mut group = c.benchmark_group("adaptive/chain");
    for tau in [1u32, 2] {
        for (name, config) in chain_workload_configs() {
            group.bench_with_input(BenchmarkId::new(name, tau), &tau, |bench, &tau| {
                bench.iter(|| black_box(partsj_join_with(&trees, tau, &config)))
            });
        }
    }
    group.finish();
}

fn bench_shard_build(c: &mut Criterion) {
    let trees = skewed_sizes(2015);
    let mut group = c.benchmark_group("adaptive/shard_build");
    for shards in [4usize, 8] {
        for (name, config) in [
            ("hash", PartSjConfig::default()),
            ("balanced", adaptive_config()),
        ] {
            group.bench_with_input(BenchmarkId::new(name, shards), &shards, |bench, &shards| {
                let shard_cfg = ShardConfig {
                    shards,
                    probe_threads: 1,
                    verify_threads: 1,
                    ..Default::default()
                };
                bench.iter(|| black_box(sharded_join(&trees, 2, &config, &shard_cfg)))
            });
        }
    }
    group.finish();
}

fn bench_all(c: &mut Criterion) {
    let chains = permutation_chains(140, 12, 2015);
    report_chain_counters(&chains);
    let skewed = skewed_sizes(2015);
    report_shard_loads(&skewed, 4);
    report_shard_loads(&skewed, 8);
    bench_chain(c);
    bench_shard_build(c);
}

criterion_group!(benches, bench_all);
criterion_main!(benches);
