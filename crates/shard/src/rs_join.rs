//! Sharded bipartite (R×S) join: the offline-index regime the sharded
//! design fits best.
//!
//! The left collection is partitioned and bulk-loaded into the
//! [`ShardedIndex`] (shards ingest in parallel); right trees then probe
//! the frozen shards concurrently — no rank filter is needed because the
//! index spans exactly the left collection — and candidate batches stream
//! to the verifier pool. Results are bit-identical to
//! [`partsj::partsj_join_rs`].

use crate::index::{ShardConfig, ShardedIndex};
use crate::join::build_subgraph_lists;
use crossbeam::channel;
use partsj::probe::ProbeCounters;
use partsj::subgraph::Subgraph;
use partsj::{LayerId, MatchCache, PartSjConfig, StampSink, VerifyData, VerifyEngine};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;
use tsj_ted::{JoinOutcome, JoinStats, TreeIdx};
use tsj_tree::{BinaryTree, FxHashMap, Tree};

/// Right trees claimed per cursor bump.
const CLAIM_CHUNK: usize = 4;

/// Sharded R×S similarity join: all `(i, j)` with
/// `TED(left[i], right[j]) ≤ tau`, bit-identical to
/// [`partsj::partsj_join_rs`].
pub fn sharded_rs_join(
    left: &[Tree],
    right: &[Tree],
    tau: u32,
    config: &PartSjConfig,
    shard_cfg: &ShardConfig,
) -> JoinOutcome {
    let delta = 2 * tau as usize + 1;
    let mut stats = JoinStats::default();
    let total_start = Instant::now();
    let probe_threads = shard_cfg.resolved_probe_threads();
    let verify_threads = shard_cfg.resolved_verify_threads();

    // Build phase: shard-load the left collection.
    let left_binaries: Vec<BinaryTree> = left.iter().map(BinaryTree::from_tree).collect();
    let left_posts: Vec<Vec<u32>> = left.iter().map(Tree::postorder_numbers).collect();
    let mut lists = build_subgraph_lists(
        left,
        &left_binaries,
        &left_posts,
        delta,
        config,
        probe_threads,
    );
    let mut small_by_size: FxHashMap<u32, Vec<TreeIdx>> = FxHashMap::default();
    let mut items: Vec<(TreeIdx, u32, Vec<Subgraph>)> = Vec::new();
    for (i, list) in lists.iter_mut().enumerate() {
        let size = left[i].len() as u32;
        match list.take() {
            Some(subgraphs) => items.push((i as TreeIdx, size, subgraphs)),
            None => small_by_size.entry(size).or_default().push(i as TreeIdx),
        }
    }
    // Offline build, never mutated afterwards: no replay log needed.
    let mut index = ShardedIndex::new(tau, config.window, shard_cfg).without_replay();
    index.insert_all(items, probe_threads > 1);

    let left_data: Vec<VerifyData> = left
        .iter()
        .map(|t| VerifyData::for_config(t, &config.verify))
        .collect();
    let right_data: Vec<VerifyData> = right
        .iter()
        .map(|t| VerifyData::for_config(t, &config.verify))
        .collect();

    let parallel = probe_threads > 1 && right.len() >= config.parallel_fallback;
    if !parallel {
        let mut verify = VerifyEngine::new(tau, config);
        let mut pairs: Vec<(TreeIdx, TreeIdx)> = Vec::new();
        let mut stamp: Vec<TreeIdx> = vec![TreeIdx::MAX; left.len()];
        let mut caches: Vec<MatchCache> = (0..index.shard_count())
            .map(|_| MatchCache::new())
            .collect();
        let (mut shard_scratch, mut layer_scratch) = (Vec::new(), Vec::<LayerId>::new());
        let mut candidates: Vec<TreeIdx> = Vec::new();
        let mut counters = ProbeCounters::default();
        let mut candidate_time = total_start.elapsed();

        for (j, tree) in right.iter().enumerate() {
            let probe_start = Instant::now();
            let marker = j as TreeIdx;
            let size_j = tree.len() as u32;
            let lo = size_j.saturating_sub(tau).max(1);
            let hi = size_j + tau;
            candidates.clear();
            for n in lo..=hi {
                if let Some(list) = small_by_size.get(&n) {
                    for &i in list {
                        if stamp[i as usize] != marker {
                            stamp[i as usize] = marker;
                            candidates.push(i);
                        }
                    }
                }
            }
            let binary = BinaryTree::from_tree(tree);
            let posts = tree.postorder_numbers();
            let mut sink = StampSink {
                stamp: &mut stamp,
                marker,
                candidates: &mut candidates,
            };
            index.probe_tree(
                &binary,
                &posts,
                size_j,
                lo,
                hi,
                config.matching,
                &mut caches,
                &mut shard_scratch,
                &mut layer_scratch,
                &mut counters,
                &mut sink,
            );
            stats.candidates += candidates.len() as u64;
            candidate_time += probe_start.elapsed();

            let verify_start = Instant::now();
            for &i in &candidates {
                if verify
                    .check(&left_data[i as usize], &right_data[j])
                    .is_some()
                {
                    pairs.push((i, j as TreeIdx));
                }
            }
            stats.verify_time += verify_start.elapsed();
        }
        stats.pairs_examined = stats.candidates;
        stats.candidate_time = candidate_time;
        verify.fold_into(&mut stats);
        return JoinOutcome::new_bipartite(pairs, stats);
    }

    let batch_size = config.verify_batch.max(1);
    let (tx, rx) = channel::bounded::<Vec<(TreeIdx, TreeIdx)>>(verify_threads * 4);
    let cursor = AtomicUsize::new(0);
    let index_ref = &index;
    let (pairs, candidates_total, engines, probe_wall) = crossbeam::scope(|scope| {
        let verifiers: Vec<_> = (0..verify_threads)
            .map(|_| {
                let rx = rx.clone();
                let left_data = &left_data;
                let right_data = &right_data;
                scope.spawn(move |_| {
                    // One filter-chain engine per verify worker.
                    let mut verify = VerifyEngine::new(tau, config);
                    let mut found = Vec::new();
                    while let Ok(batch) = rx.recv() {
                        for (i, j) in batch {
                            let (iu, ju) = (i as usize, j as usize);
                            if verify.check(&left_data[iu], &right_data[ju]).is_some() {
                                found.push((i, j));
                            }
                        }
                    }
                    (found, verify)
                })
            })
            .collect();
        drop(rx);

        let probers: Vec<_> = (0..probe_threads)
            .map(|_| {
                let tx = tx.clone();
                let cursor = &cursor;
                let small_by_size = &small_by_size;
                scope.spawn(move |_| {
                    let mut stamp: Vec<TreeIdx> = vec![TreeIdx::MAX; left.len()];
                    let mut caches: Vec<MatchCache> = (0..index_ref.shard_count())
                        .map(|_| MatchCache::new())
                        .collect();
                    let (mut shard_scratch, mut layer_scratch) =
                        (Vec::new(), Vec::<LayerId>::new());
                    let mut candidates: Vec<TreeIdx> = Vec::new();
                    let mut counters = ProbeCounters::default();
                    let mut batch: Vec<(TreeIdx, TreeIdx)> = Vec::with_capacity(batch_size);
                    let mut candidates_total = 0u64;
                    loop {
                        let start = cursor.fetch_add(CLAIM_CHUNK, Ordering::Relaxed);
                        if start >= right.len() {
                            break;
                        }
                        for j in start..(start + CLAIM_CHUNK).min(right.len()) {
                            let tree = &right[j];
                            let marker = j as TreeIdx;
                            let size_j = tree.len() as u32;
                            let lo = size_j.saturating_sub(tau).max(1);
                            let hi = size_j + tau;
                            candidates.clear();
                            for n in lo..=hi {
                                if let Some(list) = small_by_size.get(&n) {
                                    for &i in list {
                                        if stamp[i as usize] != marker {
                                            stamp[i as usize] = marker;
                                            candidates.push(i);
                                        }
                                    }
                                }
                            }
                            let binary = BinaryTree::from_tree(tree);
                            let posts = tree.postorder_numbers();
                            let mut sink = StampSink {
                                stamp: &mut stamp,
                                marker,
                                candidates: &mut candidates,
                            };
                            index_ref.probe_tree(
                                &binary,
                                &posts,
                                size_j,
                                lo,
                                hi,
                                config.matching,
                                &mut caches,
                                &mut shard_scratch,
                                &mut layer_scratch,
                                &mut counters,
                                &mut sink,
                            );
                            candidates_total += candidates.len() as u64;
                            for &i in &candidates {
                                batch.push((i, marker));
                                if batch.len() >= batch_size {
                                    let full = std::mem::replace(
                                        &mut batch,
                                        Vec::with_capacity(batch_size),
                                    );
                                    tx.send(full).expect("verifier pool alive");
                                }
                            }
                        }
                    }
                    if !batch.is_empty() {
                        tx.send(batch).expect("verifier pool alive");
                    }
                    candidates_total
                })
            })
            .collect();
        drop(tx);

        let mut candidates_total = 0u64;
        for prober in probers {
            candidates_total += prober.join().expect("probe worker panicked");
        }
        let probe_wall = total_start.elapsed();
        let mut pairs = Vec::new();
        let mut engines = Vec::new();
        for verifier in verifiers {
            let (found, engine) = verifier.join().expect("verifier panicked");
            pairs.extend(found);
            engines.push(engine);
        }
        (pairs, candidates_total, engines, probe_wall)
    })
    .expect("sharded rs join scope");

    stats.candidates = candidates_total;
    stats.pairs_examined = candidates_total;
    for engine in &engines {
        engine.fold_into(&mut stats);
    }
    stats.candidate_time = probe_wall;
    stats.verify_time = total_start.elapsed().saturating_sub(probe_wall);
    JoinOutcome::new_bipartite(pairs, stats)
}
