//! Pins the PR's central performance claim: with a warmed
//! [`VerifyEngine`] + scratch, serving-loop probes are **allocation-free
//! in steady state** — `Catalog::query_into` performs zero heap
//! allocations per query, and `Catalog::join_with_scratch` zero per
//! batch join, once every grow-only buffer has seen the workload's
//! maximum sizes.
//!
//! The whole file is one `#[test]`: the counting `#[global_allocator]`
//! is process-wide, so this binary must not run unrelated tests whose
//! allocations would race with the counters.

// The one place the workspace needs `unsafe`: a `GlobalAlloc` impl
// cannot be written without it. It only counts and delegates to
// `System`.
#![allow(unsafe_code)]

use partsj::{PartSjConfig, VerifyEngine};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use tsj_catalog::{Catalog, QueryScratch};
use tsj_shard::{FrozenJoinScratch, ShardConfig};
use tsj_tree::{parse_bracket, LabelInterner, Tree};

/// System allocator with an allocation-event counter (frees are not
/// counted — a steady-state path that frees must have allocated first).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

fn parse_all(specs: &[&str], labels: &mut LabelInterner) -> Vec<Tree> {
    specs
        .iter()
        .map(|s| parse_bracket(s, labels).unwrap())
        .collect()
}

#[test]
fn steady_state_probes_allocate_nothing() {
    let mut labels = LabelInterner::new();
    // Size spread on both sides of δ = 2τ + 1 = 5, so the side lists and
    // the partitioned index are both exercised.
    let base = [
        "{a{b}{c}}",
        "{a{b}{c}{d}}",
        "{a{b{c}}{d{e}}}",
        "{q{w}{e}{r}{t}}",
        "{m{n{o{p}}}}",
        "{x{y}}",
        "{z}",
        "{a{b}{c}{d}{e}{f}}",
    ];
    let catalog_trees: Vec<Tree> = (0..64)
        .map(|i| parse_bracket(base[i % base.len()], &mut labels).unwrap())
        .collect();
    let config = PartSjConfig::default();
    let catalog = Catalog::freeze(
        catalog_trees,
        labels.clone(),
        2,
        &config,
        &ShardConfig::with_shards(2),
    );

    // Probe sizes deliberately zig-zag so dirty-scratch reuse across
    // mismatched tree sizes is what's being measured, not a lucky
    // monotone warm-up.
    let probes = parse_all(
        &[
            "{a{b}{c}{d}{e}{f}}",
            "{z}",
            "{a{b{c}}{d{e}}}",
            "{x{y}}",
            "{q{w}{e}{r}{t}}",
            "{a{b}{c}}",
        ],
        &mut labels,
    );

    // --- Single-probe queries -------------------------------------------
    let mut engine = VerifyEngine::with_filters(2, &config.verify);
    let mut scratch = QueryScratch::default();
    let mut hits = Vec::new();

    // Warm-up: two full passes grow every buffer (including the adaptive
    // engine's) to the workload maximum and exercise marker turnover.
    let mut expected = Vec::new();
    for _ in 0..2 {
        expected.clear();
        for probe in &probes {
            catalog
                .query_into(probe, &config, &mut engine, &mut scratch, &mut hits)
                .unwrap();
            expected.push(hits.clone());
        }
    }

    for (probe, expected) in probes.iter().zip(&expected) {
        let before = allocations();
        catalog
            .query_into(probe, &config, &mut engine, &mut scratch, &mut hits)
            .unwrap();
        let after = allocations();
        assert_eq!(
            after - before,
            0,
            "steady-state query allocated (probe of {} nodes)",
            probe.len()
        );
        assert_eq!(&hits, expected, "recycled query changed its answer");
    }

    // --- Batch joins ----------------------------------------------------
    // The returned `JoinStats` owns its per-stage count rows, so a batch
    // join is allowed exactly that one allocation — constant per call,
    // independent of how many probes the batch holds.
    let mut join_engine = VerifyEngine::new(2, &config);
    let mut join_scratch = FrozenJoinScratch::new();
    let mut pairs = Vec::new();
    let large: Vec<Tree> = probes.iter().chain(&probes).cloned().collect();
    let mut run = |batch: &[Tree], pairs: &mut Vec<_>| {
        catalog
            .join_with_scratch(
                batch,
                2,
                &config,
                &mut join_engine,
                &mut join_scratch,
                pairs,
            )
            .unwrap()
    };
    for _ in 0..2 {
        run(&large, &mut pairs);
        run(&probes, &mut pairs);
    }
    let expected_pairs = pairs.clone();

    let before = allocations();
    let stats = run(&probes, &mut pairs);
    let small_allocs = allocations() - before;
    assert_eq!(pairs, expected_pairs, "recycled join changed its answer");
    assert_eq!(stats.results, expected_pairs.len() as u64);

    let before = allocations();
    run(&large, &mut pairs);
    let large_allocs = allocations() - before;

    assert!(
        small_allocs <= 1,
        "steady-state batch join made {small_allocs} allocations \
         (budget: 1, the returned stats' stage-count rows)"
    );
    assert_eq!(
        small_allocs, large_allocs,
        "per-call allocations must not scale with the probe count"
    );
}
