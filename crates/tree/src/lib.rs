//! # tsj-tree
//!
//! Rooted ordered labeled trees and their left-child right-sibling (LC-RS)
//! binary representation — the data-model substrate for the reproduction of
//! *Scaling Similarity Joins over Tree-Structured Data* (Tang, Cai &
//! Mamoulis, VLDB 2015).
//!
//! Provided here:
//!
//! * [`Tree`] / [`TreeBuilder`] — arena-based general trees (§2);
//! * [`Label`] / [`LabelInterner`] — interned labels with a reserved `ε`;
//! * [`BinaryTree`] — Knuth's LC-RS transformation and its inverse (§3.1);
//! * [`EditOp`] / [`apply_edit`] — the three node edit operations whose
//!   minimum count defines tree edit distance (§2);
//! * bracket-notation and XML-ish parsers ([`parse_bracket`],
//!   [`parse_xmlish`]);
//! * [`FxHashMap`]-style fast hash containers used across the workspace.

#![warn(missing_docs)]

pub mod binary;
pub mod edit;
pub mod error;
pub mod hash;
pub mod label;
pub mod parser;
pub mod tree;

pub use binary::{BinaryTree, Side};
pub use edit::{apply_edit, apply_edits, EditOp};
pub use error::{EditError, ParseError};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use label::{pack_twig, Label, LabelInterner};
pub use parser::{parse_bracket, parse_xmlish, to_bracket, to_outline};
pub use tree::{NodeId, Tree, TreeBuilder};
