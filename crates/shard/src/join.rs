//! The sharded batch self-join: Algorithm 1 with **parallel candidate
//! generation**.
//!
//! The sequential join interleaves probing and indexing — tree `T_i`
//! probes the index state left by trees processed before it — which pins
//! candidate generation to one core. This module de-interleaves the two:
//!
//! 1. **Build** (parallel): every δ-partitionable tree is partitioned and
//!    its subgraphs inserted into the [`ShardedIndex`] — shards ingest
//!    concurrently since each owns disjoint size classes.
//! 2. **Probe** (parallel): probing trees fan out over scoped worker
//!    threads, each probing the now-frozen shards covering
//!    `[|T_i| − τ, |T_i|]`. A surfaced container tree `T_j` is admitted
//!    only if its processing **rank** (position in the ascending
//!    `(size, index)` order) precedes `T_i`'s — exactly the set of trees
//!    the sequential join had indexed when `T_i` probed, so the candidate
//!    set per tree is *identical* and every unordered pair is still
//!    considered exactly once.
//! 3. **Verify**: candidate batches stream over the bounded channel to
//!    the same verifier pool as [`partsj::partsj_join_parallel`] — one
//!    [`partsj::VerifyEngine`] filter chain per worker in front of exact
//!    TED.
//!
//! Result pairs are bit-identical to [`partsj::partsj_join`] for every
//! shard count and thread count (asserted across the property suite).

use crate::index::{balanced_map_for, ShardConfig, ShardedIndex};
use crossbeam::channel;
use partsj::join::PartSjDetail;
use partsj::partition::cuts_for;
use partsj::probe::{CandidateSink, ProbeCounters};
use partsj::subgraph::{build_subgraphs, Subgraph};
use partsj::{LayerId, MatchCache, PartSjConfig, VerifyData, VerifyEngine};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;
use tsj_ted::{JoinOutcome, JoinStats, TreeIdx};
use tsj_tree::{BinaryTree, FxHashMap, Tree};

/// Probe trees claimed per cursor bump — small enough to balance the
/// skew of ascending-size order, large enough to amortize the atomic.
const CLAIM_CHUNK: usize = 4;

/// Admits a container tree only if it precedes the probing tree in
/// processing rank (and is not already a candidate of this probe).
struct RankSink<'a> {
    stamp: &'a mut [TreeIdx],
    marker: TreeIdx,
    rank: &'a [u32],
    my_rank: u32,
    candidates: &'a mut Vec<TreeIdx>,
}

impl CandidateSink for RankSink<'_> {
    #[inline]
    fn admit(&mut self, tree: TreeIdx) -> bool {
        self.rank[tree as usize] < self.my_rank && self.stamp[tree as usize] != self.marker
    }

    #[inline]
    fn accept(&mut self, tree: TreeIdx) {
        self.stamp[tree as usize] = self.marker;
        self.candidates.push(tree);
    }
}

/// Sharded PartSJ self-join with the default shard configuration.
pub fn sharded_join(
    trees: &[Tree],
    tau: u32,
    config: &PartSjConfig,
    shard_cfg: &ShardConfig,
) -> JoinOutcome {
    sharded_join_detailed(trees, tau, config, shard_cfg).0
}

/// Sharded PartSJ self-join, also returning the probe instrumentation
/// (the same [`PartSjDetail`] the sequential join reports).
pub fn sharded_join_detailed(
    trees: &[Tree],
    tau: u32,
    config: &PartSjConfig,
    shard_cfg: &ShardConfig,
) -> (JoinOutcome, PartSjDetail) {
    let delta = 2 * tau as usize + 1;
    let mut stats = JoinStats::default();
    let mut detail = PartSjDetail::default();
    let total_start = Instant::now();

    let probe_threads = shard_cfg.resolved_probe_threads();
    let verify_threads = shard_cfg.resolved_verify_threads();

    // Shared read-only preprocessing.
    let binaries: Vec<BinaryTree> = trees.iter().map(BinaryTree::from_tree).collect();
    let general_posts: Vec<Vec<u32>> = trees.iter().map(Tree::postorder_numbers).collect();
    let data: Vec<VerifyData> = VerifyData::batch_for_config(trees, &config.verify);
    let mut order: Vec<TreeIdx> = (0..trees.len() as TreeIdx).collect();
    order.sort_by_key(|&i| (trees[i as usize].len(), i));
    let mut rank: Vec<u32> = vec![0; trees.len()];
    for (r, &i) in order.iter().enumerate() {
        rank[i as usize] = r as u32;
    }

    // Build phase: partition every δ-partitionable tree (fanned out over
    // scoped threads), then bulk-load the shards.
    let mut lists = build_subgraph_lists(
        trees,
        &binaries,
        &general_posts,
        delta,
        config,
        probe_threads,
    );
    let mut small_by_size: FxHashMap<u32, Vec<TreeIdx>> = FxHashMap::default();
    let mut items: Vec<(TreeIdx, u32, Vec<Subgraph>)> = Vec::new();
    // Walk in processing order so shard-local insertion order (and the
    // small side lists) match the sequential join's.
    for &i in &order {
        let size = trees[i as usize].len() as u32;
        match lists[i as usize].take() {
            Some(subgraphs) => {
                detail.subgraphs_built += subgraphs.len() as u64;
                items.push((i, size, subgraphs));
            }
            None => small_by_size.entry(size).or_default().push(i),
        }
    }
    // Batch joins never remove trees: skip the compaction replay log
    // (halves build memory, moves instead of cloning every posting).
    let mut index = ShardedIndex::new(tau, config.window, shard_cfg).without_replay();
    if config.adaptive.balanced_shards {
        // Routing moves postings between shards, never changes which
        // exist — results stay bit-identical to the hash map.
        index
            .set_shard_map(balanced_map_for(&items, index.shard_count()))
            .expect("empty index accepts a validated map");
    }
    index.insert_all(items, probe_threads > 1);
    detail.index_registrations = index.live_postings();

    let parallel = probe_threads > 1 && trees.len() >= config.parallel_fallback;
    if !parallel {
        // Inline probe + verify (still sharded — same index, same rank
        // filter — just no thread pools).
        let mut verify = VerifyEngine::new(tau, config);
        let mut pairs: Vec<(TreeIdx, TreeIdx)> = Vec::new();
        let mut stamp: Vec<TreeIdx> = vec![TreeIdx::MAX; trees.len()];
        let mut caches: Vec<MatchCache> = (0..index.shard_count())
            .map(|_| MatchCache::new())
            .collect();
        let mut shard_scratch: Vec<usize> = Vec::new();
        let mut layer_scratch: Vec<LayerId> = Vec::new();
        let mut candidates: Vec<TreeIdx> = Vec::new();
        let mut counters = ProbeCounters::default();
        let mut candidate_time = total_start.elapsed();

        for &i in &order {
            let probe_start = Instant::now();
            let size_i = trees[i as usize].len() as u32;
            let lo = size_i.saturating_sub(tau).max(1);
            candidates.clear();
            detail.small_tree_candidates += admit_small(
                &small_by_size,
                lo,
                size_i,
                &rank,
                i,
                &mut stamp,
                &mut candidates,
            );
            let mut sink = RankSink {
                stamp: &mut stamp,
                marker: i,
                rank: &rank,
                my_rank: rank[i as usize],
                candidates: &mut candidates,
            };
            index.probe_tree(
                &binaries[i as usize],
                &general_posts[i as usize],
                size_i,
                lo,
                size_i,
                config.matching,
                &mut caches,
                &mut shard_scratch,
                &mut layer_scratch,
                &mut counters,
                &mut sink,
            );
            stats.candidates += candidates.len() as u64;
            candidate_time += probe_start.elapsed();

            let verify_start = Instant::now();
            for &j in &candidates {
                if verify.check(&data[i as usize], &data[j as usize]).is_some() {
                    pairs.push((j, i));
                }
            }
            stats.verify_time += verify_start.elapsed();
        }
        detail.probes = counters.probes;
        detail.match_attempts = counters.match_attempts;
        detail.matches = counters.matches;
        stats.pairs_examined = stats.candidates;
        stats.candidate_time = candidate_time;
        verify.fold_into(&mut stats);
        return (JoinOutcome::new(pairs, stats), detail);
    }

    // Parallel probe + verify: probe workers claim trees off a shared
    // cursor and stream candidate batches to the verifier pool.
    let batch_size = config.verify_batch.max(1);
    let (tx, rx) = channel::bounded::<Vec<(TreeIdx, TreeIdx)>>(verify_threads * 4);
    let cursor = AtomicUsize::new(0);
    let index_ref = &index;
    let (pairs, candidates_total, small_candidates, counters, engines, probe_wall) =
        crossbeam::scope(|scope| {
            let verifiers: Vec<_> = (0..verify_threads)
                .map(|_| {
                    let rx = rx.clone();
                    let data = &data;
                    scope.spawn(move |_| {
                        // One filter-chain engine per verify worker.
                        let mut verify = VerifyEngine::new(tau, config);
                        let mut found = Vec::new();
                        while let Ok(batch) = rx.recv() {
                            for (i, j) in batch {
                                let (i, j) = (i as usize, j as usize);
                                if verify.check(&data[i], &data[j]).is_some() {
                                    found.push((j as TreeIdx, i as TreeIdx));
                                }
                            }
                        }
                        (found, verify)
                    })
                })
                .collect();
            drop(rx);

            let probers: Vec<_> = (0..probe_threads)
                .map(|_| {
                    let tx = tx.clone();
                    let cursor = &cursor;
                    let order = &order;
                    let rank = &rank;
                    let binaries = &binaries;
                    let general_posts = &general_posts;
                    let small_by_size = &small_by_size;
                    scope.spawn(move |_| {
                        let mut stamp: Vec<TreeIdx> = vec![TreeIdx::MAX; trees.len()];
                        let mut caches: Vec<MatchCache> = (0..index_ref.shard_count())
                            .map(|_| MatchCache::new())
                            .collect();
                        let mut shard_scratch: Vec<usize> = Vec::new();
                        let mut layer_scratch: Vec<LayerId> = Vec::new();
                        let mut candidates: Vec<TreeIdx> = Vec::new();
                        let mut counters = ProbeCounters::default();
                        let mut batch: Vec<(TreeIdx, TreeIdx)> = Vec::with_capacity(batch_size);
                        let mut candidates_total = 0u64;
                        let mut small_candidates = 0u64;
                        loop {
                            let start = cursor.fetch_add(CLAIM_CHUNK, Ordering::Relaxed);
                            if start >= order.len() {
                                break;
                            }
                            for &i in &order[start..(start + CLAIM_CHUNK).min(order.len())] {
                                let size_i = trees[i as usize].len() as u32;
                                let lo = size_i.saturating_sub(tau).max(1);
                                candidates.clear();
                                small_candidates += admit_small(
                                    small_by_size,
                                    lo,
                                    size_i,
                                    rank,
                                    i,
                                    &mut stamp,
                                    &mut candidates,
                                );
                                let mut sink = RankSink {
                                    stamp: &mut stamp,
                                    marker: i,
                                    rank,
                                    my_rank: rank[i as usize],
                                    candidates: &mut candidates,
                                };
                                index_ref.probe_tree(
                                    &binaries[i as usize],
                                    &general_posts[i as usize],
                                    size_i,
                                    lo,
                                    size_i,
                                    config.matching,
                                    &mut caches,
                                    &mut shard_scratch,
                                    &mut layer_scratch,
                                    &mut counters,
                                    &mut sink,
                                );
                                candidates_total += candidates.len() as u64;
                                for &j in &candidates {
                                    batch.push((i, j));
                                    if batch.len() >= batch_size {
                                        let full = std::mem::replace(
                                            &mut batch,
                                            Vec::with_capacity(batch_size),
                                        );
                                        tx.send(full).expect("verifier pool alive");
                                    }
                                }
                            }
                        }
                        if !batch.is_empty() {
                            tx.send(batch).expect("verifier pool alive");
                        }
                        (candidates_total, small_candidates, counters)
                    })
                })
                .collect();
            drop(tx);

            let mut candidates_total = 0u64;
            let mut small_candidates = 0u64;
            let mut counters = ProbeCounters::default();
            for prober in probers {
                let (c, s, k) = prober.join().expect("probe worker panicked");
                candidates_total += c;
                small_candidates += s;
                counters.probes += k.probes;
                counters.match_attempts += k.match_attempts;
                counters.matches += k.matches;
            }
            // Probe side done: everything after this instant is pure
            // verification drain.
            let probe_wall = total_start.elapsed();

            let mut pairs = Vec::new();
            let mut engines = Vec::new();
            for verifier in verifiers {
                let (found, engine) = verifier.join().expect("verifier panicked");
                pairs.extend(found);
                engines.push(engine);
            }
            (
                pairs,
                candidates_total,
                small_candidates,
                counters,
                engines,
                probe_wall,
            )
        })
        .expect("sharded join scope");

    detail.probes = counters.probes;
    detail.match_attempts = counters.match_attempts;
    detail.matches = counters.matches;
    detail.small_tree_candidates = small_candidates;
    stats.candidates = candidates_total;
    stats.pairs_examined = candidates_total;
    for engine in &engines {
        engine.fold_into(&mut stats);
    }
    // Probe and verify overlap; wall time until the probe workers drained
    // counts as candidate generation, the verifier-drain tail as verify —
    // the same attribution as `partsj::partsj_join_parallel`.
    stats.candidate_time = probe_wall;
    stats.verify_time = total_start.elapsed().saturating_sub(probe_wall);
    (JoinOutcome::new(pairs, stats), detail)
}

/// Admits the side-listed small trees of sizes `[lo, hi]` that precede
/// probe `i` in rank; returns how many were admitted.
fn admit_small(
    small_by_size: &FxHashMap<u32, Vec<TreeIdx>>,
    lo: u32,
    hi: u32,
    rank: &[u32],
    i: TreeIdx,
    stamp: &mut [TreeIdx],
    candidates: &mut Vec<TreeIdx>,
) -> u64 {
    let my_rank = rank[i as usize];
    let mut admitted = 0;
    for n in lo..=hi {
        if let Some(list) = small_by_size.get(&n) {
            for &j in list {
                if rank[j as usize] < my_rank && stamp[j as usize] != i {
                    stamp[j as usize] = i;
                    candidates.push(j);
                    admitted += 1;
                }
            }
        }
    }
    admitted
}

/// Partitions every δ-partitionable tree into its subgraph list (`None`
/// for side-listed small trees), fanning the per-tree work out over
/// `threads` scoped workers. Shared by both batch joins and
/// `tsj-catalog`'s freeze — `delta = 2τ + 1` and the `binaries`/
/// `general_posts` slices must be index-aligned with `trees`.
pub fn build_subgraph_lists(
    trees: &[Tree],
    binaries: &[BinaryTree],
    general_posts: &[Vec<u32>],
    delta: usize,
    config: &PartSjConfig,
    threads: usize,
) -> Vec<Option<Vec<Subgraph>>> {
    let build_one = |i: usize| -> Option<Vec<Subgraph>> {
        if trees[i].len() < delta {
            return None;
        }
        let cuts = cuts_for(&binaries[i], delta, config.partitioning, i as u64);
        Some(build_subgraphs(
            &binaries[i],
            &general_posts[i],
            &cuts,
            i as TreeIdx,
        ))
    };
    if threads <= 1 || trees.len() < 2 * threads {
        return (0..trees.len()).map(build_one).collect();
    }
    let mut lists: Vec<Option<Vec<Subgraph>>> = vec![None; trees.len()];
    let chunk = trees.len().div_ceil(threads);
    crossbeam::scope(|scope| {
        for (c, slot) in lists.chunks_mut(chunk).enumerate() {
            let base = c * chunk;
            scope.spawn(move |_| {
                for (off, out) in slot.iter_mut().enumerate() {
                    *out = build_one(base + off);
                }
            });
        }
    })
    .expect("partition scope");
    lists
}
