//! Exporters: Prometheus text format and a stable JSON snapshot — plus
//! a tiny Prometheus parser/validator CI uses to keep the text output
//! honest (no duplicate series, cumulative buckets monotone, counts
//! consistent).
//!
//! Both exporters are pure functions of a [`MetricsSnapshot`], so their
//! output is deterministic given deterministic metrics (e.g. a cluster
//! on a `VirtualClock`): names are sorted, buckets are emitted in bound
//! order, and no timestamps are embedded.

use crate::metrics::{bucket_bound, HistogramSnapshot, MetricsSnapshot, NUM_BUCKETS};
use std::collections::BTreeMap;

/// Splits a registry name into `(family, inline labels)` — the
/// `family{key="value"}` convention of [`crate::labeled`].
fn split_name(name: &str) -> (&str, Option<&str>) {
    match name.split_once('{') {
        Some((family, rest)) => (family, Some(rest.trim_end_matches('}'))),
        None => (name, None),
    }
}

/// Joins base labels with an extra label into one `{…}` block.
fn label_block(base: Option<&str>, extra: Option<&str>) -> String {
    match (base, extra) {
        (None, None) => String::new(),
        (Some(labels), None) | (None, Some(labels)) => format!("{{{labels}}}"),
        (Some(base), Some(extra)) => format!("{{{base},{extra}}}"),
    }
}

/// Renders a snapshot in the Prometheus text exposition format:
/// one `# TYPE` line per family, samples grouped under it, histogram
/// series expanded into cumulative `_bucket{le=…}` / `_sum` / `_count`.
pub fn to_prometheus(snapshot: &MetricsSnapshot) -> String {
    // Group by family so multi-label families share one TYPE line even
    // when plain names sort between their labeled variants.
    let mut counters: BTreeMap<&str, Vec<(Option<&str>, u64)>> = BTreeMap::new();
    for (name, v) in &snapshot.counters {
        let (family, labels) = split_name(name);
        counters.entry(family).or_default().push((labels, *v));
    }
    let mut gauges: BTreeMap<&str, Vec<(Option<&str>, i64)>> = BTreeMap::new();
    for (name, v) in &snapshot.gauges {
        let (family, labels) = split_name(name);
        gauges.entry(family).or_default().push((labels, *v));
    }
    let mut histograms: BTreeMap<&str, Vec<(Option<&str>, &HistogramSnapshot)>> = BTreeMap::new();
    for (name, h) in &snapshot.histograms {
        let (family, labels) = split_name(name);
        histograms.entry(family).or_default().push((labels, h));
    }

    let mut out = String::new();
    for (family, series) in &counters {
        out.push_str(&format!("# TYPE {family} counter\n"));
        for (labels, v) in series {
            out.push_str(&format!("{family}{} {v}\n", label_block(*labels, None)));
        }
    }
    for (family, series) in &gauges {
        out.push_str(&format!("# TYPE {family} gauge\n"));
        for (labels, v) in series {
            out.push_str(&format!("{family}{} {v}\n", label_block(*labels, None)));
        }
    }
    for (family, series) in &histograms {
        out.push_str(&format!("# TYPE {family} histogram\n"));
        for (labels, h) in series {
            let mut cumulative = 0u64;
            for (i, &count) in h.buckets.iter().enumerate() {
                cumulative += count;
                let Some(bound) = bucket_bound(i) else { break };
                // Skip the long empty tail: stop once everything finite
                // is covered (the +Inf bucket below closes the series).
                if bound > h.max && cumulative == h.count() {
                    break;
                }
                if count > 0 || bound <= h.max {
                    let le = labeled_le(*labels, &bound.to_string());
                    out.push_str(&format!("{family}_bucket{le} {cumulative}\n"));
                }
            }
            let le = labeled_le(*labels, "+Inf");
            out.push_str(&format!("{family}_bucket{le} {}\n", h.count()));
            out.push_str(&format!(
                "{family}_sum{} {}\n",
                label_block(*labels, None),
                h.sum
            ));
            out.push_str(&format!(
                "{family}_count{} {}\n",
                label_block(*labels, None),
                h.count()
            ));
        }
    }
    out
}

fn labeled_le(base: Option<&str>, le: &str) -> String {
    label_block(base, Some(&format!("le=\"{le}\"")))
}

/// Appends `s` to `out` as a JSON string literal, escaping as needed.
pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders a snapshot as one stable JSON object:
///
/// ```json
/// {"counters": {"name": 1},
///  "gauges": {"name": -2},
///  "histograms": {"name": {"count": 3, "sum": 10, "max": 6,
///                          "p50": 4, "p90": 6, "p99": 6,
///                          "overflow": 0, "buckets": [[4, 2], [6, 1]]}}}
/// ```
///
/// Keys are sorted, `buckets` lists `[upper bound, count]` for each
/// non-empty finite bucket, and `overflow` counts values above
/// [`crate::MAX_TRACKED`]. The output parses with any JSON parser —
/// CI round-trips it through `tsj-bench`'s.
pub fn to_json(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, (name, v)) in snapshot.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(&mut out, name);
        out.push_str(&format!(":{v}"));
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, v)) in snapshot.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(&mut out, name);
        out.push_str(&format!(":{v}"));
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in snapshot.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(&mut out, name);
        let overflow = h.buckets.get(NUM_BUCKETS - 1).copied().unwrap_or(0);
        out.push_str(&format!(
            ":{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\
             \"overflow\":{overflow},\"buckets\":[",
            h.count(),
            h.sum,
            h.max,
            h.p50(),
            h.p90(),
            h.p99(),
        ));
        let mut first = true;
        for (i, &count) in h.buckets.iter().enumerate() {
            let Some(bound) = bucket_bound(i) else { break };
            if count == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("[{bound},{count}]"));
        }
        out.push_str("]}");
    }
    out.push_str("}}");
    out
}

/// What [`validate_prometheus`] measured while checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PromReport {
    /// Families declared with `# TYPE` lines.
    pub families: usize,
    /// Distinct sample series.
    pub series: usize,
    /// Total sample lines.
    pub samples: usize,
}

/// Parses and validates Prometheus text output: every line must parse;
/// every family gets exactly one `# TYPE`; every sample belongs to a
/// declared family; no series appears twice; counters are integers ≥ 0;
/// histogram `_bucket` series are cumulative (monotone in `le`), end at
/// `+Inf`, and agree with `_count`.
pub fn validate_prometheus(text: &str) -> Result<PromReport, String> {
    let mut families: BTreeMap<String, String> = BTreeMap::new();
    let mut seen_series: BTreeMap<String, f64> = BTreeMap::new();
    // Histogram bucket chains keyed by series-without-le, in file order.
    let mut bucket_chains: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    let mut samples = 0usize;

    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| Err(format!("line {}: {msg}", lineno + 1));
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (Some(family), Some(kind), None) = (parts.next(), parts.next(), parts.next())
            else {
                return err(format!("malformed TYPE line: {line:?}"));
            };
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return err(format!("unknown metric type {kind:?}"));
            }
            if families
                .insert(family.to_string(), kind.to_string())
                .is_some()
            {
                return err(format!("duplicate TYPE for family {family:?}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        // Sample: `name{labels} value` or `name value`.
        let Some(space) = line.rfind(' ') else {
            return err(format!("malformed sample line: {line:?}"));
        };
        let (series, value) = line.split_at(space);
        let Ok(value) = value.trim().parse::<f64>() else {
            return err(format!("unparseable value in {line:?}"));
        };
        let name_end = series.find('{').unwrap_or(series.len());
        let name = &series[..name_end];
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return err(format!("invalid metric name {name:?}"));
        }
        if series.contains('{') && !series.ends_with('}') {
            return err(format!("unterminated label block in {series:?}"));
        }
        let family = family_of(name, &families)
            .ok_or_else(|| format!("line {}: sample {name:?} has no TYPE line", lineno + 1))?;
        let kind = families[&family].clone();
        if kind == "counter" && (value < 0.0 || value.fract() != 0.0) {
            return err(format!("counter {series:?} is not a non-negative integer"));
        }
        if seen_series.insert(series.to_string(), value).is_some() {
            return err(format!("duplicate series {series:?}"));
        }
        samples += 1;
        if kind == "histogram" && name == format!("{family}_bucket") {
            let Some(le) = extract_label(series, "le") else {
                return err(format!("bucket series {series:?} lacks an le label"));
            };
            let le = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse::<f64>()
                    .map_err(|_| format!("line {}: bad le {le:?}", lineno + 1))?
            };
            let base = strip_label(series, "le");
            bucket_chains.entry(base).or_default().push((le, value));
        }
    }

    for (base, chain) in &bucket_chains {
        for pair in chain.windows(2) {
            if pair[1].0 <= pair[0].0 || pair[1].1 < pair[0].1 {
                return Err(format!(
                    "histogram {base:?}: buckets not cumulative/monotone in le"
                ));
            }
        }
        let Some(&(last_le, last_count)) = chain.last() else {
            continue;
        };
        if last_le != f64::INFINITY {
            return Err(format!("histogram {base:?}: bucket chain must end at +Inf"));
        }
        let count_series = base.replacen("_bucket", "_count", 1);
        match seen_series.get(&count_series) {
            Some(&count) if count == last_count => {}
            Some(&count) => {
                return Err(format!(
                    "histogram {base:?}: +Inf bucket {last_count} != count {count}"
                ))
            }
            None => return Err(format!("histogram {base:?}: missing {count_series:?}")),
        }
    }

    Ok(PromReport {
        families: families.len(),
        series: seen_series.len(),
        samples,
    })
}

/// Maps a sample name back to its declared family, accounting for
/// histogram suffixes.
fn family_of(name: &str, families: &BTreeMap<String, String>) -> Option<String> {
    if families.contains_key(name) {
        return Some(name.to_string());
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(family) = name.strip_suffix(suffix) {
            if families.get(family).map(String::as_str) == Some("histogram") {
                return Some(family.to_string());
            }
        }
    }
    None
}

/// The value of label `key` in a `name{…}` series, if present.
fn extract_label(series: &str, key: &str) -> Option<String> {
    let (_, labels) = series.split_once('{')?;
    let labels = labels.trim_end_matches('}');
    for part in labels.split(',') {
        let (k, v) = part.split_once('=')?;
        if k == key {
            return Some(v.trim_matches('"').to_string());
        }
    }
    None
}

/// The series identity with label `key` removed (bucket-chain key).
fn strip_label(series: &str, key: &str) -> String {
    let Some((name, labels)) = series.split_once('{') else {
        return series.to_string();
    };
    let labels = labels.trim_end_matches('}');
    let kept: Vec<&str> = labels
        .split(',')
        .filter(|part| part.split_once('=').map(|(k, _)| k) != Some(key))
        .collect();
    if kept.is_empty() {
        name.to_string()
    } else {
        format!("{name}{{{}}}", kept.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn sample_snapshot() -> MetricsSnapshot {
        let registry = MetricsRegistry::new();
        registry.counter("req_total").add(7);
        registry
            .counter(&crate::labeled("req_node_total", "node", 0))
            .add(4);
        registry
            .counter(&crate::labeled("req_node_total", "node", 1))
            .add(3);
        registry.gauge("live_trees").set(42);
        let lat = registry.histogram("lat_ms");
        for v in [0, 1, 4, 6, 6, 48] {
            lat.record(v);
        }
        registry.snapshot()
    }

    #[test]
    fn prometheus_output_validates() {
        let text = to_prometheus(&sample_snapshot());
        let report = validate_prometheus(&text).unwrap();
        assert_eq!(report.families, 4);
        assert!(text.contains("# TYPE req_node_total counter"));
        assert!(text.contains("req_node_total{node=\"1\"} 3"));
        assert!(text.contains("lat_ms_bucket{le=\"+Inf\"} 6"));
        assert!(text.contains("lat_ms_count 6"));
        // Exactly one TYPE line per family.
        assert_eq!(text.matches("# TYPE req_node_total").count(), 1);
    }

    #[test]
    fn validator_rejects_duplicates_and_broken_chains() {
        let dup = "# TYPE a counter\na 1\na 2\n";
        assert!(validate_prometheus(dup).unwrap_err().contains("duplicate"));
        let untyped = "a 1\n";
        assert!(validate_prometheus(untyped)
            .unwrap_err()
            .contains("no TYPE"));
        let negative = "# TYPE a counter\na -1\n";
        assert!(validate_prometheus(negative)
            .unwrap_err()
            .contains("non-negative"));
        let nonmono =
            "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n";
        assert!(validate_prometheus(nonmono)
            .unwrap_err()
            .contains("monotone"));
        let miscount =
            "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n";
        assert!(validate_prometheus(miscount).unwrap_err().contains("!="));
    }

    #[test]
    fn json_is_stable_and_carries_percentiles() {
        let snapshot = sample_snapshot();
        let json = to_json(&snapshot);
        assert_eq!(json, to_json(&snapshot), "byte-stable");
        assert!(json.contains("\"req_total\":7"));
        assert!(json.contains("\"live_trees\":42"));
        assert!(json.contains("\"count\":6"));
        assert!(json.contains("\"max\":48"));
        assert!(json.contains("[6,2]"));
    }
}
