//! Parsers and writers for tree-structured text formats.
//!
//! Two formats are supported:
//!
//! * **Bracket notation** — the format used by most tree-edit-distance
//!   tooling: `{label{child}{child}}`. Labels may contain any characters;
//!   `{`, `}` and `\` must be escaped with a backslash.
//! * **XML-ish documents** — a deliberately small subset of XML sufficient
//!   for the paper's motivating workloads (Figure 1): elements, text nodes,
//!   self-closing tags. Attributes, comments, CDATA, processing
//!   instructions and doctypes are skipped; entities are not expanded.

use crate::error::ParseError;
use crate::label::LabelInterner;
use crate::tree::{NodeId, Tree, TreeBuilder};

/// Parses bracket notation (`{a{b}{c}}`) into a [`Tree`], interning labels.
///
/// ```
/// use tsj_tree::{parse_bracket, LabelInterner};
/// let mut labels = LabelInterner::new();
/// let tree = parse_bracket("{a{b{d}}{c}}", &mut labels).unwrap();
/// assert_eq!(tree.len(), 4);
/// ```
pub fn parse_bracket(input: &str, labels: &mut LabelInterner) -> Result<Tree, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    if pos >= bytes.len() || bytes[pos] != b'{' {
        return Err(ParseError::new(pos, "expected '{'"));
    }
    pos += 1;
    let label_text = parse_label_text(input, bytes, &mut pos)?;
    let mut builder = TreeBuilder::new();
    let root = builder.root(labels.intern(&label_text));
    parse_children(input, bytes, &mut pos, labels, &mut builder, root)?;
    expect_close(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(ParseError::new(pos, "trailing input after tree"));
    }
    Ok(builder.build())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn parse_children(
    input: &str,
    bytes: &[u8],
    pos: &mut usize,
    labels: &mut LabelInterner,
    builder: &mut TreeBuilder,
    parent: NodeId,
) -> Result<(), ParseError> {
    loop {
        skip_ws(bytes, pos);
        if *pos >= bytes.len() || bytes[*pos] != b'{' {
            return Ok(());
        }
        *pos += 1;
        let label_text = parse_label_text(input, bytes, pos)?;
        let label = labels.intern(&label_text);
        let id = builder.child(parent, label);
        parse_children(input, bytes, pos, labels, builder, id)?;
        expect_close(bytes, pos)?;
    }
}

fn expect_close(bytes: &[u8], pos: &mut usize) -> Result<(), ParseError> {
    skip_ws(bytes, pos);
    if *pos >= bytes.len() || bytes[*pos] != b'}' {
        return Err(ParseError::new(*pos, "expected '}'"));
    }
    *pos += 1;
    Ok(())
}

/// Reads label text up to an unescaped `{` or `}`.
fn parse_label_text(input: &str, bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    let mut label = String::new();
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'{' | b'}' => break,
            b'\\' => {
                // Escape sequence: take the next character literally.
                *pos += 1;
                let c = input[*pos..]
                    .chars()
                    .next()
                    .ok_or_else(|| ParseError::new(*pos, "dangling escape"))?;
                label.push(c);
                *pos += c.len_utf8();
            }
            _ => {
                // Advance over a full UTF-8 character.
                let c = input[*pos..]
                    .chars()
                    .next()
                    .expect("pos is always on a char boundary");
                label.push(c);
                *pos += c.len_utf8();
            }
        }
    }
    Ok(label)
}

/// Serializes a tree to bracket notation, escaping `{`, `}` and `\`.
pub fn to_bracket(tree: &Tree, labels: &LabelInterner) -> String {
    let mut out = String::with_capacity(tree.len() * 4);
    write_bracket(tree, tree.root(), labels, &mut out);
    out
}

fn write_bracket(tree: &Tree, node: NodeId, labels: &LabelInterner, out: &mut String) {
    out.push('{');
    let text = labels.resolve(tree.label(node)).unwrap_or("");
    for c in text.chars() {
        if matches!(c, '{' | '}' | '\\') {
            out.push('\\');
        }
        out.push(c);
    }
    for &child in tree.children(node) {
        write_bracket(tree, child, labels, out);
    }
    out.push('}');
}

/// Parses a small XML-like document into a [`Tree`].
///
/// Element tags and trimmed text runs become labeled nodes, matching the
/// paper's Figure 1 ("tags and text are considered as labels"). The
/// document must have a single root element.
///
/// ```
/// use tsj_tree::{parse_xmlish, LabelInterner};
/// let mut labels = LabelInterner::new();
/// let doc = "<html><title>Test page</title><body><p>hi</p></body></html>";
/// let tree = parse_xmlish(doc, &mut labels).unwrap();
/// assert_eq!(tree.len(), 6);
/// ```
pub fn parse_xmlish(input: &str, labels: &mut LabelInterner) -> Result<Tree, ParseError> {
    let mut builder = TreeBuilder::new();
    // Stack of currently-open elements.
    let mut stack: Vec<(NodeId, String)> = Vec::new();
    let mut root_done = false;
    let bytes = input.as_bytes();
    let mut pos = 0usize;

    while pos < bytes.len() {
        if bytes[pos] == b'<' {
            if input[pos..].starts_with("<!--") {
                pos = find_or_err(input, pos, "-->")? + 3;
            } else if input[pos..].starts_with("<?") {
                pos = find_or_err(input, pos, "?>")? + 2;
            } else if input[pos..].starts_with("<!") {
                pos = find_or_err(input, pos, ">")? + 1;
            } else if input[pos..].starts_with("</") {
                let end = find_or_err(input, pos, ">")?;
                let name = input[pos + 2..end].trim();
                let (_, open_name) = stack
                    .pop()
                    .ok_or_else(|| ParseError::new(pos, "close tag without open tag"))?;
                if open_name != name {
                    return Err(ParseError::new(
                        pos,
                        format!("mismatched close tag: expected </{open_name}>, got </{name}>"),
                    ));
                }
                pos = end + 1;
            } else {
                let end = find_or_err(input, pos, ">")?;
                let self_closing = input[..end].ends_with('/');
                let inner_end = if self_closing { end - 1 } else { end };
                let body = input[pos + 1..inner_end].trim();
                // Tag name = text up to the first whitespace (attrs ignored).
                let name = body.split_whitespace().next().unwrap_or("");
                if name.is_empty() {
                    return Err(ParseError::new(pos, "empty tag name"));
                }
                let label = labels.intern(name);
                let id = match stack.last() {
                    Some(&(parent, _)) => builder.child(parent, label),
                    None => {
                        if root_done {
                            return Err(ParseError::new(pos, "multiple root elements"));
                        }
                        root_done = true;
                        builder.root(label)
                    }
                };
                if !self_closing {
                    stack.push((id, name.to_string()));
                }
                pos = end + 1;
            }
        } else {
            let end = input[pos..]
                .find('<')
                .map(|off| pos + off)
                .unwrap_or(bytes.len());
            let text = input[pos..end].trim();
            if !text.is_empty() {
                let label = labels.intern(text);
                match stack.last() {
                    Some(&(parent, _)) => {
                        builder.child(parent, label);
                    }
                    None => {
                        return Err(ParseError::new(pos, "text outside of root element"));
                    }
                }
            }
            pos = end;
        }
    }

    if let Some((_, name)) = stack.pop() {
        return Err(ParseError::new(pos, format!("unclosed element <{name}>")));
    }
    if !root_done {
        return Err(ParseError::new(0, "no root element"));
    }
    Ok(builder.build())
}

fn find_or_err(input: &str, from: usize, pat: &str) -> Result<usize, ParseError> {
    input[from..]
        .find(pat)
        .map(|off| from + off)
        .ok_or_else(|| ParseError::new(from, format!("expected '{pat}'")))
}

/// Renders a tree as an indented outline, resolving labels when possible.
/// Intended for debugging and examples, not round-tripping.
pub fn to_outline(tree: &Tree, labels: &LabelInterner) -> String {
    let mut out = String::new();
    let depths = tree.depths();
    for node in tree.preorder() {
        for _ in 0..depths[node.index()] {
            out.push_str("  ");
        }
        match labels.resolve(tree.label(node)) {
            Some(text) => out.push_str(text),
            None => out.push_str(&format!("{}", tree.label(node))),
        }
        out.push('\n');
    }
    out
}

/// Convenience: the label sequence of a bracket expression without building
/// a tree (used by tests).
pub fn bracket_labels(input: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    let mut in_label = false;
    let mut chars = input.chars();
    while let Some(c) = chars.next() {
        match c {
            '{' => {
                if in_label && !current.is_empty() {
                    out.push(std::mem::take(&mut current));
                }
                in_label = true;
                current.clear();
            }
            '}' => {
                if in_label && !current.is_empty() {
                    out.push(std::mem::take(&mut current));
                }
                in_label = false;
            }
            '\\' => {
                if let Some(next) = chars.next() {
                    current.push(next);
                }
            }
            _ => {
                if in_label {
                    current.push(c);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_bracket() {
        let mut labels = LabelInterner::new();
        let tree = parse_bracket("{a{b}{c{d}}}", &mut labels).unwrap();
        assert_eq!(tree.len(), 4);
        tree.validate().unwrap();
        let root = tree.root();
        assert_eq!(labels.resolve(tree.label(root)), Some("a"));
        assert_eq!(tree.children(root).len(), 2);
        let c = tree.children(root)[1];
        assert_eq!(labels.resolve(tree.label(c)), Some("c"));
        assert_eq!(tree.children(c).len(), 1);
    }

    #[test]
    fn bracket_round_trip() {
        let mut labels = LabelInterner::new();
        let text = "{root{left{ll}{lr}}{right}}";
        let tree = parse_bracket(text, &mut labels).unwrap();
        assert_eq!(to_bracket(&tree, &labels), text);
    }

    #[test]
    fn bracket_escapes() {
        let mut labels = LabelInterner::new();
        let tree = parse_bracket(r"{we\{ird\\{child}}", &mut labels).unwrap();
        assert_eq!(tree.len(), 2);
        assert_eq!(labels.resolve(tree.label(tree.root())), Some(r"we{ird\"));
        let rendered = to_bracket(&tree, &labels);
        let mut labels2 = LabelInterner::new();
        let reparsed = parse_bracket(&rendered, &mut labels2).unwrap();
        assert_eq!(reparsed.len(), 2);
        assert_eq!(
            labels2.resolve(reparsed.label(reparsed.root())),
            Some(r"we{ird\")
        );
    }

    #[test]
    fn bracket_whitespace_tolerated() {
        let mut labels = LabelInterner::new();
        let tree = parse_bracket("  {a {b} {c} }  ", &mut labels).unwrap();
        assert_eq!(tree.len(), 3);
    }

    #[test]
    fn bracket_errors() {
        let mut labels = LabelInterner::new();
        assert!(parse_bracket("", &mut labels).is_err());
        assert!(parse_bracket("{a", &mut labels).is_err());
        assert!(parse_bracket("{a}}", &mut labels).is_err());
        assert!(parse_bracket("{a}{b}", &mut labels).is_err());
        assert!(parse_bracket("a{b}", &mut labels).is_err());
    }

    #[test]
    fn parse_figure1_html() {
        let mut labels = LabelInterner::new();
        let doc = r#"
            <html>
              <title>Test page</title>
              <body>
                <p>This is a <dfn>dfn</dfn> tag example.</p>
              </body>
            </html>"#;
        let tree = parse_xmlish(doc, &mut labels).unwrap();
        // Figure 1: html, title, "Test page", body, p, "This is a", dfn,
        // dfn(text), "tag example." = 9 nodes.
        assert_eq!(tree.len(), 9);
        tree.validate().unwrap();
        assert_eq!(labels.resolve(tree.label(tree.root())), Some("html"));
    }

    #[test]
    fn xml_self_closing_and_attrs() {
        let mut labels = LabelInterner::new();
        let tree = parse_xmlish(r#"<a x="1"><b/><c key="v">text</c></a>"#, &mut labels).unwrap();
        assert_eq!(tree.len(), 4);
        let root = tree.root();
        assert_eq!(tree.children(root).len(), 2);
    }

    #[test]
    fn xml_skips_comments_and_decls() {
        let mut labels = LabelInterner::new();
        let tree = parse_xmlish(
            "<?xml version=\"1.0\"?><!DOCTYPE a><a><!-- note --><b/></a>",
            &mut labels,
        )
        .unwrap();
        assert_eq!(tree.len(), 2);
    }

    #[test]
    fn xml_errors() {
        let mut labels = LabelInterner::new();
        assert!(parse_xmlish("<a><b></a>", &mut labels).is_err());
        assert!(parse_xmlish("<a></a><b></b>", &mut labels).is_err());
        assert!(parse_xmlish("text only", &mut labels).is_err());
        assert!(parse_xmlish("<a>", &mut labels).is_err());
        assert!(parse_xmlish("", &mut labels).is_err());
    }

    #[test]
    fn outline_renders_every_node() {
        let mut labels = LabelInterner::new();
        let tree = parse_bracket("{a{b}{c}}", &mut labels).unwrap();
        let outline = to_outline(&tree, &labels);
        assert_eq!(outline.lines().count(), 3);
        assert!(outline.contains("a\n"));
    }

    #[test]
    fn bracket_labels_helper() {
        assert_eq!(bracket_labels("{a{b}{c}}"), vec!["a", "b", "c"]);
    }
}
