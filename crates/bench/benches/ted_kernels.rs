//! Micro-benchmarks of the distance kernels: Zhang–Shasha left/right
//! decompositions, the RTED-inspired dynamic choice, and banded vs full
//! string edit distance. These are the per-pair costs that dominate the
//! verification bars of Figures 10/12/14.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use tsj_datagen::{grow_tree, ShapeProfile};
use tsj_ted::{
    sed, sed_with, sed_within, sed_within_with, tree_distance, CostModel, SedScratch, Strategy,
    TedEngine, TedTree, TedWorkspace,
};
use tsj_tree::Tree;

fn tree_of_shape(seed: u64, size: usize, deepen: f64) -> Tree {
    let profile = ShapeProfile {
        max_fanout: 4,
        max_depth: 40,
        deepen_prob: deepen,
    };
    grow_tree(&mut StdRng::seed_from_u64(seed), size, 12, &profile)
}

fn bench_ted_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ted/size");
    for size in [20usize, 40, 80, 160] {
        let a = tree_of_shape(1, size, 0.3);
        let b = tree_of_shape(2, size, 0.3);
        let (ta, tb) = (TedTree::new(&a), TedTree::new(&b));
        let mut ws = TedWorkspace::new();
        group.bench_with_input(BenchmarkId::new("zhang_shasha", size), &size, |bench, _| {
            bench.iter(|| {
                black_box(tree_distance(
                    black_box(&ta),
                    black_box(&tb),
                    &CostModel::UNIT,
                    &mut ws,
                ))
            })
        });
    }
    group.finish();
}

fn bench_ted_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("ted/strategy");
    // Deep right-leaning combs penalize the left decomposition; the
    // dynamic strategy should track the better side.
    let a = tree_of_shape(3, 80, 0.8);
    let b = tree_of_shape(4, 80, 0.8);
    for (name, strategy) in [
        ("left", Strategy::Left),
        ("right", Strategy::Right),
        ("dynamic", Strategy::Dynamic),
    ] {
        group.bench_function(name, |bench| {
            let mut engine = TedEngine::new(CostModel::UNIT, strategy);
            bench.iter(|| black_box(engine.distance_trees(black_box(&a), black_box(&b))))
        });
    }
    group.finish();
}

fn bench_sed(c: &mut Criterion) {
    let mut group = c.benchmark_group("sed");
    let a = tree_of_shape(5, 120, 0.2).preorder_labels();
    let b = tree_of_shape(6, 120, 0.2).preorder_labels();
    group.bench_function("full", |bench| {
        bench.iter(|| black_box(sed(black_box(&a), black_box(&b))))
    });
    // `_scratch` rows reuse one set of DP row buffers across iterations —
    // the join's steady state, isolating the kernel from the allocator.
    let mut scratch = SedScratch::new();
    group.bench_function("full_scratch", |bench| {
        bench.iter(|| black_box(sed_with(black_box(&a), black_box(&b), &mut scratch)))
    });
    for tau in [1u32, 3, 5] {
        group.bench_with_input(BenchmarkId::new("banded", tau), &tau, |bench, &tau| {
            bench.iter(|| black_box(sed_within(black_box(&a), black_box(&b), tau)))
        });
        let mut scratch = SedScratch::new();
        group.bench_with_input(
            BenchmarkId::new("banded_scratch", tau),
            &tau,
            |bench, &tau| {
                bench.iter(|| {
                    black_box(sed_within_with(
                        black_box(&a),
                        black_box(&b),
                        tau,
                        &mut scratch,
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ted_sizes, bench_ted_strategies, bench_sed);
criterion_main!(benches);
