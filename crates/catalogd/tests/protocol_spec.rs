//! `docs/PROTOCOL.md` lockstep: every example frame documented in the
//! spec must encode byte-for-byte to the documented bytes, and the
//! documented bytes must decode back to the documented frame. Change
//! the codec and this test fails until the spec is updated (regenerate
//! the examples with `cargo run -p tsj-catalogd --example dump_frames`).

use tsj_catalogd::wire::{ErrorCode, Frame, ProbeBatch, WireTree};

const SPEC: &str = include_str!("../../../docs/PROTOCOL.md");

/// Extracts the `bytes(Name) = aa bb ...` line for `name` from the spec.
fn documented_bytes(name: &str) -> Vec<u8> {
    let marker = format!("bytes({name}) = ");
    let line = SPEC
        .lines()
        .find_map(|l| l.trim().strip_prefix(&marker))
        .unwrap_or_else(|| panic!("docs/PROTOCOL.md documents no example for {name}"));
    line.split_whitespace()
        .map(|h| u8::from_str_radix(h, 16).unwrap_or_else(|_| panic!("bad hex {h:?} for {name}")))
        .collect()
}

/// The canonical frames the spec's examples describe, in prose.
fn documented_frames() -> Vec<(&'static str, Frame)> {
    vec![
        (
            "Hello",
            Frame::Hello {
                version: 1,
                snapshot_hash: 0x53925FE9FE30C941,
            },
        ),
        ("Health", Frame::Health),
        (
            "HealthAck",
            Frame::HealthAck {
                node: 1,
                owned_shards: 4,
            },
        ),
        ("ProbeAck", Frame::ProbeAck { count: 2 }),
        (
            "JoinShard",
            Frame::JoinShard {
                probe: 0,
                shard: 3,
                tau: 2,
                classes: vec![60, 61],
            },
        ),
        ("Shutdown", Frame::Shutdown),
        ("ShutdownAck", Frame::ShutdownAck),
        (
            "Error",
            Frame::Error {
                code: ErrorCode::TauExceedsFrozen,
                message: "tau 9 > frozen 3".into(),
            },
        ),
        (
            "ProbeBatch",
            Frame::ProbeBatch(ProbeBatch {
                labels: vec!["item".into(), "kbd".into()],
                trees: vec![WireTree {
                    nodes: vec![(0, 0), (1, 1)],
                }],
            }),
        ),
    ]
}

#[test]
fn documented_examples_encode_byte_for_byte() {
    for (name, frame) in documented_frames() {
        let documented = documented_bytes(name);
        let encoded = frame.encode();
        assert_eq!(
            encoded, documented,
            "{name}: codec output diverged from docs/PROTOCOL.md — \
             update the spec's example (see dump_frames) or fix the codec"
        );
    }
}

#[test]
fn documented_examples_decode_back() {
    for (name, frame) in documented_frames() {
        let documented = documented_bytes(name);
        let (decoded, consumed) = Frame::decode(&documented)
            .unwrap_or_else(|e| panic!("{name}: documented bytes no longer decode: {e}"));
        assert_eq!(consumed, documented.len(), "{name}: trailing bytes");
        assert_eq!(
            decoded, frame,
            "{name}: decoded frame diverged from the spec"
        );
    }
}

/// The spec's headline constants must match the build.
#[test]
fn spec_constants_match_the_build() {
    assert!(
        SPEC.contains("(version 1)"),
        "spec version header vs PROTOCOL_VERSION"
    );
    assert_eq!(tsj_catalogd::wire::PROTOCOL_VERSION, 1);
    assert!(SPEC.contains("16 MiB"), "spec documents the frame cap");
    assert_eq!(tsj_catalogd::wire::MAX_FRAME_LEN, 16 * 1024 * 1024);
}
