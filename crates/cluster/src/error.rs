//! The cluster-layer error type.
//!
//! Everything that can go wrong in the serving layer is a typed,
//! printable value: snapshot decode failures surface the underlying
//! [`CatalogError`] (so a corrupted shard section names its checksum
//! mismatch), topology mistakes are caught at construction, and a query
//! threshold above the frozen one is rejected exactly like
//! `Catalog::join` rejects it. The router never panics on a fault — a
//! node that cannot serve reports one of these and the router routes
//! around it.

use tsj_catalog::CatalogError;

/// Any error the cluster layer can produce.
#[derive(Debug)]
pub enum ClusterError {
    /// A snapshot failed to parse or a section failed to decode —
    /// including checksum mismatches from corrupted shard sections. A
    /// node whose restore hits this is marked down with the error
    /// attached ([`crate::Cluster::node_error`]).
    Snapshot(CatalogError),
    /// The requested topology cannot be built (zero nodes, replica list
    /// inconsistencies, snapshot/node-count mismatch).
    Topology {
        /// What was wrong.
        context: String,
    },
    /// The query threshold exceeds the one the snapshot was frozen for.
    TauExceedsFrozen {
        /// Requested per-query threshold.
        query: u32,
        /// Threshold the snapshot was frozen for.
        frozen: u32,
    },
    /// A request reached a node for a shard it does not own — a routing
    /// bug surfaced as a typed error rather than a panic.
    ShardNotOwned {
        /// The node that received the request.
        node: usize,
        /// The shard it does not hold.
        shard: u32,
    },
    /// Recovery was asked to restore a shard but no intact copy of its
    /// section survives on any reachable snapshot.
    Unrecoverable {
        /// The shard with no intact section left.
        shard: u32,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Snapshot(e) => write!(f, "snapshot error: {e}"),
            ClusterError::Topology { context } => write!(f, "invalid topology: {context}"),
            ClusterError::TauExceedsFrozen { query, frozen } => write!(
                f,
                "query threshold {query} exceeds the frozen threshold {frozen}"
            ),
            ClusterError::ShardNotOwned { node, shard } => {
                write!(f, "node {node} does not own shard {shard}")
            }
            ClusterError::Unrecoverable { shard } => {
                write!(f, "no intact snapshot section left for shard {shard}")
            }
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CatalogError> for ClusterError {
    fn from(e: CatalogError) -> ClusterError {
        ClusterError::Snapshot(e)
    }
}
