//! The cluster's correctness contract: with zero faults, a scatter/gather
//! [`Cluster::join`] is **bit-identical** to single-node `Catalog::join` —
//! same pairs, same candidate counts, same filter-stage counters — across
//! every (nodes × replication × shards × τ) combination; with replication,
//! losing a node changes nothing; without it, the join degrades to a typed
//! coverage report whose served pairs are exactly the surviving shards'
//! contribution.

use partsj::PartSjConfig;
use std::collections::BTreeMap;
use tsj_catalog::Catalog;
use tsj_cluster::{Cluster, ClusterConfig, ClusterError, FaultPlan};
use tsj_datagen::{synthetic, SyntheticParams};
use tsj_shard::ShardConfig;
use tsj_ted::{JoinOutcome, JoinStats};
use tsj_tree::{LabelInterner, Tree};

fn collection(n: usize, avg_size: usize, seed: u64) -> Vec<Tree> {
    synthetic(
        n,
        &SyntheticParams {
            avg_size,
            ..Default::default()
        },
        seed,
    )
}

fn freeze(left: &[Tree], tau: u32, shards: usize) -> Catalog {
    Catalog::freeze(
        left.to_vec(),
        LabelInterner::new(),
        tau,
        &PartSjConfig::default(),
        &ShardConfig {
            shards,
            probe_threads: 1,
            verify_threads: 1,
            ..Default::default()
        },
    )
}

fn reference(catalog: &Catalog, probes: &[Tree], tau: u32) -> JoinOutcome {
    catalog
        .join(
            probes,
            tau,
            &PartSjConfig::default(),
            &ShardConfig {
                shards: catalog.shard_count(),
                probe_threads: 1,
                verify_threads: 1,
                ..Default::default()
            },
        )
        .unwrap()
}

/// Stage counters keyed by name, zero entries dropped — response order
/// must not matter, only the per-stage totals.
fn stages(stats: &JoinStats) -> BTreeMap<&'static str, u64> {
    stats
        .stage_counts
        .iter()
        .filter(|s| s.count > 0)
        .map(|s| (s.stage, s.count))
        .collect()
}

/// Field-by-field identity, durations excluded (JoinStats's derived
/// equality would compare wall times).
fn assert_identical(served: &tsj_cluster::ClusterJoin, reference: &JoinOutcome, label: &str) {
    assert!(
        served.is_complete(),
        "{label}: unexpectedly degraded: {:?}",
        served.degraded
    );
    assert_eq!(served.outcome.pairs, reference.pairs, "{label}: pairs");
    let (a, b) = (&served.outcome.stats, &reference.stats);
    assert_eq!(a.results, b.results, "{label}: results");
    assert_eq!(a.candidates, b.candidates, "{label}: candidates");
    assert_eq!(
        a.pairs_examined, b.pairs_examined,
        "{label}: pairs_examined"
    );
    assert_eq!(a.ted_calls, b.ted_calls, "{label}: ted_calls");
    assert_eq!(
        a.prefilter_skips, b.prefilter_skips,
        "{label}: prefilter_skips"
    );
    assert_eq!(a.early_accepts, b.early_accepts, "{label}: early_accepts");
    assert_eq!(stages(a), stages(b), "{label}: stage_counts");
}

/// The issue's headline property: zero faults → bit-identical to the
/// single-node catalog join, over nodes {1, 2, 4} × replication {1, 2} ×
/// shards {1, 2, 4, 8} × τ {0, 1, 3}.
#[test]
fn zero_fault_cluster_join_is_bit_identical_to_catalog_join() {
    let left = collection(48, 20, 311);
    // Random probes plus exact copies of catalog trees, so every τ in the
    // sweep produces real result pairs.
    let mut right = collection(32, 20, 412);
    right.extend(left.iter().step_by(6).cloned());
    for tau in [0u32, 1, 3] {
        for shards in [1usize, 2, 4, 8] {
            let catalog = freeze(&left, tau, shards);
            let expected = reference(&catalog, &right, tau);
            assert!(!expected.pairs.is_empty(), "sweep must exercise real joins");
            let bytes = catalog.to_bytes();
            for nodes in [1usize, 2, 4] {
                for replication in [1usize, 2] {
                    let label = format!(
                        "tau {tau}, shards {shards}, nodes {nodes}, replication {replication}"
                    );
                    let mut cluster = Cluster::from_snapshot(
                        bytes.clone(),
                        &ClusterConfig::new(nodes, replication),
                    )
                    .unwrap_or_else(|e| panic!("{label}: snapshot assembly failed: {e}"));
                    let served = cluster
                        .join(&right, tau, &PartSjConfig::default())
                        .unwrap_or_else(|e| panic!("{label}: join errored: {e}"));
                    assert_identical(&served, &expected, &label);
                    // Every planned request was answered, none retried.
                    assert_eq!(
                        served.telemetry.served, served.telemetry.requests,
                        "{label}"
                    );
                    assert_eq!(served.telemetry.faults, 0, "{label}");
                }
            }
        }
    }
}

/// With R = 2, losing any single node — before the join or between joins —
/// still yields the bit-identical result: every shard keeps a live
/// replica, the router fails over, nothing degrades.
#[test]
fn single_node_loss_with_replication_two_is_bit_identical() {
    let left = collection(48, 20, 311);
    let mut right = collection(24, 20, 413);
    right.extend(left.iter().step_by(5).cloned());
    let tau = 1;
    let catalog = freeze(&left, tau, 4);
    let expected = reference(&catalog, &right, tau);
    let bytes = catalog.to_bytes();
    for dead in 0..4usize {
        // Killed mid-workload: a healthy join first, then the loss.
        let mut cluster = Cluster::from_snapshot(bytes.clone(), &ClusterConfig::new(4, 2)).unwrap();
        let before = cluster.join(&right, tau, &PartSjConfig::default()).unwrap();
        assert_identical(&before, &expected, &format!("healthy, pre-kill {dead}"));
        cluster.kill_node(dead);
        assert!(cluster.lost_shards().is_empty(), "R = 2 survives one loss");
        let after = cluster.join(&right, tau, &PartSjConfig::default()).unwrap();
        assert_identical(&after, &expected, &format!("node {dead} killed"));

        // Down from the start (static fault plan): same story.
        let mut cfg = ClusterConfig::new(4, 2);
        cfg.faults = FaultPlan {
            down_nodes: vec![dead],
            ..FaultPlan::none()
        };
        let mut cluster = Cluster::from_snapshot(bytes.clone(), &cfg).unwrap();
        let served = cluster.join(&right, tau, &PartSjConfig::default()).unwrap();
        assert_identical(&served, &expected, &format!("node {dead} down at start"));
    }
}

/// With R = 1, losing a node is unrecoverable: the join must return
/// exactly the surviving shards' pairs plus a [`Degraded`] report naming
/// precisely the lost shard and the `(probe, size class)` combinations it
/// owned — never a silent partial answer.
#[test]
fn unrecoverable_loss_degrades_to_exactly_the_surviving_shards() {
    let left = collection(48, 20, 311);
    let mut right = collection(24, 20, 413);
    right.extend(left.iter().step_by(5).cloned());
    let tau = 1;
    let shards = 4usize;
    let catalog = freeze(&left, tau, shards);
    let expected = reference(&catalog, &right, tau);
    let owner = |size: u32| catalog.index().shard_of_size(size) as u32;
    let bytes = catalog.to_bytes();
    for dead in 0..4usize {
        // R = 1 over 4 nodes and 4 shards: shard s lives only on node s.
        let mut cluster = Cluster::from_snapshot(bytes.clone(), &ClusterConfig::new(4, 1)).unwrap();
        cluster.kill_node(dead);
        let lost = dead as u32;
        assert_eq!(cluster.lost_shards(), vec![lost]);

        let served = cluster.join(&right, tau, &PartSjConfig::default()).unwrap();
        let degraded = served.degraded.as_ref().expect("loss must be reported");
        assert_eq!(degraded.lost_shards, vec![lost]);

        // Unserved coverage: per probe, exactly its window classes owned
        // by the lost shard, sorted and deduplicated.
        let mut unserved: Vec<(u32, u32)> = Vec::new();
        for (j, tree) in right.iter().enumerate() {
            let (lo, hi) = partsj::window_of(tree.len() as u32, tau);
            for class in lo..=hi {
                if owner(class) == lost {
                    unserved.push((j as u32, class));
                }
            }
        }
        unserved.sort_unstable();
        unserved.dedup();
        assert_eq!(degraded.unserved, unserved, "node {dead}: coverage report");
        assert!(!unserved.is_empty(), "sweep must exercise real losses");

        // Served pairs: exactly the reference pairs whose left tree's
        // size class survived — nothing extra, nothing silently dropped.
        let surviving: Vec<(u32, u32)> = expected
            .pairs
            .iter()
            .copied()
            .filter(|&(i, _)| owner(left[i as usize].len() as u32) != lost)
            .collect();
        assert_eq!(served.outcome.pairs, surviving, "node {dead}: served pairs");
    }
}

/// After an unrecoverable loss, [`Cluster::recover`] re-replicates the
/// dead node's shard slots from the retained snapshot onto survivors and
/// full bit-identical service resumes.
#[test]
fn recover_reassigns_lost_shards_and_restores_identical_service() {
    let left = collection(48, 20, 311);
    let mut right = collection(24, 20, 413);
    right.extend(left.iter().step_by(5).cloned());
    let tau = 1;
    let catalog = freeze(&left, tau, 8);
    let expected = reference(&catalog, &right, tau);
    let mut cluster =
        Cluster::from_snapshot(catalog.to_bytes(), &ClusterConfig::new(4, 2)).unwrap();

    // Two adjacent losses defeat R = 2 for the shards they co-own.
    cluster.kill_node(0);
    cluster.kill_node(1);
    assert!(!cluster.lost_shards().is_empty());
    let degraded = cluster.join(&right, tau, &PartSjConfig::default()).unwrap();
    assert!(!degraded.is_complete());

    let moved = cluster.recover().unwrap();
    assert!(moved > 0, "recovery must move shard slots");
    assert!(cluster.lost_shards().is_empty());
    let healed = cluster.join(&right, tau, &PartSjConfig::default()).unwrap();
    assert_identical(&healed, &expected, "after recover()");
}

/// A query threshold above the frozen one is a typed error, not a wrong
/// (under-filtered) answer.
#[test]
fn tau_above_frozen_is_a_typed_error() {
    let left = collection(12, 14, 311);
    let catalog = freeze(&left, 1, 2);
    let mut cluster =
        Cluster::from_snapshot(catalog.to_bytes(), &ClusterConfig::new(2, 1)).unwrap();
    match cluster.join(&left, 3, &PartSjConfig::default()) {
        Err(ClusterError::TauExceedsFrozen {
            query: 3,
            frozen: 1,
        }) => {}
        other => panic!("expected TauExceedsFrozen, got {other:?}"),
    }
}
