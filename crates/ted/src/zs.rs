//! The Zhang–Shasha tree edit distance dynamic program.
//!
//! This is the classic O(n²)-space algorithm ("Simple fast algorithms for
//! the editing distance between trees", SIAM J. Comput. 1989, reference
//! \[29] of the paper): for every pair of keyroots, a forest-distance matrix
//! is filled; tree distances of nested relevant subtrees are memoized in a
//! full `n₁ × n₂` table. Worst-case time is O(n₁²·n₂²) but for realistic
//! shapes it behaves like the O(n³) algorithms the paper builds on.
//!
//! Matrices live in a reusable [`TedWorkspace`] so joins that verify
//! millions of candidate pairs do not allocate per pair (workhorse-buffer
//! pattern from the performance guide).

use crate::cost::CostModel;
use crate::ted_tree::TedTree;

/// Reusable scratch matrices for [`tree_distance`].
///
/// Create once per thread and pass to every distance computation.
#[derive(Debug, Default)]
pub struct TedWorkspace {
    /// Tree-distance table, `(n1+1) × (n2+1)`, row-major.
    td: Vec<u32>,
    /// Forest-distance table for the current keyroot pair.
    fd: Vec<u32>,
}

impl TedWorkspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Self::default()
    }
}

#[inline]
fn min3(a: u32, b: u32, c: u32) -> u32 {
    a.min(b).min(c)
}

/// Computes the exact tree edit distance between two preprocessed trees.
///
/// Both trees must be preprocessed the same way (both [`TedTree::new`] or
/// both [`TedTree::mirrored`]); mixing decompositions silently computes the
/// distance between one tree and the mirror of the other.
pub fn tree_distance(a: &TedTree, b: &TedTree, costs: &CostModel, ws: &mut TedWorkspace) -> u32 {
    let n1 = a.len();
    let n2 = b.len();
    let td_stride = n2 + 1;
    ws.td.clear();
    ws.td.resize((n1 + 1) * td_stride, 0);
    // Forest matrix is at most (n1+1) x (n2+1) for the root keyroot pair.
    ws.fd.clear();
    ws.fd.resize((n1 + 1) * (n2 + 1), 0);

    for &k1 in a.keyroots() {
        for &k2 in b.keyroots() {
            forest_distance(a, b, k1, k2, costs, &mut ws.fd, &mut ws.td, td_stride);
        }
    }
    ws.td[n1 * td_stride + n2]
}

/// Fills the forest-distance matrix for keyroot pair `(i, j)`, recording
/// tree distances for all node pairs whose relevant forests are prefixes.
#[allow(clippy::too_many_arguments)]
fn forest_distance(
    a: &TedTree,
    b: &TedTree,
    i: usize,
    j: usize,
    costs: &CostModel,
    fd: &mut [u32],
    td: &mut [u32],
    td_stride: usize,
) {
    let l1 = a.lld(i);
    let l2 = b.lld(j);
    let m = i - l1 + 1; // number of nodes in the left relevant forest
    let n = j - l2 + 1;
    let fs = n + 1; // forest matrix stride

    fd[0] = 0;
    for x in 1..=m {
        fd[x * fs] = fd[(x - 1) * fs] + costs.delete;
    }
    for y in 1..=n {
        fd[y] = fd[y - 1] + costs.insert;
    }

    for x in 1..=m {
        let node_i = l1 + x - 1;
        let row = x * fs;
        let prev_row = row - fs;
        for y in 1..=n {
            let node_j = l2 + y - 1;
            if a.lld(node_i) == l1 && b.lld(node_j) == l2 {
                // Both prefixes are whole trees rooted at node_i / node_j.
                let rename = costs.rename(a.label(node_i), b.label(node_j));
                let d = min3(
                    fd[prev_row + y] + costs.delete,
                    fd[row + y - 1] + costs.insert,
                    fd[prev_row + y - 1] + rename,
                );
                fd[row + y] = d;
                td[node_i * td_stride + node_j] = d;
            } else {
                // Split off the complete subtrees rooted at node_i/node_j
                // and look their distance up in the memo table.
                let p = a.lld(node_i) - l1; // forest prefix before subtree(node_i)
                let q = b.lld(node_j) - l2;
                fd[row + y] = min3(
                    fd[prev_row + y] + costs.delete,
                    fd[row + y - 1] + costs.insert,
                    fd[p * fs + q] + td[node_i * td_stride + node_j],
                );
            }
        }
    }
}

/// One-shot Zhang–Shasha distance between two [`tsj_tree::Tree`]s with
/// unit costs. Prefer [`crate::TedEngine`] when computing many distances.
pub fn zhang_shasha(a: &tsj_tree::Tree, b: &tsj_tree::Tree) -> u32 {
    let ta = TedTree::new(a);
    let tb = TedTree::new(b);
    let mut ws = TedWorkspace::new();
    tree_distance(&ta, &tb, &CostModel::UNIT, &mut ws)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsj_tree::{parse_bracket, LabelInterner, Tree};

    fn pair(a: &str, b: &str) -> (Tree, Tree) {
        let mut labels = LabelInterner::new();
        (
            parse_bracket(a, &mut labels).unwrap(),
            parse_bracket(b, &mut labels).unwrap(),
        )
    }

    fn dist(a: &str, b: &str) -> u32 {
        let (ta, tb) = pair(a, b);
        zhang_shasha(&ta, &tb)
    }

    #[test]
    fn identical_trees_have_distance_zero() {
        assert_eq!(dist("{a{b}{c{d}}}", "{a{b}{c{d}}}"), 0);
        assert_eq!(dist("{x}", "{x}"), 0);
    }

    #[test]
    fn single_rename() {
        assert_eq!(dist("{a{b}{c}}", "{a{b}{z}}"), 1);
        assert_eq!(dist("{a}", "{b}"), 1);
    }

    #[test]
    fn single_insert_delete() {
        assert_eq!(dist("{a{b}}", "{a{b}{c}}"), 1);
        assert_eq!(dist("{a{b}{c}}", "{a{b}}"), 1);
        // Deleting an inner node splices its children upward: one op.
        assert_eq!(dist("{a{m{b}{c}}}", "{a{b}{c}}"), 1);
    }

    #[test]
    fn classic_zhang_shasha_example() {
        // The worked example from the original ZS paper:
        // d({f{d{a}{c{b}}}{e}}, {f{c{d{a}{b}}}{e}}) = 2.
        assert_eq!(dist("{f{d{a}{c{b}}}{e}}", "{f{c{d{a}{b}}}{e}}"), 2);
    }

    #[test]
    fn paper_figure3_distance_is_three() {
        // §2 of the paper: "It is easy to verify that TED(T1, T2) = 3" for
        // T1 = {1{2}{1{3}}} and T2 = {1{2{1}{3}}}.
        assert_eq!(dist("{1{2}{1{3}}}", "{1{2{1}{3}}}"), 3);
    }

    #[test]
    fn disjoint_trees_cost_everything() {
        // No shared labels: cheapest script renames min(n,m) nodes when the
        // shapes line up, plus size-difference insertions.
        assert_eq!(dist("{a}", "{b{c}{d}}"), 3); // 1 rename + 2 inserts
        assert_eq!(dist("{a{b}}", "{x{y}}"), 2);
    }

    #[test]
    fn distance_to_empty_like_leaf() {
        // Tree vs its root alone: delete every other node.
        assert_eq!(dist("{a{b{c}}{d}}", "{a}"), 3);
    }

    #[test]
    fn sibling_shift() {
        // Moving a subtree between siblings requires delete + insert.
        assert_eq!(dist("{r{a{x}}{b}}", "{r{a}{b{x}}}"), 2);
    }

    #[test]
    fn mirrored_pair_gives_same_distance() {
        let cases = [
            ("{f{d{a}{c{b}}}{e}}", "{f{c{d{a}{b}}}{e}}"),
            ("{1{2}{1{3}}}", "{1{2{1}{3}}}"),
            ("{a{b{c}{d}{e}}{f}}", "{a{f}{b{e}{d}{c}}}"),
            ("{r{a{x}}{b}}", "{r{a}{b{x}}}"),
        ];
        for (sa, sb) in cases {
            let (ta, tb) = pair(sa, sb);
            let left = {
                let (pa, pb) = (TedTree::new(&ta), TedTree::new(&tb));
                tree_distance(&pa, &pb, &CostModel::UNIT, &mut TedWorkspace::new())
            };
            let right = {
                let (pa, pb) = (TedTree::mirrored(&ta), TedTree::mirrored(&tb));
                tree_distance(&pa, &pb, &CostModel::UNIT, &mut TedWorkspace::new())
            };
            assert_eq!(
                left, right,
                "left/right decomposition disagree on {sa} vs {sb}"
            );
        }
    }

    #[test]
    fn workspace_reuse_is_sound() {
        let mut ws = TedWorkspace::new();
        let (t1, t2) = pair("{f{d{a}{c{b}}}{e}}", "{f{c{d{a}{b}}}{e}}");
        let (t3, t4) = pair("{a}", "{b{c}{d}}");
        let (p1, p2) = (TedTree::new(&t1), TedTree::new(&t2));
        let (p3, p4) = (TedTree::new(&t3), TedTree::new(&t4));
        // Interleave differently-sized computations through one workspace.
        assert_eq!(tree_distance(&p1, &p2, &CostModel::UNIT, &mut ws), 2);
        assert_eq!(tree_distance(&p3, &p4, &CostModel::UNIT, &mut ws), 3);
        assert_eq!(tree_distance(&p1, &p2, &CostModel::UNIT, &mut ws), 2);
        assert_eq!(tree_distance(&p1, &p1, &CostModel::UNIT, &mut ws), 0);
    }

    #[test]
    fn weighted_costs_respected() {
        let (ta, tb) = pair("{a{b}}", "{a{c}}");
        let costs = CostModel {
            insert: 1,
            delete: 1,
            relabel: 5,
        };
        let mut ws = TedWorkspace::new();
        let d = tree_distance(&TedTree::new(&ta), &TedTree::new(&tb), &costs, &mut ws);
        // Rename would cost 5; delete b + insert c costs 2.
        assert_eq!(d, 2);
    }
}
