//! Property-based tests for the tree substrate: parser round-trips, the
//! Knuth transform, traversal invariants and edit-operation validity on
//! randomly generated trees.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tsj_tree::{
    apply_edit, parse_bracket, to_bracket, BinaryTree, EditOp, Label, LabelInterner, NodeId, Tree,
    TreeBuilder,
};

/// Builds a random tree directly with the builder (no datagen dependency
/// here — the tree crate sits below it).
fn random_tree(seed: u64, max_size: usize) -> (Tree, LabelInterner) {
    let mut rng = StdRng::seed_from_u64(seed);
    let size = rng.gen_range(1..=max_size.max(1));
    let mut labels = LabelInterner::new();
    let names: Vec<String> = (0..6).map(|i| format!("l{i}")).collect();
    let mut builder = TreeBuilder::new();
    let root = builder.root(labels.intern(&names[rng.gen_range(0..names.len())]));
    let mut nodes = vec![root];
    for _ in 1..size {
        let parent = nodes[rng.gen_range(0..nodes.len())];
        let child = builder.child(parent, labels.intern(&names[rng.gen_range(0..names.len())]));
        nodes.push(child);
    }
    (builder.build(), labels)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Bracket serialization round-trips structurally.
    #[test]
    fn bracket_round_trip(seed in any::<u64>()) {
        let (tree, labels) = random_tree(seed, 40);
        let text = to_bracket(&tree, &labels);
        let mut labels2 = LabelInterner::new();
        let reparsed = parse_bracket(&text, &mut labels2).unwrap();
        prop_assert_eq!(reparsed.len(), tree.len());
        // Re-serializing with the new interner gives the same text.
        prop_assert_eq!(to_bracket(&reparsed, &labels2), text);
    }

    /// Knuth transform round-trips through its inverse.
    #[test]
    fn lcrs_round_trip(seed in any::<u64>()) {
        let (tree, _) = random_tree(seed, 50);
        let binary = BinaryTree::from_tree(&tree);
        prop_assert_eq!(binary.len(), tree.len());
        prop_assert!(binary.to_general().structurally_eq(&tree));
    }

    /// LC-RS structural invariants: the root has no right child; every
    /// node's binary children agree with the general structure.
    #[test]
    fn lcrs_invariants(seed in any::<u64>()) {
        let (tree, _) = random_tree(seed, 50);
        let binary = BinaryTree::from_tree(&tree);
        prop_assert!(binary.right(binary.root()).is_none());
        for node in tree.node_ids() {
            prop_assert_eq!(binary.left(node), tree.children(node).first().copied());
            let next_sibling = tree.parent(node).and_then(|p| {
                let siblings = tree.children(p);
                let pos = siblings.iter().position(|&c| c == node).unwrap();
                siblings.get(pos + 1).copied()
            });
            prop_assert_eq!(binary.right(node), next_sibling);
        }
    }

    /// Postorder numbers: children precede parents; numbers form 1..=n;
    /// the binary postorder ends at the root.
    #[test]
    fn postorder_invariants(seed in any::<u64>()) {
        let (tree, _) = random_tree(seed, 50);
        let numbers = tree.postorder_numbers();
        let mut sorted = numbers.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (1..=tree.len() as u32).collect::<Vec<_>>());
        for node in tree.node_ids() {
            for &child in tree.children(node) {
                prop_assert!(numbers[child.index()] < numbers[node.index()]);
            }
        }
        let binary = BinaryTree::from_tree(&tree);
        prop_assert_eq!(binary.post_of(binary.root()) as usize, tree.len());
    }

    /// Subtree sizes and depths are mutually consistent.
    #[test]
    fn size_and_depth_consistency(seed in any::<u64>()) {
        let (tree, _) = random_tree(seed, 50);
        let sizes = tree.subtree_sizes();
        prop_assert_eq!(sizes[tree.root().index()] as usize, tree.len());
        let depths = tree.depths();
        let max = tree.max_depth();
        prop_assert_eq!(depths.iter().copied().max().unwrap_or(0), max);
        // Total size = sum over depth-0 root of everything; every leaf has
        // subtree size 1.
        for node in tree.node_ids() {
            if tree.is_leaf(node) {
                prop_assert_eq!(sizes[node.index()], 1);
            }
        }
    }

    /// Randomly chosen valid edits keep the tree valid and change its size
    /// by exactly one (insert/delete) or zero (rename).
    #[test]
    fn edits_change_size_by_at_most_one(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (tree, _) = random_tree(seed ^ 0x1234, 30);
        let node = NodeId::from_index(rng.gen_range(0..tree.len()));
        let ops = [
            EditOp::Rename { node, label: Label::from_raw(1) },
            EditOp::Insert {
                parent: node,
                start: 0,
                count: tree.children(node).len(),
                label: Label::from_raw(2),
            },
        ];
        for op in ops {
            let edited = apply_edit(&tree, &op).unwrap();
            edited.validate().unwrap();
            let delta = edited.len() as i64 - tree.len() as i64;
            prop_assert!(delta.abs() <= 1);
        }
        if tree.len() > 1 && node != tree.root() {
            let edited = apply_edit(&tree, &EditOp::Delete { node }).unwrap();
            edited.validate().unwrap();
            prop_assert_eq!(edited.len(), tree.len() - 1);
        }
    }
}
