//! The `SET` baseline: binary branch distance join (Yang et al.).
//!
//! A *binary branch* of a binary tree is a node together with the labels
//! of its two children (`ε` when absent). A general tree contributes the
//! binary branches of its LC-RS representation, giving exactly `|T|`
//! branches. With `X1`, `X2` the branch bags of two trees,
//!
//! ```text
//! BIB(T1, T2) = |X1| + |X2| − 2·|X1 ∩ X2|     (bag intersection)
//! ```
//!
//! and Yang et al. prove `BIB(T1, T2) ≤ 5 · TED(T1, T2)` (§2, reference
//! \[27]). The SET filter therefore keeps a pair iff `BIB ≤ 5τ`. Branch
//! bags are precomputed as sorted vectors of packed `u64` twig keys so the
//! bag intersection is a linear merge.

use crate::common::filter_verify_join;
use tsj_ted::JoinOutcome;
use tsj_tree::{pack_twig, BinaryTree, Label, Tree};

/// The sorted multiset of binary branches of a binary tree.
pub fn binary_branch_bag(binary: &BinaryTree) -> Vec<u64> {
    let mut bag: Vec<u64> = binary
        .node_ids()
        .map(|node| {
            let left = binary
                .left(node)
                .map_or(Label::EPSILON, |c| binary.label(c));
            let right = binary
                .right(node)
                .map_or(Label::EPSILON, |c| binary.label(c));
            pack_twig(binary.label(node), left, right)
        })
        .collect();
    bag.sort_unstable();
    bag
}

/// Binary branch bag of a general tree (via its LC-RS representation).
pub fn tree_branch_bag(tree: &Tree) -> Vec<u64> {
    binary_branch_bag(&BinaryTree::from_tree(tree))
}

/// Binary branch distance between two pre-sorted branch bags.
pub fn bib_distance(a: &[u64], b: &[u64]) -> u64 {
    debug_assert!(a.windows(2).all(|w| w[0] <= w[1]));
    debug_assert!(b.windows(2).all(|w| w[0] <= w[1]));
    let mut i = 0;
    let mut j = 0;
    let mut common = 0u64;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                common += 1;
                i += 1;
                j += 1;
            }
        }
    }
    a.len() as u64 + b.len() as u64 - 2 * common
}

/// Evaluates the SET similarity self-join at threshold `tau`.
pub fn set_join(trees: &[Tree], tau: u32) -> JoinOutcome {
    let limit = 5 * tau as u64;
    filter_verify_join(
        trees,
        tau,
        || trees.iter().map(tree_branch_bag).collect::<Vec<_>>(),
        |bags, i, j| bib_distance(&bags[i], &bags[j]) <= limit,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsj_ted::ted;
    use tsj_tree::{parse_bracket, LabelInterner, NodeId};

    fn collection(specs: &[&str]) -> Vec<Tree> {
        let mut labels = LabelInterner::new();
        specs
            .iter()
            .map(|s| parse_bracket(s, &mut labels).unwrap())
            .collect()
    }

    /// The binary trees of the paper's Figure 3, built link-by-link (they
    /// are standalone binary trees, not LC-RS images — T1's root has a
    /// right child).
    fn figure3_binary_trees() -> (BinaryTree, BinaryTree) {
        let l = |i: u32| Label::from_raw(i);
        let n = |i: usize| Some(NodeId::from_index(i));
        // T1: root ℓ1 (idx 0) with left ℓ2 (1) and right ℓ1 (2);
        // node 2 has left ℓ3 (3).
        let t1 = BinaryTree::from_links(
            vec![l(1), l(2), l(1), l(3)],
            vec![n(1), None, n(3), None],
            vec![n(2), None, None, None],
            NodeId::from_index(0),
        );
        // T2: root ℓ1 (0) with left ℓ2 (1); node 1 has left ℓ1 (2) and
        // right ℓ3 (3).
        let t2 = BinaryTree::from_links(
            vec![l(1), l(2), l(1), l(3)],
            vec![n(1), n(2), None, None],
            vec![None, n(3), None, None],
            NodeId::from_index(0),
        );
        (t1, t2)
    }

    #[test]
    fn figure3_bib_is_six() {
        // §2: "it can be verified that BIB(T1, T2) = 6 ≤ 5·TED(T1, T2) = 15".
        let (t1, t2) = figure3_binary_trees();
        let (x1, x2) = (binary_branch_bag(&t1), binary_branch_bag(&t2));
        assert_eq!(x1.len(), 4, "a tree has |T| binary branches");
        assert_eq!(x2.len(), 4);
        assert_eq!(bib_distance(&x1, &x2), 6);
    }

    #[test]
    fn bag_respects_multiplicity() {
        // Two identical leaves under one parent yield a duplicate branch.
        let trees = collection(&["{a{b}{b}}"]);
        let bag = tree_branch_bag(&trees[0]);
        assert_eq!(bag.len(), 3);
        // LC-RS: a-left->b1, b1-right->b2. Branches: (a,b,ε), (b,ε,b), (b,ε,ε).
        let distinct: std::collections::HashSet<u64> = bag.iter().copied().collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn identical_trees_have_zero_bib() {
        let trees = collection(&["{a{b{c}}{d}}", "{a{b{c}}{d}}"]);
        let (x1, x2) = (tree_branch_bag(&trees[0]), tree_branch_bag(&trees[1]));
        assert_eq!(bib_distance(&x1, &x2), 0);
    }

    #[test]
    fn bib_bound_holds_on_fixed_cases() {
        let cases = [
            ("{a{b}{c}}", "{a{b}{c}}"),
            ("{a{b}{c}}", "{a{c}{b}}"),
            ("{f{d{a}{c{b}}}{e}}", "{f{c{d{a}{b}}}{e}}"),
            ("{1{2}{1{3}}}", "{1{2{1}{3}}}"),
            ("{r{x{y{z}}}}", "{r}"),
        ];
        for (sa, sb) in cases {
            let trees = collection(&[sa, sb]);
            let bib = bib_distance(&tree_branch_bag(&trees[0]), &tree_branch_bag(&trees[1]));
            let real = ted(&trees[0], &trees[1]) as u64;
            assert!(bib <= 5 * real, "BIB {bib} > 5·TED {real} for {sa} vs {sb}");
        }
    }

    #[test]
    fn join_verifies_candidates() {
        let trees = collection(&["{a{b}{c}}", "{a{b}{c}}", "{a{z}{c}}", "{m{n{o{p{q}}}}}"]);
        let outcome = set_join(&trees, 1);
        assert_eq!(outcome.pairs, vec![(0, 1), (0, 2), (1, 2)]);
        assert!(outcome.stats.candidates >= outcome.stats.results);
    }

    #[test]
    fn set_filter_is_weaker_at_larger_tau() {
        // The binary branch structure is τ-insensitive: at larger τ the
        // 5τ budget admits more candidates (the paper's observation about
        // SET's growing false positive rate).
        let trees = collection(&[
            "{a{b}{c}{d}}",
            "{a{b}{x}{y}}",
            "{a{p}{q}{r}}",
            "{z{b}{c}{d}}",
        ]);
        let c1 = set_join(&trees, 1).stats.candidates;
        let c3 = set_join(&trees, 3).stats.candidates;
        assert!(c3 >= c1);
    }
}
