//! CI bench-regression gate: diff a fresh bench run against a
//! checked-in baseline by median.
//!
//! ```bash
//! CRITERION_JSON_OUT=$PWD/current.jsonl cargo bench -p tsj-bench --bench verify_pipeline
//! cargo run --release -p tsj-bench --bin bench_compare -- \
//!     --baseline BENCH_pr4.json --current current.jsonl \
//!     [--tolerance 25] [--filter verify_pipeline] [--strict]
//! ```
//!
//! Prints a per-series table (baseline median, current median, drift %)
//! and a summary. By default the run is **report-only** — drift is
//! visible in CI logs but never fails the build, which keeps the
//! 1-CPU CI runner's noisy medians from flaking. With `--strict`, any
//! series slower than the tolerance (default ±25%) exits nonzero, as
//! does a series that vanished from the current run.

use std::process::ExitCode;
use tsj_bench::compare::{compare, parse_measurements};
use tsj_bench::render_table;

struct Args {
    baseline: String,
    current: String,
    tolerance: f64,
    filter: Option<String>,
    strict: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut baseline = None;
    let mut current = None;
    let mut tolerance = 25.0;
    let mut filter = None;
    let mut strict = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--baseline" => baseline = Some(value("--baseline")?),
            "--current" => current = Some(value("--current")?),
            "--tolerance" => {
                tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|_| "numeric --tolerance".to_string())?
            }
            "--filter" => filter = Some(value("--filter")?),
            "--strict" => strict = true,
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(Args {
        baseline: baseline.ok_or("--baseline <file> is required")?,
        current: current.ok_or("--current <file> is required")?,
        tolerance,
        filter,
        strict,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("bench_compare: {message}");
            eprintln!(
                "usage: bench_compare --baseline <file> --current <file> \
                 [--tolerance PCT] [--filter SUBSTR] [--strict]"
            );
            return ExitCode::from(2);
        }
    };
    let load = |path: &str| -> Result<_, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        parse_measurements(&text).map_err(|e| format!("parsing {path}: {e}"))
    };
    let (baseline, current) = match (load(&args.baseline), load(&args.current)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_compare: {e}");
            return ExitCode::from(2);
        }
    };

    let cmp = compare(&baseline, &current, args.filter.as_deref());
    let rows: Vec<Vec<String>> = cmp
        .deltas
        .iter()
        .map(|d| {
            vec![
                d.name.clone(),
                format!("{:.1}", d.baseline_ns),
                format!("{:.1}", d.current_ns),
                format!("{:+.1}%", d.delta_pct),
                if d.is_regression(args.tolerance) {
                    format!("REGRESSION (> +{:.0}%)", args.tolerance)
                } else if d.delta_pct < -args.tolerance {
                    "improved".to_string()
                } else {
                    "ok".to_string()
                },
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["series", "baseline ns", "current ns", "delta", "verdict"],
            &rows
        )
    );
    for name in &cmp.missing {
        println!("missing from current run: {name}");
    }
    for name in &cmp.added {
        println!("new series (no baseline): {name}");
    }

    let regressions = cmp.regressions(args.tolerance);
    println!(
        "{} series compared, {} regression(s) beyond ±{:.0}%, {} missing, {} new ({})",
        cmp.deltas.len(),
        regressions.len(),
        args.tolerance,
        cmp.missing.len(),
        cmp.added.len(),
        if args.strict {
            "strict: regressions fail the build"
        } else {
            "report-only"
        }
    );
    if cmp.deltas.is_empty() && cmp.added.is_empty() {
        eprintln!("bench_compare: nothing matched — wrong --filter or empty run?");
        return ExitCode::from(2);
    }
    if args.strict && (!regressions.is_empty() || !cmp.missing.is_empty()) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
