//! Left-child right-sibling (LC-RS) binary tree representation.
//!
//! Knuth's transformation (§3.1, Figure 4) maps a general rooted ordered
//! labeled tree to a binary tree over the *same node set*: each node's
//! `left` pointer goes to its leftmost child in the general tree and its
//! `right` pointer to its next sibling. Node labels are unchanged, so
//! [`NodeId`]s are shared between a [`Tree`] and its [`BinaryTree`].
//!
//! The binary tree caches its postorder numbering and subtree sizes because
//! the partitioning scheme (§3.3) and the postorder-pruning index layer
//! (§3.4) consult them constantly.

use crate::label::Label;
use crate::tree::{NodeId, Tree, TreeBuilder};

/// Which pointer of the parent leads to a node.
///
/// In the paper's edge taxonomy (§3.1), a node reached through its parent's
/// left pointer has a *right incoming edge* in the drawing of Figure 5 —
/// we avoid that easily-confused vocabulary and name edges by the parent
/// pointer used: `Side::Left` means "this node is its parent's left child".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The node is the left (first-child) successor of its parent.
    Left,
    /// The node is the right (next-sibling) successor of its parent.
    Right,
}

impl Side {
    /// The opposite side.
    pub fn flip(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }
}

/// An LC-RS binary tree, stored struct-of-arrays and indexed by [`NodeId`].
#[derive(Debug, Clone)]
pub struct BinaryTree {
    labels: Vec<Label>,
    left: Vec<Option<NodeId>>,
    right: Vec<Option<NodeId>>,
    parent: Vec<Option<(NodeId, Side)>>,
    root: NodeId,
    /// Nodes in binary postorder (left subtree, right subtree, node).
    postorder: Vec<NodeId>,
    /// 1-based postorder number per node id.
    post_of: Vec<u32>,
    /// Binary-subtree size (node + left subtree + right subtree) per id.
    subtree_size: Vec<u32>,
    /// Persistent traversal stack for cache rebuilds; empty between
    /// calls but keeps its capacity, so [`BinaryTree::rebuild_from`] is
    /// allocation-free in steady state.
    walk: Vec<(NodeId, u8)>,
}

impl BinaryTree {
    /// Builds the LC-RS representation of `tree` (Knuth's transformation).
    ///
    /// Node ids are preserved: binary node `n` is general node `n`.
    pub fn from_tree(tree: &Tree) -> BinaryTree {
        let mut binary = BinaryTree {
            labels: Vec::new(),
            left: Vec::new(),
            right: Vec::new(),
            parent: Vec::new(),
            root: tree.root(),
            postorder: Vec::new(),
            post_of: Vec::new(),
            subtree_size: Vec::new(),
            walk: Vec::new(),
        };
        binary.rebuild_from(tree);
        binary
    }

    /// Rebuilds this LC-RS representation in place for a new `tree`,
    /// reusing every array. Equivalent to `*self =
    /// BinaryTree::from_tree(tree)` but allocation-free once the buffers
    /// fit the largest tree seen — repeated probes reuse one instance.
    pub fn rebuild_from(&mut self, tree: &Tree) {
        let n = tree.len();
        self.labels.clear();
        self.labels.reserve(n);
        self.left.clear();
        self.left.resize(n, None);
        self.right.clear();
        self.right.resize(n, None);
        self.parent.clear();
        self.parent.resize(n, None);
        for node in tree.node_ids() {
            self.labels.push(tree.label(node));
            let children = tree.children(node);
            if let Some(&first) = children.first() {
                self.left[node.index()] = Some(first);
                self.parent[first.index()] = Some((node, Side::Left));
            }
            for pair in children.windows(2) {
                let (a, b) = (pair[0], pair[1]);
                self.right[a.index()] = Some(b);
                self.parent[b.index()] = Some((a, Side::Right));
            }
        }
        self.root = tree.root();
        self.rebuild_caches();
    }

    /// Builds a binary tree directly from explicit child links.
    ///
    /// Intended for tests and for workloads that are natively binary (e.g.
    /// the paper's Figure 3 trees, RNA secondary structures). Unlike
    /// [`BinaryTree::from_tree`], the result need not be the LC-RS image of
    /// any general tree — in particular the root may have a right child.
    ///
    /// # Panics
    /// Panics if the links do not form a single tree rooted at `root`.
    pub fn from_links(
        labels: Vec<Label>,
        left: Vec<Option<NodeId>>,
        right: Vec<Option<NodeId>>,
        root: NodeId,
    ) -> BinaryTree {
        let n = labels.len();
        assert_eq!(left.len(), n, "left link table has wrong length");
        assert_eq!(right.len(), n, "right link table has wrong length");
        let mut parent: Vec<Option<(NodeId, Side)>> = vec![None; n];
        for i in 0..n {
            let node = NodeId::from_index(i);
            if let Some(l) = left[i] {
                assert!(parent[l.index()].is_none(), "{l} has two parents");
                parent[l.index()] = Some((node, Side::Left));
            }
            if let Some(r) = right[i] {
                assert!(parent[r.index()].is_none(), "{r} has two parents");
                parent[r.index()] = Some((node, Side::Right));
            }
        }
        assert!(parent[root.index()].is_none(), "root has a parent");
        let mut binary = BinaryTree {
            labels,
            left,
            right,
            parent,
            root,
            postorder: Vec::new(),
            post_of: Vec::new(),
            subtree_size: Vec::new(),
            walk: Vec::new(),
        };
        binary.rebuild_caches();
        assert_eq!(
            binary.postorder.len(),
            n,
            "links do not form a single connected tree"
        );
        binary
    }

    fn rebuild_caches(&mut self) {
        let n = self.labels.len();
        self.postorder.clear();
        self.postorder.reserve(n);
        self.post_of.clear();
        self.post_of.resize(n, 0);
        self.subtree_size.clear();
        self.subtree_size.resize(n, 1);
        // Iterative postorder: 0 = descend left, 1 = descend right, 2 = emit.
        // Taking the persistent stack sidesteps the borrow of `self`
        // inside the loop; it is handed back (empty, capacity kept) after.
        let mut stack = std::mem::take(&mut self.walk);
        stack.clear();
        stack.push((self.root, 0));
        while let Some((node, stage)) = stack.pop() {
            match stage {
                0 => {
                    stack.push((node, 1));
                    if let Some(l) = self.left[node.index()] {
                        stack.push((l, 0));
                    }
                }
                1 => {
                    stack.push((node, 2));
                    if let Some(r) = self.right[node.index()] {
                        stack.push((r, 0));
                    }
                }
                _ => {
                    let mut size = 1;
                    if let Some(l) = self.left[node.index()] {
                        size += self.subtree_size[l.index()];
                    }
                    if let Some(r) = self.right[node.index()] {
                        size += self.subtree_size[r.index()];
                    }
                    self.subtree_size[node.index()] = size;
                    self.post_of[node.index()] = self.postorder.len() as u32 + 1;
                    self.postorder.push(node);
                }
            }
        }
        self.walk = stack;
        debug_assert_eq!(self.postorder.len(), n, "binary tree not connected");
    }

    /// Number of nodes (equal to the size of the source general tree).
    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Binary trees are never empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The root node (same id as the general tree's root).
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The label of `node`.
    #[inline]
    pub fn label(&self, node: NodeId) -> Label {
        self.labels[node.index()]
    }

    /// The left child (leftmost child in the general tree).
    #[inline]
    pub fn left(&self, node: NodeId) -> Option<NodeId> {
        self.left[node.index()]
    }

    /// The right child (next sibling in the general tree).
    #[inline]
    pub fn right(&self, node: NodeId) -> Option<NodeId> {
        self.right[node.index()]
    }

    /// The child of `node` on `side`.
    #[inline]
    pub fn child(&self, node: NodeId, side: Side) -> Option<NodeId> {
        match side {
            Side::Left => self.left(node),
            Side::Right => self.right(node),
        }
    }

    /// Parent link: `(parent, side)` where `side` says which pointer of the
    /// parent leads here. `None` for the root.
    #[inline]
    pub fn parent(&self, node: NodeId) -> Option<(NodeId, Side)> {
        self.parent[node.index()]
    }

    /// Which side of its parent this node hangs from (`None` for the root).
    #[inline]
    pub fn side(&self, node: NodeId) -> Option<Side> {
        self.parent(node).map(|(_, side)| side)
    }

    /// Nodes in binary postorder (left, right, node).
    #[inline]
    pub fn postorder(&self) -> &[NodeId] {
        &self.postorder
    }

    /// 1-based postorder number of `node` in the binary traversal.
    #[inline]
    pub fn post_of(&self, node: NodeId) -> u32 {
        self.post_of[node.index()]
    }

    /// The node with 1-based binary postorder number `k`.
    ///
    /// # Panics
    /// Panics if `k` is 0 or exceeds the tree size.
    #[inline]
    pub fn node_at_postorder(&self, k: u32) -> NodeId {
        self.postorder[k as usize - 1]
    }

    /// Size of the binary subtree rooted at `node` (node + both subtrees).
    #[inline]
    pub fn subtree_size(&self, node: NodeId) -> u32 {
        self.subtree_size[node.index()]
    }

    /// Iterates over all node ids in arena order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.labels.len() as u32).map(NodeId::from_index_u32)
    }

    /// Inverse of Knuth's transformation: reconstructs the general tree.
    ///
    /// Node ids are *not* preserved (the result uses fresh preorder ids),
    /// but the reconstructed tree is structurally equal to the original:
    /// `BinaryTree::from_tree(t).to_general().structurally_eq(t)`.
    pub fn to_general(&self) -> Tree {
        let mut builder = TreeBuilder::with_capacity(self.len());
        let root = builder.root(self.label(self.root));
        debug_assert!(
            self.right(self.root).is_none(),
            "LC-RS root cannot have a right child"
        );
        // Each stack entry is the *leftmost* general child of `parent`;
        // following the right-chain from it enumerates all of `parent`'s
        // children in order, so one pop emits a full child list at once and
        // other stack entries can never interleave into it.
        let mut stack: Vec<(NodeId, crate::tree::NodeId)> = Vec::new();
        if let Some(first) = self.left(self.root) {
            stack.push((first, root));
        }
        while let Some((first_child, parent)) = stack.pop() {
            let mut cur = Some(first_child);
            while let Some(node) = cur {
                let id = builder.child(parent, self.label(node));
                if let Some(child) = self.left(node) {
                    stack.push((child, id));
                }
                cur = self.right(node);
            }
        }
        builder.build()
    }
}

impl NodeId {
    #[inline]
    fn from_index_u32(index: u32) -> NodeId {
        NodeId(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::LabelInterner;
    use crate::tree::TreeBuilder;

    /// The general tree of the paper's Figure 4(a):
    /// N1(ℓ1) with children N2, N6(ℓ6), N7(ℓ7); N2(ℓ2) child N3(ℓ3);
    /// N3 children N4(ℓ4), N5(ℓ5); N7 child N8(ℓ8); N8 children N9, N10.
    fn figure4_tree() -> (Tree, LabelInterner) {
        let mut labels = LabelInterner::new();
        let l: Vec<_> = (1..=10).map(|i| labels.intern(&format!("l{i}"))).collect();
        let mut b = TreeBuilder::new();
        let n1 = b.root(l[0]);
        let n2 = b.child(n1, l[1]);
        let n3 = b.child(n2, l[2]);
        b.child(n3, l[3]);
        b.child(n3, l[4]);
        b.child(n1, l[5]);
        let n7 = b.child(n1, l[6]);
        let n8 = b.child(n7, l[7]);
        b.child(n8, l[8]);
        b.child(n8, l[9]);
        (b.build(), labels)
    }

    #[test]
    fn knuth_transform_matches_figure4() {
        let (tree, labels) = figure4_tree();
        let bin = BinaryTree::from_tree(&tree);
        assert_eq!(bin.len(), 10);

        let by_name = |name: &str| {
            let label = labels.get(name).unwrap();
            tree.node_ids().find(|&n| tree.label(n) == label).unwrap()
        };
        let (n1, n2, n3, n4, n6, n7, n8, n9) = (
            by_name("l1"),
            by_name("l2"),
            by_name("l3"),
            by_name("l4"),
            by_name("l6"),
            by_name("l7"),
            by_name("l8"),
            by_name("l9"),
        );
        // Figure 4(b): N1 -left-> N2 -left-> N3, N2 -right-> N6 -right-> N7,
        // N3 -left-> N4 -right-> N5, N7 -left-> N8 -left-> N9 -right-> N10.
        assert_eq!(bin.left(n1), Some(n2));
        assert_eq!(bin.right(n1), None);
        assert_eq!(bin.left(n2), Some(n3));
        assert_eq!(bin.right(n2), Some(n6));
        assert_eq!(bin.right(n6), Some(n7));
        assert_eq!(bin.left(n6), None);
        assert_eq!(bin.left(n3), Some(n4));
        assert_eq!(bin.left(n7), Some(n8));
        assert_eq!(bin.left(n8), Some(n9));
        assert_eq!(bin.side(n2), Some(Side::Left));
        assert_eq!(bin.side(n6), Some(Side::Right));
        assert_eq!(bin.side(n1), None);
    }

    #[test]
    fn postorder_numbers_cover_all_nodes() {
        let (tree, _) = figure4_tree();
        let bin = BinaryTree::from_tree(&tree);
        let mut numbers: Vec<u32> = bin.node_ids().map(|n| bin.post_of(n)).collect();
        numbers.sort_unstable();
        assert_eq!(numbers, (1..=10).collect::<Vec<u32>>());
        // Root is visited last in binary postorder.
        assert_eq!(bin.post_of(bin.root()), 10);
        for node in bin.node_ids() {
            assert_eq!(bin.node_at_postorder(bin.post_of(node)), node);
        }
    }

    #[test]
    fn rebuild_from_matches_fresh_build_across_mismatched_trees() {
        // One reused BinaryTree cycled over trees of different shapes and
        // sizes must reproduce from_tree exactly, including all caches.
        let (fig4, _) = figure4_tree();
        let sources = [
            Tree::leaf(Label::from_raw(7)),
            fig4.clone(),
            Tree::leaf(Label::from_raw(1)),
            fig4,
        ];
        let mut reused = BinaryTree::from_tree(&sources[0]);
        for tree in &sources {
            reused.rebuild_from(tree);
            let fresh = BinaryTree::from_tree(tree);
            assert_eq!(reused.len(), fresh.len());
            assert_eq!(reused.root(), fresh.root());
            for node in fresh.node_ids() {
                assert_eq!(reused.label(node), fresh.label(node));
                assert_eq!(reused.left(node), fresh.left(node));
                assert_eq!(reused.right(node), fresh.right(node));
                assert_eq!(reused.parent(node), fresh.parent(node));
                assert_eq!(reused.post_of(node), fresh.post_of(node));
                assert_eq!(reused.subtree_size(node), fresh.subtree_size(node));
            }
        }
    }

    #[test]
    fn subtree_sizes_match_binary_structure() {
        let (tree, _) = figure4_tree();
        let bin = BinaryTree::from_tree(&tree);
        assert_eq!(bin.subtree_size(bin.root()) as usize, bin.len());
        for node in bin.node_ids() {
            let expected = 1
                + bin.left(node).map_or(0, |l| bin.subtree_size(l))
                + bin.right(node).map_or(0, |r| bin.subtree_size(r));
            assert_eq!(bin.subtree_size(node), expected);
        }
    }

    #[test]
    fn round_trip_to_general() {
        let (tree, _) = figure4_tree();
        let bin = BinaryTree::from_tree(&tree);
        let back = bin.to_general();
        assert!(back.structurally_eq(&tree));
        back.validate().unwrap();
    }

    #[test]
    fn single_node_round_trip() {
        let tree = Tree::leaf(Label::from_raw(3));
        let bin = BinaryTree::from_tree(&tree);
        assert_eq!(bin.len(), 1);
        assert_eq!(bin.left(bin.root()), None);
        assert_eq!(bin.right(bin.root()), None);
        assert!(bin.to_general().structurally_eq(&tree));
    }

    #[test]
    fn deep_chain_round_trip() {
        // A path tree (each node one child) becomes a left spine.
        let mut labels = LabelInterner::new();
        let mut b = TreeBuilder::new();
        let mut cur = b.root(labels.intern("n0"));
        for i in 1..50 {
            cur = b.child(cur, labels.intern(&format!("n{i}")));
        }
        let tree = b.build();
        let bin = BinaryTree::from_tree(&tree);
        for node in bin.node_ids() {
            assert_eq!(bin.right(node), None, "path tree has no siblings");
        }
        assert!(bin.to_general().structurally_eq(&tree));
    }

    #[test]
    fn flat_star_round_trip() {
        // A star (root with many children) becomes a right spine under the
        // root's left child.
        let mut labels = LabelInterner::new();
        let mut b = TreeBuilder::new();
        let root = b.root(labels.intern("root"));
        for i in 0..40 {
            b.child(root, labels.intern(&format!("c{i}")));
        }
        let tree = b.build();
        let bin = BinaryTree::from_tree(&tree);
        let first = bin.left(bin.root()).unwrap();
        let mut chain = 1;
        let mut cur = first;
        while let Some(next) = bin.right(cur) {
            chain += 1;
            cur = next;
        }
        assert_eq!(chain, 40);
        assert!(bin.to_general().structurally_eq(&tree));
    }

    #[test]
    fn side_flip() {
        assert_eq!(Side::Left.flip(), Side::Right);
        assert_eq!(Side::Right.flip(), Side::Left);
    }
}
