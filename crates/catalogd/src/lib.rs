//! # tsj-catalogd
//!
//! Networked catalog serving: the in-process cluster of [`tsj_cluster`],
//! stretched across real processes on real sockets — one `catalogd`
//! process per node, each restoring **only its owned shard sections**
//! from the frozen snapshot, and a [`ClusterClient`] speaking a small
//! length-prefixed binary protocol to scatter/gather joins across them.
//!
//! Three layers, one contract:
//!
//! * [`wire`] — the protocol. Every frame is
//!   `len | type | payload | checksum` (FNV-1a over type + payload);
//!   malformed, truncated or oversized input decodes to a typed
//!   [`wire::WireError`], never a panic. The byte layout is specified in
//!   `docs/PROTOCOL.md`, and a test round-trips the document's example
//!   frames byte-for-byte against this codec so the spec cannot drift.
//! * [`Catalogd`] — the server. `std::net` + a thread per connection;
//!   no async runtime, no new dependencies. Each connection gets its own
//!   probe registry and verify scratch; the shared node state is
//!   read-only. Serving metrics are node-labeled `tsj_catalogd_*` series
//!   answered over the [`wire::Frame::Metrics`] frame as Prometheus
//!   text.
//! * [`ClusterClient`] — the router, again. Planning, replica failover,
//!   bounded retries with deterministic backoff, per-probe deadlines and
//!   the typed `Complete`/`Degraded` outcome are literally
//!   [`tsj_cluster::route_requests`] — the same function the in-process
//!   cluster runs — driven through a TCP [`tsj_cluster::NodeTransport`]
//!   over pooled connections ([`ConnPool`]).
//!
//! Because the planner, router and per-shard serving logic are all
//! shared, **bit-identity extends across the wire**: a TCP join's pairs,
//! candidate counts and filter-stage counters are property-tested equal
//! to `Cluster::join` and single-node `Catalog::join` — including under
//! killed-process failover at replication ≥ 2.
//!
//! The crate ships two binaries: `catalogd` (freeze a demo snapshot /
//! serve one node of it) and `loadgen` (probes/sec and latency
//! percentiles against a running node set, plus a `--smoke` mode the CI
//! loopback job runs). `examples/catalogd_demo.rs` walks the full
//! kill-one-node arc; `docs/OPERATIONS.md` is the runbook.

#![warn(missing_docs)]

pub mod wire;

mod client;
mod error;
mod pool;
mod server;

pub use client::{ClientConfig, ClusterClient, TcpTransport};
pub use error::CatalogdError;
pub use pool::{ConnPool, PoolConfig};
pub use server::{Catalogd, RunningServer, ServerConfig};

use tsj_tree::{Label, LabelInterner, Tree};

/// Builds an interner that resolves every raw label id used by `trees`,
/// naming id `i` as `"L{i}"`.
///
/// The datagen collections draw labels as raw ids (`1..=num_labels`)
/// without string names; the wire protocol ships probe labels as
/// strings. Interning `"L1"..="Lmax"` in order reproduces the exact raw
/// ids, so a catalog frozen with this interner joins bit-identically to
/// one frozen with the raw-labeled trees directly.
pub fn interner_for(trees: &[Tree]) -> LabelInterner {
    let mut max_id = 0u32;
    for tree in trees {
        for node in tree.node_ids() {
            max_id = max_id.max(tree.label(node).raw());
        }
    }
    let mut interner = LabelInterner::new();
    for id in 1..=max_id {
        let label = interner.intern(&format!("L{id}"));
        debug_assert_eq!(label, Label::from_raw(id));
    }
    interner
}
