//! Rooted ordered labeled trees stored in a flat arena.
//!
//! This is the "general tree" of the paper (§2): a directed acyclic graph
//! where every node has one parent (except the unique root), a label, and an
//! ordered list of children. Nodes are identified by dense [`NodeId`]s into
//! the arena, which makes traversals allocation-free and lets companion
//! structures (postorder numbers, subtree sizes, the LC-RS representation)
//! be plain vectors indexed by node id.

use crate::error::ParseError;
use crate::label::Label;
use std::fmt;

/// Index of a node inside a [`Tree`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The arena slot of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a `NodeId` from a raw arena slot.
    #[inline]
    pub fn from_index(index: usize) -> NodeId {
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct NodeData {
    label: Label,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
}

/// A rooted ordered labeled tree.
///
/// Construct with [`TreeBuilder`] or one of the parsers in
/// [`crate::parser`]. Trees always contain at least one node (the root);
/// the empty tree is not representable.
#[derive(Debug, Clone)]
pub struct Tree {
    nodes: Vec<NodeData>,
    root: NodeId,
}

impl Tree {
    /// Creates a single-node tree.
    pub fn leaf(label: Label) -> Tree {
        Tree {
            nodes: vec![NodeData {
                label,
                parent: None,
                children: Vec::new(),
            }],
            root: NodeId(0),
        }
    }

    /// Number of nodes, written `|T|` in the paper.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Trees are never empty, so this is always `false`; provided for
    /// clippy-idiomatic pairing with [`Tree::len`].
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The root node.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The label of `node`.
    #[inline]
    pub fn label(&self, node: NodeId) -> Label {
        self.nodes[node.index()].label
    }

    /// The parent of `node`, or `None` for the root.
    #[inline]
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node.index()].parent
    }

    /// The ordered children of `node`.
    #[inline]
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.nodes[node.index()].children
    }

    /// Whether `node` has no children.
    #[inline]
    pub fn is_leaf(&self, node: NodeId) -> bool {
        self.children(node).is_empty()
    }

    /// Iterates over all node ids in arena order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Nodes in preorder (node before its children, children left to right).
    pub fn preorder(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.len());
        let mut stack = vec![self.root];
        while let Some(node) = stack.pop() {
            order.push(node);
            // Push children reversed so the leftmost child is popped first.
            for &child in self.children(node).iter().rev() {
                stack.push(child);
            }
        }
        order
    }

    /// Nodes in postorder (children left to right, then the node).
    pub fn postorder(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.len());
        // (node, next child index to visit)
        let mut stack: Vec<(NodeId, usize)> = vec![(self.root, 0)];
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let children = self.children(node);
            if *next < children.len() {
                let child = children[*next];
                *next += 1;
                stack.push((child, 0));
            } else {
                order.push(node);
                stack.pop();
            }
        }
        order
    }

    /// 1-based postorder numbers indexed by node id.
    ///
    /// `postorder_numbers()[n.index()]` is the position (starting at 1) of
    /// node `n` in [`Tree::postorder`]. These are the "numbers in
    /// parentheses" of the paper's Figure 7.
    pub fn postorder_numbers(&self) -> Vec<u32> {
        let mut numbers = Vec::new();
        self.postorder_numbers_into(&mut numbers, &mut Vec::new());
        numbers
    }

    /// [`Tree::postorder_numbers`] into caller-provided buffers.
    ///
    /// `numbers` receives the 1-based postorder number per node id;
    /// `stack` is walk scratch that drains back to empty. Both are
    /// grow-only, so repeated calls across a probe stream are
    /// allocation-free once they fit the largest tree seen.
    pub fn postorder_numbers_into(&self, numbers: &mut Vec<u32>, stack: &mut Vec<(NodeId, usize)>) {
        numbers.clear();
        numbers.resize(self.len(), 0);
        stack.clear();
        stack.push((self.root(), 0));
        let mut next_post = 0u32;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let children = self.children(node);
            if *next < children.len() {
                let child = children[*next];
                *next += 1;
                stack.push((child, 0));
            } else {
                next_post += 1;
                numbers[node.index()] = next_post;
                stack.pop();
            }
        }
    }

    /// Labels in preorder, the traversal string of Guha et al. (§2).
    pub fn preorder_labels(&self) -> Vec<Label> {
        self.preorder().into_iter().map(|n| self.label(n)).collect()
    }

    /// Labels in postorder, the traversal string of Guha et al. (§2).
    pub fn postorder_labels(&self) -> Vec<Label> {
        self.postorder()
            .into_iter()
            .map(|n| self.label(n))
            .collect()
    }

    /// Number of nodes in the subtree rooted at each node, indexed by id.
    pub fn subtree_sizes(&self) -> Vec<u32> {
        let mut sizes = vec![1u32; self.len()];
        for node in self.postorder() {
            let total: u32 = self.children(node).iter().map(|c| sizes[c.index()]).sum();
            sizes[node.index()] += total;
        }
        sizes
    }

    /// Depth of each node (root = 0), indexed by id.
    pub fn depths(&self) -> Vec<u32> {
        let mut depths = vec![0u32; self.len()];
        for node in self.preorder() {
            if let Some(parent) = self.parent(node) {
                depths[node.index()] = depths[parent.index()] + 1;
            }
        }
        depths
    }

    /// Maximum node depth (a single-node tree has depth 0).
    pub fn max_depth(&self) -> u32 {
        self.depths().into_iter().max().unwrap_or(0)
    }

    /// Maximum number of children over all nodes.
    pub fn max_fanout(&self) -> usize {
        self.node_ids()
            .map(|n| self.children(n).len())
            .max()
            .unwrap_or(0)
    }

    /// The position of `node` among its parent's children, or `None` for
    /// the root.
    pub fn child_position(&self, node: NodeId) -> Option<usize> {
        let parent = self.parent(node)?;
        self.children(parent).iter().position(|&c| c == node)
    }

    /// Structural + label equality (node ids are ignored).
    pub fn structurally_eq(&self, other: &Tree) -> bool {
        if self.len() != other.len() {
            return false;
        }
        let mut stack = vec![(self.root, other.root)];
        while let Some((a, b)) = stack.pop() {
            if self.label(a) != other.label(b) {
                return false;
            }
            let ca = self.children(a);
            let cb = other.children(b);
            if ca.len() != cb.len() {
                return false;
            }
            stack.extend(ca.iter().copied().zip(cb.iter().copied()));
        }
        true
    }

    /// Flattens the tree into a parent-linked preorder sequence — the
    /// wire form used by snapshot serialization (`tsj-catalog`).
    ///
    /// Entry `k` is `(label, parent)` where `parent` is the *position of
    /// the parent within the returned sequence* (`None` only for the
    /// root, at position 0). Preorder guarantees parents precede their
    /// children and sibling order is preserved, so
    /// [`Tree::from_flattened`] reconstructs a structurally identical
    /// tree regardless of how the original arena was laid out (edited
    /// trees can hold children out of arena order).
    pub fn flatten(&self) -> Vec<(Label, Option<u32>)> {
        let order = self.preorder();
        let mut pos = vec![0u32; self.len()];
        for (k, node) in order.iter().enumerate() {
            pos[node.index()] = k as u32;
        }
        order
            .iter()
            .map(|&node| (self.label(node), self.parent(node).map(|p| pos[p.index()])))
            .collect()
    }

    /// Rebuilds a tree from a [`Tree::flatten`] sequence.
    ///
    /// The result is [structurally equal](Tree::structurally_eq) to the
    /// flattened tree; node ids are renumbered to preorder positions.
    /// Returns an error (positioned at the offending entry index) for an
    /// empty sequence, a non-root first entry, an extra root, or a
    /// forward parent reference — malformed input never panics.
    pub fn from_flattened(nodes: &[(Label, Option<u32>)]) -> Result<Tree, ParseError> {
        let mut builder = TreeBuilder::with_capacity(nodes.len());
        for (k, &(label, parent)) in nodes.iter().enumerate() {
            match (k, parent) {
                (0, None) => {
                    builder.root(label);
                }
                (0, Some(_)) => {
                    return Err(ParseError::new(0, "first flattened entry must be the root"))
                }
                (_, None) => return Err(ParseError::new(k, "second root in flattened tree")),
                (_, Some(p)) => {
                    if p as usize >= k {
                        return Err(ParseError::new(
                            k,
                            format!("parent {p} does not precede node {k}"),
                        ));
                    }
                    builder.child(NodeId(p), label);
                }
            }
        }
        if builder.is_empty() {
            return Err(ParseError::new(0, "empty flattened tree"));
        }
        Ok(builder.build())
    }

    /// Consistency check used by tests and debug builds: parent/child links
    /// agree, every non-root node is reachable from the root exactly once.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = vec![false; self.len()];
        let mut stack = vec![self.root];
        if self.parent(self.root).is_some() {
            return Err("root has a parent".into());
        }
        let mut count = 0usize;
        while let Some(node) = stack.pop() {
            if seen[node.index()] {
                return Err(format!("{node} reachable twice"));
            }
            seen[node.index()] = true;
            count += 1;
            for &child in self.children(node) {
                if self.parent(child) != Some(node) {
                    return Err(format!("{child} has wrong parent link"));
                }
                stack.push(child);
            }
        }
        if count != self.len() {
            return Err(format!(
                "{} of {} nodes reachable from root",
                count,
                self.len()
            ));
        }
        Ok(())
    }
}

/// Incremental builder for [`Tree`].
///
/// Nodes must be added parent-before-child (e.g. in preorder):
///
/// ```
/// use tsj_tree::{LabelInterner, TreeBuilder};
/// let mut labels = LabelInterner::new();
/// let mut builder = TreeBuilder::new();
/// let root = builder.root(labels.intern("a"));
/// let b = builder.child(root, labels.intern("b"));
/// builder.child(b, labels.intern("c"));
/// builder.child(root, labels.intern("d"));
/// let tree = builder.build();
/// assert_eq!(tree.len(), 4);
/// ```
#[derive(Debug, Default)]
pub struct TreeBuilder {
    nodes: Vec<NodeData>,
}

impl TreeBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with room for `capacity` nodes.
    pub fn with_capacity(capacity: usize) -> Self {
        TreeBuilder {
            nodes: Vec::with_capacity(capacity),
        }
    }

    /// Adds the root node. Must be called exactly once, first.
    ///
    /// # Panics
    /// Panics if a root was already added.
    pub fn root(&mut self, label: Label) -> NodeId {
        assert!(self.nodes.is_empty(), "root must be the first node");
        self.nodes.push(NodeData {
            label,
            parent: None,
            children: Vec::new(),
        });
        NodeId(0)
    }

    /// Appends a new rightmost child under `parent`.
    ///
    /// # Panics
    /// Panics if `parent` was not returned by this builder.
    pub fn child(&mut self, parent: NodeId, label: Label) -> NodeId {
        assert!(parent.index() < self.nodes.len(), "unknown parent {parent}");
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData {
            label,
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no nodes have been added.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Finalizes the tree.
    ///
    /// # Panics
    /// Panics if no root was added.
    pub fn build(self) -> Tree {
        assert!(!self.nodes.is_empty(), "tree must have a root");
        Tree {
            nodes: self.nodes,
            root: NodeId(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::LabelInterner;

    fn figure1_tree() -> (Tree, LabelInterner) {
        // The HTML fragment of the paper's Figure 1.
        let mut labels = LabelInterner::new();
        let mut b = TreeBuilder::new();
        let html = b.root(labels.intern("html"));
        let title = b.child(html, labels.intern("title"));
        b.child(title, labels.intern("Test page"));
        let body = b.child(html, labels.intern("body"));
        let p = b.child(body, labels.intern("p"));
        b.child(p, labels.intern("This is a"));
        let dfn = b.child(p, labels.intern("dfn"));
        b.child(dfn, labels.intern("dfn"));
        b.child(p, labels.intern("tag example."));
        (b.build(), labels)
    }

    #[test]
    fn builder_produces_valid_tree() {
        let (tree, _) = figure1_tree();
        assert_eq!(tree.len(), 9);
        tree.validate().unwrap();
        assert_eq!(tree.children(tree.root()).len(), 2);
    }

    #[test]
    fn preorder_visits_parent_first() {
        let (tree, _) = figure1_tree();
        let pre = tree.preorder();
        assert_eq!(pre.len(), tree.len());
        assert_eq!(pre[0], tree.root());
        let position: Vec<usize> = {
            let mut pos = vec![0; tree.len()];
            for (i, n) in pre.iter().enumerate() {
                pos[n.index()] = i;
            }
            pos
        };
        for node in tree.node_ids() {
            if let Some(parent) = tree.parent(node) {
                assert!(position[parent.index()] < position[node.index()]);
            }
        }
    }

    #[test]
    fn postorder_visits_children_first() {
        let (tree, _) = figure1_tree();
        let post = tree.postorder();
        assert_eq!(post.len(), tree.len());
        assert_eq!(*post.last().unwrap(), tree.root());
        let numbers = tree.postorder_numbers();
        for node in tree.node_ids() {
            for &child in tree.children(node) {
                assert!(numbers[child.index()] < numbers[node.index()]);
            }
        }
    }

    #[test]
    fn postorder_numbers_are_a_permutation() {
        let (tree, _) = figure1_tree();
        let mut numbers = tree.postorder_numbers();
        numbers.sort_unstable();
        let expected: Vec<u32> = (1..=tree.len() as u32).collect();
        assert_eq!(numbers, expected);
    }

    #[test]
    fn subtree_sizes_sum_correctly() {
        let (tree, _) = figure1_tree();
        let sizes = tree.subtree_sizes();
        assert_eq!(sizes[tree.root().index()] as usize, tree.len());
        for node in tree.node_ids() {
            let expected: u32 = 1 + tree
                .children(node)
                .iter()
                .map(|c| sizes[c.index()])
                .sum::<u32>();
            assert_eq!(sizes[node.index()], expected);
        }
    }

    #[test]
    fn depths_and_fanout() {
        let (tree, _) = figure1_tree();
        // html -> body -> p -> dfn -> "dfn" is the deepest path.
        assert_eq!(tree.max_depth(), 4);
        assert_eq!(tree.max_fanout(), 3); // node `p` has three children
        let depths = tree.depths();
        assert_eq!(depths[tree.root().index()], 0);
    }

    #[test]
    fn structural_equality() {
        let (t1, _) = figure1_tree();
        let (t2, _) = figure1_tree();
        assert!(t1.structurally_eq(&t2));
        let mut labels = LabelInterner::new();
        let other = Tree::leaf(labels.intern("x"));
        assert!(!t1.structurally_eq(&other));
    }

    #[test]
    fn leaf_tree() {
        let tree = Tree::leaf(Label::from_raw(5));
        assert_eq!(tree.len(), 1);
        assert!(tree.is_leaf(tree.root()));
        assert_eq!(tree.max_depth(), 0);
        tree.validate().unwrap();
    }

    #[test]
    fn flatten_round_trips() {
        let (tree, _) = figure1_tree();
        let flat = tree.flatten();
        assert_eq!(flat.len(), tree.len());
        assert_eq!(flat[0].1, None, "root leads the sequence");
        let rebuilt = Tree::from_flattened(&flat).unwrap();
        assert!(tree.structurally_eq(&rebuilt));
        // The preorder form is canonical: re-flattening is a fixpoint.
        assert_eq!(rebuilt.flatten(), flat);
    }

    #[test]
    fn flatten_round_trips_after_edits() {
        // Edited trees can hold children out of arena order; flatten must
        // still preserve sibling order.
        use crate::edit::{apply_edit, EditOp};
        let (tree, _) = figure1_tree();
        let victim = tree.children(tree.root())[0];
        let edited = apply_edit(&tree, &EditOp::Delete { node: victim }).unwrap();
        let rebuilt = Tree::from_flattened(&edited.flatten()).unwrap();
        assert!(edited.structurally_eq(&rebuilt));
        assert_eq!(rebuilt.preorder_labels(), edited.preorder_labels());
        assert_eq!(rebuilt.postorder_labels(), edited.postorder_labels());
    }

    #[test]
    fn from_flattened_rejects_malformed_sequences() {
        let l = Label::from_raw(1);
        assert!(Tree::from_flattened(&[]).is_err());
        assert!(
            Tree::from_flattened(&[(l, Some(0))]).is_err(),
            "root with parent"
        );
        assert!(
            Tree::from_flattened(&[(l, None), (l, None)]).is_err(),
            "two roots"
        );
        assert!(
            Tree::from_flattened(&[(l, None), (l, Some(2))]).is_err(),
            "forward parent reference"
        );
        assert!(
            Tree::from_flattened(&[(l, None), (l, Some(1))]).is_err(),
            "self parent"
        );
    }

    #[test]
    fn child_position() {
        let (tree, _) = figure1_tree();
        assert_eq!(tree.child_position(tree.root()), None);
        let kids = tree.children(tree.root());
        assert_eq!(tree.child_position(kids[0]), Some(0));
        assert_eq!(tree.child_position(kids[1]), Some(1));
    }
}
