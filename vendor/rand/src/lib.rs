//! Offline-vendored minimal subset of the `rand` 0.8 API.
//!
//! The build container has no access to crates.io, so this path crate
//! stands in for the registry crate. It covers exactly the surface the
//! workspace uses — [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`seq::SliceRandom::shuffle`] — with a deterministic xoshiro256++
//! generator. Swap this for the real `rand` by pointing the workspace
//! dependency back at the registry.

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic seeding, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value whose type implements [`Standard`] sampling.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable uniformly over their whole domain (`rand`'s
/// `Standard` distribution, flattened into a trait).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                // i128 intermediates: correct for the full domain of every
                // 8–64-bit type, signed or unsigned (spans up to 2^64).
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = rng.next_u64() as u128 % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                // Span fits i128 even for u64::MIN..=u64::MAX (2^64); the
                // modulo is a no-op in that full-domain case.
                let span = (end as i128 - start as i128 + 1) as u128;
                let offset = rng.next_u64() as u128 % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range on empty range");
        start + f64::sample(rng) * (end - start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for `rand`'s
    /// `StdRng`; same trait surface, different stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as rand_core does for small seeds.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::RngCore;

    /// Slice extension trait, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..10usize);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(5..=5u32);
            assert_eq!(y, 5);
            let f = rng.gen_range(0.0..0.7);
            assert!((0.0..0.7).contains(&f));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn extreme_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let a = rng.gen_range(i64::MIN..i64::MAX);
            assert!(a < i64::MAX);
            let b = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&b));
            let c = rng.gen_range(u64::MIN..=u64::MAX);
            let _ = c;
            let d = rng.gen_range(i8::MIN..=i8::MAX);
            let _ = d;
        }
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
