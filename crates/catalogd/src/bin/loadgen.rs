//! The `loadgen` binary: throughput and latency against a running
//! `catalogd` node set.
//!
//! ```bash
//! loadgen --addrs 127.0.0.1:7401,127.0.0.1:7402 \
//!     --clients 4 --joins 16 --probes 48 --tau 2
//! ```
//!
//! Each client thread opens its own [`ClusterClient`] (its own pooled
//! connections) and runs `--joins` scatter/gather joins of the same
//! probe batch, recording one latency sample per join. The report is
//! probes/sec across all clients plus p50/p90/p99 join latency.
//!
//! `--smoke` is the CI loopback mode: fewer iterations, every join
//! asserted `Complete` and cross-checked identical, each node's
//! `Metrics` frame pulled through `validate_prometheus`, and a
//! `Shutdown` frame sent to every node afterwards so the job is
//! self-contained. Exit code 0 means the node set served correctly.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Instant;
use tsj_catalogd::{interner_for, ClientConfig, ClusterClient};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("loadgen: {message}");
            ExitCode::FAILURE
        }
    }
}

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag(args, name) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("{name} wants a {}, got {raw:?}", std::any::type_name::<T>())),
    }
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn run(args: &[String]) -> Result<(), String> {
    let smoke = args.iter().any(|a| a == "--smoke");
    let addrs_raw = flag(args, "--addrs")
        .ok_or("need --addrs HOST:PORT[,HOST:PORT...] (one per node, in node-id order)")?;
    let addrs: Vec<SocketAddr> = addrs_raw
        .split(',')
        .map(|s| s.trim().parse().map_err(|_| format!("bad address {s:?}")))
        .collect::<Result<_, _>>()?;
    let clients: usize = parse(args, "--clients", if smoke { 2 } else { 4 })?;
    let joins: usize = parse(args, "--joins", if smoke { 3 } else { 16 })?;
    let probe_count: usize = parse(args, "--probes", 48)?;
    // The default matches `catalogd freeze`'s seed: the generator is
    // prefix-stable, so the probe batch overlaps the catalog and the
    // smoke exercises real matches, not an empty join.
    let seed: u64 = parse(args, "--seed", 2015)?;

    // One handshake up front to learn the set's frozen tau (also a fast
    // failure if the set is unreachable or disagrees with itself).
    let mut probe_client = ClusterClient::connect(&addrs, ClientConfig::default())
        .map_err(|e| format!("connecting to the node set: {e}"))?;
    let frozen_tau = probe_client.tau();
    let tau: u32 = parse(args, "--tau", frozen_tau)?;
    println!(
        "loadgen: {} nodes, {} catalog trees, tau {tau} (frozen {frozen_tau}), \
         {clients} clients x {joins} joins x {probe_count} probes{}",
        addrs.len(),
        probe_client.tree_count(),
        if smoke { " [smoke]" } else { "" },
    );

    let probes = tsj_datagen::swissprot_like(probe_count, seed);
    let labels = interner_for(&probes);

    // The reference answer every join is held against (and the warmup).
    let reference = probe_client
        .join(&probes, &labels, tau)
        .map_err(|e| format!("warmup join: {e}"))?;
    if smoke && !reference.is_complete() {
        return Err(format!(
            "smoke wants a healthy set, got a degraded join: {:?}",
            reference.degraded
        ));
    }

    let started = Instant::now();
    let mut samples_us: Vec<u64> = Vec::with_capacity(clients * joins);
    let mut mismatches = 0usize;
    std::thread::scope(|scope| -> Result<(), String> {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let addrs = &addrs;
                let probes = &probes;
                let labels = &labels;
                let reference = &reference;
                scope.spawn(move || -> Result<(Vec<u64>, usize), String> {
                    let mut client = ClusterClient::connect(addrs, ClientConfig::default())
                        .map_err(|e| format!("client {c}: {e}"))?;
                    let mut samples = Vec::with_capacity(joins);
                    let mut mismatches = 0;
                    for j in 0..joins {
                        let t0 = Instant::now();
                        let join = client
                            .join(probes, labels, tau)
                            .map_err(|e| format!("client {c} join {j}: {e}"))?;
                        samples.push(t0.elapsed().as_micros() as u64);
                        if join.outcome.pairs != reference.outcome.pairs
                            || join.outcome.stats.candidates != reference.outcome.stats.candidates
                        {
                            mismatches += 1;
                        }
                    }
                    Ok((samples, mismatches))
                })
            })
            .collect();
        for handle in handles {
            let (samples, client_mismatches) =
                handle.join().map_err(|_| "client thread panicked")??;
            samples_us.extend(samples);
            mismatches += client_mismatches;
        }
        Ok(())
    })?;
    let elapsed = started.elapsed().as_secs_f64();

    samples_us.sort_unstable();
    let total_joins = samples_us.len();
    let total_probes = total_joins * probe_count;
    println!(
        "loadgen: {total_joins} joins ({total_probes} probes) in {elapsed:.2}s — \
         {:.0} probes/sec, {:.1} joins/sec",
        total_probes as f64 / elapsed,
        total_joins as f64 / elapsed,
    );
    println!(
        "loadgen: join latency p50 {} us, p90 {} us, p99 {} us, max {} us; \
         {} pairs per join, {mismatches} mismatches",
        percentile(&samples_us, 0.50),
        percentile(&samples_us, 0.90),
        percentile(&samples_us, 0.99),
        samples_us.last().copied().unwrap_or(0),
        reference.outcome.pairs.len(),
    );
    if mismatches > 0 {
        return Err(format!(
            "{mismatches} of {total_joins} joins disagreed with the reference answer"
        ));
    }

    if smoke {
        // Every node's metrics export must parse as Prometheus text and
        // carry the serving series.
        for n in 0..addrs.len() {
            let text = probe_client
                .node_metrics_text(n)
                .map_err(|e| format!("metrics from node {n}: {e}"))?;
            let report = tsj_obs::export::validate_prometheus(&text)
                .map_err(|e| format!("node {n} metrics failed validation: {e}"))?;
            if !text.contains("tsj_catalogd_joins_served_total") {
                return Err(format!(
                    "node {n} metrics lack tsj_catalogd_joins_served_total"
                ));
            }
            println!(
                "loadgen: node {n} metrics ok ({} series, {} samples)",
                report.series, report.samples
            );
        }
        for n in 0..addrs.len() {
            probe_client
                .shutdown_node(n)
                .map_err(|e| format!("shutting down node {n}: {e}"))?;
        }
        println!("loadgen: smoke passed — all joins Complete and identical, nodes shut down");
    }
    Ok(())
}
