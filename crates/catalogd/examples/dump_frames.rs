fn hex(b: &[u8]) -> String {
    b.iter()
        .map(|x| format!("{x:02x}"))
        .collect::<Vec<_>>()
        .join(" ")
}
fn main() {
    use tsj_catalogd::wire::*;
    let frames: Vec<(&str, Frame)> = vec![
        (
            "Hello",
            Frame::Hello {
                version: 1,
                snapshot_hash: 0x53925fe9fe30c941,
            },
        ),
        ("Health", Frame::Health),
        (
            "HealthAck",
            Frame::HealthAck {
                node: 1,
                owned_shards: 4,
            },
        ),
        ("ProbeAck", Frame::ProbeAck { count: 2 }),
        (
            "JoinShard",
            Frame::JoinShard {
                probe: 0,
                shard: 3,
                tau: 2,
                classes: vec![60, 61],
            },
        ),
        ("Shutdown", Frame::Shutdown),
        ("ShutdownAck", Frame::ShutdownAck),
        (
            "Error",
            Frame::Error {
                code: ErrorCode::TauExceedsFrozen,
                message: "tau 9 > frozen 3".into(),
            },
        ),
        (
            "ProbeBatch",
            Frame::ProbeBatch(ProbeBatch {
                labels: vec!["item".into(), "kbd".into()],
                trees: vec![WireTree {
                    nodes: vec![(0, 0), (1, 1)],
                }],
            }),
        ),
    ];
    for (name, f) in frames {
        let b = f.encode();
        println!("{name} ({} bytes):\n  {}", b.len(), hex(&b));
    }
}
