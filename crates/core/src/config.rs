//! Configuration of the PartSJ join.

/// How subgraphs are assigned to postorder-pruning groups (§3.4).
///
/// The paper assigns subgraph `s_k` (postorder identifier `p_k` in its
/// container tree) to every group key `v ∈ [p_k − ∆′, p_k + ∆′]` with
/// `∆′ = τ − ⌊k/2⌋`, and probes with the postorder number `p` of the
/// examined node.
///
/// Two details are under-specified in the text, and our reproduction (and
/// its brute-force equivalence tests) shows both matter for completeness
/// (see DESIGN.md for the full analysis):
///
/// 1. **Which postorder?** Positions must be *general-tree* postorder
///    numbers (as drawn in the paper's Figure 7), not binary-tree ones.
///    General postorder is edit-stable — an insertion/deletion changes the
///    sequence by exactly one element and preserves all relative orders —
///    so an untouched subgraph root moves by at most one position per
///    operation. Binary (LC-RS) postorder is *not* edit-stable: deleting a
///    node with `m` children reorders `m` nodes past entire subtrees, so
///    no `τ`-sized window is sound in binary coordinates.
/// 2. **Which window?** With general-postorder *suffix* keys (`n − p_k`),
///    the conservative half-width `∆′ = τ` is provably complete: at most
///    `τ` operations land after the untouched root. The paper's tighter
///    `∆′ = τ − ⌊k/2⌋` additionally relies on a dichotomy argument whose
///    step "nodes after `p_k` belong only to subgraphs after `s_k`" does
///    not hold once binary discovery order and general postorder disagree,
///    so we default to the provable window and keep the tight one as an
///    ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WindowPolicy {
    /// General-postorder suffix keys with the conservative window
    /// `∆′ = τ`. Provably complete; the default.
    #[default]
    Safe,
    /// General-postorder suffix keys with the paper's tight window
    /// `∆′ = τ − ⌊k/2⌋`. **Incomplete**: the dichotomy argument's gap is
    /// real — the randomized sweep (`tests/window_sweep.rs`) observes
    /// missed results at a ~0.2% rate. Ablation only.
    Tight,
    /// Absolute general-postorder keys with the tight window — the most
    /// literal reading of §3.4. **Incomplete** whenever near-duplicate
    /// trees differ in size; kept to demonstrate the correction.
    PaperAbsolute,
}

/// How a tree is decomposed into `δ = 2τ + 1` subgraphs (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionScheme {
    /// The paper's scheme: maximize the minimum subgraph size via the
    /// greedy `(δ, γ)`-partitionable test and binary search on `γ`.
    #[default]
    MaxMin,
    /// Cut `δ − 1` uniformly random edges — the baseline the paper's §4.3
    /// closing note compares against ("50%–300%" improvement for MaxMin).
    Random {
        /// Seed for the per-tree cut selection.
        seed: u64,
    },
}

/// How a subgraph's *absent* child slots are matched (§3.2's "s matches
/// the structure at the top of the subtree").
///
/// Both are sound: an untouched subgraph keeps its exact edge structure
/// (any operation granting one of its nodes a child would change the
/// subgraph, cf. Lemma 1), so requiring absences to stay absent never
/// prunes a true result. `Exact` is the stronger filter and the default;
/// `Embedding` tolerates extra children below component leaves and exists
/// to measure how much the absence constraints prune.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatchSemantics {
    /// A component node without a child/bridge on a side requires the
    /// matched node to also lack a child there.
    #[default]
    Exact,
    /// Absent slots are unconstrained (prefix-embedding).
    Embedding,
}

/// Which stages the verification filter chain runs, in cost order (see
/// [`crate::verify`] for the chain itself and the cost model).
///
/// Every stage is *sound* — lower-bound stages only reject pairs whose
/// TED provably exceeds `τ`, upper-bound stages only admit pairs with a
/// valid edit script of cost ≤ `τ` — so any combination of toggles yields
/// the same result pairs as filter-free exact-TED verification (property
/// tested in `tests/filter_soundness.rs` of both `partsj` and
/// `tsj-shard`). Toggles only trade filter work against exact TED calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyConfig {
    /// Size lower bound `||T1| − |T2||` (free: two cached lengths).
    pub size: bool,
    /// Rename-script early accept: if the two trees have identical
    /// *shape* (preorder degree sequence), renaming the mismatched labels
    /// in place is a valid edit script, so a label Hamming distance ≤ τ
    /// admits the pair without the cubic TED DP. O(1) per pair via a
    /// shape hash, O(n) on the rare hash hit.
    pub shape_accept: bool,
    /// Label-histogram L1 lower bound `⌈L1/2⌉` (Kailing et al.), over
    /// sorted label multisets precomputed per tree at build time. O(n)
    /// merge per pair.
    pub histogram: bool,
    /// Banded traversal-string SED lower bound
    /// `max(SED(pre), SED(post)) ≤ TED` (Guha et al.). O(τ·n) per pair.
    pub traversal: bool,
}

impl Default for VerifyConfig {
    fn default() -> VerifyConfig {
        VerifyConfig {
            size: true,
            shape_accept: true,
            histogram: true,
            traversal: true,
        }
    }
}

impl VerifyConfig {
    /// Every stage disabled: verification is pure exact TED. The oracle
    /// configuration of the filter-soundness property tests.
    pub const NONE: VerifyConfig = VerifyConfig {
        size: false,
        shape_accept: false,
        histogram: false,
        traversal: false,
    };

    /// Every stage enabled (the default chain, as a `const`).
    pub const ALL: VerifyConfig = VerifyConfig {
        size: true,
        shape_accept: true,
        histogram: true,
        traversal: true,
    };
}

/// The adaptive, telemetry-driven execution layer (ROADMAP item 3).
///
/// Everything here is **off by default**, so the static configuration
/// stays the property-tested reference path. Each knob feeds observed
/// run statistics back into a decision the static engine hard-codes:
///
/// * [`reorder_chain`] lets [`crate::VerifyEngine`] re-rank its
///   *lower-bound* filter stages every [`reorder_every`] checks by
///   observed kills-per-cost. Reordering independent sound bounds is
///   always correctness-preserving — a pair is rejected by *some* stage
///   iff any bound exceeds τ, regardless of evaluation order — so only
///   filter cost (and per-stage kill attribution) changes, never the
///   result pairs, the candidate counts, or the exact-TED call count.
/// * [`balanced_shards`] derives the size-class→shard map of
///   `tsj-shard`'s `ShardedIndex` from the observed posting-mass
///   histogram (greedy bin-packing, largest class first) instead of the
///   fixed multiplicative hash, evening out per-shard load under skewed
///   size distributions. Routing changes which shard owns a class, not
///   which postings exist, so results stay bit-identical.
///
/// The top-k join mode ([`crate::partsj_topk`]) is threshold-free by
/// construction and therefore has no flag here: it always adapts its
/// effective τ to the current k-th best distance.
///
/// [`reorder_chain`]: AdaptiveConfig::reorder_chain
/// [`reorder_every`]: AdaptiveConfig::reorder_every
/// [`balanced_shards`]: AdaptiveConfig::balanced_shards
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveConfig {
    /// Re-rank the verify chain's lower-bound stages by observed
    /// kills-per-cost.
    pub reorder_chain: bool,
    /// Checks between chain re-rankings (ignored unless
    /// [`AdaptiveConfig::reorder_chain`] is set; `0` is treated as the
    /// default period).
    pub reorder_every: u32,
    /// Derive the shard map from the observed size histogram at index
    /// build time (sharded/frozen joins and the catalog; the streaming
    /// index keeps the hash map — it never sees the histogram up front).
    pub balanced_shards: bool,
}

impl AdaptiveConfig {
    /// Everything off: the static reference configuration.
    pub const OFF: AdaptiveConfig = AdaptiveConfig {
        reorder_chain: false,
        reorder_every: 256,
        balanced_shards: false,
    };

    /// Everything on, with the default reordering period.
    pub const FULL: AdaptiveConfig = AdaptiveConfig {
        reorder_chain: true,
        reorder_every: 256,
        balanced_shards: true,
    };
}

impl Default for AdaptiveConfig {
    fn default() -> AdaptiveConfig {
        AdaptiveConfig::OFF
    }
}

/// Full configuration of a PartSJ run.
#[derive(Debug, Clone, Copy)]
pub struct PartSjConfig {
    /// Postorder-pruning window policy.
    pub window: WindowPolicy,
    /// Partitioning scheme.
    pub partitioning: PartitionScheme,
    /// Matching semantics for absent child slots.
    pub matching: MatchSemantics,
    /// Collections smaller than this run [`crate::partsj_join_parallel`]
    /// sequentially — thread/channel setup costs more than it saves on
    /// tiny inputs.
    pub parallel_fallback: usize,
    /// Candidate pairs per batch sent to the parallel verifier pool.
    /// Batching amortizes channel synchronization across many pairs.
    pub verify_batch: usize,
    /// Which verification filter stages run before exact TED.
    pub verify: VerifyConfig,
    /// The telemetry-driven adaptive layer (default off — the static
    /// path is the property-tested reference).
    pub adaptive: AdaptiveConfig,
}

impl Default for PartSjConfig {
    fn default() -> PartSjConfig {
        PartSjConfig {
            window: WindowPolicy::default(),
            partitioning: PartitionScheme::default(),
            matching: MatchSemantics::default(),
            parallel_fallback: 64,
            verify_batch: 64,
            verify: VerifyConfig::default(),
            adaptive: AdaptiveConfig::default(),
        }
    }
}

impl PartSjConfig {
    /// Default configuration with an explicit window policy — the common
    /// shape of the ablation drivers and window-sweep tests.
    pub fn with_window(window: WindowPolicy) -> PartSjConfig {
        PartSjConfig {
            window,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_provably_complete() {
        let config = PartSjConfig::default();
        assert_eq!(config.window, WindowPolicy::Safe);
        assert_eq!(config.partitioning, PartitionScheme::MaxMin);
        assert_eq!(config.matching, MatchSemantics::Exact);
        assert!(config.parallel_fallback > 0);
        assert!(config.verify_batch > 0);
        assert_eq!(config.verify, VerifyConfig::default());
        assert_eq!(config.adaptive, AdaptiveConfig::OFF, "adaptivity is opt-in");
    }

    #[test]
    fn adaptive_presets_cover_both_extremes() {
        let (off, full) = (AdaptiveConfig::OFF, AdaptiveConfig::FULL);
        assert!(!off.reorder_chain && !off.balanced_shards);
        assert!(full.reorder_chain && full.balanced_shards);
        assert!(full.reorder_every > 0);
    }

    #[test]
    fn default_chain_enables_every_stage() {
        let verify = VerifyConfig::default();
        assert!(verify.size && verify.shape_accept && verify.histogram && verify.traversal);
        let none = VerifyConfig::NONE;
        assert!(!(none.size || none.shape_accept || none.histogram || none.traversal));
    }
}
