//! Probing a **frozen** left side: the shared probe + verify driver
//! behind [`crate::sharded_rs_join`] and `tsj-catalog`'s
//! `Catalog::join`.
//!
//! Once a left collection has been partitioned and loaded into a
//! [`ShardedIndex`], the remaining work of an R×S join is independent of
//! *how* the index came to be — built moments ago or deserialized from a
//! snapshot. [`frozen_rs_join`] owns that second half: right trees probe
//! the frozen shards (inline, or fanned out over scoped probe workers
//! feeding the bounded-channel verify pool), candidates are verified
//! through one [`VerifyEngine`] filter chain per verifier, and the
//! outcome is a bipartite [`JoinOutcome`].
//!
//! The probe threshold `tau` is a **parameter**, not a property of the
//! index: postings are registered once with the freeze-time half-width,
//! and any query threshold `τ_q ≤ τ_freeze` only narrows the probed size
//! window `[|T| − τ_q, |T| + τ_q]`, so the candidate set stays complete
//! (the freeze-time partitioning produces `2τ_f + 1 ≥ 2τ_q + 1`
//! subgraphs — more than `τ_q` edits can touch) and exact verification
//! at `τ_q` makes the result exact. `tsj-catalog` relies on this to
//! serve per-query thresholds from one snapshot.

use crate::index::{balanced_map_for, ShardConfig, ShardedIndex};
use crate::join::build_subgraph_lists;
use crossbeam::channel;
use partsj::probe::ProbeCounters;
use partsj::subgraph::Subgraph;
use partsj::{
    LayerId, MatchCache, PartSjConfig, ProbeScratch, ProbeVerify, StampSink, VerifyData,
    VerifyEngine,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;
use tsj_ted::{JoinOutcome, JoinStats, TreeIdx};
use tsj_tree::{BinaryTree, FxHashMap, Tree};

/// Right trees claimed per cursor bump.
const CLAIM_CHUNK: usize = 4;

/// The shared build phase of [`crate::sharded_rs_join`] and
/// `tsj-catalog`'s freeze: δ-partitions `left` (fanned out over the
/// configured probe workers), bulk-loads the subgraphs into a fresh
/// **static** (no-replay) [`ShardedIndex`], and returns it together
/// with the side list of trees too small to partition, grouped by
/// size. Keeping this in one place is what keeps a frozen catalog
/// bit-identical to the direct join — both sides build through it.
pub fn build_frozen_left(
    left: &[Tree],
    tau: u32,
    config: &PartSjConfig,
    shard_cfg: &ShardConfig,
) -> (ShardedIndex, FxHashMap<u32, Vec<TreeIdx>>) {
    let delta = 2 * tau as usize + 1;
    let probe_threads = shard_cfg.resolved_probe_threads();
    let binaries: Vec<BinaryTree> = left.iter().map(BinaryTree::from_tree).collect();
    let posts: Vec<Vec<u32>> = left.iter().map(Tree::postorder_numbers).collect();
    let mut lists = build_subgraph_lists(left, &binaries, &posts, delta, config, probe_threads);
    let mut small_by_size: FxHashMap<u32, Vec<TreeIdx>> = FxHashMap::default();
    let mut items: Vec<(TreeIdx, u32, Vec<Subgraph>)> = Vec::new();
    for (i, list) in lists.iter_mut().enumerate() {
        let size = left[i].len() as u32;
        match list.take() {
            Some(subgraphs) => items.push((i as TreeIdx, size, subgraphs)),
            None => small_by_size.entry(size).or_default().push(i as TreeIdx),
        }
    }
    let mut index = ShardedIndex::new(tau, config.window, shard_cfg).without_replay();
    if config.adaptive.balanced_shards {
        // The freeze sees the full size histogram up front — derive the
        // balanced routing before any posting lands. The map travels
        // with the snapshot (`tsj-catalog` round-trips it), so loads
        // probe the same shards the freeze filled.
        index
            .set_shard_map(balanced_map_for(&items, index.shard_count()))
            .expect("empty index accepts a validated map");
    }
    index.insert_all(items, probe_threads > 1);
    (index, small_by_size)
}

/// A frozen left side, ready to be probed by any number of right
/// collections: the sharded index over the left trees' subgraphs, the
/// side list of left trees too small to partition, and the left trees'
/// precomputed verification inputs.
#[derive(Debug, Clone, Copy)]
pub struct FrozenLeft<'a> {
    /// The (no longer mutated) sharded subgraph index over the left
    /// collection.
    pub index: &'a ShardedIndex,
    /// Left trees below the partitioning threshold `δ`, grouped by size.
    pub small_by_size: &'a FxHashMap<u32, Vec<TreeIdx>>,
    /// Per-left-tree verification inputs, indexed by left tree id.
    pub left_data: &'a [VerifyData],
}

/// Reusable scratch for [`frozen_rs_join_seq`]: the O(left) dedup stamp
/// array, the per-shard match caches, the probe-tree preparation buffers
/// and the probe tree's verification inputs. A serving loop holding one
/// of these (plus a [`VerifyEngine`]) across repeated joins allocates
/// nothing proportional to the frozen side or the probe trees in steady
/// state — only the result pairs the caller keeps.
#[derive(Debug, Default)]
pub struct FrozenJoinScratch {
    stamp: Vec<TreeIdx>,
    caches: Vec<MatchCache>,
    shard_scratch: Vec<usize>,
    layer_scratch: Vec<LayerId>,
    candidates: Vec<TreeIdx>,
    probe: ProbeScratch,
    probe_verify: ProbeVerify,
}

impl FrozenJoinScratch {
    /// An empty scratch; buffers are grown on first use.
    pub fn new() -> FrozenJoinScratch {
        FrozenJoinScratch::default()
    }
}

/// The inline (single-thread) half of [`frozen_rs_join`], exposed so
/// serving loops can reuse one engine and one [`FrozenJoinScratch`]
/// across repeated batch joins: result pairs are appended to `pairs`
/// (cleared first) and the returned [`JoinStats`] cover only this call
/// (the engine's counters are reset at entry; its learned adaptive
/// stage order is kept).
///
/// Bit-identical (pairs *and* candidate/stage counters) to
/// [`frozen_rs_join`] over the same inputs.
pub fn frozen_rs_join_seq(
    left: &FrozenLeft<'_>,
    right: &[Tree],
    tau: u32,
    config: &PartSjConfig,
    verify: &mut VerifyEngine,
    scratch: &mut FrozenJoinScratch,
    pairs: &mut Vec<(TreeIdx, TreeIdx)>,
) -> JoinStats {
    let mut stats = JoinStats::default();
    let total_start = Instant::now();
    let index = left.index;
    let small_by_size = left.small_by_size;
    let left_data = left.left_data;

    verify.set_tau(tau);
    verify.reset_counters();
    pairs.clear();
    // Stale markers from a previous join must not dedup this one's
    // candidates: refill with the never-used sentinel (a fill, not an
    // allocation, once the buffer has grown to the frozen side's size).
    scratch.stamp.clear();
    scratch.stamp.resize(left_data.len(), TreeIdx::MAX);
    if scratch.caches.len() != index.shard_count() {
        scratch.caches = (0..index.shard_count())
            .map(|_| MatchCache::new())
            .collect();
    }
    let mut counters = ProbeCounters::default();
    let mut candidate_time = total_start.elapsed();

    for (j, tree) in right.iter().enumerate() {
        let probe_start = Instant::now();
        let marker = j as TreeIdx;
        let size_j = tree.len() as u32;
        let (lo, hi) = partsj::window_of(size_j, tau);
        scratch.candidates.clear();
        for n in lo..=hi {
            if let Some(list) = small_by_size.get(&n) {
                for &i in list {
                    if scratch.stamp[i as usize] != marker {
                        scratch.stamp[i as usize] = marker;
                        scratch.candidates.push(i);
                    }
                }
            }
        }
        let (binary, posts) = scratch.probe.prepare(tree);
        let mut sink = StampSink {
            stamp: &mut scratch.stamp,
            marker,
            candidates: &mut scratch.candidates,
        };
        index.probe_tree(
            binary,
            posts,
            size_j,
            lo,
            hi,
            config.matching,
            &mut scratch.caches,
            &mut scratch.shard_scratch,
            &mut scratch.layer_scratch,
            &mut counters,
            &mut sink,
        );
        stats.candidates += scratch.candidates.len() as u64;
        candidate_time += probe_start.elapsed();

        let verify_start = Instant::now();
        let data_j = scratch.probe_verify.prepare(tree, &config.verify);
        for &i in &scratch.candidates {
            if verify.check(&left_data[i as usize], data_j).is_some() {
                pairs.push((i, j as TreeIdx));
            }
        }
        stats.verify_time += verify_start.elapsed();
    }
    // Same normalization as `JoinOutcome::new_bipartite`, so callers
    // holding the raw vector see identical results.
    pairs.sort_unstable();
    pairs.dedup();
    stats.results = pairs.len() as u64;
    stats.pairs_examined = stats.candidates;
    stats.candidate_time = candidate_time;
    verify.fold_into(&mut stats);
    stats
}

/// R×S join of `right` against a frozen left side: all `(i, j)` with
/// `TED(left[i], right[j]) ≤ tau`, where `tau` may be any threshold not
/// exceeding the one the left side was frozen for (callers enforce
/// that; see the module docs for why smaller thresholds stay complete).
///
/// With `probe_threads > 1` and `right.len() ≥ config.parallel_fallback`
/// probing fans out over scoped workers feeding `verify_threads`
/// verifiers through the bounded channel; otherwise everything runs
/// inline. Results are bit-identical either way.
pub fn frozen_rs_join(
    left: &FrozenLeft<'_>,
    right: &[Tree],
    tau: u32,
    config: &PartSjConfig,
    probe_threads: usize,
    verify_threads: usize,
) -> JoinOutcome {
    let mut stats = JoinStats::default();
    let total_start = Instant::now();
    let index = left.index;
    let small_by_size = left.small_by_size;
    let left_data = left.left_data;
    let left_len = left_data.len();

    let parallel = probe_threads > 1 && right.len() >= config.parallel_fallback;
    if !parallel {
        let mut verify = VerifyEngine::new(tau, config);
        let mut pairs: Vec<(TreeIdx, TreeIdx)> = Vec::new();
        let stats = frozen_rs_join_seq(
            left,
            right,
            tau,
            config,
            &mut verify,
            &mut FrozenJoinScratch::new(),
            &mut pairs,
        );
        return JoinOutcome::new_bipartite(pairs, stats);
    }

    // Parallel verifiers pick right trees out of order, so every right
    // tree's verification inputs are materialized up front, through one
    // shared set of build temporaries.
    let right_data: Vec<VerifyData> = VerifyData::batch_for_config(right, &config.verify);
    let batch_size = config.verify_batch.max(1);
    let (tx, rx) = channel::bounded::<Vec<(TreeIdx, TreeIdx)>>(verify_threads * 4);
    let cursor = AtomicUsize::new(0);
    let (pairs, candidates_total, engines, probe_wall) = crossbeam::scope(|scope| {
        let verifiers: Vec<_> = (0..verify_threads)
            .map(|_| {
                let rx = rx.clone();
                let right_data = &right_data;
                scope.spawn(move |_| {
                    // One filter-chain engine per verify worker.
                    let mut verify = VerifyEngine::new(tau, config);
                    let mut found = Vec::new();
                    while let Ok(batch) = rx.recv() {
                        for (i, j) in batch {
                            let (iu, ju) = (i as usize, j as usize);
                            if verify.check(&left_data[iu], &right_data[ju]).is_some() {
                                found.push((i, j));
                            }
                        }
                    }
                    (found, verify)
                })
            })
            .collect();
        drop(rx);

        let probers: Vec<_> = (0..probe_threads)
            .map(|_| {
                let tx = tx.clone();
                let cursor = &cursor;
                scope.spawn(move |_| {
                    let mut stamp: Vec<TreeIdx> = vec![TreeIdx::MAX; left_len];
                    let mut caches: Vec<MatchCache> = (0..index.shard_count())
                        .map(|_| MatchCache::new())
                        .collect();
                    let (mut shard_scratch, mut layer_scratch) =
                        (Vec::new(), Vec::<LayerId>::new());
                    let mut candidates: Vec<TreeIdx> = Vec::new();
                    let mut counters = ProbeCounters::default();
                    let mut batch: Vec<(TreeIdx, TreeIdx)> = Vec::with_capacity(batch_size);
                    let mut candidates_total = 0u64;
                    let mut probe_scratch = ProbeScratch::new();
                    loop {
                        let start = cursor.fetch_add(CLAIM_CHUNK, Ordering::Relaxed);
                        if start >= right.len() {
                            break;
                        }
                        for j in start..(start + CLAIM_CHUNK).min(right.len()) {
                            let tree = &right[j];
                            let marker = j as TreeIdx;
                            let size_j = tree.len() as u32;
                            let (lo, hi) = partsj::window_of(size_j, tau);
                            candidates.clear();
                            for n in lo..=hi {
                                if let Some(list) = small_by_size.get(&n) {
                                    for &i in list {
                                        if stamp[i as usize] != marker {
                                            stamp[i as usize] = marker;
                                            candidates.push(i);
                                        }
                                    }
                                }
                            }
                            let (binary, posts) = probe_scratch.prepare(tree);
                            let mut sink = StampSink {
                                stamp: &mut stamp,
                                marker,
                                candidates: &mut candidates,
                            };
                            index.probe_tree(
                                binary,
                                posts,
                                size_j,
                                lo,
                                hi,
                                config.matching,
                                &mut caches,
                                &mut shard_scratch,
                                &mut layer_scratch,
                                &mut counters,
                                &mut sink,
                            );
                            candidates_total += candidates.len() as u64;
                            for &i in &candidates {
                                batch.push((i, marker));
                                if batch.len() >= batch_size {
                                    let full = std::mem::replace(
                                        &mut batch,
                                        Vec::with_capacity(batch_size),
                                    );
                                    tx.send(full).expect("verifier pool alive");
                                }
                            }
                        }
                    }
                    if !batch.is_empty() {
                        tx.send(batch).expect("verifier pool alive");
                    }
                    candidates_total
                })
            })
            .collect();
        drop(tx);

        let mut candidates_total = 0u64;
        for prober in probers {
            candidates_total += prober.join().expect("probe worker panicked");
        }
        let probe_wall = total_start.elapsed();
        let mut pairs = Vec::new();
        let mut engines = Vec::new();
        for verifier in verifiers {
            let (found, engine) = verifier.join().expect("verifier panicked");
            pairs.extend(found);
            engines.push(engine);
        }
        (pairs, candidates_total, engines, probe_wall)
    })
    .expect("frozen rs join scope");

    stats.candidates = candidates_total;
    stats.pairs_examined = candidates_total;
    for engine in &engines {
        engine.fold_into(&mut stats);
    }
    stats.candidate_time = probe_wall;
    stats.verify_time = total_start.elapsed().saturating_sub(probe_wall);
    JoinOutcome::new_bipartite(pairs, stats)
}
