//! The versioned snapshot layout and its section codecs.
//!
//! A snapshot file is a fixed header, a section directory, and one byte
//! section per payload:
//!
//! ```text
//! magic "TSJCATLG" | version u32 | tau u32 | window u8 | shards u32 | trees u32
//! directory: (offset u64, len u64, fnv1a64 checksum u64) × (3 + shards)
//! section 0: label store      — interned label strings, in id order
//! section 1: tree store       — every left tree, flattened preorder
//! section 2: shard map        — the size-class→shard routing
//! section 3+s: shard s        — the shard's SubgraphIndex dump
//! ```
//!
//! Format version 2 added the explicit shard-map section: earlier
//! snapshots implied hash routing, but a catalog frozen with a balanced
//! [`ShardMap`] places size classes where only the map can find them
//! again, so the routing must travel with the file (and is validated
//! against every shard's size classes on load). Version-1 files are
//! rejected with [`CatalogError::UnsupportedVersion`] — re-freeze to
//! migrate.
//!
//! Every section is independently checksummed and independently
//! decodable — a shard section is exactly the unit a multi-node
//! deployment ships to the node that owns the shard. [`SnapshotReader`]
//! parses the header eagerly but decodes sections only on access, so a
//! consumer can read the tree store without paying for shards it does
//! not own.
//!
//! The header records the freeze threshold `tau` and the window policy;
//! both are cross-validated against every shard dump on load. Postings
//! inside a shard are stored verbatim (bucket order, sorted-prefix
//! split), which is what makes a loaded catalog probe **bit-identically**
//! to the index it was frozen from.

use crate::error::CatalogError;
use crate::format::{fnv1a64, ByteReader, ByteWriter};
use partsj::{
    BucketDump, ComponentDump, IndexDump, LayerDump, SubgraphIndex, SubgraphMeta, WindowPolicy,
};
use partsj::{ChildKind, SgNode};
use std::path::Path;
use tsj_shard::ShardMap;
use tsj_tree::{Label, LabelInterner, Tree};

/// Leading bytes of every catalog snapshot.
pub const MAGIC: [u8; 8] = *b"TSJCATLG";

/// The one format version this build writes and reads. Version 2 added
/// the explicit shard-map section (see the [module docs](self)).
pub const FORMAT_VERSION: u32 = 2;

const HEADER_FIXED_LEN: usize = 8 + 4 + 4 + 1 + 4 + 4;
const DIRECTORY_ENTRY_LEN: usize = 8 + 8 + 8;

fn encode_window(window: WindowPolicy) -> u8 {
    match window {
        WindowPolicy::Safe => 0,
        WindowPolicy::Tight => 1,
        WindowPolicy::PaperAbsolute => 2,
    }
}

fn decode_window(tag: u8) -> Result<WindowPolicy, CatalogError> {
    match tag {
        0 => Ok(WindowPolicy::Safe),
        1 => Ok(WindowPolicy::Tight),
        2 => Ok(WindowPolicy::PaperAbsolute),
        other => Err(CatalogError::Corrupt {
            context: format!("unknown window policy tag {other}"),
        }),
    }
}

fn encode_child_kind(kind: ChildKind) -> u8 {
    match kind {
        ChildKind::Absent => 0,
        ChildKind::Component => 1,
        ChildKind::Bridge => 2,
    }
}

fn decode_child_kind(tag: u8) -> Result<ChildKind, CatalogError> {
    match tag {
        0 => Ok(ChildKind::Absent),
        1 => Ok(ChildKind::Component),
        2 => Ok(ChildKind::Bridge),
        other => Err(CatalogError::Corrupt {
            context: format!("unknown child-kind tag {other}"),
        }),
    }
}

fn decode_label(raw: u32, context: &str) -> Result<Label, CatalogError> {
    if raw > Label::MAX_LABELS {
        return Err(CatalogError::Corrupt {
            context: format!("{context}: label id {raw} out of range"),
        });
    }
    Ok(Label::from_raw(raw))
}

/// Encodes the label store: count, then each name as `len u32 + utf8`.
pub fn encode_labels(labels: &LabelInterner) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(labels.len() as u32);
    for (_, name) in labels.iter() {
        w.put_u32(name.len() as u32);
        w.put_bytes(name.as_bytes());
    }
    w.into_bytes()
}

/// Decodes a label store; interning order reproduces the original ids.
pub fn decode_labels(bytes: &[u8]) -> Result<LabelInterner, CatalogError> {
    let mut r = ByteReader::new(bytes);
    let count = r.get_count(4, "label store")?;
    if count as u64 > u64::from(Label::MAX_LABELS) {
        return Err(CatalogError::Corrupt {
            context: format!("label store claims {count} labels"),
        });
    }
    let mut labels = LabelInterner::new();
    for i in 0..count {
        let len = r.get_u32("label length")? as usize;
        let raw = r.get_bytes(len, "label bytes")?;
        let name = std::str::from_utf8(raw).map_err(|_| CatalogError::Corrupt {
            context: format!("label {i} is not valid UTF-8"),
        })?;
        let label = labels.intern(name);
        if label.raw() != i as u32 + 1 {
            return Err(CatalogError::Corrupt {
                context: format!("label {i} ({name:?}) duplicates an earlier label"),
            });
        }
    }
    if r.remaining() != 0 {
        return Err(CatalogError::Corrupt {
            context: format!("{} trailing bytes after the label store", r.remaining()),
        });
    }
    Ok(labels)
}

/// Encodes the tree store: tree count, then each tree as its
/// [`Tree::flatten`] sequence (`node count u32`, then per node
/// `label u32 + parent u32` with `u32::MAX` marking the root).
pub fn encode_trees(trees: &[Tree]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(trees.len() as u32);
    for tree in trees {
        let flat = tree.flatten();
        w.put_u32(flat.len() as u32);
        for (label, parent) in flat {
            w.put_u32(label.raw());
            w.put_u32(parent.unwrap_or(u32::MAX));
        }
    }
    w.into_bytes()
}

/// Decodes a tree store.
pub fn decode_trees(bytes: &[u8]) -> Result<Vec<Tree>, CatalogError> {
    let mut r = ByteReader::new(bytes);
    let count = r.get_count(4, "tree store")?;
    let mut trees = Vec::with_capacity(count);
    for t in 0..count {
        let nodes = r.get_count(8, "tree node list")?;
        let mut flat = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            let label = decode_label(r.get_u32("tree node label")?, "tree node")?;
            let parent = match r.get_u32("tree node parent")? {
                u32::MAX => None,
                p => Some(p),
            };
            flat.push((label, parent));
        }
        let tree = Tree::from_flattened(&flat).map_err(|e| CatalogError::Corrupt {
            context: format!("tree {t}: {e}"),
        })?;
        trees.push(tree);
    }
    if r.remaining() != 0 {
        return Err(CatalogError::Corrupt {
            context: format!("{} trailing bytes after the tree store", r.remaining()),
        });
    }
    Ok(trees)
}

/// Encodes the shard-map section: a routing tag, then (for balanced
/// maps) the explicit `(size class, shard)` assignments in ascending
/// size order.
pub fn encode_shard_map(map: &ShardMap) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match map {
        ShardMap::Hash => w.put_u8(0),
        ShardMap::Balanced(pairs) => {
            w.put_u8(1);
            w.put_u32(pairs.len() as u32);
            for &(size, shard) in pairs {
                w.put_u32(size);
                w.put_u32(shard);
            }
        }
    }
    w.into_bytes()
}

/// Decodes the shard-map section and validates it against the
/// snapshot's shard count: an out-of-range shard assignment or an
/// unsorted entry list is a typed [`CatalogError::Corrupt`], never a
/// panic (a later probe would otherwise index past the shard vector).
pub fn decode_shard_map(bytes: &[u8], shard_count: usize) -> Result<ShardMap, CatalogError> {
    let mut r = ByteReader::new(bytes);
    let map = match r.get_u8("shard map tag")? {
        0 => ShardMap::Hash,
        1 => {
            let count = r.get_count(8, "shard map entries")?;
            let mut pairs = Vec::with_capacity(count);
            for _ in 0..count {
                let size = r.get_u32("shard map size class")?;
                let shard = r.get_u32("shard map target shard")?;
                pairs.push((size, shard));
            }
            ShardMap::Balanced(pairs)
        }
        other => {
            return Err(CatalogError::Corrupt {
                context: format!("unknown shard-map tag {other}"),
            })
        }
    };
    if r.remaining() != 0 {
        return Err(CatalogError::Corrupt {
            context: format!("{} trailing bytes after the shard map", r.remaining()),
        });
    }
    map.validate(shard_count)
        .map_err(|context| CatalogError::Corrupt { context })?;
    Ok(map)
}

/// Encodes one shard's [`IndexDump`].
pub fn encode_shard(dump: &IndexDump) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(dump.tau);
    w.put_u8(encode_window(dump.window));
    w.put_u32(dump.size_layers.len() as u32);
    for &(size, layer) in &dump.size_layers {
        w.put_u32(size);
        w.put_u32(layer);
    }
    w.put_u32(dump.layers.len() as u32);
    for layer in &dump.layers {
        w.put_u32(layer.buckets.len() as u32);
        for bucket in &layer.buckets {
            w.put_u32(bucket.sorted_len);
            w.put_u32(bucket.postings.len() as u32);
            for &(twig, handle) in &bucket.postings {
                w.put_u64(twig);
                w.put_u32(handle);
            }
        }
    }
    w.put_u32(dump.metas.len() as u32);
    for meta in &dump.metas {
        w.put_u32(meta.tree);
        w.put_u32(meta.component);
        w.put_u16(meta.ordinal);
    }
    w.put_u32(dump.components.len() as u32);
    for c in &dump.components {
        w.put_u32(c.start);
        w.put_u32(c.len);
        w.put_u8(c.incoming);
    }
    w.put_u32(dump.arena.len() as u32);
    for node in &dump.arena {
        w.put_u32(node.label.raw());
        w.put_u8(encode_child_kind(node.left));
        w.put_u8(encode_child_kind(node.right));
    }
    w.put_u64(dump.registrations);
    w.into_bytes()
}

/// Decodes one shard section back into a validated [`SubgraphIndex`].
pub fn decode_shard(bytes: &[u8]) -> Result<SubgraphIndex, CatalogError> {
    let mut r = ByteReader::new(bytes);
    let tau = r.get_u32("shard tau")?;
    let window = decode_window(r.get_u8("shard window")?)?;
    let size_count = r.get_count(8, "shard size classes")?;
    let mut size_layers = Vec::with_capacity(size_count);
    for _ in 0..size_count {
        let size = r.get_u32("size class")?;
        let layer = r.get_u32("layer id")?;
        size_layers.push((size, layer));
    }
    let layer_count = r.get_count(4, "shard layers")?;
    let mut layers = Vec::with_capacity(layer_count);
    for _ in 0..layer_count {
        let bucket_count = r.get_count(8, "layer buckets")?;
        let mut buckets = Vec::with_capacity(bucket_count);
        for _ in 0..bucket_count {
            let sorted_len = r.get_u32("bucket sorted prefix")?;
            let posting_count = r.get_count(12, "bucket postings")?;
            let mut postings = Vec::with_capacity(posting_count);
            for _ in 0..posting_count {
                let twig = r.get_u64("posting twig")?;
                let handle = r.get_u32("posting handle")?;
                postings.push((twig, handle));
            }
            buckets.push(BucketDump {
                postings,
                sorted_len,
            });
        }
        layers.push(LayerDump { buckets });
    }
    let meta_count = r.get_count(10, "shard metas")?;
    let mut metas = Vec::with_capacity(meta_count);
    for _ in 0..meta_count {
        let tree = r.get_u32("meta tree")?;
        let component = r.get_u32("meta component")?;
        let ordinal = r.get_u16("meta ordinal")?;
        metas.push(SubgraphMeta {
            tree,
            component,
            ordinal,
        });
    }
    let component_count = r.get_count(9, "shard components")?;
    let mut components = Vec::with_capacity(component_count);
    for _ in 0..component_count {
        let start = r.get_u32("component start")?;
        let len = r.get_u32("component length")?;
        let incoming = r.get_u8("component incoming")?;
        components.push(ComponentDump {
            start,
            len,
            incoming,
        });
    }
    let arena_count = r.get_count(6, "shard arena")?;
    let mut arena = Vec::with_capacity(arena_count);
    for _ in 0..arena_count {
        let label = decode_label(r.get_u32("arena node label")?, "arena node")?;
        let left = decode_child_kind(r.get_u8("arena node left")?)?;
        let right = decode_child_kind(r.get_u8("arena node right")?)?;
        arena.push(SgNode { label, left, right });
    }
    let registrations = r.get_u64("shard registrations")?;
    if r.remaining() != 0 {
        return Err(CatalogError::Corrupt {
            context: format!("{} trailing bytes after the shard dump", r.remaining()),
        });
    }
    SubgraphIndex::restore(IndexDump {
        tau,
        window,
        size_layers,
        layers,
        metas,
        components,
        arena,
        registrations,
    })
    .map_err(|context| CatalogError::Corrupt { context })
}

/// Assembles a whole snapshot file from its already-encoded sections.
///
/// `sections[0]` is the label store, `sections[1]` the tree store,
/// `sections[2]` the shard map and `sections[3..]` one entry per shard
/// (so `tau`/`window`/tree count in the header describe them all).
pub fn assemble(tau: u32, window: WindowPolicy, tree_count: u32, sections: &[Vec<u8>]) -> Vec<u8> {
    let shard_count = (sections.len() - 3) as u32;
    let mut w = ByteWriter::new();
    w.put_bytes(&MAGIC);
    w.put_u32(FORMAT_VERSION);
    w.put_u32(tau);
    w.put_u8(encode_window(window));
    w.put_u32(shard_count);
    w.put_u32(tree_count);
    let mut offset = (HEADER_FIXED_LEN + DIRECTORY_ENTRY_LEN * sections.len()) as u64;
    for section in sections {
        w.put_u64(offset);
        w.put_u64(section.len() as u64);
        w.put_u64(fnv1a64(section));
        offset += section.len() as u64;
    }
    for section in sections {
        w.put_bytes(section);
    }
    w.into_bytes()
}

/// One directory entry: where a section lives and what it must hash to.
#[derive(Debug, Clone, Copy)]
struct SectionEntry {
    offset: u64,
    len: u64,
    checksum: u64,
}

/// Parsed snapshot header plus the owned file bytes; sections decode
/// lazily (and checksum-verified) on access.
///
/// This is the distribution-friendly view of a snapshot: a node that
/// owns shard `s` calls [`SnapshotReader::shard`]`(s)` and never touches
/// the other shards' bytes. [`crate::Catalog::load`] uses the same
/// reader to decode everything.
#[derive(Debug)]
pub struct SnapshotReader {
    bytes: Vec<u8>,
    tau: u32,
    window: WindowPolicy,
    tree_count: u32,
    sections: Vec<SectionEntry>,
}

impl SnapshotReader {
    /// Parses the header and section directory of `bytes`.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<SnapshotReader, CatalogError> {
        let mut r = ByteReader::new(&bytes);
        let magic = r.get_bytes(8, "magic")?;
        if magic != MAGIC {
            return Err(CatalogError::BadMagic {
                found: magic.try_into().unwrap(),
            });
        }
        let version = r.get_u32("format version")?;
        if version != FORMAT_VERSION {
            return Err(CatalogError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let tau = r.get_u32("header tau")?;
        let window = decode_window(r.get_u8("header window")?)?;
        let shard_count = r.get_u32("header shard count")?;
        let tree_count = r.get_u32("header tree count")?;
        let section_count = (shard_count as usize)
            .checked_add(3)
            .filter(|&n| n * DIRECTORY_ENTRY_LEN <= r.remaining())
            .ok_or(CatalogError::Truncated {
                context: "section directory",
            })?;
        let mut sections = Vec::with_capacity(section_count);
        for _ in 0..section_count {
            let offset = r.get_u64("section offset")?;
            let len = r.get_u64("section length")?;
            let checksum = r.get_u64("section checksum")?;
            let end = offset.checked_add(len);
            if end.is_none_or(|end| end > bytes.len() as u64) {
                return Err(CatalogError::Truncated {
                    context: "section body",
                });
            }
            sections.push(SectionEntry {
                offset,
                len,
                checksum,
            });
        }
        Ok(SnapshotReader {
            bytes,
            tau,
            window,
            tree_count,
            sections,
        })
    }

    /// Reads and parses a snapshot file.
    pub fn open(path: impl AsRef<Path>) -> Result<SnapshotReader, CatalogError> {
        SnapshotReader::from_bytes(std::fs::read(path)?)
    }

    /// The threshold the snapshot was frozen for.
    pub fn tau(&self) -> u32 {
        self.tau
    }

    /// The window policy the index was frozen under.
    pub fn window(&self) -> WindowPolicy {
        self.window
    }

    /// Number of shards in the snapshot.
    pub fn shard_count(&self) -> usize {
        self.sections.len() - 3
    }

    /// Number of trees in the tree store.
    pub fn tree_count(&self) -> usize {
        self.tree_count as usize
    }

    fn section(&self, idx: usize, name: &str) -> Result<&[u8], CatalogError> {
        let entry = self.sections[idx];
        let body = &self.bytes[entry.offset as usize..(entry.offset + entry.len) as usize];
        if fnv1a64(body) != entry.checksum {
            return Err(CatalogError::ChecksumMismatch {
                section: name.to_string(),
            });
        }
        Ok(body)
    }

    /// Decodes the label store (checksum-verified).
    pub fn labels(&self) -> Result<LabelInterner, CatalogError> {
        decode_labels(self.section(0, "labels")?)
    }

    /// Decodes the tree store (checksum-verified).
    pub fn trees(&self) -> Result<Vec<Tree>, CatalogError> {
        let trees = decode_trees(self.section(1, "trees")?)?;
        if trees.len() != self.tree_count as usize {
            return Err(CatalogError::Corrupt {
                context: format!(
                    "header promises {} trees but the store holds {}",
                    self.tree_count,
                    trees.len()
                ),
            });
        }
        Ok(trees)
    }

    /// Decodes the shard-map section (checksum-verified) and validates
    /// its assignments against the header's shard count.
    pub fn shard_map(&self) -> Result<ShardMap, CatalogError> {
        decode_shard_map(self.section(2, "shard-map")?, self.shard_count())
    }

    /// Byte range of shard `s`'s section body within the snapshot file —
    /// the span a corruption test (or a future partial-shipping
    /// transport) targets to touch exactly one shard. Same range check as
    /// [`SnapshotReader::shard`].
    pub fn shard_section_range(&self, s: usize) -> Result<std::ops::Range<usize>, CatalogError> {
        if s >= self.shard_count() {
            return Err(CatalogError::Corrupt {
                context: format!(
                    "shard {s} requested but the snapshot holds {}",
                    self.shard_count()
                ),
            });
        }
        let entry = self.sections[3 + s];
        Ok(entry.offset as usize..(entry.offset + entry.len) as usize)
    }

    /// Decodes shard `s` into a validated [`SubgraphIndex`]
    /// (checksum-verified) — the unit of multi-node placement. An
    /// out-of-range index is a typed error (a misconfigured node asking
    /// for a shard the snapshot does not hold), not a panic.
    pub fn shard(&self, s: usize) -> Result<SubgraphIndex, CatalogError> {
        if s >= self.shard_count() {
            return Err(CatalogError::Corrupt {
                context: format!(
                    "shard {s} requested but the snapshot holds {}",
                    self.shard_count()
                ),
            });
        }
        let index = decode_shard(self.section(3 + s, &format!("shard {s}"))?)?;
        if index.tau() != self.tau || index.window() != self.window {
            return Err(CatalogError::Corrupt {
                context: format!(
                    "shard {s} was frozen for (tau {}, {:?}) but the header says (tau {}, {:?})",
                    index.tau(),
                    index.window(),
                    self.tau,
                    self.window
                ),
            });
        }
        Ok(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsj_tree::parse_bracket;

    #[test]
    fn labels_round_trip() {
        let mut labels = LabelInterner::new();
        for name in ["html", "body", "ℓ-unicode", ""] {
            labels.intern(name);
        }
        let restored = decode_labels(&encode_labels(&labels)).unwrap();
        assert_eq!(restored.len(), labels.len());
        for (label, name) in labels.iter() {
            assert_eq!(restored.resolve(label), Some(name));
        }
    }

    #[test]
    fn trees_round_trip() {
        let mut labels = LabelInterner::new();
        let trees: Vec<Tree> = ["{a{b}{c}}", "{x}", "{a{b{c{d}}}{e}}"]
            .iter()
            .map(|s| parse_bracket(s, &mut labels).unwrap())
            .collect();
        let restored = decode_trees(&encode_trees(&trees)).unwrap();
        assert_eq!(restored.len(), trees.len());
        for (a, b) in trees.iter().zip(&restored) {
            assert!(a.structurally_eq(b));
        }
    }

    /// An empty, shardless snapshot: labels, trees and a hash shard map.
    fn empty_sections() -> Vec<Vec<u8>> {
        vec![Vec::new(), Vec::new(), encode_shard_map(&ShardMap::Hash)]
    }

    #[test]
    fn shard_map_round_trips_both_variants() {
        for map in [
            ShardMap::Hash,
            ShardMap::Balanced(vec![(3, 1), (7, 0), (9, 3)]),
        ] {
            let restored = decode_shard_map(&encode_shard_map(&map), 4).unwrap();
            assert_eq!(restored, map);
        }
    }

    #[test]
    fn shard_map_decoding_rejects_garbage() {
        // Unknown routing tag.
        assert!(matches!(
            decode_shard_map(&[9], 1),
            Err(CatalogError::Corrupt { context }) if context.contains("tag 9")
        ));
        // Trailing bytes after a complete map.
        let mut padded = encode_shard_map(&ShardMap::Hash);
        padded.push(0);
        assert!(matches!(
            decode_shard_map(&padded, 1),
            Err(CatalogError::Corrupt { context }) if context.contains("trailing")
        ));
        // An assignment pointing past the snapshot's shard count: the
        // "out-of-range size class" corruption case must be a typed
        // error, not a later out-of-bounds probe.
        let rogue = encode_shard_map(&ShardMap::Balanced(vec![(5, 7)]));
        assert!(matches!(
            decode_shard_map(&rogue, 2),
            Err(CatalogError::Corrupt { context }) if context.contains("shard 7")
        ));
        // Truncated mid-entry.
        let full = encode_shard_map(&ShardMap::Balanced(vec![(5, 0)]));
        assert!(matches!(
            decode_shard_map(&full[..full.len() - 2], 1),
            Err(CatalogError::Truncated { .. })
        ));
    }

    #[test]
    fn snapshot_carries_the_shard_map() {
        let map = ShardMap::Balanced(vec![(2, 1), (6, 0)]);
        let sections = vec![
            Vec::new(),
            Vec::new(),
            encode_shard_map(&map),
            Vec::new(),
            Vec::new(),
        ];
        let snapshot = assemble(1, WindowPolicy::Safe, 0, &sections);
        let reader = SnapshotReader::from_bytes(snapshot).unwrap();
        assert_eq!(reader.shard_count(), 2);
        assert_eq!(reader.shard_map().unwrap(), map);
    }

    #[test]
    fn header_rejects_foreign_and_future_files() {
        let snapshot = assemble(1, WindowPolicy::Safe, 0, &empty_sections());
        assert!(SnapshotReader::from_bytes(snapshot.clone()).is_ok());

        let mut foreign = snapshot.clone();
        foreign[0] = b'X';
        assert!(matches!(
            SnapshotReader::from_bytes(foreign),
            Err(CatalogError::BadMagic { .. })
        ));

        let mut future = snapshot.clone();
        future[8] = 99;
        assert!(matches!(
            SnapshotReader::from_bytes(future),
            Err(CatalogError::UnsupportedVersion { found: 99, .. })
        ));

        assert!(matches!(
            SnapshotReader::from_bytes(snapshot[..10].to_vec()),
            Err(CatalogError::Truncated { .. })
        ));
    }

    #[test]
    fn out_of_range_shard_is_a_typed_error() {
        let snapshot = assemble(1, WindowPolicy::Safe, 0, &empty_sections());
        let reader = SnapshotReader::from_bytes(snapshot).unwrap();
        assert_eq!(reader.shard_count(), 0);
        assert!(matches!(
            reader.shard(0),
            Err(CatalogError::Corrupt { context }) if context.contains("shard 0")
        ));
    }

    #[test]
    fn section_checksums_catch_bit_rot() {
        let mut labels = LabelInterner::new();
        let trees = vec![parse_bracket("{a{b}}", &mut labels).unwrap()];
        let sections = vec![
            encode_labels(&labels),
            encode_trees(&trees),
            encode_shard_map(&ShardMap::Hash),
        ];
        let mut snapshot = assemble(1, WindowPolicy::Safe, 1, &sections);
        let reader = SnapshotReader::from_bytes(snapshot.clone()).unwrap();
        assert!(reader.trees().is_ok());
        assert!(reader.shard_map().is_ok());

        // Flip one payload byte (the last byte belongs to the shard-map
        // section): the directory still parses, the section read reports
        // the rot — and the untouched sections keep decoding.
        let last = snapshot.len() - 1;
        snapshot[last] ^= 0xff;
        let reader = SnapshotReader::from_bytes(snapshot).unwrap();
        assert!(reader.trees().is_ok());
        assert!(matches!(
            reader.shard_map(),
            Err(CatalogError::ChecksumMismatch { section }) if section == "shard-map"
        ));
    }
}
