//! # tsj-baselines
//!
//! The two state-of-the-art competitor joins from §2 of *Scaling Similarity
//! Joins over Tree-Structured Data* (VLDB 2015), plus the brute-force
//! ground truth:
//!
//! * [`str_join`] — `STR`, the traversal-string lower-bound join of Guha
//!   et al. with banded string edit distances;
//! * [`set_join`] — `SET`, the binary-branch distance join of Yang et al.
//!   (`BIB ≤ 5τ` filter);
//! * [`brute_force_join`] / [`brute_force_join_parallel`] — the `REL`
//!   oracle (size filter + exact TED for every pair);
//! * [`kailing_join`] — the histogram filter family of Kailing et al.
//!   (reference \[16\]), included as an extension baseline.
//!
//! All joins share the size-sorted sliding-window driver in [`common`] and
//! return [`tsj_ted::JoinOutcome`] with the same split-phase timing.

#![warn(missing_docs)]

pub mod bruteforce;
pub mod common;
pub mod kailing;
pub mod setjoin;
pub mod strjoin;

pub use bruteforce::{brute_force_join, brute_force_join_parallel};
pub use common::{filter_verify_join, SizeOrder};
pub use kailing::{kailing_join, Histograms};
pub use setjoin::{bib_distance, binary_branch_bag, set_join, tree_branch_bag};
pub use strjoin::str_join;
