//! # tree-similarity-join
//!
//! A complete reproduction of **“Scaling Similarity Joins over
//! Tree-Structured Data”** (Yu Tang, Yilun Cai, Nikos Mamoulis — PVLDB
//! 8(11), VLDB 2015) as a production-quality Rust workspace.
//!
//! Given a collection of rooted ordered labeled trees and a threshold `τ`,
//! the similarity self-join reports every pair within tree edit distance
//! (TED) `τ`. The paper's contribution — **PartSJ** — dynamically
//! partitions each tree's left-child right-sibling representation into
//! `δ = 2τ + 1` balanced subgraphs and indexes them in a two-layer
//! (postorder × label-twig) structure; a pair is only verified when one
//! tree contains a subgraph of the other.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`tree`] (`tsj-tree`) — trees, labels, parsers, LC-RS transform;
//! * [`ted`] (`tsj-ted`) — Zhang–Shasha / hybrid TED, string edit
//!   distance, lower bounds;
//! * [`baselines`] (`tsj-baselines`) — the paper's competitors `STR` and
//!   `SET`, plus the brute-force oracle;
//! * [`partsj`] — the partition-based join itself;
//! * [`datagen`] (`tsj-datagen`) — workload generators for all four
//!   evaluation datasets.
//!
//! ## Quickstart
//!
//! ```
//! use tree_similarity_join::prelude::*;
//!
//! let mut labels = LabelInterner::new();
//! let trees: Vec<_> = ["{a{b}{c}}", "{a{b}{c}}", "{a{b}{z}}", "{x{y}}"]
//!     .iter()
//!     .map(|s| parse_bracket(s, &mut labels).unwrap())
//!     .collect();
//!
//! // All pairs within TED 1:
//! let outcome = partsj_join(&trees, 1);
//! assert_eq!(outcome.pairs, vec![(0, 1), (0, 2), (1, 2)]);
//! ```
//!
//! `JoinOutcome::pairs` is deterministic: every pair is normalized to
//! `(i, j)` with `i < j`, sorted lexicographically and deduplicated, so
//! results can be compared directly across methods and runs.

pub use partsj;
pub use tsj_baselines as baselines;
pub use tsj_datagen as datagen;
pub use tsj_ted as ted;
pub use tsj_tree as tree;

/// The most common imports in one place.
pub mod prelude {
    pub use partsj::{
        partsj_join, partsj_join_detailed, partsj_join_parallel, partsj_join_parallel_auto,
        partsj_join_rs, partsj_join_with, MatchSemantics, PartSjConfig, PartitionScheme,
        SearchIndex, StreamingJoin, WindowPolicy,
    };
    pub use tsj_baselines::{brute_force_join, set_join, str_join};
    pub use tsj_datagen::{
        collection_stats, sentiment_like, swissprot_like, synthetic, treebank_like, SyntheticParams,
    };
    pub use tsj_ted::{ted, JoinOutcome, JoinStats, TedEngine};
    pub use tsj_tree::{
        parse_bracket, parse_xmlish, to_bracket, BinaryTree, Label, LabelInterner, Tree,
        TreeBuilder,
    };
}
