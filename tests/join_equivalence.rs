//! Cross-crate integration: all four join implementations agree on every
//! dataset simulator, at every threshold, through the facade API.

use tree_similarity_join::prelude::*;

fn check_dataset(name: &str, trees: &[Tree]) {
    for tau in 1..=4u32 {
        let oracle = brute_force_join(trees, tau);
        let prt = partsj_join(trees, tau);
        let str_out = str_join(trees, tau);
        let set_out = set_join(trees, tau);
        assert_eq!(prt.pairs, oracle.pairs, "{name}: PRT diverged at tau {tau}");
        assert_eq!(
            str_out.pairs, oracle.pairs,
            "{name}: STR diverged at tau {tau}"
        );
        assert_eq!(
            set_out.pairs, oracle.pairs,
            "{name}: SET diverged at tau {tau}"
        );
        // The filters must not do more verification work than brute force.
        assert!(prt.stats.ted_calls <= oracle.stats.ted_calls);
        assert!(str_out.stats.ted_calls <= oracle.stats.ted_calls);
        assert!(set_out.stats.ted_calls <= oracle.stats.ted_calls);
    }
}

#[test]
fn all_methods_agree_on_swissprot_like() {
    check_dataset("swissprot", &swissprot_like(120, 42));
}

#[test]
fn all_methods_agree_on_treebank_like() {
    check_dataset("treebank", &treebank_like(120, 43));
}

#[test]
fn all_methods_agree_on_sentiment_like() {
    check_dataset("sentiment", &sentiment_like(120, 44));
}

#[test]
fn all_methods_agree_on_synthetic() {
    let params = SyntheticParams {
        avg_size: 40, // keep the oracle cheap
        ..SyntheticParams::default()
    };
    check_dataset("synthetic", &synthetic(120, &params, 45));
}

#[test]
fn parallel_variants_agree_with_sequential() {
    let trees = synthetic(
        150,
        &SyntheticParams {
            avg_size: 30,
            ..SyntheticParams::default()
        },
        46,
    );
    for tau in [1u32, 3] {
        let seq = partsj_join(&trees, tau);
        let par = partsj_join_parallel(&trees, tau, &PartSjConfig::default(), 4);
        assert_eq!(
            seq.pairs, par.pairs,
            "parallel PartSJ diverged at tau {tau}"
        );
        let oracle_par = tree_similarity_join::baselines::brute_force_join_parallel(&trees, tau, 4);
        assert_eq!(seq.pairs, oracle_par.pairs);
    }
}

#[test]
fn configuration_matrix_is_complete() {
    // Every *complete* configuration must agree with the default.
    let trees = synthetic(
        90,
        &SyntheticParams {
            avg_size: 35,
            ..SyntheticParams::default()
        },
        47,
    );
    let tau = 2;
    let reference = partsj_join(&trees, tau);
    for partitioning in [
        PartitionScheme::MaxMin,
        PartitionScheme::Random { seed: 1 },
        PartitionScheme::Random { seed: 99 },
    ] {
        for matching in [
            partsj::MatchSemantics::Exact,
            partsj::MatchSemantics::Embedding,
        ] {
            let config = PartSjConfig {
                window: WindowPolicy::Safe,
                partitioning,
                matching,
                ..Default::default()
            };
            let outcome = partsj_join_with(&trees, tau, &config);
            assert_eq!(
                outcome.pairs, reference.pairs,
                "complete config {config:?} diverged"
            );
        }
    }
}
