//! Wire-codec robustness: arbitrary corruption of valid frames (and
//! outright byte soup) must decode to a typed [`WireError`] or a valid
//! frame — never a panic, never an uncontrolled allocation. This is the
//! wire twin of the snapshot corruption suite.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tsj_catalogd::wire::{encode_probes, ErrorCode, Frame, WireError, PROTOCOL_VERSION};
use tsj_ted::{JoinStats, StageCount};
use tsj_tree::{parse_bracket, LabelInterner};

/// One instance of every frame type, with non-trivial payloads.
fn sample_frames() -> Vec<Frame> {
    let mut labels = LabelInterner::new();
    let probes = vec![
        parse_bracket("{a{b}{c{d}}}", &mut labels).unwrap(),
        parse_bracket("{x{y}{y}{z}}", &mut labels).unwrap(),
    ];
    let batch = encode_probes(&probes, &labels).unwrap();
    vec![
        Frame::Hello {
            version: PROTOCOL_VERSION,
            snapshot_hash: 0x1234_5678_9ABC_DEF0,
        },
        Frame::HelloAck {
            version: PROTOCOL_VERSION,
            snapshot_hash: 42,
            node: 1,
            nodes: 4,
            replication: 2,
            tau: 3,
            shard_count: 8,
            tree_count: 500,
            owned_shards: vec![1, 2, 5, 6],
            shard_map: vec![0, 1, 2, 3, 4, 5, 6, 7],
        },
        Frame::Probe {
            batch: batch.clone(),
        },
        Frame::ProbeBatch(batch),
        Frame::ProbeAck { count: 2 },
        Frame::JoinShard {
            probe: 0,
            shard: 5,
            tau: 2,
            classes: vec![10, 11, 12, 13],
        },
        Frame::JoinShardResp {
            probe: 0,
            matches: vec![3, 14, 159],
            stats: JoinStats {
                pairs_examined: 100,
                candidates: 40,
                results: 3,
                ted_calls: 7,
                prefilter_skips: 33,
                early_accepts: 1,
                candidate_time: std::time::Duration::from_nanos(1_000),
                verify_time: std::time::Duration::from_nanos(2_000),
                stage_counts: vec![
                    StageCount {
                        stage: "twig",
                        count: 40,
                    },
                    StageCount {
                        stage: "traversal-sed",
                        count: 12,
                    },
                ],
            },
        },
        Frame::Metrics,
        Frame::MetricsResp {
            text: "# TYPE tsj_catalogd_joins_served_total counter\n\
                   tsj_catalogd_joins_served_total{node=\"0\"} 17\n"
                .into(),
        },
        Frame::Health,
        Frame::HealthAck {
            node: 2,
            owned_shards: 4,
        },
        Frame::Shutdown,
        Frame::ShutdownAck,
        Frame::Error {
            code: ErrorCode::ShardNotOwned,
            message: "node 1 does not own shard 7".into(),
        },
    ]
}

/// Exercise the error's public surface; any panic here fails the test.
fn touch(e: &WireError) {
    let _ = e.to_string();
    let _ = e.desyncs_stream();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn mutated_frames_decode_to_typed_errors(
        frame_idx in 0usize..14,
        flips in 1usize..9,
        seed in any::<u64>(),
    ) {
        let frames = sample_frames();
        let mut bytes = frames[frame_idx % frames.len()].encode();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..flips {
            let pos = rng.gen_range(0..bytes.len());
            bytes[pos] ^= rng.gen_range(1u8..=255);
        }
        // Decoding must terminate in a frame or a typed error — the
        // property is "never a panic", enforced by running at all.
        match Frame::decode(&bytes) {
            Ok((frame, consumed)) => {
                // A surviving decode must account for its bytes and
                // re-encode without panicking.
                prop_assert!(consumed <= bytes.len());
                let _ = frame.encode();
            }
            Err(e) => touch(&e),
        }
    }

    #[test]
    fn byte_soup_decodes_to_typed_errors(len in 0usize..96, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        match Frame::decode(&bytes) {
            Ok((frame, consumed)) => {
                prop_assert!(consumed <= bytes.len());
                let _ = frame.encode();
            }
            Err(e) => touch(&e),
        }
    }

    #[test]
    fn corrupted_length_prefix_never_allocates_unbounded(
        frame_idx in 0usize..14,
        fake_len in any::<u32>(),
    ) {
        let frames = sample_frames();
        let mut bytes = frames[frame_idx % frames.len()].encode();
        bytes[..4].copy_from_slice(&fake_len.to_le_bytes());
        // Whatever the prefix claims, decode must finish promptly with a
        // typed result; the alloc guard rejects large claims before
        // reserving memory.
        if let Err(e) = Frame::decode(&bytes) {
            touch(&e);
        }
    }
}

/// Every strict prefix of a valid frame is an error, and every cut point
/// is typed — the stream-reassembly contract `read_from` relies on.
#[test]
fn truncation_at_every_boundary_is_typed() {
    for frame in sample_frames() {
        let bytes = frame.encode();
        for cut in 0..bytes.len() {
            match Frame::decode(&bytes[..cut]) {
                Ok(_) => panic!("strict prefix of {frame:?} decoded at cut {cut}"),
                Err(e) => touch(&e),
            }
        }
        let (decoded, consumed) = Frame::decode(&bytes).expect("whole frame decodes");
        assert_eq!(consumed, bytes.len());
        assert_eq!(decoded, frame);
    }
}
