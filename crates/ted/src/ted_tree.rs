//! Preprocessed trees for the tree edit distance dynamic programs.
//!
//! Zhang–Shasha's algorithm works on 1-based postorder arrays: node labels,
//! leftmost-leaf descendants (`lld`) and *keyroots* (nodes whose leftmost
//! leaf differs from their parent's — the roots of the "relevant subtrees"
//! whose forest distances must be computed).
//!
//! [`TedTree::mirrored`] builds the same arrays for the mirror image of the
//! tree (children reversed at every node). Running Zhang–Shasha on two
//! mirrored inputs computes the *right-path* decomposition of the original
//! pair — the second half of the RTED-inspired hybrid in
//! [`crate::hybrid`].

use tsj_tree::{Label, NodeId, Tree};

/// Reusable temporaries for [`TedTree::rebuild`]: the postorder walk
/// stack/order and the keyroot `seen` marks. Grow-only, so rebuilding a
/// stream of probe trees through one scratch is allocation-free once the
/// buffers reach the largest tree seen.
#[derive(Debug, Default, Clone)]
pub struct TedBuildScratch {
    post_of: Vec<usize>,
    order: Vec<NodeId>,
    stack: Vec<(NodeId, usize)>,
    seen: Vec<bool>,
}

impl TedBuildScratch {
    /// An empty scratch; buffers are grown on first use.
    pub fn new() -> TedBuildScratch {
        TedBuildScratch::default()
    }
}

/// A tree preprocessed for the Zhang–Shasha dynamic program.
///
/// All arrays are 1-based (slot 0 is unused padding) and ordered by the
/// tree's postorder — possibly the mirrored postorder, see
/// [`TedTree::mirrored`].
#[derive(Debug, Clone)]
pub struct TedTree {
    n: usize,
    /// `labels[i]`: label of the node with postorder number `i`.
    labels: Vec<Label>,
    /// `lld[i]`: postorder number of the leftmost leaf descendant of `i`.
    lld: Vec<usize>,
    /// Keyroots in ascending postorder.
    keyroots: Vec<usize>,
    /// Σ over keyroots of their relevant-forest span; the number of
    /// forest-distance cells this decomposition touches scales with this,
    /// so it drives the hybrid's left-vs-right choice.
    decomposition_cost: u64,
}

impl TedTree {
    /// Preprocesses `tree` with its natural (left-to-right) child order.
    pub fn new(tree: &Tree) -> TedTree {
        Self::build(tree, false)
    }

    /// Preprocesses the mirror image of `tree` (children reversed).
    ///
    /// `TED(a, b) == TED(mirror(a), mirror(b))` because edit mappings are
    /// preserved under simultaneous mirroring, so Zhang–Shasha over two
    /// mirrored `TedTree`s yields the same distance while decomposing along
    /// right paths of the original trees.
    pub fn mirrored(tree: &Tree) -> TedTree {
        Self::build(tree, true)
    }

    /// [`TedTree::new`] using caller-provided walk temporaries, for batch
    /// preparation of many trees through one scratch.
    pub fn new_with(tree: &Tree, scratch: &mut TedBuildScratch) -> TedTree {
        let mut built = Self::placeholder();
        built.rebuild(tree, false, scratch);
        built
    }

    /// [`TedTree::mirrored`] using caller-provided walk temporaries.
    pub fn mirrored_with(tree: &Tree, scratch: &mut TedBuildScratch) -> TedTree {
        let mut built = Self::placeholder();
        built.rebuild(tree, true, scratch);
        built
    }

    fn placeholder() -> TedTree {
        TedTree {
            n: 0,
            labels: Vec::new(),
            lld: Vec::new(),
            keyroots: Vec::new(),
            decomposition_cost: 0,
        }
    }

    fn build(tree: &Tree, mirror: bool) -> TedTree {
        let mut built = Self::placeholder();
        built.rebuild(tree, mirror, &mut TedBuildScratch::new());
        built
    }

    /// Rebuilds this preprocessed form in place for a new `tree`, reusing
    /// both this tree's arrays and the walk temporaries in `scratch`.
    /// Equivalent to `*self = TedTree::new(tree)` (or `mirrored`) but
    /// allocation-free once every buffer has grown to the largest tree
    /// seen — the backbone of reusable probe preparation.
    pub fn rebuild(&mut self, tree: &Tree, mirror: bool, scratch: &mut TedBuildScratch) {
        let n = tree.len();
        self.n = n;
        self.labels.clear();
        self.labels.resize(n + 1, Label::EPSILON);
        self.lld.clear();
        self.lld.resize(n + 1, 0);
        scratch.post_of.clear();
        scratch.post_of.resize(n, 0);

        // Iterative (possibly mirrored) postorder.
        scratch.order.clear();
        scratch.stack.clear();
        scratch.stack.push((tree.root(), 0));
        while let Some(&mut (node, ref mut next)) = scratch.stack.last_mut() {
            let children = tree.children(node);
            if *next < children.len() {
                let child = if mirror {
                    children[children.len() - 1 - *next]
                } else {
                    children[*next]
                };
                *next += 1;
                scratch.stack.push((child, 0));
            } else {
                scratch.post_of[node.index()] = scratch.order.len() + 1;
                scratch.order.push(node);
                scratch.stack.pop();
            }
        }

        for (i, &node) in scratch.order.iter().enumerate() {
            let post = i + 1;
            self.labels[post] = tree.label(node);
            let children = tree.children(node);
            let first = if mirror {
                children.last()
            } else {
                children.first()
            };
            self.lld[post] = match first {
                // The leftmost leaf of an inner node is the leftmost leaf
                // of its first (in visit order) child, which was already
                // numbered because postorder visits children first.
                Some(&c) => self.lld[scratch.post_of[c.index()]],
                None => post,
            };
        }

        // Keyroots: nodes with no higher-postorder node sharing their lld.
        scratch.seen.clear();
        scratch.seen.resize(n + 1, false);
        self.keyroots.clear();
        for i in (1..=n).rev() {
            if !scratch.seen[self.lld[i]] {
                scratch.seen[self.lld[i]] = true;
                self.keyroots.push(i);
            }
        }
        self.keyroots.reverse();

        self.decomposition_cost = self
            .keyroots
            .iter()
            .map(|&k| (k - self.lld[k] + 1) as u64)
            .sum();
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Trees are never empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Label of the node with postorder number `i` (1-based).
    #[inline]
    pub fn label(&self, i: usize) -> Label {
        self.labels[i]
    }

    /// Leftmost-leaf descendant (postorder number) of node `i` (1-based).
    #[inline]
    pub fn lld(&self, i: usize) -> usize {
        self.lld[i]
    }

    /// Keyroots in ascending postorder; the last one is the root.
    #[inline]
    pub fn keyroots(&self) -> &[usize] {
        &self.keyroots
    }

    /// Work estimate of decomposing along this tree's paths (Σ keyroot
    /// spans). Used by the hybrid strategy.
    #[inline]
    pub fn decomposition_cost(&self) -> u64 {
        self.decomposition_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsj_tree::{parse_bracket, LabelInterner};

    fn t(input: &str) -> Tree {
        let mut labels = LabelInterner::new();
        parse_bracket(input, &mut labels).unwrap()
    }

    #[test]
    fn postorder_arrays_for_small_tree() {
        // {f {d {a} {c {b}}} {e}} — the classic Zhang–Shasha example tree.
        let tree = t("{f{d{a}{c{b}}}{e}}");
        let tt = TedTree::new(&tree);
        assert_eq!(tt.len(), 6);
        // Postorder: a(1), b(2), c(3), d(4), e(5), f(6).
        // llds:      a:1, b:2, c:2, d:1, e:5, f:1.
        assert_eq!(
            (1..=6).map(|i| tt.lld(i)).collect::<Vec<_>>(),
            vec![1, 2, 2, 1, 5, 1]
        );
        // Keyroots: highest-postorder node per distinct lld = {c(3), e(5), f(6)}.
        assert_eq!(tt.keyroots(), &[3, 5, 6]);
    }

    #[test]
    fn mirrored_swaps_decomposition() {
        let tree = t("{f{d{a}{c{b}}}{e}}");
        let tt = TedTree::mirrored(&tree);
        // Mirrored postorder: e(1), b(2), c(3), a(4), d(5), f(6).
        // In the mirror, "first child" is the original last child.
        assert_eq!(tt.lld(6), 1, "root's mirrored leftmost leaf is e");
        assert_eq!(tt.len(), 6);
        // Root is always a keyroot.
        assert_eq!(*tt.keyroots().last().unwrap(), 6);
    }

    #[test]
    fn leaf_tree() {
        let tree = t("{x}");
        let tt = TedTree::new(&tree);
        assert_eq!(tt.len(), 1);
        assert_eq!(tt.lld(1), 1);
        assert_eq!(tt.keyroots(), &[1]);
        assert_eq!(tt.decomposition_cost(), 1);
    }

    #[test]
    fn path_tree_has_single_keyroot() {
        // A path collapses to one keyroot (the root) under left
        // decomposition: every node shares the same leftmost leaf.
        let tree = t("{a{b{c{d}}}}");
        let tt = TedTree::new(&tree);
        assert_eq!(tt.keyroots(), &[4]);
        assert_eq!(tt.decomposition_cost(), 4);
    }

    #[test]
    fn star_tree_keyroots() {
        // Root with k children: every non-first child is a keyroot.
        let tree = t("{r{a}{b}{c}{d}}");
        let tt = TedTree::new(&tree);
        assert_eq!(tt.keyroots().len(), 4); // b, c, d, root
        assert_eq!(tt.decomposition_cost(), 1 + 1 + 1 + 5);
    }

    #[test]
    fn rebuild_matches_fresh_build_across_mismatched_trees() {
        // One dirty scratch + one reused TedTree cycled over trees of very
        // different shapes and sizes must reproduce fresh builds exactly.
        let sources = [
            "{f{d{a}{c{b}}}{e}}",
            "{x}",
            "{r{a}{b}{c}{d}}",
            "{a{b{c{d{e}}}}}",
            "{f{d{a}{c{b}}}{e}}",
        ];
        let mut scratch = TedBuildScratch::new();
        let mut reused = TedTree::new(&t("{x}"));
        let mut reused_mirror = TedTree::mirrored(&t("{x}"));
        for src in sources {
            let tree = t(src);
            reused.rebuild(&tree, false, &mut scratch);
            reused_mirror.rebuild(&tree, true, &mut scratch);
            let fresh = TedTree::new(&tree);
            let fresh_mirror = TedTree::mirrored(&tree);
            for (got, want) in [(&reused, &fresh), (&reused_mirror, &fresh_mirror)] {
                assert_eq!(got.len(), want.len(), "{src}");
                assert_eq!(got.keyroots(), want.keyroots(), "{src}");
                assert_eq!(got.decomposition_cost(), want.decomposition_cost(), "{src}");
                for i in 1..=want.len() {
                    assert_eq!(got.label(i), want.label(i), "{src} node {i}");
                    assert_eq!(got.lld(i), want.lld(i), "{src} node {i}");
                }
            }
        }
    }

    #[test]
    fn decomposition_costs_differ_for_skewed_trees() {
        // A left-deep comb is cheap for left decomposition and expensive
        // for right decomposition; the mirror flips this.
        let comb = t("{a{b{c{d{e}}}{x3}}{x2}}");
        let left = TedTree::new(&comb);
        let right = TedTree::mirrored(&comb);
        assert_ne!(left.decomposition_cost(), right.decomposition_cost());
    }
}
