//! The `catalogd` binary: freeze a demo snapshot, or serve one node of
//! a frozen snapshot over TCP.
//!
//! ```bash
//! # Freeze a 300-tree demo catalog at tau = 2 into 8 shards:
//! catalogd freeze --out /tmp/demo.snap --trees 300 --tau 2 --shards 8
//!
//! # Serve node 0 of a 2-node set at replication 2:
//! catalogd serve --snapshot /tmp/demo.snap --node 0 --nodes 2 \
//!     --replication 2 --addr 127.0.0.1:7401
//! ```
//!
//! `serve` prints `catalogd: node N serving on ADDR ...` once the
//! listener is bound — scripts (the CI smoke job, the demo example) wait
//! for that line, then connect. The process exits when a client sends
//! the `Shutdown` frame; there is no signal handling.

use partsj::PartSjConfig;
use std::process::ExitCode;
use tsj_catalog::Catalog;
use tsj_catalogd::{interner_for, Catalogd, ServerConfig};
use tsj_shard::ShardConfig;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("freeze") => freeze(&args[1..]),
        Some("serve") => serve(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("catalogd: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  catalogd freeze --out PATH [--trees N] [--tau T] [--shards S] [--seed SEED]
  catalogd serve --snapshot PATH --node N --nodes M [--replication R] [--addr HOST:PORT]";

/// Looks up `--flag value` in `args`.
fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag(args, name) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("{name} wants a {}, got {raw:?}", std::any::type_name::<T>())),
    }
}

/// Generates a SwissProt-like demo collection, freezes it, and writes
/// the snapshot bytes.
fn freeze(args: &[String]) -> Result<(), String> {
    let out = flag(args, "--out").ok_or("freeze needs --out PATH")?;
    let trees: usize = parse(args, "--trees", 300)?;
    let tau: u32 = parse(args, "--tau", 2)?;
    let shards: usize = parse(args, "--shards", 8)?;
    let seed: u64 = parse(args, "--seed", 2015)?;

    let collection = tsj_datagen::swissprot_like(trees, seed);
    let labels = interner_for(&collection);
    let catalog = Catalog::freeze(
        collection,
        labels,
        tau,
        &PartSjConfig::default(),
        &ShardConfig::with_shards(shards),
    );
    let bytes = catalog.to_bytes();
    let hash = tsj_catalog::format::fnv1a64(&bytes);
    std::fs::write(out, &bytes).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "catalogd: froze {} trees (tau = {tau}, {shards} shards, seed {seed}) \
         into {out} — {} bytes, snapshot {hash:#018x}",
        catalog.len(),
        bytes.len(),
    );
    Ok(())
}

/// Restores one node's shards from the snapshot and serves until a
/// `Shutdown` frame arrives.
fn serve(args: &[String]) -> Result<(), String> {
    let path = flag(args, "--snapshot").ok_or("serve needs --snapshot PATH")?;
    let node: usize = parse(args, "--node", usize::MAX)?;
    let nodes: usize = parse(args, "--nodes", 0)?;
    if node == usize::MAX || nodes == 0 {
        return Err("serve needs --node N and --nodes M".into());
    }
    let replication: usize = parse(args, "--replication", 1)?;
    let addr = flag(args, "--addr").unwrap_or("127.0.0.1:0");

    let snapshot = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    let server = Catalogd::bind(snapshot, &ServerConfig::new(node, nodes, replication), addr)
        .map_err(|e| e.to_string())?;
    let bound = server.local_addr().map_err(|e| e.to_string())?;
    println!("catalogd: node {node} serving on {bound} ({nodes} nodes, replication {replication})");
    server.run().map_err(|e| e.to_string())
}
