//! The [`Catalog`] handle: freeze once, serve many joins.

use crate::error::CatalogError;
use crate::snapshot::{
    assemble, encode_labels, encode_shard, encode_shard_map, encode_trees, SnapshotReader,
};
use partsj::probe::ProbeCounters;
use partsj::{
    LayerId, MatchCache, PartSjConfig, ProbeScratch, ProbeVerify, StampSink, SubgraphIndex,
    VerifyConfig, VerifyData, VerifyEngine, WindowPolicy,
};
use std::path::Path;
use tsj_shard::{
    build_frozen_left, frozen_rs_join, frozen_rs_join_seq, FrozenJoinScratch, FrozenLeft,
    ShardConfig, ShardedIndex,
};
use tsj_ted::{JoinOutcome, JoinStats, TreeIdx};
use tsj_tree::{FxHashMap, LabelInterner, Tree};

/// A frozen left collection: the sharded subgraph index over its trees,
/// the trees themselves, their label space and their precomputed
/// verification inputs — everything needed to serve indexed-left joins
/// and single-probe queries without rebuilding anything.
///
/// Build one with [`Catalog::freeze`], persist it with
/// [`Catalog::save`] and bring it back with [`Catalog::load`]; the
/// loaded catalog joins **bit-identically** (pairs *and* candidate
/// counts) to [`tsj_shard::sharded_rs_join`] over the original trees.
///
/// ## The per-query `τ` contract
///
/// Postings are registered once, at freeze time, with the freeze
/// threshold's window half-width. Any query threshold `τ_q ≤ τ_frozen`
/// stays **complete**: the freeze-time `δ = 2τ_f + 1` partitioning
/// yields more subgraphs than `τ_q ≤ τ_f` edits can touch, the frozen
/// position windows cover at least the drift `τ_q` allows, and the probe
/// only narrows the size window to `[|T| − τ_q, |T| + τ_q]`. Exact
/// verification at `τ_q` then makes the result exact (candidate sets may
/// be supersets of a natively-τ_q-built index's, never subsets).
/// Thresholds *above* `τ_frozen` are rejected with
/// [`CatalogError::TauExceedsFrozen`].
#[derive(Debug)]
pub struct Catalog {
    labels: LabelInterner,
    trees: Vec<Tree>,
    tau: u32,
    window: WindowPolicy,
    index: ShardedIndex,
    small_by_size: FxHashMap<u32, Vec<TreeIdx>>,
    left_data: Vec<VerifyData>,
}

/// Reusable scratch for [`Catalog::query_with_engine`]: the
/// O(catalog-size) candidate-dedup stamp array, the per-shard match
/// caches and the probe buffers. Holding one of these (plus a
/// [`VerifyEngine`]) across a serving loop's point queries makes each
/// query allocation-free in the catalog size — dedup is by an
/// incrementing marker, so the stamp array is never re-cleared.
#[derive(Debug, Default)]
pub struct QueryScratch {
    stamp: Vec<TreeIdx>,
    next_marker: TreeIdx,
    caches: Vec<MatchCache>,
    shard_scratch: Vec<usize>,
    layer_scratch: Vec<LayerId>,
    candidates: Vec<TreeIdx>,
    probe: ProbeScratch,
    verify: ProbeVerify,
}

impl QueryScratch {
    /// Sizes the buffers for a catalog of `trees` trees and `shards`
    /// shards, returning this query's dedup marker.
    fn begin_query(&mut self, trees: usize, shards: usize) -> TreeIdx {
        if self.stamp.len() != trees || self.next_marker == TreeIdx::MAX {
            // First use, a different catalog, or marker exhaustion:
            // start a fresh stamp generation.
            self.stamp.clear();
            self.stamp.resize(trees, TreeIdx::MAX);
            self.next_marker = 0;
        }
        if self.caches.len() != shards {
            self.caches = (0..shards).map(|_| MatchCache::new()).collect();
        }
        let marker = self.next_marker;
        self.next_marker += 1;
        marker
    }
}

impl Catalog {
    /// Partitions and indexes `trees` for threshold `tau`, producing a
    /// frozen catalog. `config.window`/`config.partitioning` are frozen
    /// into the snapshot; `shard_cfg.shards` fixes the shard count (the
    /// thread knobs only affect this build).
    ///
    /// Freezing always builds a fresh, fully live index — there are no
    /// tombstones, replay logs or liveness bitmaps to carry: that state
    /// is "compacted away" by construction, which is what keeps the
    /// snapshot format a plain postings image.
    pub fn freeze(
        trees: Vec<Tree>,
        labels: LabelInterner,
        tau: u32,
        config: &PartSjConfig,
        shard_cfg: &ShardConfig,
    ) -> Catalog {
        let freeze_span = tsj_obs::span("catalog.freeze", "catalog");
        // The exact build phase of `sharded_rs_join` — sharing the one
        // builder is what keeps a frozen catalog bit-identical to the
        // direct join. The catalog additionally tracks the side-listed
        // small trees for liveness/size accounting.
        let (mut index, small_by_size) = build_frozen_left(&trees, tau, config, shard_cfg);
        for (&size, list) in &small_by_size {
            for &i in list {
                index.track(i, size);
            }
        }
        let left_data = VerifyData::batch(&trees);
        let obs = tsj_obs::global();
        if obs.is_enabled() {
            obs.counter("tsj_catalog_freezes_total").inc();
            obs.counter("tsj_catalog_trees_frozen_total")
                .add(trees.len() as u64);
        }
        freeze_span.end();
        Catalog {
            labels,
            trees,
            tau,
            window: config.window,
            index,
            small_by_size,
            left_data,
        }
    }

    /// The threshold the catalog was frozen for — the ceiling of every
    /// per-query threshold.
    pub fn tau(&self) -> u32 {
        self.tau
    }

    /// The window policy frozen into the index.
    pub fn window(&self) -> WindowPolicy {
        self.window
    }

    /// Number of catalog trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the catalog holds no trees.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Number of index shards (fixed at freeze time).
    pub fn shard_count(&self) -> usize {
        self.index.shard_count()
    }

    /// The catalog trees, indexed by the left component of result pairs.
    pub fn trees(&self) -> &[Tree] {
        &self.trees
    }

    /// The label space the catalog trees were interned in.
    pub fn labels(&self) -> &LabelInterner {
        &self.labels
    }

    /// Mutable label access — probe trees must be parsed against *this*
    /// interner (labels compare by id); new probe-only labels append
    /// without disturbing frozen ids.
    pub fn labels_mut(&mut self) -> &mut LabelInterner {
        &mut self.labels
    }

    /// The frozen sharded index (read-only).
    pub fn index(&self) -> &ShardedIndex {
        &self.index
    }

    fn check_tau(&self, query: u32) -> Result<(), CatalogError> {
        if query > self.tau {
            return Err(CatalogError::TauExceedsFrozen {
                query,
                frozen: self.tau,
            });
        }
        Ok(())
    }

    /// Batch indexed-left join: all `(i, j)` with
    /// `TED(catalog[i], probes[j]) ≤ tau`, for any `tau` up to the
    /// frozen threshold (see the [type docs](Catalog) for the
    /// contract). Probing fans out over `shard_cfg`'s probe workers and
    /// the bounded-channel verify pool exactly like
    /// [`tsj_shard::sharded_rs_join`] — `shard_cfg.shards` is ignored
    /// (the shard count was fixed at freeze time).
    ///
    /// `config.window` and `config.partitioning` are likewise frozen;
    /// only the matching semantics, verify chain and batching knobs take
    /// effect per call.
    pub fn join(
        &self,
        probes: &[Tree],
        tau: u32,
        config: &PartSjConfig,
        shard_cfg: &ShardConfig,
    ) -> Result<JoinOutcome, CatalogError> {
        self.check_tau(tau)?;
        Ok(frozen_rs_join(
            &FrozenLeft {
                index: &self.index,
                small_by_size: &self.small_by_size,
                left_data: &self.left_data,
            },
            probes,
            tau,
            config,
            shard_cfg.resolved_probe_threads(),
            shard_cfg.resolved_verify_threads(),
        ))
    }

    /// Sequential indexed-left join with caller-owned state: the
    /// verification engine, [`FrozenJoinScratch`] and result vector all
    /// persist across calls, so a serving loop issuing repeated probe
    /// batches allocates only what the result set itself needs. Pairs
    /// land in `pairs` (cleared first, `(catalog index, probe index)`
    /// normalized like [`Catalog::join`]); candidate counts and stage
    /// counters are bit-identical to the single-threaded
    /// [`Catalog::join`] path.
    pub fn join_with_scratch(
        &self,
        probes: &[Tree],
        tau: u32,
        config: &PartSjConfig,
        verify: &mut VerifyEngine,
        scratch: &mut FrozenJoinScratch,
        pairs: &mut Vec<(TreeIdx, TreeIdx)>,
    ) -> Result<JoinStats, CatalogError> {
        self.check_tau(tau)?;
        Ok(frozen_rs_join_seq(
            &FrozenLeft {
                index: &self.index,
                small_by_size: &self.small_by_size,
                left_data: &self.left_data,
            },
            probes,
            tau,
            config,
            verify,
            scratch,
            pairs,
        ))
    }

    /// Single-probe similarity search, `SearchIndex` semantics: all
    /// catalog trees within `tau` of `probe` as ascending
    /// `(tree index, exact distance)` pairs. Distances are exact — the
    /// engine only short-circuits on provably tight certificates.
    ///
    /// This convenience form allocates a fresh engine and
    /// [`QueryScratch`] per call; a serving loop should hold both and
    /// use [`Catalog::query_with_engine`] so the O(catalog) stamp array
    /// and the per-shard match caches amortize across probes.
    pub fn query(
        &self,
        probe: &Tree,
        tau: u32,
        config: &PartSjConfig,
    ) -> Result<Vec<(TreeIdx, u32)>, CatalogError> {
        let mut engine = VerifyEngine::with_filters(tau, &config.verify);
        self.query_with_engine(probe, config, &mut engine, &mut QueryScratch::default())
    }

    /// Like [`Catalog::query`], reusing a caller-owned engine (its
    /// threshold is the query threshold and must not exceed the frozen
    /// one) and [`QueryScratch`] across probes — repeated point queries
    /// then allocate nothing proportional to the catalog. Only the
    /// returned hit vector is fresh per call; [`Catalog::query_into`]
    /// recycles that too.
    pub fn query_with_engine(
        &self,
        probe: &Tree,
        config: &PartSjConfig,
        engine: &mut VerifyEngine,
        scratch: &mut QueryScratch,
    ) -> Result<Vec<(TreeIdx, u32)>, CatalogError> {
        let mut hits = Vec::new();
        self.query_into(probe, config, engine, scratch, &mut hits)?;
        Ok(hits)
    }

    /// The fully recycled form of [`Catalog::query_with_engine`]: hits
    /// are written into `out` (cleared first, ascending
    /// `(tree index, exact distance)`). With a warmed engine and scratch,
    /// a steady-state query performs **zero heap allocations** — the
    /// probe tree's LC-RS form, postorder numbers and verification inputs
    /// are all rebuilt inside grow-only buffers (pinned by the
    /// `steady_state_allocations` integration test).
    pub fn query_into(
        &self,
        probe: &Tree,
        config: &PartSjConfig,
        engine: &mut VerifyEngine,
        scratch: &mut QueryScratch,
        out: &mut Vec<(TreeIdx, u32)>,
    ) -> Result<(), CatalogError> {
        let tau = engine.tau();
        self.check_tau(tau)?;
        out.clear();
        let size_q = probe.len() as u32;
        let (lo, hi) = partsj::window_of(size_q, tau);
        let marker = scratch.begin_query(self.trees.len(), self.index.shard_count());
        scratch.candidates.clear();
        for n in lo..=hi {
            if let Some(list) = self.small_by_size.get(&n) {
                for &i in list {
                    if scratch.stamp[i as usize] != marker {
                        scratch.stamp[i as usize] = marker;
                        scratch.candidates.push(i);
                    }
                }
            }
        }
        let (binary, posts) = scratch.probe.prepare(probe);
        let mut counters = ProbeCounters::default();
        let mut sink = StampSink {
            stamp: &mut scratch.stamp,
            marker,
            candidates: &mut scratch.candidates,
        };
        self.index.probe_tree(
            binary,
            posts,
            size_q,
            lo,
            hi,
            config.matching,
            &mut scratch.caches,
            &mut scratch.shard_scratch,
            &mut scratch.layer_scratch,
            &mut counters,
            &mut sink,
        );
        // Full stage inputs, exactly like the frozen left side's
        // `VerifyData::batch` — `check_exact` may consult any filter.
        let data_q = scratch.verify.prepare(probe, &VerifyConfig::ALL);
        out.extend(scratch.candidates.iter().filter_map(|&i| {
            engine
                .check_exact(&self.left_data[i as usize], data_q)
                .map(|d| (i, d))
        }));
        out.sort_unstable();
        Ok(())
    }

    /// Serializes the catalog into the versioned snapshot byte format
    /// (see [`crate::snapshot`] for the layout).
    pub fn to_bytes(&self) -> Vec<u8> {
        let save_span = tsj_obs::span("catalog.save", "catalog");
        let mut sections = Vec::with_capacity(3 + self.index.shard_count());
        sections.push(encode_labels(&self.labels));
        sections.push(encode_trees(&self.trees));
        sections.push(encode_shard_map(self.index.shard_map()));
        for s in 0..self.index.shard_count() {
            sections.push(encode_shard(&self.index.shard_index(s).dump()));
        }
        let bytes = assemble(self.tau, self.window, self.trees.len() as u32, &sections);
        let obs = tsj_obs::global();
        if obs.is_enabled() {
            obs.counter("tsj_catalog_saves_total").inc();
            obs.histogram("tsj_catalog_snapshot_bytes")
                .record(bytes.len() as u64);
        }
        save_span.end();
        bytes
    }

    /// Writes the snapshot to `path` — atomically *and* durably: the
    /// bytes go to a temporary sibling file which is fsynced before being
    /// renamed over the target, and the parent directory is fsynced after
    /// the rename. Without the first sync a crash shortly after `save`
    /// returns could leave the final name pointing at a correctly-sized
    /// but zero-filled file (the rename is journaled before the data
    /// reaches disk); without the second the rename itself may not
    /// survive. Concurrent readers never observe a half-written file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CatalogError> {
        use std::io::Write;
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(".tmp.{}", std::process::id()));
        let tmp = std::path::PathBuf::from(tmp);
        let write_synced = || -> std::io::Result<()> {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(&self.to_bytes())?;
            file.sync_all()
        };
        if let Err(e) = write_synced().and_then(|()| std::fs::rename(&tmp, path)) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e.into());
        }
        // Persist the directory entry. Some filesystems don't support
        // fsync on directories — best-effort, the data itself is synced.
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            if let Ok(dir) = std::fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    }

    /// Deserializes a catalog from snapshot bytes, validating magic,
    /// version, checksums and every structural cross-reference. The
    /// tree store drives the rebuild of the small-tree side list and the
    /// per-tree verification inputs; the shard sections restore the
    /// index postings verbatim.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Catalog, CatalogError> {
        let reader = SnapshotReader::from_bytes(bytes)?;
        Catalog::from_reader(&reader)
    }

    /// Loads a snapshot file saved by [`Catalog::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<Catalog, CatalogError> {
        Catalog::from_reader(&SnapshotReader::open(path)?)
    }

    /// Assembles a catalog from an already-open [`SnapshotReader`] —
    /// useful when the caller has inspected the header (or wants to
    /// keep the reader around for per-shard redistribution).
    pub fn from_reader(reader: &SnapshotReader) -> Result<Catalog, CatalogError> {
        let load_span = tsj_obs::span("catalog.load", "catalog");
        let labels = reader.labels()?;
        let trees = reader.trees()?;
        let tau = reader.tau();
        let window = reader.window();
        let delta = 2 * tau as usize + 1;
        let map = reader.shard_map()?;
        let shards: Vec<SubgraphIndex> = (0..reader.shard_count())
            .map(|s| reader.shard(s))
            .collect::<Result<_, _>>()?;
        let index = ShardedIndex::from_frozen_parts(
            tau,
            window,
            map,
            shards,
            trees
                .iter()
                .enumerate()
                .map(|(i, t)| (i as TreeIdx, t.len() as u32)),
        )
        .map_err(|context| CatalogError::Corrupt { context })?;
        // Cross-check: every posting's container tree must exist in the
        // tree store (a dangling tree id would panic in the verify
        // phase, far from the load).
        for s in 0..index.shard_count() {
            let shard = index.shard_index(s);
            for handle in 0..shard.len() as u32 {
                let tree = shard.tree_of(handle);
                if tree as usize >= trees.len() {
                    return Err(CatalogError::Corrupt {
                        context: format!(
                            "shard {s} references tree {tree} but the store holds {}",
                            trees.len()
                        ),
                    });
                }
            }
        }
        let mut small_by_size: FxHashMap<u32, Vec<TreeIdx>> = FxHashMap::default();
        for (i, tree) in trees.iter().enumerate() {
            let size = tree.len() as u32;
            if (size as usize) < delta {
                small_by_size.entry(size).or_default().push(i as TreeIdx);
            }
        }
        let left_data = VerifyData::batch(&trees);
        let obs = tsj_obs::global();
        if obs.is_enabled() {
            obs.counter("tsj_catalog_loads_total").inc();
        }
        load_span.end();
        Ok(Catalog {
            labels,
            trees,
            tau,
            window,
            index,
            small_by_size,
            left_data,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsj_tree::parse_bracket;

    fn catalog_from(specs: &[&str], tau: u32) -> Catalog {
        let mut labels = LabelInterner::new();
        let trees: Vec<Tree> = specs
            .iter()
            .map(|s| parse_bracket(s, &mut labels).unwrap())
            .collect();
        Catalog::freeze(
            trees,
            labels,
            tau,
            &PartSjConfig::default(),
            &ShardConfig::with_shards(2),
        )
    }

    #[test]
    fn freeze_join_finds_pairs() {
        let catalog = catalog_from(&["{a{b}{c}}", "{a{b}{d}}", "{x{y{z}}}"], 1);
        // Probe labels intern against the catalog's label space.
        let mut labels = catalog.labels().clone();
        let probe = parse_bracket("{a{b}{c}}", &mut labels).unwrap();
        let outcome = catalog
            .join(
                std::slice::from_ref(&probe),
                1,
                &PartSjConfig::default(),
                &ShardConfig::with_shards(2),
            )
            .unwrap();
        assert_eq!(outcome.pairs, vec![(0, 0), (1, 0)]);
        let hits = catalog.query(&probe, 1, &PartSjConfig::default()).unwrap();
        assert_eq!(hits, vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn query_scratch_reuse_matches_fresh_queries() {
        let catalog = catalog_from(
            &["{a{b}{c}}", "{a{b}{d}}", "{x{y{z}}}", "{a{b}{c}{d}}", "{q}"],
            2,
        );
        let mut labels = catalog.labels().clone();
        let probes: Vec<Tree> = ["{a{b}{c}}", "{x{y}}", "{q}", "{a{b}{c}}"]
            .iter()
            .map(|s| parse_bracket(s, &mut labels).unwrap())
            .collect();
        let config = PartSjConfig::default();
        let mut engine = VerifyEngine::with_filters(2, &config.verify);
        let mut scratch = QueryScratch::default();
        for probe in &probes {
            let fresh = catalog.query(probe, 2, &config).unwrap();
            let reused = catalog
                .query_with_engine(probe, &config, &mut engine, &mut scratch)
                .unwrap();
            assert_eq!(reused, fresh);
        }
    }

    #[test]
    fn query_into_reuses_buffers_and_matches_fresh_queries() {
        let catalog = catalog_from(
            &["{a{b}{c}}", "{a{b}{d}}", "{x{y{z}}}", "{a{b}{c}{d}}", "{q}"],
            2,
        );
        let mut labels = catalog.labels().clone();
        // Mismatched probe sizes on purpose: the grow-only buffers must
        // rebuild correctly when a smaller tree follows a larger one.
        let probes: Vec<Tree> = ["{a{b}{c}{d}}", "{q}", "{x{y}}", "{a{b}{c}}"]
            .iter()
            .map(|s| parse_bracket(s, &mut labels).unwrap())
            .collect();
        let config = PartSjConfig::default();
        let mut engine = VerifyEngine::with_filters(2, &config.verify);
        let mut scratch = QueryScratch::default();
        let mut hits = Vec::new();
        for probe in &probes {
            let fresh = catalog.query(probe, 2, &config).unwrap();
            catalog
                .query_into(probe, &config, &mut engine, &mut scratch, &mut hits)
                .unwrap();
            assert_eq!(hits, fresh);
        }
    }

    #[test]
    fn join_with_scratch_matches_join() {
        let catalog = catalog_from(
            &["{a{b}{c}}", "{a{b}{d}}", "{x{y{z}}}", "{a{b}{c}{d}}", "{q}"],
            2,
        );
        let mut labels = catalog.labels().clone();
        let probes: Vec<Tree> = ["{a{b}{c}}", "{q}", "{a{b}{c}{d}{e}}"]
            .iter()
            .map(|s| parse_bracket(s, &mut labels).unwrap())
            .collect();
        let config = PartSjConfig::default();
        let mut engine = VerifyEngine::new(2, &config);
        let mut scratch = FrozenJoinScratch::new();
        let mut pairs = Vec::new();
        for tau in [0u32, 1, 2] {
            let reference = catalog
                .join(&probes, tau, &config, &ShardConfig::with_shards(2))
                .unwrap();
            let stats = catalog
                .join_with_scratch(&probes, tau, &config, &mut engine, &mut scratch, &mut pairs)
                .unwrap();
            assert_eq!(pairs, reference.pairs, "tau = {tau}");
            assert_eq!(stats.candidates, reference.stats.candidates, "tau = {tau}");
            assert_eq!(stats.results, reference.stats.results, "tau = {tau}");
            assert_eq!(
                stats.prefilter_skips, reference.stats.prefilter_skips,
                "tau = {tau}"
            );
        }
    }

    #[test]
    fn per_query_tau_is_capped_by_frozen_tau() {
        let catalog = catalog_from(&["{a{b}{c}}", "{a{b}{d}}"], 2);
        let mut labels = catalog.labels().clone();
        let probe = parse_bracket("{a{b}{c}}", &mut labels).unwrap();
        for tau in 0..=2 {
            assert!(catalog
                .join(
                    std::slice::from_ref(&probe),
                    tau,
                    &PartSjConfig::default(),
                    &ShardConfig::default()
                )
                .is_ok());
        }
        assert!(matches!(
            catalog.join(
                std::slice::from_ref(&probe),
                3,
                &PartSjConfig::default(),
                &ShardConfig::default()
            ),
            Err(CatalogError::TauExceedsFrozen {
                query: 3,
                frozen: 2
            })
        ));
        assert!(matches!(
            catalog.query(&probe, 3, &PartSjConfig::default()),
            Err(CatalogError::TauExceedsFrozen { .. })
        ));
    }

    #[test]
    fn snapshot_round_trip_preserves_everything() {
        let catalog = catalog_from(&["{a{b}{c}}", "{a{b}{d}}", "{x{y{z}}}", "{q}"], 1);
        let bytes = catalog.to_bytes();
        let loaded = Catalog::from_bytes(bytes.clone()).unwrap();
        assert_eq!(loaded.tau(), catalog.tau());
        assert_eq!(loaded.window(), catalog.window());
        assert_eq!(loaded.len(), catalog.len());
        assert_eq!(loaded.shard_count(), catalog.shard_count());
        assert_eq!(loaded.labels().len(), catalog.labels().len());
        for (a, b) in catalog.trees().iter().zip(loaded.trees()) {
            assert!(a.structurally_eq(b));
        }
        // Serialization is deterministic.
        assert_eq!(loaded.to_bytes(), bytes);
    }

    #[test]
    fn balanced_map_travels_with_the_snapshot() {
        let mut labels = LabelInterner::new();
        let trees: Vec<Tree> = ["{a{b}{c}}", "{a{b}{d}}", "{x{y{z}{w}}}", "{a{b}{c}{d}{e}}"]
            .iter()
            .map(|s| parse_bracket(s, &mut labels).unwrap())
            .collect();
        let config = PartSjConfig {
            adaptive: partsj::AdaptiveConfig::FULL,
            ..PartSjConfig::default()
        };
        let catalog = Catalog::freeze(trees, labels, 1, &config, &ShardConfig::with_shards(2));
        assert!(matches!(
            catalog.index().shard_map(),
            tsj_shard::ShardMap::Balanced(_)
        ));
        let loaded = Catalog::from_bytes(catalog.to_bytes()).unwrap();
        assert_eq!(loaded.index().shard_map(), catalog.index().shard_map());
        // Routing restored: queries agree with the original catalog.
        let mut probe_labels = catalog.labels().clone();
        let probe = parse_bracket("{a{b}{c}}", &mut probe_labels).unwrap();
        assert_eq!(
            loaded.query(&probe, 1, &config).unwrap(),
            catalog.query(&probe, 1, &config).unwrap()
        );
    }

    #[test]
    fn empty_catalog_round_trips() {
        let catalog = Catalog::freeze(
            Vec::new(),
            LabelInterner::new(),
            2,
            &PartSjConfig::default(),
            &ShardConfig::default(),
        );
        let loaded = Catalog::from_bytes(catalog.to_bytes()).unwrap();
        assert!(loaded.is_empty());
        let mut labels = LabelInterner::new();
        let probe = parse_bracket("{a}", &mut labels).unwrap();
        let outcome = loaded
            .join(
                std::slice::from_ref(&probe),
                1,
                &PartSjConfig::default(),
                &ShardConfig::default(),
            )
            .unwrap();
        assert!(outcome.pairs.is_empty());
    }
}
