//! Sharded bipartite (R×S) join: the offline-index regime the sharded
//! design fits best.
//!
//! The left collection is partitioned and bulk-loaded into a
//! [`ShardedIndex`](crate::ShardedIndex) by [`crate::build_frozen_left`]
//! (shards ingest in parallel); the probe + verify half is then
//! delegated to [`crate::frozen_rs_join`] — right trees probe the
//! frozen shards concurrently (no rank filter is needed because the
//! index spans exactly the left collection) and candidate batches
//! stream to the verifier pool. Results are bit-identical to
//! [`partsj::partsj_join_rs`].

use crate::frozen::{build_frozen_left, frozen_rs_join, FrozenLeft};
use crate::index::ShardConfig;
use partsj::{PartSjConfig, VerifyData};
use std::time::Instant;
use tsj_ted::JoinOutcome;
use tsj_tree::Tree;

/// Sharded R×S similarity join: all `(i, j)` with
/// `TED(left[i], right[j]) ≤ tau`, bit-identical to
/// [`partsj::partsj_join_rs`].
pub fn sharded_rs_join(
    left: &[Tree],
    right: &[Tree],
    tau: u32,
    config: &PartSjConfig,
    shard_cfg: &ShardConfig,
) -> JoinOutcome {
    let build_start = Instant::now();
    let (index, small_by_size) = build_frozen_left(left, tau, config, shard_cfg);
    let left_data: Vec<VerifyData> = VerifyData::batch_for_config(left, &config.verify);
    let build_time = build_start.elapsed();

    let mut outcome = frozen_rs_join(
        &FrozenLeft {
            index: &index,
            small_by_size: &small_by_size,
            left_data: &left_data,
        },
        right,
        tau,
        config,
        shard_cfg.resolved_probe_threads(),
        shard_cfg.resolved_verify_threads(),
    );
    // The index build is candidate-generation work, same attribution as
    // the pre-refactor inline implementation.
    outcome.stats.candidate_time += build_time;
    outcome
}
