//! Similar RNA secondary structures — the paper's biology motivation:
//! "biologists are often interested in finding similar pairs of RNA
//! secondary structures (which are modeled as trees) from various sources".
//!
//! RNA secondary structure in dot-bracket notation maps naturally to a
//! rooted ordered tree: each base pair `( ... )` becomes an internal
//! `pair` node whose children are the structures it encloses; unpaired
//! bases `.` become leaves labeled by the region they sit in. We generate
//! a few structure families (hairpins, multiloops), derive mutated family
//! members, and join.
//!
//! ```bash
//! cargo run --release --example rna_similarity
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tree_similarity_join::prelude::*;

/// Parses dot-bracket notation into a tree: `(` opens a `pair` node, `)`
/// closes it, `.` adds an `unpaired` leaf under the current node.
fn dot_bracket_to_tree(structure: &str, labels: &mut LabelInterner) -> Tree {
    let pair = labels.intern("pair");
    let unpaired = labels.intern("unpaired");
    let root_label = labels.intern("rna");
    let mut builder = TreeBuilder::new();
    let root = builder.root(root_label);
    let mut stack = vec![root];
    for c in structure.chars() {
        match c {
            '(' => {
                let node = builder.child(*stack.last().expect("rooted"), pair);
                stack.push(node);
            }
            ')' => {
                assert!(stack.len() > 1, "unbalanced dot-bracket: {structure}");
                stack.pop();
            }
            '.' => {
                builder.child(*stack.last().expect("rooted"), unpaired);
            }
            other => panic!("unexpected character {other:?} in dot-bracket"),
        }
    }
    assert_eq!(stack.len(), 1, "unbalanced dot-bracket: {structure}");
    builder.build()
}

/// Mutates a dot-bracket string: flips an unpaired base in/out or grows/
/// shrinks a stem, keeping brackets balanced.
fn mutate_structure(structure: &str, rng: &mut StdRng) -> String {
    let mut chars: Vec<char> = structure.chars().collect();
    match rng.gen_range(0..3) {
        0 => {
            // Insert an unpaired base at a random position.
            let pos = rng.gen_range(0..=chars.len());
            chars.insert(pos, '.');
        }
        1 => {
            // Remove a random unpaired base, if any.
            let dots: Vec<usize> = chars
                .iter()
                .enumerate()
                .filter(|(_, &c)| c == '.')
                .map(|(i, _)| i)
                .collect();
            if let Some(&pos) = dots.get(
                rng.gen_range(0..dots.len().max(1))
                    .min(dots.len().saturating_sub(1)),
            ) {
                chars.remove(pos);
            }
        }
        _ => {
            // Wrap the whole structure in one more base pair (stem growth).
            chars.insert(0, '(');
            chars.push(')');
        }
    }
    chars.into_iter().collect()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut labels = LabelInterner::new();

    // Three families: a hairpin, a double hairpin, and a multiloop.
    let families = [
        ("hairpin", "(((((....)))))..."),
        ("double-hairpin", "..((((...))))..(((....)))"),
        ("multiloop", "((..((...))..((....))..((..))..))"),
    ];

    let mut structures: Vec<(String, String)> = Vec::new(); // (family, dotbracket)
    for (family, base) in families {
        structures.push((family.to_string(), base.to_string()));
        let mut current = base.to_string();
        for _ in 0..5 {
            current = mutate_structure(&current, &mut rng);
            structures.push((family.to_string(), current.clone()));
        }
    }

    let trees: Vec<Tree> = structures
        .iter()
        .map(|(_, s)| dot_bracket_to_tree(s, &mut labels))
        .collect();
    let stats = collection_stats(&trees);
    println!(
        "{} structures, avg tree size {:.1}, max depth {}\n",
        stats.cardinality, stats.avg_size, stats.max_depth
    );

    for tau in [1u32, 2, 4] {
        let outcome = partsj_join(&trees, tau);
        let same_family = outcome
            .pairs
            .iter()
            .filter(|(a, b)| structures[*a as usize].0 == structures[*b as usize].0)
            .count();
        println!(
            "tau = {tau}: {} similar pairs, {} within the same family \
             ({} candidates, {} TED calls)",
            outcome.pairs.len(),
            same_family,
            outcome.stats.candidates,
            outcome.stats.ted_calls
        );
    }

    println!(
        "\nsmall thresholds recover family structure: most similar pairs\n\
         are mutations of the same base fold."
    );
}
