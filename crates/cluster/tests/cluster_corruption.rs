//! The snapshot corruption suite, extended to the **cluster load path**:
//! a node restoring from a damaged snapshot copy must come up down with
//! the typed [`CatalogError`] attached — never a panic, never a silently
//! wrong index — and the rest of the cluster must keep serving (completely
//! when a replica covers the loss, degraded-with-report when not).

use partsj::PartSjConfig;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tsj_catalog::{Catalog, CatalogError, SnapshotReader};
use tsj_cluster::{Cluster, ClusterConfig, ClusterError, FaultPlan};
use tsj_datagen::{synthetic, SyntheticParams};
use tsj_shard::ShardConfig;
use tsj_ted::JoinOutcome;
use tsj_tree::{LabelInterner, Tree};

fn collection(n: usize, avg_size: usize, seed: u64) -> Vec<Tree> {
    synthetic(
        n,
        &SyntheticParams {
            avg_size,
            ..Default::default()
        },
        seed,
    )
}

fn freeze(left: &[Tree], tau: u32, shards: usize) -> Catalog {
    Catalog::freeze(
        left.to_vec(),
        LabelInterner::new(),
        tau,
        &PartSjConfig::default(),
        &ShardConfig {
            shards,
            probe_threads: 1,
            verify_threads: 1,
            ..Default::default()
        },
    )
}

fn reference(catalog: &Catalog, probes: &[Tree], tau: u32) -> JoinOutcome {
    catalog
        .join(
            probes,
            tau,
            &PartSjConfig::default(),
            &ShardConfig {
                probe_threads: 1,
                verify_threads: 1,
                ..Default::default()
            },
        )
        .unwrap()
}

/// A corrupted private copy downs exactly that node, the error is the
/// typed snapshot error, and the replica serves the identical join.
#[test]
fn corrupted_node_copy_fails_over_to_the_clean_replica() {
    let left = collection(24, 16, 71);
    let right = collection(20, 16, 72);
    let tau = 1;
    let catalog = freeze(&left, tau, 4);
    let expected = reference(&catalog, &right, tau);
    let clean = catalog.to_bytes();
    let reader = SnapshotReader::from_bytes(clean.clone()).unwrap();

    for shard in 0..4usize {
        let mut dirty = clean.clone();
        let range = reader.shard_section_range(shard).unwrap();
        tsj_cluster::corrupt_range(&mut dirty, range, 0xBAD + shard as u64);

        // Two nodes, R = 2: both own every shard; node 0 holds the
        // damaged copy, node 1 the clean one.
        let mut cluster =
            Cluster::from_node_snapshots(vec![dirty, clean.clone()], &ClusterConfig::new(2, 2))
                .unwrap();
        match cluster.node_error(0) {
            Some(ClusterError::Snapshot(CatalogError::ChecksumMismatch { section })) => {
                assert!(section.starts_with("shard"), "section was {section}");
            }
            other => panic!("shard {shard}: expected a typed checksum error, got {other:?}"),
        }
        assert_eq!(cluster.alive_nodes(), vec![1]);

        let served = cluster.join(&right, tau, &PartSjConfig::default()).unwrap();
        assert!(served.is_complete(), "shard {shard}: replica must cover");
        assert_eq!(served.outcome.pairs, expected.pairs);
        assert_eq!(served.outcome.stats.candidates, expected.stats.candidates);
    }
}

/// The same path driven by the fault plan: [`FaultPlan::corrupt_on_load`]
/// damages the named node's copy inside `Cluster::from_snapshot` itself.
#[test]
fn corrupt_on_load_fault_downs_the_planned_node() {
    let left = collection(24, 16, 71);
    let right = collection(20, 16, 72);
    let tau = 1;
    let catalog = freeze(&left, tau, 4);
    let expected = reference(&catalog, &right, tau);
    let mut cfg = ClusterConfig::new(2, 2);
    cfg.faults = FaultPlan {
        seed: 99,
        corrupt_on_load: vec![0],
        ..FaultPlan::none()
    };
    let mut cluster = Cluster::from_snapshot(catalog.to_bytes(), &cfg).unwrap();
    assert!(cluster.node_error(0).is_some());
    assert_eq!(cluster.alive_nodes(), vec![1]);
    let served = cluster.join(&right, tau, &PartSjConfig::default()).unwrap();
    assert!(served.is_complete());
    assert_eq!(served.outcome.pairs, expected.pairs);
}

/// Without replication, a corrupted copy degrades the shards only the
/// downed node held: typed coverage report, surviving shards' pairs
/// served exactly.
#[test]
fn unreplicated_corruption_degrades_with_exact_coverage() {
    let left = collection(24, 16, 71);
    let right = collection(20, 16, 72);
    let tau = 1;
    let catalog = freeze(&left, tau, 4);
    let expected = reference(&catalog, &right, tau);
    let owner = |size: u32| catalog.index().shard_of_size(size) as u32;
    let clean = catalog.to_bytes();
    let reader = SnapshotReader::from_bytes(clean.clone()).unwrap();

    // Two nodes, R = 1 over 4 shards: node 0 holds shards {0, 2}, node 1
    // holds {1, 3}. Corrupt shard 0's section in node 0's copy.
    let mut dirty = clean.clone();
    let range = reader.shard_section_range(0).unwrap();
    tsj_cluster::corrupt_range(&mut dirty, range, 0xDEAD);
    let mut cluster =
        Cluster::from_node_snapshots(vec![dirty, clean], &ClusterConfig::new(2, 1)).unwrap();
    assert!(cluster.node_error(0).is_some());
    assert_eq!(cluster.lost_shards(), vec![0, 2]);

    let served = cluster.join(&right, tau, &PartSjConfig::default()).unwrap();
    let degraded = served.degraded.as_ref().expect("loss must be reported");
    assert_eq!(degraded.lost_shards, vec![0, 2]);
    for &(_, class) in &degraded.unserved {
        assert!(owner(class) == 0 || owner(class) == 2);
    }
    let surviving: Vec<(u32, u32)> = expected
        .pairs
        .iter()
        .copied()
        .filter(|&(i, _)| {
            let shard = owner(left[i as usize].len() as u32);
            shard != 0 && shard != 2
        })
        .collect();
    assert_eq!(served.outcome.pairs, surviving);
}

/// When *no* node's copy parses, construction fails with the typed error
/// instead of producing an unservable cluster.
#[test]
fn all_copies_damaged_is_a_construction_error() {
    let catalog = freeze(&collection(12, 14, 71), 1, 2);
    let bytes = catalog.to_bytes();
    let mut a = bytes.clone();
    a.truncate(10);
    let mut b = bytes;
    b[..8].copy_from_slice(b"NOTACATL");
    match Cluster::from_node_snapshots(vec![a, b], &ClusterConfig::new(2, 2)) {
        Err(ClusterError::Snapshot(_)) => {}
        other => panic!("expected a typed snapshot error, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random multi-byte corruptions anywhere inside any shard section of
    /// a node's v2 snapshot copy: the node always comes up down with a
    /// typed error (never a panic), and the R = 2 cluster always serves
    /// the complete, correct join from the clean replica.
    #[test]
    fn random_shard_section_damage_never_panics_and_never_lies(
        seed in any::<u64>(),
        nflips in 1usize..8,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let left = collection(16, 14, 71);
        let right = collection(12, 14, 72);
        let tau = 1;
        let catalog = freeze(&left, tau, 4);
        let expected = reference(&catalog, &right, tau);
        let clean = catalog.to_bytes();
        let reader = SnapshotReader::from_bytes(clean.clone()).unwrap();

        let shard = (seed % 4) as usize;
        let range = reader.shard_section_range(shard).unwrap();
        let mut dirty = clean.clone();
        // Distinct offsets, non-zero masks: the copy is guaranteed to
        // differ from the clean bytes inside a checksummed section.
        let mut touched = Vec::new();
        for _ in 0..nflips {
            let pos = range.start + rng.gen_range(0..range.len());
            let mask = rng.gen_range(1u8..=255);
            if !touched.contains(&pos) {
                touched.push(pos);
                dirty[pos] ^= mask;
            }
        }

        let mut cluster = Cluster::from_node_snapshots(
            vec![dirty, clean],
            &ClusterConfig::new(2, 2),
        ).unwrap();
        prop_assert!(
            matches!(cluster.node_error(0), Some(ClusterError::Snapshot(_))),
            "damage must surface as the typed snapshot error: {:?}",
            cluster.node_error(0)
        );
        prop_assert_eq!(cluster.alive_nodes(), vec![1]);
        let served = cluster.join(&right, tau, &PartSjConfig::default()).unwrap();
        prop_assert!(served.is_complete());
        prop_assert_eq!(&served.outcome.pairs, &expected.pairs);
        prop_assert_eq!(served.outcome.stats.candidates, expected.stats.candidates);
        prop_assert_eq!(served.outcome.stats.ted_calls, expected.stats.ted_calls);
    }
}
