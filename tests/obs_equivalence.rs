//! Observability must be a pure observer: every join/search/streaming/
//! cluster entry point returns **bit-identical** results — pairs *and*
//! candidate counts *and* per-stage counters — whether `tsj-obs` is on,
//! off, or profiling. Property-tested over random collections, τ and
//! shard counts, with the configuration matrix run inside each case.
//!
//! The global observability config is process-wide state, so every test
//! that flips it serializes on one mutex and restores the default before
//! releasing it.

use proptest::prelude::*;
use std::sync::{Arc, Mutex};
use tree_similarity_join::obs::{self, ObsConfig};
use tree_similarity_join::prelude::*;

static CONFIG_LOCK: Mutex<()> = Mutex::new(());

/// Everything an entry point can answer, in comparable form (wall-clock
/// durations excluded — those legitimately vary run to run).
#[derive(Debug, PartialEq)]
struct Fingerprint {
    join_pairs: Vec<(u32, u32)>,
    join_counters: (u64, u64, u64, u64),
    join_stages: Vec<(&'static str, u64)>,
    sharded_pairs: Vec<(u32, u32)>,
    search_hits: Vec<(u32, u32)>,
    stream_partners: Vec<Vec<u32>>,
    stream_evictions: u64,
    stream_compactions: u64,
    cluster_pairs: Vec<(u32, u32)>,
    cluster_counters: (u64, u64, u64, u64),
    cluster_stages: Vec<(&'static str, u64)>,
    cluster_telemetry: Telemetry,
    cluster_degraded: Option<Degraded>,
}

fn counters_of(stats: &JoinStats) -> (u64, u64, u64, u64) {
    (
        stats.candidates,
        stats.ted_calls,
        stats.prefilter_skips,
        stats.early_accepts,
    )
}

fn stages_of(stats: &JoinStats) -> Vec<(&'static str, u64)> {
    stats
        .stage_counts
        .iter()
        .map(|c| (c.stage, c.count))
        .collect()
}

/// Runs the full stack — batch join, sharded join, similarity search,
/// sliding-window streaming, frozen catalog behind a faulty cluster —
/// under whatever observability configuration is currently active.
fn fingerprint(left: &[Tree], right: &[Tree], tau: u32, shards: usize, seed: u64) -> Fingerprint {
    let config = PartSjConfig::default();
    let shard_cfg = ShardConfig {
        shards,
        probe_threads: 1,
        verify_threads: 1,
        ..Default::default()
    };

    let join = partsj_join_with(left, tau, &config);
    let sharded = sharded_join(left, tau, &config, &shard_cfg);

    let catalog = Catalog::freeze(
        left.to_vec(),
        LabelInterner::new(),
        tau,
        &config,
        &shard_cfg,
    );
    let search_hits = right
        .iter()
        .enumerate()
        .flat_map(|(j, probe)| {
            catalog
                .query(probe, tau, &config)
                .expect("tau within frozen bound")
                .into_iter()
                .map(move |(i, d)| (i, (j as u32) * 1000 + d))
        })
        .collect();

    let mut stream = ShardedStreamingJoin::new(
        tau,
        config,
        ShardConfig {
            max_dead_fraction: 0.3,
            min_dead_postings: 1,
            ..shard_cfg
        },
        EvictionPolicy::SlidingCount(6),
    );
    let stream_partners: Vec<Vec<u32>> = left
        .iter()
        .chain(right.iter())
        .map(|t| stream.insert(t))
        .collect();

    let mut cluster_cfg = ClusterConfig::new(2, 2);
    cluster_cfg.faults = FaultPlan {
        seed,
        delay_permille: 150,
        delay_ms: 4,
        timeout_permille: 80,
        transient_permille: 120,
        node_down_permille: 40,
        ..FaultPlan::none()
    };
    let mut cluster = Cluster::from_snapshot(catalog.to_bytes(), &cluster_cfg)
        .expect("snapshot assembles")
        .with_clock(Arc::new(VirtualClock::new()));
    let served = cluster.join(right, tau, &config).expect("join runs");

    Fingerprint {
        join_counters: counters_of(&join.stats),
        join_stages: stages_of(&join.stats),
        join_pairs: join.pairs,
        sharded_pairs: sharded.pairs,
        search_hits,
        stream_partners,
        stream_evictions: stream.evictions(),
        stream_compactions: stream.compactions(),
        cluster_counters: counters_of(&served.outcome.stats),
        cluster_stages: stages_of(&served.outcome.stats),
        cluster_pairs: served.outcome.pairs,
        cluster_telemetry: served.telemetry,
        cluster_degraded: served.degraded,
    }
}

fn check_matrix(seed: u64, tau: u32, shards: usize) {
    let guard = CONFIG_LOCK.lock().unwrap();
    let left = synthetic(
        24,
        &SyntheticParams {
            avg_size: 12,
            ..Default::default()
        },
        seed,
    );
    let right = synthetic(
        8,
        &SyntheticParams {
            avg_size: 12,
            ..Default::default()
        },
        seed.wrapping_add(1),
    );
    let baseline = {
        obs::configure(&ObsConfig::ON);
        fingerprint(&left, &right, tau, shards, seed)
    };
    for (name, cfg) in [
        ("DISABLED", ObsConfig::DISABLED),
        ("PROFILE", ObsConfig::PROFILE),
    ] {
        obs::configure(&cfg);
        let other = fingerprint(&left, &right, tau, shards, seed);
        if baseline != other {
            obs::configure(&ObsConfig::default());
            drop(guard);
            panic!(
                "ObsConfig::{name} changed results at TSJ_FAULT_SEED={seed:#x} \
                 tau={tau} shards={shards}:\nON:   {baseline:?}\n{name}: {other:?}"
            );
        }
    }
    obs::configure(&ObsConfig::default());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline invariant: flipping observability on/off/profile
    /// never changes any result, counter or telemetry row.
    #[test]
    fn obs_config_never_changes_results(
        seed in any::<u64>(),
        tau in 1u32..3,
        shards in 1usize..5,
    ) {
        check_matrix(seed, tau, shards);
    }
}

/// A pinned corner of the matrix (heavier faults than the property test
/// draws), so CI failures reproduce without a proptest seed.
#[test]
fn obs_config_matrix_pinned_case() {
    check_matrix(0x0B5_CAFE, 2, 3);
}
