//! Corruption-path coverage: every way a snapshot can be damaged —
//! truncation, a foreign file, a future format version, flipped bits in
//! any section — must surface as a typed [`CatalogError`], never a panic
//! and never a silently wrong catalog. Plus a property test that
//! save → load round-trips arbitrary generated collections.

use partsj::PartSjConfig;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tsj_catalog::{Catalog, CatalogError, SnapshotReader};
use tsj_datagen::{synthetic, SyntheticParams};
use tsj_shard::ShardConfig;
use tsj_tree::{LabelInterner, Tree};

fn sample_catalog() -> Catalog {
    let trees = synthetic(
        12,
        &SyntheticParams {
            avg_size: 14,
            ..Default::default()
        },
        404,
    );
    Catalog::freeze(
        trees,
        LabelInterner::new(),
        1,
        &PartSjConfig::default(),
        &ShardConfig::with_shards(2),
    )
}

#[test]
fn truncated_snapshots_fail_with_typed_errors() {
    let bytes = sample_catalog().to_bytes();
    // Cut the file at a spread of lengths covering the header, the
    // directory and every section: each must fail loudly and typedly.
    for cut in (0..bytes.len()).step_by(7).chain([bytes.len() - 1]) {
        match Catalog::from_bytes(bytes[..cut].to_vec()) {
            Ok(_) => panic!("truncation at {cut} of {} loaded", bytes.len()),
            Err(
                CatalogError::Truncated { .. }
                | CatalogError::BadMagic { .. }
                | CatalogError::ChecksumMismatch { .. }
                | CatalogError::Corrupt { .. },
            ) => {}
            Err(other) => panic!("unexpected error at cut {cut}: {other}"),
        }
    }
}

#[test]
fn bad_magic_is_reported_as_foreign_file() {
    let mut bytes = sample_catalog().to_bytes();
    bytes[..8].copy_from_slice(b"NOTACATL");
    assert!(matches!(
        Catalog::from_bytes(bytes),
        Err(CatalogError::BadMagic { found }) if &found == b"NOTACATL"
    ));
}

#[test]
fn wrong_version_is_reported_with_both_versions() {
    let mut bytes = sample_catalog().to_bytes();
    bytes[8..12].copy_from_slice(&7u32.to_le_bytes());
    assert!(matches!(
        Catalog::from_bytes(bytes),
        Err(CatalogError::UnsupportedVersion {
            found: 7,
            supported: 2
        })
    ));
}

#[test]
fn version_one_snapshots_are_rejected_cleanly() {
    // A pre-shard-map (version 1) file must be refused outright — its
    // section numbering differs, so decoding it as v2 would misread the
    // first shard as the shard map.
    let mut bytes = sample_catalog().to_bytes();
    bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
    assert!(matches!(
        Catalog::from_bytes(bytes),
        Err(CatalogError::UnsupportedVersion {
            found: 1,
            supported: 2
        })
    ));
}

#[test]
fn checksum_mismatch_names_the_damaged_section() {
    let catalog = sample_catalog();
    let bytes = catalog.to_bytes();
    let reader = SnapshotReader::from_bytes(bytes.clone()).unwrap();
    assert_eq!(reader.shard_count(), 2);
    // Flip the final byte (inside the last shard section).
    let mut rotten = bytes.clone();
    let last = rotten.len() - 1;
    rotten[last] ^= 0x01;
    match Catalog::from_bytes(rotten) {
        Err(CatalogError::ChecksumMismatch { section }) => {
            assert!(section.starts_with("shard"), "section was {section}");
        }
        other => panic!("expected a checksum mismatch, got {other:?}"),
    }
}

/// Flip every byte of a small snapshot, one at a time: loading must
/// either fail with a typed error or succeed — never panic. (A flip can
/// cancel out in unchecked header padding, but any flip inside a
/// checksummed section must be caught.)
#[test]
fn single_bit_flips_never_panic() {
    let bytes = sample_catalog().to_bytes();
    let mut undetected_section_damage = 0u32;
    // Section payloads start after the fixed header (25 bytes) and the
    // directory (24 bytes × 5 sections: labels, trees, shard map, two
    // shards).
    let sections_start = 25 + 24 * 5;
    for pos in 0..bytes.len() {
        let mut flipped = bytes.clone();
        flipped[pos] ^= 0x80;
        if let Ok(catalog) = Catalog::from_bytes(flipped) {
            // Loading succeeded: the flip must not have hit section
            // payload (those are checksummed).
            if pos >= sections_start {
                undetected_section_damage += 1;
            }
            drop(catalog);
        }
    }
    assert_eq!(
        undetected_section_damage, 0,
        "checksums must catch every payload flip"
    );
}

fn random_collection(seed: u64) -> Vec<Tree> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(1usize..25);
    let avg_size = rng.gen_range(2usize..30);
    synthetic(
        n,
        &SyntheticParams {
            avg_size,
            ..Default::default()
        },
        rng.gen(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary collections survive the full save → load round trip:
    /// trees, labels, thresholds and join behavior all intact.
    #[test]
    fn save_load_round_trips_arbitrary_collections(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let left = random_collection(rng.gen());
        let right = random_collection(rng.gen());
        let tau = rng.gen_range(0u32..4);
        let shards = rng.gen_range(1usize..5);
        let config = PartSjConfig::default();
        let shard_cfg = ShardConfig {
            shards,
            probe_threads: 1,
            verify_threads: 1,
            ..Default::default()
        };
        let catalog = Catalog::freeze(
            left.clone(),
            LabelInterner::new(),
            tau,
            &config,
            &shard_cfg,
        );
        let bytes = catalog.to_bytes();
        let loaded = Catalog::from_bytes(bytes.clone()).expect("round trip");
        prop_assert_eq!(loaded.tau(), tau);
        prop_assert_eq!(loaded.len(), left.len());
        prop_assert_eq!(loaded.shard_count(), shards);
        for (a, b) in left.iter().zip(loaded.trees()) {
            prop_assert!(a.structurally_eq(b));
        }
        // Deterministic bytes: re-serializing the loaded catalog is a
        // fixpoint.
        prop_assert_eq!(loaded.to_bytes(), bytes);
        // And the loaded catalog serves the same join as the fresh one.
        let a = catalog.join(&right, tau, &config, &shard_cfg).unwrap();
        let b = loaded.join(&right, tau, &config, &shard_cfg).unwrap();
        prop_assert_eq!(a.pairs, b.pairs);
        prop_assert_eq!(a.stats.candidates, b.stats.candidates);
    }
}
