//! Offline-vendored minimal subset of the `criterion` API.
//!
//! The build container has no access to crates.io, so this path crate
//! stands in for the registry crate. It implements the benchmark surface
//! this workspace uses — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], [`criterion_group!`] and
//! [`criterion_main!`] — with a lightweight warm-up + fixed-budget
//! measurement loop instead of criterion's full statistical machinery.
//! Results print as `name … median ns/iter` lines, and also write
//! machine-readable JSON lines to the file named by the
//! `CRITERION_JSON_OUT` environment variable when set (used to record
//! perf baselines). `cargo bench` runs each bench target as a separate
//! process sharing one output file, so the writer distinguishes *runs*
//! from *processes*: a run marker file (`<path>.run`) records the parent
//! process id (the cargo process), the first bench process of a new
//! parent **truncates** the output, and every sibling process of the
//! same parent appends. One `cargo bench` invocation is therefore one
//! run: it starts a clean file with no `rm -f` step and all its bench
//! targets accumulate into it. Separate invocations are separate runs —
//! a second `cargo bench --bench <other>` truncates; to accumulate
//! several targets, run them in one invocation (or without `--bench` at
//! all). On non-unix platforms the parent id is unavailable, so the
//! writer always appends there (delete the file manually between runs).
//! Swap it for the real `criterion` by pointing the workspace dependency
//! back at the registry.
//!
//! [`bench_with_input`]: BenchmarkGroup::bench_with_input

use std::fmt::{self, Display};
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Label for one benchmark within a group: a function name plus an
/// optional parameter.
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// `function/parameter` id.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Id with only a parameter, for single-function groups.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.parameter {
            Some(p) if self.function.is_empty() => write!(f, "{p}"),
            Some(p) => write!(f, "{}/{}", self.function, p),
            None => write!(f, "{}", self.function),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        BenchmarkId {
            function,
            parameter: None,
        }
    }
}

/// Runs timing loops for one benchmark.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled by [`Bencher::iter`].
    median_ns: f64,
}

impl Bencher {
    /// Times `routine`: a short warm-up, then batches within a fixed
    /// budget, recording the median batch cost per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and size the batch so one batch costs ≳100 µs.
        let warmup_start = Instant::now();
        black_box(routine());
        let once = warmup_start.elapsed().max(Duration::from_nanos(1));
        let batch =
            (Duration::from_micros(100).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        let budget = Duration::from_millis(200);
        let mut samples: Vec<f64> = Vec::new();
        let bench_start = Instant::now();
        while bench_start.elapsed() < budget || samples.len() < 3 {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
            if samples.len() >= 200 {
                break;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = samples[samples.len() / 2];
    }
}

/// Identifier of the current *run*: all bench processes spawned by one
/// `cargo bench` invocation share that cargo process as their parent, so
/// the parent process id groups them — and separates invocations.
/// `None` where the parent id is unavailable (non-unix): runs cannot be
/// told apart there, so the writer falls back to always appending (the
/// pre-truncation behavior — never silently drop sibling targets'
/// results).
fn current_run_id() -> Option<String> {
    #[cfg(unix)]
    {
        Some(format!("parent-{}", std::os::unix::process::parent_id()))
    }
    #[cfg(not(unix))]
    {
        None
    }
}

/// Opens the JSON output at `path` for this process: the first open of a
/// *new run* (the marker file `<path>.run` is absent or names a
/// different run id) truncates the file and rewrites the marker; reopens
/// within the same run — later benchmarks of this process, or sibling
/// bench processes of the same parent — append. With no run id
/// (non-unix), every open appends and no marker is written.
fn open_json_out(path: &str, run_id: Option<&str>) -> std::io::Result<std::fs::File> {
    let same_run = match run_id {
        None => true,
        Some(id) => {
            let marker = format!("{path}.run");
            let matches = std::fs::read_to_string(&marker)
                .map(|prev| prev.trim() == id)
                .unwrap_or(false);
            if !matches {
                std::fs::write(&marker, id)?;
            }
            matches
        }
    };
    std::fs::OpenOptions::new()
        .create(true)
        .append(same_run)
        .truncate(!same_run)
        .write(true)
        .open(path)
}

fn run_benchmark(full_name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        median_ns: f64::NAN,
    };
    f(&mut bencher);
    println!("bench: {full_name:<50} {:>14.1} ns/iter", bencher.median_ns);
    if let Ok(path) = std::env::var("CRITERION_JSON_OUT") {
        if let Ok(mut file) = open_json_out(&path, current_run_id().as_deref()) {
            let _ = writeln!(
                file,
                "{{\"name\": \"{}\", \"median_ns\": {:.1}}}",
                full_name.replace('"', "'"),
                bencher.median_ns
            );
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's fixed time budget
    /// ignores the requested sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; ignored by the stub.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(&full, &mut f);
        self
    }

    /// Benchmarks `f` with `input` under `group/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(&full, &mut |b| f(b, input));
        self
    }

    /// Ends the group (a no-op in the stub; results print as they run).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Benchmarks `f` under a bare name, outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, &mut f);
        self
    }
}

/// Bundles benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("zs", 40).to_string(), "zs/40");
        assert_eq!(BenchmarkId::from("full").to_string(), "full");
    }

    #[test]
    fn bencher_measures_something() {
        let mut group = Criterion::default();
        let mut group = group.benchmark_group("t");
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    #[test]
    fn json_out_truncates_on_new_run_and_appends_within_one() {
        let dir = std::env::temp_dir().join(format!("criterion-stub-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.jsonl");
        let path = path.to_str().unwrap();

        // A stale file from an older run (different run id in the marker).
        std::fs::write(path, "stale line\n").unwrap();
        std::fs::write(format!("{path}.run"), "parent-0").unwrap();
        {
            let mut f = open_json_out(path, Some("run-a")).unwrap();
            writeln!(f, "first").unwrap();
        }
        assert_eq!(std::fs::read_to_string(path).unwrap(), "first\n");

        // Same run id (a sibling bench process): append.
        {
            let mut f = open_json_out(path, Some("run-a")).unwrap();
            writeln!(f, "second").unwrap();
        }
        assert_eq!(std::fs::read_to_string(path).unwrap(), "first\nsecond\n");

        // No run id (non-unix fallback): append, never truncate.
        {
            let mut f = open_json_out(path, None).unwrap();
            writeln!(f, "third").unwrap();
        }
        assert_eq!(
            std::fs::read_to_string(path).unwrap(),
            "first\nsecond\nthird\n"
        );

        // A new run id truncates again.
        {
            let mut f = open_json_out(path, Some("run-b")).unwrap();
            writeln!(f, "fresh").unwrap();
        }
        assert_eq!(std::fs::read_to_string(path).unwrap(), "fresh\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
