//! Offline-vendored minimal subset of the `crossbeam` API.
//!
//! The build container has no access to crates.io, so this path crate
//! stands in for the registry crate. It provides [`scope`] (built on
//! `std::thread::scope`) and an MPMC [`channel`] — the two pieces the
//! workspace's parallel verification paths use. Swap it for the real
//! `crossbeam` by pointing the workspace dependency back at the registry.

use std::any::Any;

/// Scoped-thread handle passed to the [`scope`] closure.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives `()` where the real
    /// crossbeam passes a nested `&Scope`; every call site in this
    /// workspace ignores the argument (`|_| …`).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(()) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(())),
        }
    }
}

/// Handle returned by [`Scope::spawn`].
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread to finish, returning its result or the
    /// panic payload.
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

/// Runs `f` with a scope in which borrowed-data threads can be spawned;
/// all spawned threads are joined before `scope` returns.
///
/// Mirrors `crossbeam::scope`'s `Result` return. With `std::thread::scope`
/// underneath, an unjoined panicking child propagates its panic instead of
/// surfacing as `Err`; the workspace joins every handle, so `Err` is never
/// produced in practice.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

pub mod channel {
    //! A minimal MPMC channel with the `crossbeam_channel` call surface
    //! used here: [`unbounded`] and [`bounded`], cloneable senders **and**
    //! **receivers**, blocking [`Receiver::recv`] that disconnects when
    //! all senders drop, and blocking [`Sender::send`] that applies
    //! backpressure when a bounded channel is full.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<Inner<T>>,
        ready: Condvar,
        /// Signaled when a bounded channel gains capacity (or loses its
        /// last receiver, so blocked senders can fail out).
        space: Condvar,
    }

    struct Inner<T> {
        items: VecDeque<T>,
        /// Capacity bound; `usize::MAX` for unbounded channels.
        cap: usize,
        senders: usize,
        receivers: usize,
    }

    fn with_cap<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Inner {
                items: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(usize::MAX)
    }

    /// Creates a bounded MPMC channel holding at most `cap` items;
    /// [`Sender::send`] blocks while the channel is full. `cap` must be
    /// positive (a zero-capacity rendezvous channel is not implemented).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "bounded(0) rendezvous channels are not supported");
        with_cap(cap)
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only if all receivers have dropped.
        /// On a bounded channel, blocks while the queue is at capacity.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.queue.lock().unwrap();
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                if inner.items.len() < inner.cap {
                    inner.items.push_back(value);
                    drop(inner);
                    self.shared.ready.notify_one();
                    return Ok(());
                }
                inner = self.shared.space.wait(inner).unwrap();
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.queue.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until an item arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = inner.items.pop_front() {
                    drop(inner);
                    self.shared.space.notify_one();
                    return Ok(item);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.ready.wait(inner).unwrap();
            }
        }

        /// Non-blocking receive; `None` when currently empty (regardless
        /// of disconnection).
        pub fn try_recv(&self) -> Option<T> {
            let item = self.shared.queue.lock().unwrap().items.pop_front();
            if item.is_some() {
                self.shared.space.notify_one();
            }
            item
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.queue.lock().unwrap();
            inner.receivers -= 1;
            if inner.receivers == 0 {
                drop(inner);
                // Wake senders blocked on a full bounded channel so they
                // observe the disconnect and error out.
                self.shared.space.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn scope_joins_and_returns() {
        let data = [1u32, 2, 3];
        let sum = super::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<u32>());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 6);
    }

    #[test]
    fn channel_fans_out_and_disconnects() {
        let (tx, rx) = channel::unbounded::<u32>();
        let total = super::scope(|s| {
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move |_| {
                        let mut local = 0u64;
                        while let Ok(v) = rx.recv() {
                            local += u64::from(v);
                        }
                        local
                    })
                })
                .collect();
            drop(rx);
            for v in 0..1000u32 {
                tx.send(v).unwrap();
            }
            drop(tx);
            workers.into_iter().map(|w| w.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 999 * 1000 / 2);
    }

    #[test]
    fn send_after_all_receivers_dropped_errors() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn bounded_channel_applies_backpressure() {
        let (tx, rx) = channel::bounded::<u32>(4);
        let total = super::scope(|s| {
            let consumer = {
                let rx = rx.clone();
                s.spawn(move |_| {
                    let mut sum = 0u64;
                    while let Ok(v) = rx.recv() {
                        sum += u64::from(v);
                    }
                    sum
                })
            };
            drop(rx);
            // Far more sends than capacity: the producer must block and
            // resume rather than lose or duplicate items.
            for v in 0..1000u32 {
                tx.send(v).unwrap();
            }
            drop(tx);
            consumer.join().unwrap()
        })
        .unwrap();
        assert_eq!(total, 999 * 1000 / 2);
    }

    #[test]
    fn blocked_bounded_sender_errors_when_receivers_vanish() {
        let (tx, rx) = channel::bounded::<u8>(1);
        tx.send(0).unwrap(); // fill the channel
        super::scope(|s| {
            let blocked = s.spawn(move |_| tx.send(1));
            // Give the sender a moment to block, then sever the receiver.
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(rx);
            assert!(blocked.join().unwrap().is_err());
        })
        .unwrap();
    }
}
