//! The lock-free metrics registry: named counters, gauges, and
//! log-scale latency histograms.
//!
//! Registration (the cold path) takes a mutex on the name table; the
//! handles it returns are `Arc`ed atomic cells, so recording (the hot
//! path) is a single relaxed atomic RMW with no lock and no allocation.
//! Per-worker engines record into a local registry and
//! [`MetricsRegistry::fold_into`] a shared one on gather — the same
//! name-keyed merge discipline as `JoinStats`'s stage counters.
//!
//! A **disabled** registry ([`MetricsRegistry::disabled`]) hands every
//! caller the same process-wide sink cells: instrumented code keeps its
//! exact shape (one relaxed atomic add), values just land in a shared
//! bit-bucket and snapshots come back empty. Toggling observability can
//! therefore never change join results — only whether anyone is looking.
//!
//! ## Histogram bucket scheme
//!
//! Histograms are log-scale with ~2 buckets per octave: upper bounds
//! `0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, …` up to
//! [`MAX_TRACKED`] = 2³¹, then one saturating overflow bucket.
//! Consecutive bounds differ by at most 1.5×, so any quantile read is
//! within 50% of the true value — and reads are *exact* whenever the
//! recorded values sit on bucket bounds (which clock-millisecond tests
//! arrange). The true maximum is tracked exactly on the side, and
//! quantiles are clamped to it, so `p99`/`max` never over-report.

use std::collections::BTreeMap;
use std::fmt::Display;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of histogram buckets, including the overflow bucket.
pub const NUM_BUCKETS: usize = 64;
/// Index of the saturating overflow bucket (values above [`MAX_TRACKED`]).
const OVERFLOW_BUCKET: usize = NUM_BUCKETS - 1;
/// Largest value with a finite bucket bound: 2³¹ milliseconds ≈ 24 days.
pub const MAX_TRACKED: u64 = 1 << 31;

/// The bucket a value lands in: `0..=2` map to themselves, values above
/// [`MAX_TRACKED`] saturate into the overflow bucket, everything else
/// follows the 2-buckets-per-octave scheme.
pub fn bucket_index(v: u64) -> usize {
    if v <= 2 {
        return v as usize;
    }
    if v > MAX_TRACKED {
        return OVERFLOW_BUCKET;
    }
    // v ∈ [2^k + 1, 2^(k+1)] for this k ≥ 1; the octave splits at 3·2^(k-1).
    let k = (63 - (v - 1).leading_zeros()) as usize;
    2 * k + 1 + usize::from(v > 3 << (k - 1))
}

/// The inclusive upper bound of bucket `i`, or `None` for the overflow
/// bucket (rendered `+Inf` by the Prometheus exporter).
pub fn bucket_bound(i: usize) -> Option<u64> {
    match i {
        0..=2 => Some(i as u64),
        OVERFLOW_BUCKET => None,
        i if i % 2 == 1 => Some(3u64 << ((i - 3) / 2)),
        i => Some(4u64 << ((i - 4) / 2)),
    }
}

/// A monotonically increasing counter handle. Cloning shares the cell.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `v`.
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Current value. (Meaningless on a disabled registry's sink.)
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a settable signed level. Cloning shares the cell.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the level by `delta`.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level. (Meaningless on a disabled registry's sink.)
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The atomic storage behind a histogram handle.
#[derive(Debug)]
pub struct HistogramCore {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    fn new() -> HistogramCore {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    fn merge(&self, snap: &HistogramSnapshot) {
        for (bucket, &count) in self.buckets.iter().zip(&snap.buckets) {
            if count > 0 {
                bucket.fetch_add(count, Ordering::Relaxed);
            }
        }
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
        self.max.fetch_max(snap.max, Ordering::Relaxed);
    }
}

/// A latency histogram handle. Cloning shares the cells.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.0.record(v);
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0.snapshot()
    }
}

/// A point-in-time copy of one histogram's distribution.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts ([`NUM_BUCKETS`] entries; the last
    /// is the saturating overflow bucket).
    pub buckets: Vec<u64>,
    /// Exact sum of all recorded values.
    pub sum: u64,
    /// Exact maximum recorded value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean recorded value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum as f64 / count as f64
        }
    }

    /// The value at quantile `q ∈ [0, 1]`: the upper bound of the bucket
    /// holding the rank-⌈q·count⌉ observation, clamped to the exact
    /// recorded [`HistogramSnapshot::max`] (the overflow bucket reads as
    /// the max). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return match bucket_bound(i) {
                    Some(bound) => bound.min(self.max),
                    None => self.max,
                };
            }
        }
        self.max
    }

    /// Median (see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Adds `other`'s observations into this snapshot.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; NUM_BUCKETS];
        }
        for (mine, &theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// `(upper bound, count)` for every non-empty bucket; the overflow
    /// bucket reports the exact max as its bound.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_bound(i).unwrap_or(self.max), c))
            .collect()
    }
}

#[derive(Debug)]
enum MetricCell {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistogramCore>),
}

/// A named family of counters, gauges, and histograms.
///
/// See the module docs for the recording model and the disabled
/// mode. Metric names follow the Prometheus convention, optionally with
/// inline labels — see [`labeled`].
#[derive(Debug)]
pub struct MetricsRegistry {
    enabled: AtomicBool,
    metrics: Mutex<BTreeMap<String, MetricCell>>,
}

impl MetricsRegistry {
    /// An enabled, empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            enabled: AtomicBool::new(true),
            metrics: Mutex::new(BTreeMap::new()),
        }
    }

    /// A registry that hands out shared sink cells: recording stays a
    /// relaxed atomic add, but nothing is retained and snapshots are
    /// empty.
    pub fn disabled() -> MetricsRegistry {
        let registry = MetricsRegistry::new();
        registry.set_enabled(false);
        registry
    }

    /// Whether this registry retains recordings.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flips retention on or off. Handles registered while disabled are
    /// sinks and stay sinks; re-fetch handles after enabling.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// The counter named `name`, registered on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        if !self.is_enabled() {
            return Counter(sink_u64().clone());
        }
        let mut metrics = self.metrics.lock().expect("metrics lock");
        let cell = metrics
            .entry(name.to_string())
            .or_insert_with(|| MetricCell::Counter(Arc::new(AtomicU64::new(0))));
        match cell {
            MetricCell::Counter(c) => Counter(c.clone()),
            _ => panic!("metric {name:?} is already registered as a non-counter"),
        }
    }

    /// The gauge named `name`, registered on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        if !self.is_enabled() {
            return Gauge(sink_i64().clone());
        }
        let mut metrics = self.metrics.lock().expect("metrics lock");
        let cell = metrics
            .entry(name.to_string())
            .or_insert_with(|| MetricCell::Gauge(Arc::new(AtomicI64::new(0))));
        match cell {
            MetricCell::Gauge(g) => Gauge(g.clone()),
            _ => panic!("metric {name:?} is already registered as a non-gauge"),
        }
    }

    /// The histogram named `name`, registered on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        if !self.is_enabled() {
            return Histogram(sink_histogram().clone());
        }
        let mut metrics = self.metrics.lock().expect("metrics lock");
        let cell = metrics
            .entry(name.to_string())
            .or_insert_with(|| MetricCell::Histogram(Arc::new(HistogramCore::new())));
        match cell {
            MetricCell::Histogram(h) => Histogram(h.clone()),
            _ => panic!("metric {name:?} is already registered as a non-histogram"),
        }
    }

    /// A point-in-time copy of every metric, sorted by name. Empty when
    /// disabled.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snapshot = MetricsSnapshot::default();
        if !self.is_enabled() {
            return snapshot;
        }
        let metrics = self.metrics.lock().expect("metrics lock");
        for (name, cell) in metrics.iter() {
            match cell {
                MetricCell::Counter(c) => snapshot
                    .counters
                    .push((name.clone(), c.load(Ordering::Relaxed))),
                MetricCell::Gauge(g) => snapshot
                    .gauges
                    .push((name.clone(), g.load(Ordering::Relaxed))),
                MetricCell::Histogram(h) => snapshot.histograms.push((name.clone(), h.snapshot())),
            }
        }
        snapshot
    }

    /// Folds this registry's current values into `target` by name —
    /// counters and histograms add, gauges overwrite — mirroring
    /// `JoinStats`'s name-keyed stage merge. The local registry is left
    /// untouched; call once per worker on gather.
    pub fn fold_into(&self, target: &MetricsRegistry) {
        if !self.is_enabled() || !target.is_enabled() {
            return;
        }
        let snapshot = self.snapshot();
        for (name, v) in &snapshot.counters {
            target.counter(name).add(*v);
        }
        for (name, v) in &snapshot.gauges {
            target.gauge(name).set(*v);
        }
        for (name, h) in &snapshot.histograms {
            let Histogram(core) = target.histogram(name);
            core.merge(h);
        }
    }

    /// Drops every registered metric. Handles already handed out keep
    /// working but are no longer visible to snapshots; re-fetch after
    /// resetting.
    pub fn reset(&self) {
        self.metrics.lock().expect("metrics lock").clear();
    }
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

/// A point-in-time copy of a whole registry, each section sorted by name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, level)` for every gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, distribution)` for every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// The counter named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The gauge named `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The histogram named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Whether the snapshot holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Merges `other` by name: counters and histograms add, gauges take
    /// `other`'s value. Keeps each section sorted.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            match self.counters.binary_search_by(|(n, _)| n.cmp(name)) {
                Ok(i) => self.counters[i].1 += v,
                Err(i) => self.counters.insert(i, (name.clone(), *v)),
            }
        }
        for (name, v) in &other.gauges {
            match self.gauges.binary_search_by(|(n, _)| n.cmp(name)) {
                Ok(i) => self.gauges[i].1 = *v,
                Err(i) => self.gauges.insert(i, (name.clone(), *v)),
            }
        }
        for (name, h) in &other.histograms {
            match self.histograms.binary_search_by(|(n, _)| n.cmp(name)) {
                Ok(i) => self.histograms[i].1.merge(h),
                Err(i) => self.histograms.insert(i, (name.clone(), h.clone())),
            }
        }
    }
}

/// `family{key="value"}`: the inline-label naming convention the
/// exporters understand. The value is rendered with `Display`; quotes
/// and backslashes in it are escaped.
pub fn labeled(family: &str, key: &str, value: impl Display) -> String {
    let rendered = value.to_string();
    let mut escaped = String::with_capacity(rendered.len());
    for c in rendered.chars() {
        match c {
            '"' | '\\' => {
                escaped.push('\\');
                escaped.push(c);
            }
            '\n' => escaped.push_str("\\n"),
            c => escaped.push(c),
        }
    }
    format!("{family}{{{key}=\"{escaped}\"}}")
}

fn sink_u64() -> &'static Arc<AtomicU64> {
    static SINK: OnceLock<Arc<AtomicU64>> = OnceLock::new();
    SINK.get_or_init(|| Arc::new(AtomicU64::new(0)))
}

fn sink_i64() -> &'static Arc<AtomicI64> {
    static SINK: OnceLock<Arc<AtomicI64>> = OnceLock::new();
    SINK.get_or_init(|| Arc::new(AtomicI64::new(0)))
}

fn sink_histogram() -> &'static Arc<HistogramCore> {
    static SINK: OnceLock<Arc<HistogramCore>> = OnceLock::new();
    SINK.get_or_init(|| Arc::new(HistogramCore::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_and_indices_round_trip() {
        let mut previous = None;
        for i in 0..NUM_BUCKETS - 1 {
            let bound = bucket_bound(i).expect("finite bound");
            assert_eq!(bucket_index(bound), i, "bound {bound} of bucket {i}");
            if bound < MAX_TRACKED {
                assert_eq!(bucket_index(bound + 1), i + 1, "first value past {bound}");
            }
            if let Some(prev) = previous {
                assert!(bound > prev, "bounds strictly increase");
                if prev >= 2 {
                    // ~2 buckets/octave: at most 1.5× apart.
                    assert!(bound * 2 <= prev * 3, "bucket {i}: {prev} → {bound}");
                }
            }
            previous = Some(bound);
        }
        assert_eq!(previous, Some(MAX_TRACKED));
        assert_eq!(bucket_index(MAX_TRACKED + 1), NUM_BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn registry_hands_out_shared_cells_and_snapshots_by_name() {
        let registry = MetricsRegistry::new();
        registry.counter("a_total").inc();
        registry.counter("a_total").add(2);
        registry.gauge("level").set(-4);
        registry.histogram("lat_ms").record(6);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("a_total"), Some(3));
        assert_eq!(snapshot.gauge("level"), Some(-4));
        let h = snapshot.histogram("lat_ms").unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.max, 6);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_collisions_panic() {
        let registry = MetricsRegistry::new();
        registry.counter("x").inc();
        registry.gauge("x");
    }

    #[test]
    fn disabled_registry_retains_nothing() {
        let registry = MetricsRegistry::disabled();
        registry.counter("a_total").add(10);
        registry.gauge("g").set(5);
        registry.histogram("h").record(100);
        assert!(registry.snapshot().is_empty());
    }

    #[test]
    fn fold_adds_counters_and_merges_histograms() {
        let worker_a = MetricsRegistry::new();
        let worker_b = MetricsRegistry::new();
        worker_a.counter("probes_total").add(2);
        worker_b.counter("probes_total").add(3);
        worker_a.histogram("lat_ms").record(4);
        worker_b.histogram("lat_ms").record(16);
        let target = MetricsRegistry::new();
        worker_a.fold_into(&target);
        worker_b.fold_into(&target);
        let snapshot = target.snapshot();
        assert_eq!(snapshot.counter("probes_total"), Some(5));
        let h = snapshot.histogram("lat_ms").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum, 20);
        assert_eq!(h.max, 16);
    }

    #[test]
    fn labeled_escapes_quotes() {
        assert_eq!(labeled("req", "node", 3), "req{node=\"3\"}");
        assert_eq!(labeled("req", "s", "a\"b"), "req{s=\"a\\\"b\"}");
    }
}
