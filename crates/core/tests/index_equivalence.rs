//! Equivalence tests for the dense subgraph index and the parallel join.
//!
//! 1. **Index ≡ linear scan** — probing the flat per-size /
//!    position-bucket / twig-sorted storage must surface exactly the
//!    handles a naive scan over every inserted subgraph's registration
//!    predicate (size match, position within `[pos − ∆′, pos + ∆′]`, twig
//!    among the probe's keys) selects, for all three window policies and
//!    τ ∈ {0, 1, 3}.
//! 2. **Parallel ≡ sequential** — batched bounded-channel verification at
//!    the machine's default thread count returns the sequential result.

use partsj::{
    build_subgraphs, default_verify_threads, max_min_size, partsj_join_parallel, partsj_join_with,
    select_cuts, PartSjConfig, SubgraphIndex, TwigKeys, WindowPolicy,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tsj_datagen::{grow_tree, random_edit_script, ShapeProfile};
use tsj_tree::{BinaryTree, Label, Tree};

fn random_tree(seed: u64, size: usize, labels: u32, deepen: f64) -> Tree {
    let profile = ShapeProfile {
        max_fanout: 4,
        max_depth: 12,
        deepen_prob: deepen,
    };
    grow_tree(&mut StdRng::seed_from_u64(seed), size, labels, &profile)
}

/// One recorded registration: everything the naive reference needs to
/// decide whether a probe should surface the handle.
struct RefEntry {
    handle: u32,
    tree_size: u32,
    position: u32,
    half_width: u32,
    twig: u64,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The dense index surfaces exactly the handles a linear scan over
    /// all inserted subgraphs selects.
    #[test]
    fn probe_equals_linear_scan(seed in any::<u64>()) {
        for window in [WindowPolicy::Safe, WindowPolicy::Tight, WindowPolicy::PaperAbsolute] {
            for tau in [0u32, 1, 3] {
                let delta = 2 * tau as usize + 1;
                let mut rng = StdRng::seed_from_u64(seed ^ (tau as u64) << 3 ^ window as u64);
                let trees: Vec<Tree> = (0..6)
                    .map(|_| {
                        let size = rng.gen_range(delta.max(2)..delta + 30);
                        random_tree(rng.gen(), size, 5, rng.gen_range(0.0..0.6))
                    })
                    .collect();

                let mut index = SubgraphIndex::new(tau, window);
                let mut reference: Vec<RefEntry> = Vec::new();
                for (i, tree) in trees.iter().enumerate() {
                    if tree.len() < delta {
                        continue;
                    }
                    let binary = BinaryTree::from_tree(tree);
                    let gamma = max_min_size(&binary, delta);
                    let cuts = select_cuts(&binary, delta, gamma);
                    let sgs =
                        build_subgraphs(&binary, &tree.postorder_numbers(), &cuts, i as u32);
                    let base = index.len() as u32;
                    for (k, sg) in sgs.iter().enumerate() {
                        reference.push(RefEntry {
                            handle: base + k as u32,
                            tree_size: tree.len() as u32,
                            position: index.position_of(sg),
                            half_width: index.window_half_width(sg.ordinal),
                            twig: sg.twig,
                        });
                    }
                    index.insert_tree(tree.len() as u32, sgs);
                }

                // Probe with every node of every tree over the full
                // symmetric size window (the streaming/R×S superset).
                for tree in &trees {
                    let binary = BinaryTree::from_tree(tree);
                    let posts = tree.postorder_numbers();
                    let size = tree.len() as u32;
                    for node in binary.node_ids() {
                        let label = binary.label(node);
                        let left = binary
                            .left(node)
                            .map_or(Label::EPSILON, |c| binary.label(c));
                        let right = binary
                            .right(node)
                            .map_or(Label::EPSILON, |c| binary.label(c));
                        let keys = TwigKeys::new(label, left, right);
                        let position = index.probe_position(posts[node.index()], size);
                        for n in size.saturating_sub(tau).max(1)..=size + tau {
                            let mut got: Vec<u32> = Vec::new();
                            if let Some(layer) = index.layer_id(n) {
                                index.layer(layer).probe(position, &keys, |h| got.push(h));
                            }
                            got.sort_unstable();
                            let mut expected: Vec<u32> = reference
                                .iter()
                                .filter(|e| {
                                    e.tree_size == n
                                        && position >= e.position.saturating_sub(e.half_width)
                                        && position <= e.position + e.half_width
                                        && keys.as_slice().contains(&e.twig)
                                })
                                .map(|e| e.handle)
                                .collect();
                            expected.sort_unstable();
                            prop_assert_eq!(
                                got,
                                expected,
                                "window {:?}, tau {}, probe size {}",
                                window,
                                tau,
                                n
                            );
                        }
                    }
                }
            }
        }
    }

    /// Batched parallel verification at the default (machine-sized)
    /// thread count reproduces the sequential join exactly.
    #[test]
    fn parallel_equals_sequential_at_default_threads(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trees: Vec<Tree> = Vec::new();
        for i in 0..80 {
            if i >= 2 && rng.gen_bool(0.5) {
                let base = rng.gen_range(0..trees.len());
                let edits = rng.gen_range(0..4usize);
                let (edited, _) = random_edit_script(&trees[base], edits, &mut rng, 5);
                trees.push(edited);
            } else {
                let size = rng.gen_range(3..20usize);
                trees.push(random_tree(rng.gen(), size, 5, rng.gen_range(0.0..0.6)));
            }
        }
        let threads = default_verify_threads();
        for tau in [0u32, 1, 2] {
            let config = PartSjConfig::default();
            let seq = partsj_join_with(&trees, tau, &config);
            let par = partsj_join_parallel(&trees, tau, &config, threads);
            prop_assert_eq!(&seq.pairs, &par.pairs, "tau {}, threads {}", tau, threads);
            prop_assert_eq!(seq.stats.candidates, par.stats.candidates);
            prop_assert_eq!(seq.stats.prefilter_skips, par.stats.prefilter_skips);
        }
    }
}
