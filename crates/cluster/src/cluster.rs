//! The [`Cluster`]: N catalog nodes behind the scatter/gather router.
//!
//! Construction restores every node's owned shard sections from a
//! snapshot ([`Cluster::from_snapshot`] hands each node the same bytes;
//! [`Cluster::from_node_snapshots`] gives each node its own copy, which
//! is how the corruption suite models a node holding damaged data). A
//! node whose restore fails — corrupted shard section, truncated file —
//! comes up **down** with the typed error attached, and the router
//! treats it exactly like a dead node: requests fail over to replicas.
//!
//! After losses, [`Cluster::recover`] re-replicates the dead nodes'
//! shard slots onto survivors from the retained snapshot — the "node
//! loss + shard reassignment from the same snapshot" path of the
//! roadmap's serving-layer item.

use crate::error::ClusterError;
use crate::fault::{corrupt_range, mix, FaultInjector, FaultPlan};
use crate::metrics::{ClusterMetrics, NodeMetricsSnapshot};
use crate::node::Node;
use crate::retry::RetryPolicy;
use crate::topology::Topology;
use std::sync::Arc;
use tsj_catalog::SnapshotReader;
use tsj_obs::{Clock, MetricsSnapshot, VirtualClock};
use tsj_shard::ShardMap;

/// How to build a [`Cluster`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Copies of each shard (clamped to the node count).
    pub replication: usize,
    /// What to inject, and when.
    pub faults: FaultPlan,
    /// Retry/backoff/deadline policy of the router.
    pub retry: RetryPolicy,
}

impl ClusterConfig {
    /// A fault-free cluster of `nodes` nodes with `replication` copies
    /// per shard and the default retry policy.
    pub fn new(nodes: usize, replication: usize) -> ClusterConfig {
        ClusterConfig {
            nodes,
            replication,
            faults: FaultPlan::none(),
            retry: RetryPolicy::default(),
        }
    }
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig::new(1, 1)
    }
}

/// A node slot: restored and servable, or down with the reason.
#[derive(Debug)]
pub(crate) enum NodeSlot {
    Up(Node),
    Down(ClusterError),
}

/// An in-process cluster of catalog nodes serving scatter/gather joins.
#[derive(Debug)]
pub struct Cluster {
    pub(crate) topology: Topology,
    pub(crate) slots: Vec<NodeSlot>,
    /// `health[n]` — node `n` is up *and* currently believed reachable.
    /// Restore failures and static fault-plan deaths clear it at
    /// construction; the router clears it when a request finds the node
    /// dead mid-join.
    pub(crate) health: Vec<bool>,
    pub(crate) tau: u32,
    pub(crate) map: ShardMap,
    pub(crate) shard_count: usize,
    pub(crate) injector: FaultInjector,
    pub(crate) retry: RetryPolicy,
    pub(crate) clock: Arc<dyn Clock>,
    /// Per-node lifetime counters and latency histograms; increments
    /// mirror the router's telemetry so sums reconcile exactly.
    pub(crate) metrics: ClusterMetrics,
    /// The snapshot recovery restores reassigned shard sections from.
    snapshot: Arc<SnapshotReader>,
}

impl Cluster {
    /// Builds a cluster where every node restores its owned shards from
    /// the same snapshot `bytes`. Nodes named in
    /// [`FaultPlan::corrupt_on_load`] get a deterministically damaged
    /// private copy (one owned shard section flipped), so their restore
    /// fails with the typed checksum error and they come up down.
    pub fn from_snapshot(bytes: Vec<u8>, cfg: &ClusterConfig) -> Result<Cluster, ClusterError> {
        let reader = SnapshotReader::from_bytes(bytes.clone())?;
        let topology = Self::check_topology(&reader, cfg)?;
        let mut slots = Vec::with_capacity(cfg.nodes);
        for n in 0..cfg.nodes {
            let owned = topology.shards_of(n);
            let corrupt = cfg.faults.corrupt_on_load.contains(&n) && !owned.is_empty();
            let slot = if corrupt {
                let target = owned[(mix(cfg.faults.seed, &[n as u64]) as usize) % owned.len()];
                let range = reader.shard_section_range(target as usize)?;
                let mut dirty = bytes.clone();
                corrupt_range(&mut dirty, range, cfg.faults.seed ^ n as u64);
                match SnapshotReader::from_bytes(dirty)
                    .map_err(ClusterError::from)
                    .and_then(|r| Node::restore(n, &r, &owned))
                {
                    Ok(node) => NodeSlot::Up(node),
                    Err(e) => NodeSlot::Down(e),
                }
            } else {
                match Node::restore(n, &reader, &owned) {
                    Ok(node) => NodeSlot::Up(node),
                    Err(e) => NodeSlot::Down(e),
                }
            };
            slots.push(slot);
        }
        Self::assemble(reader, topology, slots, cfg)
    }

    /// Builds a cluster where node `n` restores from `snapshots[n]` —
    /// its own, possibly damaged, copy. A node whose copy fails to parse
    /// or decode comes up down with the typed error; construction only
    /// fails outright when *no* node's copy parses (there is no catalog
    /// to serve). Recovery uses the first parseable copy as its section
    /// source.
    pub fn from_node_snapshots(
        snapshots: Vec<Vec<u8>>,
        cfg: &ClusterConfig,
    ) -> Result<Cluster, ClusterError> {
        if snapshots.len() != cfg.nodes {
            return Err(ClusterError::Topology {
                context: format!("{} node snapshots for {} nodes", snapshots.len(), cfg.nodes),
            });
        }
        let mut parsed: Vec<Result<SnapshotReader, ClusterError>> = snapshots
            .into_iter()
            .map(|bytes| SnapshotReader::from_bytes(bytes).map_err(ClusterError::from))
            .collect();
        let Some(canonical) = parsed.iter().position(|r| r.is_ok()) else {
            // No copy parses at all: there is no catalog to serve.
            return Err(parsed.swap_remove(0).unwrap_err());
        };
        let (topology, shards, tau) = {
            let Ok(reader) = &parsed[canonical] else {
                unreachable!("canonical picked among Ok entries")
            };
            (
                Self::check_topology(reader, cfg)?,
                reader.shard_count(),
                reader.tau(),
            )
        };
        let mut canonical_reader = None;
        let mut slots = Vec::with_capacity(cfg.nodes);
        for (n, res) in parsed.into_iter().enumerate() {
            let slot = match res {
                Err(e) => NodeSlot::Down(e),
                Ok(reader) if reader.shard_count() != shards || reader.tau() != tau => {
                    NodeSlot::Down(ClusterError::Topology {
                        context: format!(
                            "node {n} holds a different catalog (shards {}, tau {}) than the \
                             cluster (shards {shards}, tau {tau})",
                            reader.shard_count(),
                            reader.tau()
                        ),
                    })
                }
                Ok(reader) => {
                    let slot = match Node::restore(n, &reader, &topology.shards_of(n)) {
                        Ok(node) => NodeSlot::Up(node),
                        Err(e) => NodeSlot::Down(e),
                    };
                    if canonical_reader.is_none() {
                        // Recovery's section source: the first parseable
                        // copy (sections stay checksum-verified at use).
                        canonical_reader = Some(reader);
                    }
                    slot
                }
            };
            slots.push(slot);
        }
        let reader = canonical_reader.expect("at least one copy parsed");
        Self::assemble(reader, topology, slots, cfg)
    }

    fn check_topology(
        reader: &SnapshotReader,
        cfg: &ClusterConfig,
    ) -> Result<Topology, ClusterError> {
        if reader.shard_count() == 0 {
            return Err(ClusterError::Topology {
                context: "snapshot holds no shards".into(),
            });
        }
        Topology::new(reader.shard_count(), cfg.nodes, cfg.replication)
    }

    fn assemble(
        reader: SnapshotReader,
        topology: Topology,
        slots: Vec<NodeSlot>,
        cfg: &ClusterConfig,
    ) -> Result<Cluster, ClusterError> {
        let map = reader.shard_map()?;
        let health = slots
            .iter()
            .enumerate()
            .map(|(n, slot)| matches!(slot, NodeSlot::Up(_)) && !cfg.faults.down_nodes.contains(&n))
            .collect();
        let metrics = ClusterMetrics::new(cfg.nodes);
        Ok(Cluster {
            tau: reader.tau(),
            shard_count: reader.shard_count(),
            map,
            topology,
            slots,
            health,
            injector: FaultInjector::new(cfg.faults.clone()),
            retry: cfg.retry.clone(),
            clock: Arc::new(VirtualClock::new()),
            metrics,
            snapshot: Arc::new(reader),
        })
    }

    /// Swaps the clock (e.g. [`crate::SystemClock`] for real waiting, or
    /// a shared [`VirtualClock`] a test inspects).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Cluster {
        self.clock = clock;
        self
    }

    /// Per-node lifetime metrics: serve attempts, responses, failures,
    /// retries, failovers, backoff/delay milliseconds and the
    /// request-latency histogram, cumulative across every join this
    /// cluster served. Per-node sums reconcile exactly with each join's
    /// [`crate::Telemetry`]; on a `VirtualClock` the latency
    /// distributions are deterministic. Zeros when the global
    /// observability registry was disabled at construction.
    pub fn metrics(&self) -> Vec<NodeMetricsSnapshot> {
        self.metrics.per_node(&self.health)
    }

    /// The raw per-node metric series (names labeled `{node="n"}`),
    /// ready for [`tsj_obs::export::to_prometheus`] /
    /// [`tsj_obs::export::to_json`] — what a `catalogd` server would
    /// expose on its `/metrics` endpoint.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The threshold the underlying snapshot was frozen for.
    pub fn tau(&self) -> u32 {
        self.tau
    }

    /// Number of shards in the snapshot.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Number of nodes (up or down).
    pub fn node_count(&self) -> usize {
        self.slots.len()
    }

    /// The shard placement table.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Whether node `n` is currently believed alive.
    pub fn is_alive(&self, n: usize) -> bool {
        self.health.get(n).copied().unwrap_or(false)
    }

    /// Nodes currently believed alive, ascending.
    pub fn alive_nodes(&self) -> Vec<usize> {
        (0..self.slots.len()).filter(|&n| self.health[n]).collect()
    }

    /// The restore error that downed node `n`, if any.
    pub fn node_error(&self, n: usize) -> Option<&ClusterError> {
        match self.slots.get(n) {
            Some(NodeSlot::Down(e)) => Some(e),
            _ => None,
        }
    }

    /// Marks node `n` dead: subsequent joins route around it. (The
    /// in-process analogue of pulling the plug mid-workload.)
    pub fn kill_node(&mut self, n: usize) {
        if let Some(h) = self.health.get_mut(n) {
            *h = false;
        }
    }

    /// Shards with no alive replica — joins touching their size classes
    /// will degrade until [`Cluster::recover`] reassigns them.
    pub fn lost_shards(&self) -> Vec<u32> {
        (0..self.shard_count as u32)
            .filter(|&s| self.topology.replicas(s).iter().all(|&n| !self.health[n]))
            .collect()
    }

    /// Re-replicates every shard slot held by a dead node onto the
    /// least-loaded alive node not already holding that shard, decoding
    /// the section from the retained snapshot (checksum-verified — a
    /// damaged section is a typed error, and that shard keeps its dead
    /// slot). Returns the number of shard slots moved.
    pub fn recover(&mut self) -> Result<usize, ClusterError> {
        let mut loads: Vec<usize> = (0..self.slots.len())
            .map(|n| match &self.slots[n] {
                NodeSlot::Up(node) => node.owned_shards().len(),
                NodeSlot::Down(_) => 0,
            })
            .collect();
        let mut moved = 0;
        for shard in 0..self.shard_count as u32 {
            let replicas = self.topology.replicas(shard).to_vec();
            for dead in replicas.iter().copied().filter(|&n| !self.health[n]) {
                let holders = self.topology.replicas(shard).to_vec();
                let target = (0..self.slots.len())
                    .filter(|&n| self.health[n] && !holders.contains(&n))
                    .min_by_key(|&n| (loads[n], n));
                let Some(target) = target else { continue };
                let index = self.snapshot.shard(shard as usize)?;
                let NodeSlot::Up(node) = &mut self.slots[target] else {
                    unreachable!("healthy nodes are restored");
                };
                node.add_shard(shard, index);
                self.topology.reassign(shard, dead, target)?;
                loads[target] += 1;
                moved += 1;
            }
        }
        Ok(moved)
    }
}
