//! Multi-core PartSJ (§6's future-work direction, built as an extension).
//!
//! Candidate generation is inherently sequential — the index is populated
//! while the join runs, so probe order matters — but verification is
//! embarrassingly parallel. This variant runs the standard candidate
//! pipeline on the caller's thread and streams candidate pairs through a
//! crossbeam channel to a pool of verifier threads, each owning a private
//! [`TedEngine`]. Result sets are identical to the sequential join.

use crate::config::{PartSjConfig, PartitionScheme};
use crate::index::SubgraphIndex;
use crate::partition::{max_min_size, select_cuts, select_random_cuts};
use crate::subgraph::{build_subgraphs, subgraph_matches_with};
use crossbeam::channel;
use std::time::Instant;
use tsj_ted::{JoinOutcome, JoinStats, PreparedTree, TedEngine, TreeIdx};
use tsj_tree::{BinaryTree, FxHashMap, Label, Tree};

/// PartSJ with parallel verification over `threads` workers.
///
/// Falls back to the sequential join for tiny inputs or `threads ≤ 1`.
pub fn partsj_join_parallel(
    trees: &[Tree],
    tau: u32,
    config: &PartSjConfig,
    threads: usize,
) -> JoinOutcome {
    let threads = threads.max(1);
    if threads == 1 || trees.len() < 64 {
        return crate::join::partsj_join_with(trees, tau, config);
    }

    let delta = 2 * tau as usize + 1;
    let mut stats = JoinStats::default();

    let total_start = Instant::now();
    let setup_start = Instant::now();
    let binaries: Vec<BinaryTree> = trees.iter().map(BinaryTree::from_tree).collect();
    let general_posts: Vec<Vec<u32>> = trees.iter().map(Tree::postorder_numbers).collect();
    let prepared: Vec<PreparedTree> = trees.iter().map(PreparedTree::new).collect();
    let mut order: Vec<TreeIdx> = (0..trees.len() as TreeIdx).collect();
    order.sort_by_key(|&i| (trees[i as usize].len(), i));
    let mut candidate_time = setup_start.elapsed();

    let (tx, rx) = channel::unbounded::<(TreeIdx, TreeIdx)>();

    let (pairs, candidates_total, ted_calls) = crossbeam::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                let rx = rx.clone();
                let prepared = &prepared;
                scope.spawn(move |_| {
                    let mut engine = TedEngine::unit();
                    let mut found = Vec::new();
                    while let Ok((i, j)) = rx.recv() {
                        let d = engine.distance(&prepared[i as usize], &prepared[j as usize]);
                        if d <= tau {
                            found.push((j, i));
                        }
                    }
                    (found, engine.computations())
                })
            })
            .collect();
        drop(rx);

        // Candidate generation on this thread (identical to the
        // sequential join, but candidates are sent instead of buffered).
        let mut index = SubgraphIndex::new(tau, config.window);
        let mut small_by_size: FxHashMap<u32, Vec<TreeIdx>> = FxHashMap::default();
        let mut stamp: Vec<TreeIdx> = vec![TreeIdx::MAX; trees.len()];
        let mut candidates_total = 0u64;

        for &i in &order {
            let phase_start = Instant::now();
            let binary = &binaries[i as usize];
            let size_i = binary.len() as u32;
            let lo = size_i.saturating_sub(tau).max(1);

            for n in lo..=size_i {
                if let Some(list) = small_by_size.get(&n) {
                    for &j in list {
                        if stamp[j as usize] != i {
                            stamp[j as usize] = i;
                            candidates_total += 1;
                            tx.send((i, j)).expect("verifier pool alive");
                        }
                    }
                }
            }

            let posts_i = &general_posts[i as usize];
            for node in binary.node_ids() {
                let label = binary.label(node);
                let left = binary
                    .left(node)
                    .map_or(Label::EPSILON, |c| binary.label(c));
                let right = binary
                    .right(node)
                    .map_or(Label::EPSILON, |c| binary.label(c));
                let position = index.probe_position(posts_i[node.index()], size_i);
                for n in lo..=size_i {
                    let mut hits: Vec<TreeIdx> = Vec::new();
                    index.probe(n, position, label, left, right, |handle| {
                        let sg = index.subgraph(handle);
                        if stamp[sg.tree as usize] != i
                            && subgraph_matches_with(sg, binary, node, config.matching)
                        {
                            hits.push(sg.tree);
                        }
                    });
                    for j in hits {
                        if stamp[j as usize] != i {
                            stamp[j as usize] = i;
                            candidates_total += 1;
                            tx.send((i, j)).expect("verifier pool alive");
                        }
                    }
                }
            }

            if (size_i as usize) < delta {
                small_by_size.entry(size_i).or_default().push(i);
            } else {
                let cuts = match config.partitioning {
                    PartitionScheme::MaxMin => {
                        let gamma = max_min_size(binary, delta);
                        select_cuts(binary, delta, gamma)
                    }
                    PartitionScheme::Random { seed } => {
                        select_random_cuts(binary, delta, seed ^ u64::from(i))
                    }
                };
                index.insert_tree(
                    size_i,
                    build_subgraphs(binary, &general_posts[i as usize], &cuts, i),
                );
            }
            candidate_time += phase_start.elapsed();
        }
        drop(tx);

        let mut pairs = Vec::new();
        let mut ted_calls = 0u64;
        for worker in workers {
            let (found, calls) = worker.join().expect("verifier panicked");
            pairs.extend(found);
            ted_calls += calls;
        }
        (pairs, candidates_total, ted_calls)
    })
    .expect("crossbeam scope failed");

    stats.candidate_time = candidate_time;
    stats.verify_time = total_start.elapsed().saturating_sub(candidate_time);
    stats.candidates = candidates_total;
    stats.pairs_examined = candidates_total;
    stats.ted_calls = ted_calls;
    JoinOutcome::new(pairs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::partsj_join_with;
    use tsj_tree::{parse_bracket, LabelInterner};

    #[test]
    fn parallel_matches_sequential() {
        // Build a collection large enough to avoid the fallback.
        let mut labels = LabelInterner::new();
        let base = [
            "{a{b}{c}{d}}",
            "{a{b}{c}{e}}",
            "{a{b}{c}}",
            "{q{w}{e}{r}}",
            "{q{w}{e}{r}{t}}",
            "{m{n{o}{p}}}",
        ];
        let trees: Vec<_> = (0..120)
            .map(|i| parse_bracket(base[i % base.len()], &mut labels).unwrap())
            .collect();
        for tau in [0u32, 1, 2] {
            let config = PartSjConfig::default();
            let seq = partsj_join_with(&trees, tau, &config);
            let par = partsj_join_parallel(&trees, tau, &config, 4);
            assert_eq!(seq.pairs, par.pairs, "tau = {tau}");
            assert_eq!(seq.stats.candidates, par.stats.candidates, "tau = {tau}");
        }
    }

    #[test]
    fn small_input_falls_back() {
        let mut labels = LabelInterner::new();
        let trees = vec![
            parse_bracket("{a{b}}", &mut labels).unwrap(),
            parse_bracket("{a{b}}", &mut labels).unwrap(),
        ];
        let outcome = partsj_join_parallel(&trees, 0, &PartSjConfig::default(), 8);
        assert_eq!(outcome.pairs, vec![(0, 1)]);
    }
}
