//! Brute-force ground truth: verify every size-compatible pair.
//!
//! This is the `REL` oracle of the evaluation figures — it applies only the
//! size filter and computes exact TED for everything else, so its result
//! set is the similarity join by definition. A crossbeam-parallel variant
//! is provided because ground truth at harness scale is otherwise the
//! bottleneck of every experiment.

use crate::common::{filter_verify_join, SizeOrder};
use std::time::Instant;
use tsj_ted::{JoinOutcome, JoinStats, PreparedTree, TedBuildScratch, TedEngine, TreeIdx};
use tsj_tree::Tree;

/// Per-worker result: found pairs, pairs examined, TED calls.
type WorkerResult = (Vec<(TreeIdx, TreeIdx)>, u64, u64);

/// Sequential brute-force self-join (size filter + exact TED only).
pub fn brute_force_join(trees: &[Tree], tau: u32) -> JoinOutcome {
    filter_verify_join(trees, tau, || (), |_, _, _| true)
}

/// Parallel brute-force self-join over `threads` workers.
///
/// Probe positions are dealt round-robin to workers; each worker owns a
/// private [`TedEngine`] and scans its probes' size windows. Results are
/// identical to [`brute_force_join`] (the outcome normalizes pair order).
pub fn brute_force_join_parallel(trees: &[Tree], tau: u32, threads: usize) -> JoinOutcome {
    let threads = threads.max(1);
    if threads == 1 || trees.len() < 64 {
        return brute_force_join(trees, tau);
    }

    let start = Instant::now();
    let ordering = SizeOrder::new(trees);
    let mut build = TedBuildScratch::default();
    let prepared: Vec<PreparedTree> = trees
        .iter()
        .map(|t| PreparedTree::new_with(t, &mut build))
        .collect();
    let setup = start.elapsed();

    let verify_start = Instant::now();
    let mut all_pairs: Vec<(TreeIdx, TreeIdx)> = Vec::new();
    let mut examined = 0u64;
    let mut ted_calls = 0u64;

    let results: Vec<WorkerResult> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let ordering = &ordering;
                let prepared = &prepared;
                scope.spawn(move |_| {
                    let mut engine = TedEngine::unit();
                    let mut pairs = Vec::new();
                    let mut examined = 0u64;
                    for pos in (worker..ordering.order.len()).step_by(threads) {
                        let probe = ordering.order[pos];
                        let probe_size = ordering.sizes[probe as usize];
                        // Scan the size window ending at this position.
                        for back in (0..pos).rev() {
                            let other = ordering.order[back];
                            if ordering.sizes[other as usize] + tau < probe_size {
                                break;
                            }
                            examined += 1;
                            let d = engine
                                .distance(&prepared[probe as usize], &prepared[other as usize]);
                            if d <= tau {
                                pairs.push((other, probe));
                            }
                        }
                    }
                    (pairs, examined, engine.computations())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("crossbeam scope failed");

    for (pairs, ex, calls) in results {
        all_pairs.extend(pairs);
        examined += ex;
        ted_calls += calls;
    }

    let stats = JoinStats {
        pairs_examined: examined,
        candidates: examined,
        results: 0, // set by JoinOutcome::new
        candidate_time: setup,
        verify_time: verify_start.elapsed(),
        ted_calls,
        ..Default::default()
    };
    JoinOutcome::new(all_pairs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsj_tree::{parse_bracket, LabelInterner};

    fn collection(specs: &[&str]) -> Vec<Tree> {
        let mut labels = LabelInterner::new();
        specs
            .iter()
            .map(|s| parse_bracket(s, &mut labels).unwrap())
            .collect()
    }

    #[test]
    fn brute_force_is_exact() {
        let trees = collection(&[
            "{a{b}{c}}",
            "{a{b}{c}}",
            "{a{b}{z}}",
            "{a{b{c}{d}}}",
            "{q{w}{e}{r}}",
        ]);
        let outcome = brute_force_join(&trees, 1);
        assert_eq!(outcome.pairs, vec![(0, 1), (0, 2), (1, 2)]);
        let outcome2 = brute_force_join(&trees, 2);
        assert!(outcome2.pairs.len() >= outcome.pairs.len());
    }

    #[test]
    fn parallel_matches_sequential() {
        // Generate a deterministic pseudo-random mix of bracket trees.
        let specs: Vec<String> = (0..90)
            .map(|i| match i % 5 {
                0 => "{a{b}{c}}".to_string(),
                1 => "{a{b}{c{d}}}".to_string(),
                2 => "{a{b}{z}}".to_string(),
                3 => "{a{b{c}{d}}{e}}".to_string(),
                _ => "{q{w}{e}}".to_string(),
            })
            .collect();
        let mut labels = LabelInterner::new();
        let trees: Vec<Tree> = specs
            .iter()
            .map(|s| parse_bracket(s, &mut labels).unwrap())
            .collect();
        for tau in [0, 1, 2] {
            let seq = brute_force_join(&trees, tau);
            let par = brute_force_join_parallel(&trees, tau, 4);
            assert_eq!(seq.pairs, par.pairs, "tau = {tau}");
        }
    }

    #[test]
    fn parallel_small_input_falls_back() {
        let trees = collection(&["{a}", "{a}"]);
        let outcome = brute_force_join_parallel(&trees, 0, 8);
        assert_eq!(outcome.pairs, vec![(0, 1)]);
    }
}
