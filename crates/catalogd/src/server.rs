//! The `catalogd` server: one process per catalog node, restoring only
//! its owned shard sections and answering wire frames over TCP.
//!
//! The server is deliberately boring: `std::net` + one thread per
//! connection (no async runtime — the workspace's vendored-deps rule),
//! sharing one read-only [`Node`] behind an `Arc`. Each connection owns
//! its serve scratch and its registered probe batch, so connections
//! never contend beyond the metrics counters (relaxed atomics).
//!
//! Fault discipline mirrors the wire codec's: a malformed frame is
//! answered with a typed [`Frame::Error`] and the connection survives
//! when framing is still trustworthy (the checksum passed); a framing
//! violation closes the connection; nothing panics. Shutdown is a
//! frame, not a signal: [`Frame::Shutdown`] → [`Frame::ShutdownAck`] →
//! the accept loop exits — which is how the CI smoke job and the demo
//! example stop their nodes without `pkill`.

use crate::error::CatalogdError;
use crate::wire::{decode_probes, ErrorCode, Frame, ProbeBatch, PROTOCOL_VERSION};
use partsj::PartSjConfig;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use tsj_catalog::format::fnv1a64;
use tsj_catalog::snapshot::encode_shard_map;
use tsj_catalog::SnapshotReader;
use tsj_cluster::{Node, NodeScratch, ProbeCtx, Topology};
use tsj_obs::{labeled, Counter, Histogram, MetricsRegistry};
use tsj_tree::{LabelInterner, Tree};

/// How a server process maps itself into the node set.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// This process's node id, `0 ≤ node < nodes`.
    pub node: usize,
    /// Total nodes in the set.
    pub nodes: usize,
    /// Copies per shard (clamped to the node count, like the in-process
    /// cluster).
    pub replication: usize,
    /// The join configuration requests are served under. Clients plan
    /// only from `tau`, so this stays server-side; the default matches
    /// `Cluster::join` with `PartSjConfig::default()`.
    pub join_config: PartSjConfig,
}

impl ServerConfig {
    /// Node `node` of `nodes` with `replication` copies per shard and
    /// the default join configuration.
    pub fn new(node: usize, nodes: usize, replication: usize) -> ServerConfig {
        ServerConfig {
            node,
            nodes,
            replication,
            join_config: PartSjConfig::default(),
        }
    }
}

/// The per-server metric handles (`tsj_catalogd_*`, node-labeled).
#[derive(Debug)]
struct ServerCells {
    connections: Counter,
    frames: Counter,
    joins: Counter,
    probe_batches: Counter,
    errors: Counter,
    /// Serve time of one `JoinShard`, in microseconds.
    join_serve_us: Histogram,
}

/// Handles to every open connection, so the accept loop can sever them
/// when it exits. Without this, an in-thread server's handler threads
/// would keep serving pooled client connections after `stop()` — the
/// opposite of what "the node is down" means to a test or a pool
/// validity ping. (A real `catalogd` process gets the same effect from
/// process exit.)
#[derive(Debug, Default)]
struct ConnTable {
    next: AtomicU64,
    open: Mutex<HashMap<u64, TcpStream>>,
}

impl ConnTable {
    /// Registers a connection; returns `None` (untracked) if the handle
    /// cannot be cloned.
    fn track(&self, stream: &TcpStream) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        self.open.lock().expect("conn table lock").insert(id, clone);
        Some(id)
    }

    fn untrack(&self, id: Option<u64>) {
        if let Some(id) = id {
            self.open.lock().expect("conn table lock").remove(&id);
        }
    }

    /// Severs every open connection (graceful FIN — replies already
    /// written are still delivered).
    fn close_all(&self) {
        for (_, stream) in self.open.lock().expect("conn table lock").drain() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// Everything connection threads share, read-only (metrics are interior
/// atomics).
#[derive(Debug)]
struct NodeState {
    node_id: u32,
    nodes: u32,
    replication: u32,
    tau: u32,
    shard_count: u32,
    tree_count: u32,
    snapshot_hash: u64,
    owned_shards: Vec<u32>,
    shard_map_bytes: Vec<u8>,
    labels: LabelInterner,
    node: Node,
    join_config: PartSjConfig,
    registry: MetricsRegistry,
    cells: ServerCells,
    conns: ConnTable,
}

/// A bound, not-yet-serving catalog node.
#[derive(Debug)]
pub struct Catalogd {
    state: Arc<NodeState>,
    listener: TcpListener,
    stop: Arc<AtomicBool>,
}

impl Catalogd {
    /// Restores node `cfg.node`'s owned shard sections from `snapshot`
    /// and binds `addr` (use port 0 to let the OS pick). Placement is
    /// the same round-robin topology the in-process cluster uses, so a
    /// node set started with identical `nodes`/`replication` agrees on
    /// who owns what without any coordination.
    pub fn bind(
        snapshot: Vec<u8>,
        cfg: &ServerConfig,
        addr: &str,
    ) -> Result<Catalogd, CatalogdError> {
        let snapshot_hash = fnv1a64(&snapshot);
        let reader = SnapshotReader::from_bytes(snapshot)?;
        let topology = Topology::new(reader.shard_count(), cfg.nodes, cfg.replication)?;
        if cfg.node >= cfg.nodes {
            return Err(CatalogdError::Handshake {
                context: format!("node id {} out of range for {} nodes", cfg.node, cfg.nodes),
            });
        }
        let owned_shards = topology.shards_of(cfg.node);
        let node = Node::restore(cfg.node, &reader, &owned_shards)?;
        let labels = reader.labels()?;
        let shard_map_bytes = encode_shard_map(&reader.shard_map()?);
        let registry = MetricsRegistry::new();
        let n = cfg.node;
        let cells = ServerCells {
            connections: registry.counter(&labeled("tsj_catalogd_connections_total", "node", n)),
            frames: registry.counter(&labeled("tsj_catalogd_frames_total", "node", n)),
            joins: registry.counter(&labeled("tsj_catalogd_joins_served_total", "node", n)),
            probe_batches: registry.counter(&labeled(
                "tsj_catalogd_probe_batches_total",
                "node",
                n,
            )),
            errors: registry.counter(&labeled("tsj_catalogd_errors_total", "node", n)),
            join_serve_us: registry.histogram(&labeled("tsj_catalogd_join_serve_us", "node", n)),
        };
        let state = Arc::new(NodeState {
            node_id: cfg.node as u32,
            nodes: cfg.nodes as u32,
            replication: topology.replication() as u32,
            tau: reader.tau(),
            shard_count: reader.shard_count() as u32,
            tree_count: reader.tree_count() as u32,
            snapshot_hash,
            owned_shards,
            shard_map_bytes,
            labels,
            node,
            join_config: cfg.join_config,
            registry,
            cells,
            conns: ConnTable::default(),
        });
        let listener = TcpListener::bind(addr).map_err(|e| CatalogdError::Io {
            kind: e.kind(),
            context: format!("binding {addr}"),
        })?;
        Ok(Catalogd {
            state,
            listener,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> Result<SocketAddr, CatalogdError> {
        self.listener.local_addr().map_err(|e| CatalogdError::Io {
            kind: e.kind(),
            context: "reading bound address".into(),
        })
    }

    /// Serves until a [`Frame::Shutdown`] arrives. One thread per
    /// connection; the accepting thread is the caller's.
    pub fn run(self) -> Result<(), CatalogdError> {
        let addr = self.local_addr()?;
        for stream in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let state = Arc::clone(&self.state);
            let stop = Arc::clone(&self.stop);
            let conn_id = state.conns.track(&stream);
            std::thread::spawn(move || {
                handle_conn(Arc::clone(&state), stream, stop, addr);
                state.conns.untrack(conn_id);
            });
        }
        // The node is going down: sever open connections so clients see
        // a dead node, not a half-alive one (process exit would do the
        // same for a standalone `catalogd`).
        self.state.conns.close_all();
        Ok(())
    }

    /// Runs the serve loop on a background thread — the in-process form
    /// the tests, the demo example and the bit-identity suite use.
    pub fn spawn(self) -> Result<RunningServer, CatalogdError> {
        let addr = self.local_addr()?;
        let stop = Arc::clone(&self.stop);
        let handle = std::thread::spawn(move || {
            let _ = self.run();
        });
        Ok(RunningServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }
}

/// A serve loop running on a background thread.
#[derive(Debug)]
pub struct RunningServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl RunningServer {
    /// The address the server listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop, joins its thread, and severs any open
    /// connections — after this returns the node is fully dead, like a
    /// standalone `catalogd` process that exited.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Per-connection serve state: the registered probe batch and the serve
/// scratch, plus an interner clone so wire labels remap injectively
/// onto the snapshot's ids.
struct ConnState {
    interner: LabelInterner,
    probes: Vec<Tree>,
    ctxs: Vec<ProbeCtx>,
    scratch: NodeScratch,
}

fn handle_conn(
    state: Arc<NodeState>,
    mut stream: TcpStream,
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
) {
    state.cells.connections.inc();
    stream.set_nodelay(true).ok();
    let mut conn = ConnState {
        interner: state.labels.clone(),
        probes: Vec::new(),
        ctxs: Vec::new(),
        scratch: NodeScratch::default(),
    };
    loop {
        let frame = match Frame::read_from(&mut stream) {
            Ok(frame) => frame,
            Err(e) if e.desyncs_stream() => break,
            Err(crate::wire::WireError::UnknownType { tag }) => {
                state.cells.errors.inc();
                let _ = Frame::Error {
                    code: ErrorCode::UnknownFrameType,
                    message: format!(
                        "frame type {tag:#04x} is not known to version {PROTOCOL_VERSION}"
                    ),
                }
                .write_to(&mut stream);
                continue;
            }
            Err(e) => {
                // Checksummed but undecodable payload: framing is still
                // trustworthy, answer typed and keep serving.
                state.cells.errors.inc();
                let _ = Frame::Error {
                    code: ErrorCode::BadRequest,
                    message: e.to_string(),
                }
                .write_to(&mut stream);
                continue;
            }
        };
        state.cells.frames.inc();
        let shutdown = matches!(frame, Frame::Shutdown);
        let reply = respond(&state, &mut conn, frame);
        if matches!(reply, Frame::Error { .. }) {
            state.cells.errors.inc();
        }
        if reply.write_to(&mut stream).is_err() {
            break;
        }
        if shutdown {
            stop.store(true, Ordering::SeqCst);
            // Unblock the accept loop so the process can exit.
            let _ = TcpStream::connect(addr);
            break;
        }
    }
}

/// Computes the reply to one decoded frame. Pure protocol logic — all
/// I/O stays in [`handle_conn`].
fn respond(state: &NodeState, conn: &mut ConnState, frame: Frame) -> Frame {
    match frame {
        Frame::Hello {
            version,
            snapshot_hash,
        } => {
            if version != PROTOCOL_VERSION {
                return Frame::Error {
                    code: ErrorCode::VersionMismatch,
                    message: format!("server speaks version {PROTOCOL_VERSION}, client {version}"),
                };
            }
            if snapshot_hash != 0 && snapshot_hash != state.snapshot_hash {
                return Frame::Error {
                    code: ErrorCode::SnapshotMismatch,
                    message: format!(
                        "server snapshot {:#018x}, client expects {snapshot_hash:#018x}",
                        state.snapshot_hash
                    ),
                };
            }
            Frame::HelloAck {
                version: PROTOCOL_VERSION,
                snapshot_hash: state.snapshot_hash,
                node: state.node_id,
                nodes: state.nodes,
                replication: state.replication,
                tau: state.tau,
                shard_count: state.shard_count,
                tree_count: state.tree_count,
                owned_shards: state.owned_shards.clone(),
                shard_map: state.shard_map_bytes.clone(),
            }
        }
        Frame::ProbeBatch(batch) => register_probes(state, conn, batch, true),
        Frame::Probe { batch } => register_probes(state, conn, batch, false),
        Frame::JoinShard {
            probe,
            shard,
            tau,
            classes,
        } => {
            if tau > state.tau {
                return Frame::Error {
                    code: ErrorCode::TauExceedsFrozen,
                    message: format!("tau {tau} exceeds frozen {}", state.tau),
                };
            }
            let Some(ctx) = conn.ctxs.get(probe as usize) else {
                return Frame::Error {
                    code: ErrorCode::UnknownProbe,
                    message: format!(
                        "probe {probe} not registered ({} in batch)",
                        conn.ctxs.len()
                    ),
                };
            };
            let req = tsj_cluster::ShardRequest {
                probe,
                shard,
                classes,
            };
            let start = Instant::now();
            match state
                .node
                .serve(&req, ctx, tau, &state.join_config, &mut conn.scratch)
            {
                Ok(resp) => {
                    state.cells.joins.inc();
                    state
                        .cells
                        .join_serve_us
                        .record(start.elapsed().as_micros() as u64);
                    Frame::JoinShardResp {
                        probe: resp.probe,
                        matches: resp.matches,
                        stats: resp.stats,
                    }
                }
                Err(tsj_cluster::ClusterError::ShardNotOwned { node, shard }) => Frame::Error {
                    code: ErrorCode::ShardNotOwned,
                    message: format!("node {node} does not own shard {shard}"),
                },
                Err(e) => Frame::Error {
                    code: ErrorCode::Internal,
                    message: e.to_string(),
                },
            }
        }
        Frame::Metrics => {
            let mut text = tsj_obs::export::to_prometheus(&state.registry.snapshot());
            let global = tsj_obs::global();
            if global.is_enabled() {
                text.push_str(&tsj_obs::export::to_prometheus(&global.snapshot()));
            }
            Frame::MetricsResp { text }
        }
        Frame::Health => Frame::HealthAck {
            node: state.node_id,
            owned_shards: state.owned_shards.len() as u32,
        },
        Frame::Shutdown => Frame::ShutdownAck,
        // Server-bound connections never expect responses or acks.
        other => Frame::Error {
            code: ErrorCode::BadRequest,
            message: format!("unexpected frame {other:?} on a server connection"),
        },
    }
}

fn register_probes(
    state: &NodeState,
    conn: &mut ConnState,
    batch: ProbeBatch,
    replace: bool,
) -> Frame {
    match decode_probes(&batch, &mut conn.interner) {
        Ok(mut trees) => {
            if replace {
                conn.probes.clear();
            }
            conn.probes.append(&mut trees);
            // Re-prepare the whole batch so `VerifyData::batch_for_config`
            // sees the same inputs the in-process router gives it.
            conn.ctxs = ProbeCtx::batch(&conn.probes, &state.join_config);
            state.cells.probe_batches.inc();
            Frame::ProbeAck {
                count: conn.ctxs.len() as u32,
            }
        }
        Err(e) => Frame::Error {
            code: ErrorCode::BadRequest,
            message: e.to_string(),
        },
    }
}
