//! Verification-pipeline benchmarks: what the filter chain buys over
//! bare exact-TED verification.
//!
//! * `verify_pipeline/check/*` — the [`partsj::VerifyEngine::check`]
//!   micro-path over a fixed candidate list, full chain vs. no chain;
//! * `verify_pipeline/join/*` — the end-to-end join under both
//!   configurations (same dataset family as the `join/tau` series).
//!
//! Before the timings, the harness prints `verify_pipeline:` info lines
//! with the candidates-per-TED-call ratio at τ ∈ {1, 3} on the
//! `join/tau` dataset (synthetic, n = 150, seed 2015): the ratio is the
//! figure-of-merit for the chain — how many candidates one cubic DP
//! amortizes over — and `ted_calls` with the chain enabled must sit
//! strictly below the filter-free count. A second set of info lines runs
//! the check workload under [`ObsConfig::PROFILE`] and prints where the
//! chain's nanoseconds go per stage, fresh-engine vs reused-engine (the
//! scratch-arena payoff, stage by stage).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use partsj::{partsj_join_with, PartSjConfig, VerifyConfig, VerifyData, VerifyEngine};
use std::hint::black_box;
use tsj_datagen::{swissprot_like, synthetic, SyntheticParams};
use tsj_obs::ObsConfig;
use tsj_tree::Tree;

fn chain_configs() -> [(&'static str, PartSjConfig); 2] {
    [
        ("full_chain", PartSjConfig::default()),
        (
            "ted_only",
            PartSjConfig {
                verify: VerifyConfig::NONE,
                ..Default::default()
            },
        ),
    ]
}

/// Size-window candidate pairs of a collection — the verifier's input
/// distribution without the probe machinery in the measured loop.
fn candidate_pairs(trees: &[Tree], tau: u32) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    for i in 0..trees.len() {
        for j in (i + 1)..trees.len() {
            if trees[i].len().abs_diff(trees[j].len()) as u32 <= tau {
                pairs.push((i, j));
            }
        }
    }
    pairs
}

fn report_ratios() {
    let trees = synthetic(150, &SyntheticParams::default(), 2015);
    // `pr3_chain` is the pre-refactor pipeline (size + traversal-SED
    // inline, no histogram, no early accept) — the baseline the new
    // stages must beat on TED calls.
    let pr3 = (
        "pr3_chain",
        PartSjConfig {
            verify: VerifyConfig {
                size: true,
                traversal: true,
                shape_accept: false,
                histogram: false,
            },
            ..Default::default()
        },
    );
    for tau in [1u32, 3] {
        for (name, config) in chain_configs().into_iter().chain([pr3]) {
            let outcome = partsj_join_with(&trees, tau, &config);
            let stats = &outcome.stats;
            let ratio = stats.candidates as f64 / (stats.ted_calls.max(1)) as f64;
            println!(
                "verify_pipeline: tau={tau} config={name} candidates={} ted_calls={} \
                 prefilter_skips={} early_accepts={} candidates_per_ted={ratio:.2}",
                stats.candidates, stats.ted_calls, stats.prefilter_skips, stats.early_accepts
            );
        }
    }
}

/// Per-stage nanosecond profile of the full-chain check workload,
/// before/after the scratch refactor's usage pattern: a fresh engine per
/// pass (cold TED workspace and SED bands every time) vs one engine
/// reused across passes (the serving-loop steady state). Uses
/// [`ObsConfig::PROFILE`]'s stage-timing stamps; restores the default
/// observability configuration before any timed benchmark runs.
fn report_stage_profile() {
    tsj_obs::configure(&ObsConfig::PROFILE);
    let trees = swissprot_like(90, 2015);
    let data: Vec<VerifyData> = VerifyData::batch(&trees);
    let tau = 3u32;
    let pairs = candidate_pairs(&trees, tau);
    let config = PartSjConfig::default();
    let passes = 10u32;
    let stage_ns = |stage: &str| {
        tsj_obs::global()
            .counter(&tsj_obs::labeled(
                "tsj_core_verify_stage_ns_total",
                "stage",
                stage,
            ))
            .get()
    };
    let run = |engine: &mut VerifyEngine| {
        let mut within = 0usize;
        for &(i, j) in &pairs {
            within += usize::from(engine.check(&data[i], &data[j]).is_some());
        }
        black_box(within);
    };

    let stage_names = VerifyEngine::new(tau, &config).stage_names();
    let mut baseline: Vec<u64> = stage_names.iter().map(|s| stage_ns(s)).collect();
    for mode in ["fresh_engine", "reused_engine"] {
        let mut stats = tsj_ted::JoinStats::default();
        if mode == "fresh_engine" {
            for _ in 0..passes {
                let mut engine = VerifyEngine::new(tau, &config);
                run(&mut engine);
                engine.fold_into(&mut stats);
            }
        } else {
            let mut engine = VerifyEngine::new(tau, &config);
            for _ in 0..passes {
                run(&mut engine);
            }
            engine.fold_into(&mut stats);
        }
        for (name, base) in stage_names.iter().zip(&mut baseline) {
            let total = stage_ns(name);
            let per_pass = (total - *base) / u64::from(passes);
            println!("verify_pipeline: profile mode={mode} stage={name} ns_per_pass={per_pass}");
            *base = total;
        }
    }
    tsj_obs::configure(&ObsConfig::ON);
}

fn bench_check(c: &mut Criterion) {
    let trees = swissprot_like(90, 2015);
    let data: Vec<VerifyData> = VerifyData::batch(&trees);
    let mut group = c.benchmark_group("verify_pipeline/check");
    for tau in [1u32, 3] {
        let pairs = candidate_pairs(&trees, tau);
        for (name, config) in chain_configs() {
            group.bench_with_input(BenchmarkId::new(name, tau), &tau, |bench, &tau| {
                bench.iter(|| {
                    let mut engine = VerifyEngine::new(tau, &config);
                    let mut within = 0usize;
                    for &(i, j) in &pairs {
                        within += usize::from(engine.check(&data[i], &data[j]).is_some());
                    }
                    black_box(within)
                })
            });
            // The serving-loop steady state: the engine (and its scratch
            // arena — TED workspace, SED bands) outlives the batch.
            let reused = format!("{name}_reused");
            let mut engine = VerifyEngine::new(tau, &config);
            group.bench_with_input(BenchmarkId::new(reused, tau), &tau, |bench, _| {
                bench.iter(|| {
                    engine.reset_counters();
                    let mut within = 0usize;
                    for &(i, j) in &pairs {
                        within += usize::from(engine.check(&data[i], &data[j]).is_some());
                    }
                    black_box(within)
                })
            });
        }
    }
    group.finish();
}

fn bench_join(c: &mut Criterion) {
    let trees = synthetic(150, &SyntheticParams::default(), 2015);
    let mut group = c.benchmark_group("verify_pipeline/join");
    for tau in [1u32, 3] {
        for (name, config) in chain_configs() {
            group.bench_with_input(BenchmarkId::new(name, tau), &tau, |bench, &tau| {
                bench.iter(|| black_box(partsj_join_with(&trees, tau, &config)))
            });
        }
    }
    group.finish();
}

fn bench_all(c: &mut Criterion) {
    report_ratios();
    report_stage_profile();
    bench_check(c);
    bench_join(c);
}

criterion_group!(benches, bench_all);
criterion_main!(benches);
