//! # tsj-shard
//!
//! A **sharded, dynamic** version of PartSJ's two-layer subgraph index,
//! and the joins built on top of it.
//!
//! The core crate's [`partsj::SubgraphIndex`] is a monolithic, insert-only
//! structure grown on the fly by Algorithm 1. Two of the roadmap's scale
//! directions need more:
//!
//! * **Parallel candidate generation.** PR 2 parallelized verification
//!   only; the probe loop still ran on one core because the index mutates
//!   while the join runs. [`sharded_join`] breaks that dependency by
//!   building the index *offline first* — sharded so the build itself
//!   fans out — and reproducing Algorithm 1's "each unordered pair
//!   exactly once" semantics with a processing-*rank* filter instead of
//!   insertion order (à la the map/reduce-style partitioned joins of
//!   *Adaptive MapReduce Similarity Joins*). Probing trees then fan out
//!   over `crossbeam` scoped threads and feed the same batched,
//!   bounded-channel verify pipeline as `partsj::parallel`. Results are
//!   bit-identical to [`partsj::partsj_join`].
//! * **Deletion and eviction.** Streaming workloads insert *and expire*.
//!   [`ShardedIndex`] supports [`ShardedIndex::remove_tree`]: removed
//!   trees are tombstoned (probes filter them through a liveness bitmap)
//!   and each shard compacts itself — rebuilding its private
//!   [`partsj::SubgraphIndex`] from the retained trees — once the dead
//!   fraction of its postings passes [`ShardConfig::max_dead_fraction`],
//!   in the spirit of *Dynamic Enumeration of Similarity Joins*.
//!   [`ShardedStreamingJoin`] packages this as a sliding-window monitor
//!   with an [`EvictionPolicy`] by count or by logical timestamp.
//!
//! ## Shard key
//!
//! The shard key is a hash of the **container size class** `n`. All
//! postings of `I_n` live in exactly one shard, so a probe tree's size
//! window `[|T| − τ, |T| + τ]` maps to a small, precomputable shard set
//! (at most `min(2τ + 1, shards)` shards — see
//! [`ShardedIndex::shard_set`]) and every shard can be probed, built and
//! compacted independently of the others.
//!
//! ```
//! use partsj::PartSjConfig;
//! use tsj_shard::{sharded_join, ShardConfig};
//! use tsj_tree::{parse_bracket, LabelInterner};
//!
//! let mut labels = LabelInterner::new();
//! let trees: Vec<_> = ["{a{b}{c}}", "{a{b}{c}}", "{a{b}{z}}", "{x{y}}"]
//!     .iter()
//!     .map(|s| parse_bracket(s, &mut labels).unwrap())
//!     .collect();
//! let outcome = sharded_join(&trees, 1, &PartSjConfig::default(), &ShardConfig::default());
//! assert_eq!(outcome.pairs, vec![(0, 1), (0, 2), (1, 2)]); // ≡ partsj_join
//! ```

#![warn(missing_docs)]

pub mod frozen;
pub mod index;
pub mod join;
pub mod rs_join;
pub mod streaming;

pub use frozen::{
    build_frozen_left, frozen_rs_join, frozen_rs_join_seq, FrozenJoinScratch, FrozenLeft,
};
pub use index::{balanced_map_for, ShardConfig, ShardMap, ShardedIndex};
pub use join::{build_subgraph_lists, sharded_join, sharded_join_detailed};
pub use rs_join::sharded_rs_join;
pub use streaming::{EvictionPolicy, ShardedStreamingJoin};
