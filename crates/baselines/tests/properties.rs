//! Property-based tests for the baseline joins: result equivalence against
//! brute force, the Yang `BIB ≤ 5·TED` bound, and filter monotonicity.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tsj_baselines::{
    bib_distance, brute_force_join, brute_force_join_parallel, set_join, str_join, tree_branch_bag,
};
use tsj_datagen::{grow_tree, random_edit_script, ShapeProfile};
use tsj_ted::ted;
use tsj_tree::Tree;

fn random_tree(seed: u64, max_size: usize) -> Tree {
    let mut rng = StdRng::seed_from_u64(seed);
    let size = rng.gen_range(1..=max_size.max(1));
    let profile = ShapeProfile {
        max_fanout: 4,
        max_depth: 9,
        deepen_prob: rng.gen_range(0.0..0.7),
    };
    grow_tree(&mut rng, size, 5, &profile)
}

fn random_collection(seed: u64, count: usize) -> Vec<Tree> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trees: Vec<Tree> = Vec::with_capacity(count);
    for i in 0..count {
        if i >= 2 && rng.gen_bool(0.5) {
            let base = rng.gen_range(0..trees.len());
            let edits = rng.gen_range(0..4usize);
            let (edited, _) = random_edit_script(&trees[base], edits, &mut rng, 5);
            trees.push(edited);
        } else {
            trees.push(random_tree(rng.gen(), 24));
        }
    }
    trees
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// STR, SET and brute force agree exactly.
    #[test]
    fn baselines_equal_brute_force(seed in any::<u64>(), tau in 1u32..4) {
        let trees = random_collection(seed, 24);
        let expected = brute_force_join(&trees, tau);
        let str_out = str_join(&trees, tau);
        let set_out = set_join(&trees, tau);
        prop_assert_eq!(&str_out.pairs, &expected.pairs, "STR diverged");
        prop_assert_eq!(&set_out.pairs, &expected.pairs, "SET diverged");
        // Both filters only *reduce* verification work.
        prop_assert!(str_out.stats.candidates <= str_out.stats.pairs_examined);
        prop_assert!(set_out.stats.candidates <= set_out.stats.pairs_examined);
    }

    /// Yang et al.'s bound: BIB ≤ 5·TED for arbitrary tree pairs.
    #[test]
    fn bib_bound_holds(a in any::<u64>(), b in any::<u64>()) {
        let (ta, tb) = (random_tree(a, 22), random_tree(b, 22));
        let bib = bib_distance(&tree_branch_bag(&ta), &tree_branch_bag(&tb));
        let real = ted(&ta, &tb) as u64;
        prop_assert!(bib <= 5 * real, "BIB {} > 5·TED {}", bib, real);
    }

    /// A tree has exactly |T| binary branches, and identical trees have
    /// BIB 0 (it is a pseudo-metric on bags).
    #[test]
    fn branch_bag_shape(seed in any::<u64>()) {
        let tree = random_tree(seed, 30);
        let bag = tree_branch_bag(&tree);
        prop_assert_eq!(bag.len(), tree.len());
        prop_assert_eq!(bib_distance(&bag, &bag), 0);
    }

    /// Result sets grow monotonically with τ.
    #[test]
    fn results_monotone_in_tau(seed in any::<u64>()) {
        let trees = random_collection(seed, 18);
        let mut previous = 0usize;
        for tau in 0..4u32 {
            let outcome = brute_force_join(&trees, tau);
            prop_assert!(outcome.pairs.len() >= previous);
            previous = outcome.pairs.len();
        }
    }

    /// The parallel oracle equals the sequential oracle.
    #[test]
    fn parallel_oracle_agrees(seed in any::<u64>(), tau in 0u32..3) {
        let trees = random_collection(seed, 70);
        let seq = brute_force_join(&trees, tau);
        let par = brute_force_join_parallel(&trees, tau, 3);
        prop_assert_eq!(seq.pairs, par.pairs);
    }
}
