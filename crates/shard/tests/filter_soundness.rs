//! Filter-chain soundness over the sharded entry points: every
//! verification-chain configuration must reproduce the filter-free
//! exact-TED results for the sharded batch join, the sharded R×S join
//! and the sliding-window streaming join — across shard counts, window
//! policies and thread mixes.

use partsj::{partsj_join_rs, partsj_join_with, PartSjConfig, VerifyConfig, WindowPolicy};
use tsj_datagen::{swissprot_like, synthetic, SyntheticParams};
use tsj_shard::{sharded_join, sharded_rs_join, EvictionPolicy, ShardConfig, ShardedStreamingJoin};
use tsj_ted::TreeIdx;
use tsj_tree::Tree;

fn all_verify_configs() -> Vec<VerifyConfig> {
    (0u32..16)
        .map(|mask| VerifyConfig {
            size: mask & 1 != 0,
            shape_accept: mask & 2 != 0,
            histogram: mask & 4 != 0,
            traversal: mask & 8 != 0,
        })
        .collect()
}

fn collection(n: usize, avg_size: usize, seed: u64) -> Vec<Tree> {
    synthetic(
        n,
        &SyntheticParams {
            avg_size,
            ..Default::default()
        },
        seed,
    )
}

#[test]
fn sharded_join_is_sound_for_every_chain_config() {
    let trees = swissprot_like(70, 5);
    for (window, tau) in [
        (WindowPolicy::Safe, 0u32),
        (WindowPolicy::Safe, 1),
        (WindowPolicy::Safe, 3),
        (WindowPolicy::Tight, 1),
        (WindowPolicy::PaperAbsolute, 1),
    ] {
        let reference = partsj_join_with(
            &trees,
            tau,
            &PartSjConfig {
                window,
                verify: VerifyConfig::NONE,
                ..Default::default()
            },
        );
        for verify in all_verify_configs() {
            let config = PartSjConfig {
                window,
                verify,
                ..Default::default()
            };
            let outcome = sharded_join(
                &trees,
                tau,
                &config,
                &ShardConfig {
                    shards: 4,
                    probe_threads: 1,
                    verify_threads: 1,
                    ..Default::default()
                },
            );
            assert_eq!(
                outcome.pairs, reference.pairs,
                "window = {window:?}, tau = {tau}, verify = {verify:?}"
            );
        }
    }
}

#[test]
fn sharded_parallel_pipeline_is_sound_for_every_chain_config() {
    let trees = swissprot_like(80, 17);
    let tau = 1;
    let reference = partsj_join_with(
        &trees,
        tau,
        &PartSjConfig {
            verify: VerifyConfig::NONE,
            ..Default::default()
        },
    );
    for verify in all_verify_configs() {
        let config = PartSjConfig {
            verify,
            parallel_fallback: 0,
            verify_batch: 8,
            ..Default::default()
        };
        let outcome = sharded_join(
            &trees,
            tau,
            &config,
            &ShardConfig {
                shards: 4,
                probe_threads: 2,
                verify_threads: 2,
                ..Default::default()
            },
        );
        assert_eq!(outcome.pairs, reference.pairs, "verify = {verify:?}");
        // The chain resolves each pair identically regardless of which
        // worker verified it: per-stage counters match the sequential
        // join's under the same configuration.
        let sequential = partsj_join_with(
            &trees,
            tau,
            &PartSjConfig {
                verify,
                ..Default::default()
            },
        );
        assert_eq!(
            outcome.stats.prefilter_skips, sequential.stats.prefilter_skips,
            "verify = {verify:?}"
        );
        assert_eq!(
            outcome.stats.early_accepts, sequential.stats.early_accepts,
            "verify = {verify:?}"
        );
        assert_eq!(
            outcome.stats.stage_counts, sequential.stats.stage_counts,
            "verify = {verify:?}"
        );
    }
}

#[test]
fn sharded_rs_join_is_sound_for_every_chain_config() {
    let left = collection(40, 18, 23);
    let right = swissprot_like(40, 24);
    let tau = 2;
    let reference = partsj_join_rs(
        &left,
        &right,
        tau,
        &PartSjConfig {
            verify: VerifyConfig::NONE,
            ..Default::default()
        },
    );
    for verify in all_verify_configs() {
        let config = PartSjConfig {
            verify,
            ..Default::default()
        };
        let outcome = sharded_rs_join(
            &left,
            &right,
            tau,
            &config,
            &ShardConfig {
                shards: 2,
                probe_threads: 1,
                verify_threads: 1,
                ..Default::default()
            },
        );
        assert_eq!(outcome.pairs, reference.pairs, "verify = {verify:?}");
    }
}

#[test]
fn sharded_streaming_window_is_sound_for_every_chain_config() {
    let trees = swissprot_like(40, 31);
    let tau = 1;
    let run = |verify: VerifyConfig| -> Vec<(TreeIdx, TreeIdx)> {
        let config = PartSjConfig {
            verify,
            ..Default::default()
        };
        let mut join = ShardedStreamingJoin::new(
            tau,
            config,
            ShardConfig {
                shards: 2,
                probe_threads: 1,
                verify_threads: 1,
                ..Default::default()
            },
            EvictionPolicy::SlidingCount(12),
        );
        let mut pairs = Vec::new();
        for (i, tree) in trees.iter().enumerate() {
            for j in join.insert(tree) {
                pairs.push((j, i as TreeIdx));
            }
        }
        pairs
    };
    let reference = run(VerifyConfig::NONE);
    for verify in all_verify_configs() {
        assert_eq!(run(verify), reference, "verify = {verify:?}");
    }
}
