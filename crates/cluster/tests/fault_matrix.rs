//! The fault matrix: mixed fault plans (dead nodes, transient errors,
//! timeouts, delays) swept over injector seeds. The invariants hold for
//! *every* seed — CI replays a fixed set via the `TSJ_FAULT_SEED`
//! environment variable, proptest sweeps random ones:
//!
//! * a join never panics and never errors on faults alone;
//! * a **complete** join is bit-identical to the single-node catalog join;
//! * a **degraded** join serves a subset of the true pairs, and every
//!   missing pair is explained by its `(probe, size class)` entry in the
//!   coverage report — no silent omissions;
//! * the whole run is a pure function of the seed: replaying it on a
//!   fresh cluster reproduces pairs, report and telemetry exactly.

use partsj::PartSjConfig;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::OnceLock;
use tsj_catalog::Catalog;
use tsj_cluster::{Cluster, ClusterConfig, ClusterJoin, FaultPlan};
use tsj_datagen::{synthetic, SyntheticParams};
use tsj_shard::ShardConfig;
use tsj_ted::{JoinOutcome, JoinStats};
use tsj_tree::{LabelInterner, Tree};

struct Fixture {
    left: Vec<Tree>,
    right: Vec<Tree>,
    bytes: Vec<u8>,
    expected: JoinOutcome,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let left = synthetic(
            32,
            &SyntheticParams {
                avg_size: 16,
                ..Default::default()
            },
            81,
        );
        let right = synthetic(
            24,
            &SyntheticParams {
                avg_size: 16,
                ..Default::default()
            },
            82,
        );
        let tau = 1;
        let catalog = Catalog::freeze(
            left.clone(),
            LabelInterner::new(),
            tau,
            &PartSjConfig::default(),
            &ShardConfig {
                shards: 8,
                probe_threads: 1,
                verify_threads: 1,
                ..Default::default()
            },
        );
        let expected = catalog
            .join(
                &right,
                tau,
                &PartSjConfig::default(),
                &ShardConfig {
                    probe_threads: 1,
                    verify_threads: 1,
                    ..Default::default()
                },
            )
            .unwrap();
        Fixture {
            left,
            right,
            bytes: catalog.to_bytes(),
            expected,
        }
    })
}

fn mixed_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        node_down_permille: 30,
        transient_permille: 120,
        timeout_permille: 60,
        delay_permille: 100,
        delay_ms: 5,
        ..FaultPlan::none()
    }
}

fn stages(stats: &JoinStats) -> BTreeMap<&'static str, u64> {
    stats
        .stage_counts
        .iter()
        .filter(|s| s.count > 0)
        .map(|s| (s.stage, s.count))
        .collect()
}

fn run(seed: u64, replication: usize) -> ClusterJoin {
    let fx = fixture();
    let mut cfg = ClusterConfig::new(4, replication);
    cfg.faults = mixed_plan(seed);
    // Any panic out of here must name the case coordinates, so a CI
    // failure is replayable with `TSJ_FAULT_SEED=<seed>`.
    let mut cluster = Cluster::from_snapshot(fx.bytes.clone(), &cfg).unwrap_or_else(|e| {
        panic!("TSJ_FAULT_SEED={seed:#x} R={replication}: snapshot assembly failed: {e}")
    });
    cluster
        .join(&fx.right, 1, &PartSjConfig::default())
        .unwrap_or_else(|e| {
            panic!("TSJ_FAULT_SEED={seed:#x} R={replication}: join errored on faults alone: {e}")
        })
}

/// The invariants every seed must satisfy; returns a failure description
/// instead of panicking so the proptest sweep reports the seed.
fn check(seed: u64, replication: usize) -> Result<(), String> {
    let fx = fixture();
    let served = run(seed, replication);
    let err = |msg: String| Err(format!("TSJ_FAULT_SEED={seed:#x} R={replication}: {msg}"));

    if served.outcome.stats.candidates > fx.expected.stats.candidates {
        return err(format!(
            "candidates {} exceed the fault-free {}",
            served.outcome.stats.candidates, fx.expected.stats.candidates
        ));
    }
    for pair in &served.outcome.pairs {
        if !fx.expected.pairs.contains(pair) {
            return err(format!("served pair {pair:?} is not a true result"));
        }
    }
    match &served.degraded {
        None => {
            // Complete: bit-identical, faults or not.
            if served.outcome.pairs != fx.expected.pairs {
                return err("complete join differs from the catalog join".into());
            }
            let (a, b) = (&served.outcome.stats, &fx.expected.stats);
            if (
                a.candidates,
                a.ted_calls,
                a.prefilter_skips,
                a.early_accepts,
            ) != (
                b.candidates,
                b.ted_calls,
                b.prefilter_skips,
                b.early_accepts,
            ) || stages(a) != stages(b)
            {
                return err("complete join's stats differ from the catalog join".into());
            }
        }
        Some(degraded) => {
            // Degraded: every omission must be covered by the report.
            for &(i, j) in &fx.expected.pairs {
                if served.outcome.pairs.contains(&(i, j)) {
                    continue;
                }
                let class = fx.left[i as usize].len() as u32;
                if !degraded.unserved.contains(&(j, class)) {
                    return err(format!(
                        "pair ({i}, {j}) silently missing: probe {j} has no \
                         unserved entry for class {class}"
                    ));
                }
                // Sanity: the report blames a shard the class resolves to.
                if !degraded.unserved_classes().contains(&class) {
                    return err(format!("class {class} absent from the class summary"));
                }
            }
        }
    }

    // Determinism: a fresh cluster under the same seed replays exactly.
    let replay = run(seed, replication);
    if replay.outcome.pairs != served.outcome.pairs
        || replay.degraded != served.degraded
        || replay.telemetry != served.telemetry
    {
        return err("replay diverged — the schedule must be a pure function of the seed".into());
    }
    Ok(())
}

/// The CI entry point: one fixed seed per job, injected via
/// `TSJ_FAULT_SEED` (decimal or `0x`-prefixed hex), both replication
/// levels.
#[test]
fn fault_matrix_holds_under_the_pinned_seed() {
    let seed = std::env::var("TSJ_FAULT_SEED")
        .ok()
        .and_then(|s| {
            let s = s.trim();
            match s.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => s.parse().ok(),
            }
        })
        .unwrap_or(0xC0FFEE);
    for replication in [1, 2] {
        check(seed, replication).unwrap();
    }
}

/// With replication, a small fault mix is usually *invisible*: sweep a
/// fixed seed range and require that at least one seed still completes
/// (retry + failover actually recover) and none violates the contract.
#[test]
fn replicated_clusters_recover_from_the_mix_for_some_seeds() {
    let mut completed = 0;
    for seed in 0..8u64 {
        check(seed, 2).unwrap();
        if run(seed, 2).is_complete() {
            completed += 1;
        }
    }
    assert!(
        completed > 0,
        "the mix must be survivable for at least one pinned seed"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random injector seeds, both replication levels: the contract holds
    /// for every draw.
    #[test]
    fn fault_matrix_holds_for_arbitrary_seeds(seed in any::<u64>(), replicated in any::<bool>()) {
        let replication = if replicated { 2 } else { 1 };
        let verdict = check(seed, replication);
        prop_assert!(verdict.is_ok(), "{}", verdict.unwrap_err());
    }
}
