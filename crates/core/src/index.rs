//! The on-the-fly two-layer subgraph index (§3.4), in dense,
//! cache-friendly storage.
//!
//! Subgraphs are first grouped by their container tree's size `n` (the
//! inverted size index `I_n` of Algorithm 1), then by *postorder group*
//! (layer 1) and finally by *label twig* (layer 2). The logical structure
//! is the paper's; the physical layout is flat:
//!
//! * **Size layer.** `I_n` is one [`PostorderLayer`] per distinct
//!   container size, resolved through a single small hash map — once per
//!   *probing tree* (via [`SubgraphIndex::layer_id`]), not once per
//!   node×size as a nested-map design would.
//! * **Postorder layer.** Position keys are bounded by the container tree
//!   size (plus the window half-width), so the layer is a flat `Vec` of
//!   position buckets indexed directly by key — no hashing. Subgraph `s_k`
//!   with window half-width `∆′` (policy-dependent, see `WindowPolicy`) is
//!   registered under every key in `[pos_k − ∆′, pos_k + ∆′]`, where
//!   `pos_k` is the subgraph root's *general-tree* postorder position — as
//!   a suffix (`n − p_k`, edit-stable and provably sound) or absolute
//!   (`p_k`, the paper's literal text) coordinate. A probe node with
//!   position `p` reads exactly one bucket: index `p`.
//! * **Label twig layer.** A bucket is a compact array of
//!   `(twig, handle)` postings kept sorted by packed root twig
//!   `(ℓ, ℓ_left, ℓ_right)` (`ε` for bridges and absences). A probe with
//!   twig `(ℓ, ℓ_l, ℓ_r)` matches up to four keys — `ℓℓ_lℓ_r`, `ℓℓ_lε`,
//!   `ℓεℓ_r`, `ℓεε`, the keys whose subgraphs can still embed at the node
//!   (precomputed once per node as [`TwigKeys`]). Small buckets are
//!   scanned linearly in one pass over contiguous memory; large buckets
//!   binary-search each key's posting run.
//!
//! The index owns the subgraph pool in struct-of-arrays form: per-handle
//! metadata ([`SubgraphMeta`]) in one `Vec`, component shapes *interned*
//! into a deduplicated table (`Component`), and all component nodes
//! flattened into a single [`SgNode`] arena, so `probe → matches_at`
//! walks contiguous memory instead of chasing one boxed slice per
//! subgraph.
//!
//! Interning is what makes verification scale on near-duplicate
//! collections — the workload similarity joins exist for: structurally
//! identical subgraphs from different container trees share one
//! [`ComponentId`], and the probe loop memoizes match verdicts per
//! component in a [`MatchCache`], so a component surfaced by `k` trees at
//! a node is walked once, not `k` times.

use crate::config::{MatchSemantics, WindowPolicy};
use crate::subgraph::{nodes_match_at, SgNode, Subgraph, TreeIdx};
use tsj_tree::{pack_twig, BinaryTree, FxHashMap, Label, NodeId, Side};

/// Handle into the index's subgraph pool.
pub type SubgraphHandle = u32;

/// Handle to a resolved per-size [`PostorderLayer`]. Plain data (no
/// borrow), so consumers can cache the layer ids of a probe window in a
/// scratch buffer that survives index insertions.
pub type LayerId = u32;

/// Buckets at or below this size are scanned linearly (one pass matching
/// all twig keys at once); larger buckets binary-search per key.
const LINEAR_SCAN_MAX: usize = 16;

/// One registration: a subgraph handle filed under its packed root twig.
#[derive(Debug, Clone, Copy)]
struct Posting {
    twig: u64,
    handle: SubgraphHandle,
}

/// The up-to-four packed twig keys a probe node can match (§3.4),
/// deduplicated, specific-first. Compute once per node and reuse across
/// the node's whole size window.
#[derive(Debug, Clone, Copy)]
pub struct TwigKeys {
    keys: [u64; 4],
    len: u8,
}

impl TwigKeys {
    /// Keys for a probe node with `label` and child labels `left`/`right`
    /// (`ε` for missing children): `ℓℓ_lℓ_r`, `ℓℓ_lε`, `ℓεℓ_r`, `ℓεε`,
    /// skipping duplicates when the node itself has `ε` children.
    #[inline]
    pub fn new(label: Label, left: Label, right: Label) -> TwigKeys {
        let mut keys = [pack_twig(label, left, right); 4];
        let mut len = 1u8;
        if right != Label::EPSILON {
            keys[len as usize] = pack_twig(label, left, Label::EPSILON);
            len += 1;
        }
        if left != Label::EPSILON {
            keys[len as usize] = pack_twig(label, Label::EPSILON, right);
            len += 1;
            if right != Label::EPSILON {
                keys[len as usize] = pack_twig(label, Label::EPSILON, Label::EPSILON);
                len += 1;
            }
        }
        TwigKeys { keys, len }
    }

    /// The deduplicated keys, most-specific first.
    #[inline]
    pub fn as_slice(&self) -> &[u64] {
        &self.keys[..self.len as usize]
    }

    #[inline]
    fn contains(&self, twig: u64) -> bool {
        // len ≤ 4: a branch-light linear check beats anything fancier.
        self.as_slice().contains(&twig)
    }
}

/// Unsorted postings tolerated at the end of a bucket before `register`
/// merges them into the twig-sorted prefix. Registration is an O(1)
/// amortized push instead of a per-posting memmove (which would make the
/// build quadratic in bucket size on duplicate-heavy collections), while
/// probes pay at most this many extra linearly-scanned entries (~2 cache
/// lines).
const TAIL_MAX: usize = 32;

/// One position bucket: a twig-sorted prefix plus a short unsorted tail
/// of recent registrations.
#[derive(Debug, Default)]
struct Bucket {
    postings: Vec<Posting>,
    /// Length of the twig-sorted prefix; `postings[sorted_len..]` is the
    /// tail, in insertion order.
    sorted_len: u32,
}

/// One size class `I_n`: a flat vector of position buckets.
#[derive(Debug, Default)]
pub struct PostorderLayer {
    buckets: Vec<Bucket>,
}

impl PostorderLayer {
    /// Registers `handle` under `twig` at every position key in
    /// `[lo, hi]`.
    fn register(&mut self, lo: u32, hi: u32, twig: u64, handle: SubgraphHandle) {
        if self.buckets.len() <= hi as usize {
            self.buckets.resize_with(hi as usize + 1, Bucket::default);
        }
        for bucket in &mut self.buckets[lo as usize..=hi as usize] {
            bucket.postings.push(Posting { twig, handle });
            if bucket.postings.len() - bucket.sorted_len as usize > TAIL_MAX {
                // The stable sort merges the two runs (sorted prefix +
                // tail) in ~O(len); stability keeps equal-twig postings
                // in insertion (ascending-handle) order.
                bucket.postings.sort_by_key(|p| p.twig);
                bucket.sorted_len = bucket.postings.len() as u32;
            }
        }
    }

    /// Calls `visit` for every handle filed under `position` whose twig is
    /// one of `keys`.
    #[inline]
    pub fn probe<F: FnMut(SubgraphHandle)>(&self, position: u32, keys: &TwigKeys, mut visit: F) {
        let Some(bucket) = self.buckets.get(position as usize) else {
            return;
        };
        let sorted = &bucket.postings[..bucket.sorted_len as usize];
        if sorted.len() <= LINEAR_SCAN_MAX {
            for posting in sorted {
                if keys.contains(posting.twig) {
                    visit(posting.handle);
                }
            }
        } else {
            for &key in keys.as_slice() {
                let start = sorted.partition_point(|p| p.twig < key);
                for posting in &sorted[start..] {
                    if posting.twig != key {
                        break;
                    }
                    visit(posting.handle);
                }
            }
        }
        for posting in &bucket.postings[bucket.sorted_len as usize..] {
            if keys.contains(posting.twig) {
                visit(posting.handle);
            }
        }
    }

    /// Total postings across all buckets (diagnostics).
    pub fn postings(&self) -> usize {
        self.buckets.iter().map(|b| b.postings.len()).sum()
    }
}

/// Id of an interned component shape: subgraphs with identical
/// `(incoming side, preorder node slice)` share one id, whatever their
/// container tree.
pub type ComponentId = u32;

/// Plain-data image of one position bucket (see [`IndexDump`]):
/// `(twig, handle)` postings in stored order plus the sorted-prefix
/// length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketDump {
    /// Postings as `(packed twig, subgraph handle)` pairs, verbatim —
    /// probe visit order (and therefore candidate order) depends on it.
    pub postings: Vec<(u64, SubgraphHandle)>,
    /// Length of the twig-sorted prefix; the rest is the unsorted tail.
    pub sorted_len: u32,
}

/// Plain-data image of one size class's postorder layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerDump {
    /// Position buckets, indexed directly by position key.
    pub buckets: Vec<BucketDump>,
}

/// Plain-data image of one interned component shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComponentDump {
    /// Arena offset of the component's first node.
    pub start: u32,
    /// Number of component nodes (≥ 1).
    pub len: u32,
    /// Incoming side tag: 0 = none, 1 = left, 2 = right.
    pub incoming: u8,
}

/// A [`SubgraphIndex`] flattened into plain owned data — everything a
/// byte-level serializer ([`tsj-catalog`]'s snapshot format) needs, with
/// no private types and no behavior. Produced by
/// [`SubgraphIndex::dump`], consumed by [`SubgraphIndex::restore`];
/// `restore(dump())` reproduces the index bit-identically (probe visit
/// order included).
///
/// [`tsj-catalog`]: https://docs.rs/tsj-catalog
#[derive(Debug, Clone, PartialEq)]
pub struct IndexDump {
    /// The threshold the index registered windows for.
    pub tau: u32,
    /// The window policy the index was built under.
    pub window: WindowPolicy,
    /// `(container size, layer id)` pairs, ascending by size.
    pub size_layers: Vec<(u32, LayerId)>,
    /// Layer images, indexed by layer id.
    pub layers: Vec<LayerDump>,
    /// Per-handle metadata, indexed by subgraph handle.
    pub metas: Vec<SubgraphMeta>,
    /// Interned component shapes, indexed by [`ComponentId`].
    pub components: Vec<ComponentDump>,
    /// The flattened component-node arena.
    pub arena: Vec<SgNode>,
    /// Total bucket registrations (cross-checked against the layers on
    /// restore).
    pub registrations: u64,
}

/// An interned component shape: an incoming side plus a contiguous run of
/// the node arena.
#[derive(Debug, Clone, Copy)]
struct Component {
    /// Arena offset of the component nodes.
    start: u32,
    /// Component size (number of nodes). A component can span a whole
    /// tree (δ = 1 at τ = 0), so this must not be narrower than a tree
    /// size.
    len: u32,
    /// Incoming side: 0 = none (tree root), 1 = left, 2 = right.
    incoming: u8,
}

impl Component {
    #[inline]
    fn incoming_side(&self) -> Option<Side> {
        match self.incoming {
            1 => Some(Side::Left),
            2 => Some(Side::Right),
            _ => None,
        }
    }
}

/// Per-handle metadata: the stamp-dedup key (container tree) and the
/// interned component shape, in 12 contiguous bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubgraphMeta {
    /// Container tree index within the joined collection.
    pub tree: TreeIdx,
    /// Interned component shape.
    pub component: ComponentId,
    /// 1-based ordinal `k` in greedy-discovery order; the paper's `s_k`.
    pub ordinal: u16,
}

/// Caller-owned probe scratch: memoized per-node match verdicts (indexed
/// by [`ComponentId`]) plus the match walk stack. Call
/// [`MatchCache::begin_node`] when moving to the next probe node;
/// verdicts stay valid across the node's whole size window, so a
/// component surfaced by many size layers or container trees is walked
/// once.
#[derive(Debug, Default)]
pub struct MatchCache {
    /// 0 = unknown, 1 = mismatch, 2 = match.
    verdicts: Vec<u8>,
    touched: Vec<ComponentId>,
    stack: Vec<NodeId>,
}

impl MatchCache {
    /// An empty cache.
    pub fn new() -> MatchCache {
        MatchCache::default()
    }

    /// Forgets the previous probe node's verdicts (O(components actually
    /// matched there), not O(all components)).
    pub fn begin_node(&mut self) {
        for &c in &self.touched {
            self.verdicts[c as usize] = 0;
        }
        self.touched.clear();
    }
}

/// Two-layer inverted index over the subgraphs of already-processed trees.
#[derive(Debug)]
pub struct SubgraphIndex {
    tau: u32,
    window: WindowPolicy,
    /// `I_n`: size → slot in `layers`.
    by_size: FxHashMap<u32, LayerId>,
    layers: Vec<PostorderLayer>,
    /// Subgraph pool, struct-of-arrays: per-instance metadata, interned
    /// component shapes, and the flattened node arena.
    metas: Vec<SubgraphMeta>,
    components: Vec<Component>,
    arena: Vec<SgNode>,
    /// Interning table: `(incoming, nodes) → ComponentId`.
    interned: FxHashMap<(u8, Box<[SgNode]>), ComponentId>,
    /// Total bucket registrations (a subgraph appears in `2∆′ + 1`
    /// buckets).
    registrations: u64,
}

impl SubgraphIndex {
    /// Creates an empty index for threshold `tau` under `window`.
    pub fn new(tau: u32, window: WindowPolicy) -> SubgraphIndex {
        SubgraphIndex {
            tau,
            window,
            by_size: FxHashMap::default(),
            layers: Vec::new(),
            metas: Vec::new(),
            components: Vec::new(),
            arena: Vec::new(),
            interned: FxHashMap::default(),
            registrations: 0,
        }
    }

    /// The position key of a subgraph under the active policy.
    fn subgraph_position(&self, sg: &Subgraph) -> u32 {
        match self.window {
            WindowPolicy::PaperAbsolute => sg.root_post,
            WindowPolicy::Tight | WindowPolicy::Safe => sg.suffix,
        }
    }

    /// The position key of a probe node with 1-based *general-tree*
    /// postorder `p` in a probing tree of size `probe_size`.
    pub fn probe_position(&self, p: u32, probe_size: u32) -> u32 {
        match self.window {
            WindowPolicy::PaperAbsolute => p,
            WindowPolicy::Tight | WindowPolicy::Safe => probe_size - p,
        }
    }

    /// Window half-width `∆′` for subgraph ordinal `k` (1-based).
    fn half_width(&self, ordinal: u16) -> u32 {
        match self.window {
            WindowPolicy::Safe => self.tau,
            WindowPolicy::Tight | WindowPolicy::PaperAbsolute => {
                self.tau - (ordinal as u32 / 2).min(self.tau)
            }
        }
    }

    /// Inserts all subgraphs of a processed tree of size `tree_size`.
    pub fn insert_tree(&mut self, tree_size: u32, subgraphs: Vec<Subgraph>) {
        let layer_id = *self.by_size.entry(tree_size).or_insert_with(|| {
            self.layers.push(PostorderLayer::default());
            (self.layers.len() - 1) as LayerId
        });
        for sg in subgraphs {
            let position = self.subgraph_position(&sg);
            let dw = self.half_width(sg.ordinal);
            let handle = self.metas.len() as SubgraphHandle;
            let incoming = match sg.incoming {
                None => 0u8,
                Some(Side::Left) => 1,
                Some(Side::Right) => 2,
            };
            // Intern the component shape: near-duplicate collections
            // repeat the same shapes across trees, and every repeat
            // shares one arena run and one memoizable ComponentId. The
            // node box is moved into the key, so the common already-
            // interned case allocates nothing.
            let component = match self.interned.entry((incoming, sg.nodes)) {
                std::collections::hash_map::Entry::Occupied(slot) => *slot.get(),
                std::collections::hash_map::Entry::Vacant(slot) => {
                    let id = self.components.len() as ComponentId;
                    self.components.push(Component {
                        start: self.arena.len() as u32,
                        len: slot.key().1.len() as u32,
                        incoming,
                    });
                    self.arena.extend_from_slice(&slot.key().1);
                    slot.insert(id);
                    id
                }
            };
            self.metas.push(SubgraphMeta {
                tree: sg.tree,
                component,
                ordinal: sg.ordinal,
            });
            let lo = position.saturating_sub(dw);
            let hi = position + dw;
            self.layers[layer_id as usize].register(lo, hi, sg.twig, handle);
            self.registrations += u64::from(hi - lo + 1);
        }
    }

    /// Resolves the layer of size class `tree_size`, if any trees of that
    /// size have been indexed. Resolve once per probing tree and probe the
    /// returned id for every node — this hoists the size-map lookup out of
    /// the node loop.
    #[inline]
    pub fn layer_id(&self, tree_size: u32) -> Option<LayerId> {
        self.by_size.get(&tree_size).copied()
    }

    /// The layer behind a [`LayerId`] returned by
    /// [`SubgraphIndex::layer_id`].
    #[inline]
    pub fn layer(&self, id: LayerId) -> &PostorderLayer {
        &self.layers[id as usize]
    }

    /// Container tree of a surfaced handle — the stamp-dedup key, readable
    /// without touching the component arena.
    #[inline]
    pub fn tree_of(&self, handle: SubgraphHandle) -> TreeIdx {
        self.metas[handle as usize].tree
    }

    /// Matches a surfaced handle at `node` of the probing tree.
    ///
    /// The first attempt for a component walks its contiguous arena slice;
    /// the verdict is memoized in `cache` and replayed for every further
    /// handle sharing the shape until [`MatchCache::begin_node`] — crucial
    /// on near-duplicate collections where one shape recurs across many
    /// container trees.
    #[inline]
    pub fn matches_at(
        &self,
        handle: SubgraphHandle,
        binary: &BinaryTree,
        node: NodeId,
        semantics: MatchSemantics,
        cache: &mut MatchCache,
    ) -> bool {
        let component = self.metas[handle as usize].component;
        if cache.verdicts.len() < self.components.len() {
            cache.verdicts.resize(self.components.len(), 0);
        }
        match cache.verdicts[component as usize] {
            2 => true,
            1 => false,
            _ => {
                let c = &self.components[component as usize];
                let nodes = &self.arena[c.start as usize..c.start as usize + c.len as usize];
                let matched = nodes_match_at(
                    nodes,
                    c.incoming_side(),
                    binary,
                    node,
                    semantics,
                    &mut cache.stack,
                );
                cache.verdicts[component as usize] = if matched { 2 } else { 1 };
                cache.touched.push(component);
                matched
            }
        }
    }

    /// Number of distinct interned component shapes (≤ [`len`]).
    ///
    /// [`len`]: SubgraphIndex::len
    pub fn distinct_components(&self) -> usize {
        self.components.len()
    }

    /// Component size (node count) of a surfaced handle.
    pub fn component_size(&self, handle: SubgraphHandle) -> usize {
        self.components[self.metas[handle as usize].component as usize].len as usize
    }

    /// Probes for subgraphs of trees with exactly `tree_size` nodes that
    /// may embed at a node with postorder position key `position` (already
    /// converted via [`SubgraphIndex::probe_position`]) and twig labels
    /// `(label, left, right)` (`ε` for missing children).
    ///
    /// Calls `visit` for every handle in the up-to-four twig groups. This
    /// is the convenience form; hot loops should resolve
    /// [`SubgraphIndex::layer_id`] once per tree and [`TwigKeys::new`]
    /// once per node, then call [`PostorderLayer::probe`].
    pub fn probe<F: FnMut(SubgraphHandle)>(
        &self,
        tree_size: u32,
        position: u32,
        label: Label,
        left: Label,
        right: Label,
        visit: F,
    ) {
        if let Some(id) = self.layer_id(tree_size) {
            self.layer(id)
                .probe(position, &TwigKeys::new(label, left, right), visit);
        }
    }

    /// Resolves a handle to its metadata.
    #[inline]
    pub fn subgraph_meta(&self, handle: SubgraphHandle) -> &SubgraphMeta {
        &self.metas[handle as usize]
    }

    /// Number of subgraphs stored.
    pub fn len(&self) -> usize {
        self.metas.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.metas.is_empty()
    }

    /// Total `(position, twig)` bucket registrations.
    pub fn registrations(&self) -> u64 {
        self.registrations
    }

    /// The configured window policy.
    pub fn window(&self) -> WindowPolicy {
        self.window
    }

    /// The threshold the index registers windows for. A dynamic wrapper
    /// (e.g. `tsj-shard`'s compaction) rebuilds replacement indexes with
    /// the same `(tau, window)` pair.
    pub fn tau(&self) -> u32 {
        self.tau
    }

    /// Number of distinct container-size classes currently indexed.
    pub fn distinct_sizes(&self) -> usize {
        self.by_size.len()
    }

    /// The distinct container-size classes currently indexed, in
    /// arbitrary order. Shard wrappers use this to validate that a
    /// restored shard only holds size classes it actually owns.
    pub fn size_classes(&self) -> impl Iterator<Item = u32> + '_ {
        self.by_size.keys().copied()
    }

    /// `∆′` as exposed for diagnostics and tests.
    pub fn window_half_width(&self, ordinal: u16) -> u32 {
        self.half_width(ordinal)
    }

    /// Extracts the index's dense storage as plain data — the snapshot
    /// form `tsj-catalog` serializes. Size classes are emitted in
    /// ascending size order so the dump (and therefore the snapshot
    /// bytes) is deterministic; layer ids are preserved verbatim, so
    /// [`SubgraphIndex::restore`] reproduces the exact probe behavior,
    /// posting order included.
    pub fn dump(&self) -> IndexDump {
        let mut size_layers: Vec<(u32, LayerId)> =
            self.by_size.iter().map(|(&n, &l)| (n, l)).collect();
        size_layers.sort_unstable();
        IndexDump {
            tau: self.tau,
            window: self.window,
            size_layers,
            layers: self
                .layers
                .iter()
                .map(|layer| LayerDump {
                    buckets: layer
                        .buckets
                        .iter()
                        .map(|bucket| BucketDump {
                            postings: bucket.postings.iter().map(|p| (p.twig, p.handle)).collect(),
                            sorted_len: bucket.sorted_len,
                        })
                        .collect(),
                })
                .collect(),
            metas: self.metas.clone(),
            components: self
                .components
                .iter()
                .map(|c| ComponentDump {
                    start: c.start,
                    len: c.len,
                    incoming: c.incoming,
                })
                .collect(),
            arena: self.arena.clone(),
            registrations: self.registrations,
        }
    }

    /// Rebuilds an index from a [`SubgraphIndex::dump`] image, validating
    /// every cross-reference (layer ids, handles, component arena runs,
    /// sorted-prefix order, registration count) so corrupted snapshot
    /// data surfaces as an error instead of an out-of-bounds panic later.
    /// The component interning table is reconstructed, so the restored
    /// index accepts further [`SubgraphIndex::insert_tree`] calls.
    pub fn restore(dump: IndexDump) -> Result<SubgraphIndex, String> {
        let IndexDump {
            tau,
            window,
            size_layers,
            layers,
            metas,
            components,
            arena,
            registrations,
        } = dump;
        if size_layers.len() != layers.len() {
            return Err(format!(
                "{} size classes but {} layers",
                size_layers.len(),
                layers.len()
            ));
        }
        let mut by_size = FxHashMap::default();
        let mut layer_seen = vec![false; layers.len()];
        for &(size, layer) in &size_layers {
            let slot = layer_seen
                .get_mut(layer as usize)
                .ok_or_else(|| format!("size {size} maps to out-of-range layer {layer}"))?;
            if *slot {
                return Err(format!("layer {layer} referenced by two size classes"));
            }
            *slot = true;
            if by_size.insert(size, layer).is_some() {
                return Err(format!("size class {size} appears twice"));
            }
        }
        for (id, c) in components.iter().enumerate() {
            let end = (c.start as usize)
                .checked_add(c.len as usize)
                .filter(|&end| end <= arena.len() && c.len > 0);
            if end.is_none() {
                return Err(format!(
                    "component {id} spans arena [{}, {}+{}) of {}",
                    c.start,
                    c.start,
                    c.len,
                    arena.len()
                ));
            }
            if c.incoming > 2 {
                return Err(format!("component {id} has incoming tag {}", c.incoming));
            }
        }
        for (handle, meta) in metas.iter().enumerate() {
            if meta.component as usize >= components.len() {
                return Err(format!(
                    "handle {handle} references component {} of {}",
                    meta.component,
                    components.len()
                ));
            }
        }
        let mut total_postings = 0u64;
        let mut restored_layers = Vec::with_capacity(layers.len());
        for (layer_id, layer) in layers.into_iter().enumerate() {
            let mut buckets = Vec::with_capacity(layer.buckets.len());
            for (pos, bucket) in layer.buckets.into_iter().enumerate() {
                if bucket.sorted_len as usize > bucket.postings.len() {
                    return Err(format!(
                        "layer {layer_id} bucket {pos}: sorted prefix {} exceeds {} postings",
                        bucket.sorted_len,
                        bucket.postings.len()
                    ));
                }
                let prefix = &bucket.postings[..bucket.sorted_len as usize];
                if prefix.windows(2).any(|w| w[0].0 > w[1].0) {
                    return Err(format!(
                        "layer {layer_id} bucket {pos}: sorted prefix out of twig order"
                    ));
                }
                let mut postings = Vec::with_capacity(bucket.postings.len());
                for (twig, handle) in bucket.postings {
                    if handle as usize >= metas.len() {
                        return Err(format!(
                            "layer {layer_id} bucket {pos}: posting handle {handle} of {}",
                            metas.len()
                        ));
                    }
                    postings.push(Posting { twig, handle });
                }
                total_postings += postings.len() as u64;
                buckets.push(Bucket {
                    postings,
                    sorted_len: bucket.sorted_len,
                });
            }
            restored_layers.push(PostorderLayer { buckets });
        }
        if total_postings != registrations {
            return Err(format!(
                "registration count {registrations} disagrees with {total_postings} stored postings"
            ));
        }
        let restored_components: Vec<Component> = components
            .iter()
            .map(|c| Component {
                start: c.start,
                len: c.len,
                incoming: c.incoming,
            })
            .collect();
        let mut interned: FxHashMap<(u8, Box<[SgNode]>), ComponentId> = FxHashMap::default();
        for (id, c) in restored_components.iter().enumerate() {
            let nodes: Box<[SgNode]> =
                arena[c.start as usize..c.start as usize + c.len as usize].into();
            interned.entry((c.incoming, nodes)).or_insert(id as u32);
        }
        Ok(SubgraphIndex {
            tau,
            window,
            by_size,
            layers: restored_layers,
            metas,
            components: restored_components,
            arena,
            interned,
            registrations,
        })
    }

    /// Position key a subgraph is centered on (diagnostics and tests).
    pub fn position_of(&self, sg: &Subgraph) -> u32 {
        self.subgraph_position(sg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{max_min_size, select_cuts};
    use crate::subgraph::build_subgraphs;
    use tsj_tree::{parse_bracket, BinaryTree, LabelInterner};

    fn subgraphs_of(
        input: &str,
        tau: u32,
    ) -> (tsj_tree::Tree, BinaryTree, Vec<Subgraph>, LabelInterner) {
        let mut labels = LabelInterner::new();
        let tree = parse_bracket(input, &mut labels).unwrap();
        let binary = BinaryTree::from_tree(&tree);
        let delta = 2 * tau as usize + 1;
        let gamma = max_min_size(&binary, delta);
        let cuts = select_cuts(&binary, delta, gamma);
        let sgs = build_subgraphs(&binary, &tree.postorder_numbers(), &cuts, 0);
        (tree, binary, sgs, labels)
    }

    #[test]
    fn window_half_widths() {
        let index = SubgraphIndex::new(2, WindowPolicy::Tight);
        // ∆′ = τ − ⌊k/2⌋ with τ = 2: k=1 → 2, k=2 → 1, k=3 → 1, k=4 → 0, k=5 → 0.
        assert_eq!(index.window_half_width(1), 2);
        assert_eq!(index.window_half_width(2), 1);
        assert_eq!(index.window_half_width(3), 1);
        assert_eq!(index.window_half_width(4), 0);
        assert_eq!(index.window_half_width(5), 0);
        let safe = SubgraphIndex::new(2, WindowPolicy::Safe);
        for k in 1..=5 {
            assert_eq!(safe.window_half_width(k), 2);
        }
    }

    #[test]
    fn twig_keys_dedup() {
        let (l, a, b) = (Label::from_raw(1), Label::from_raw(2), Label::from_raw(3));
        let e = Label::EPSILON;
        assert_eq!(TwigKeys::new(l, a, b).as_slice().len(), 4);
        assert_eq!(
            TwigKeys::new(l, a, e).as_slice(),
            &[pack_twig(l, a, e), pack_twig(l, e, e)]
        );
        assert_eq!(
            TwigKeys::new(l, e, b).as_slice(),
            &[pack_twig(l, e, b), pack_twig(l, e, e)]
        );
        assert_eq!(TwigKeys::new(l, e, e).as_slice(), &[pack_twig(l, e, e)]);
    }

    #[test]
    fn insert_and_probe_own_tree() {
        let tau = 1;
        let (tree, binary, sgs, _) = subgraphs_of("{a{b{c}{d}}{e{f}{g}}{h{i}{j}}}", tau);
        let general_post = tree.postorder_numbers();
        let mut index = SubgraphIndex::new(tau, WindowPolicy::Tight);
        let n = binary.len() as u32;
        index.insert_tree(n, sgs.clone());
        assert_eq!(index.len(), 3);

        // Probing each subgraph root with its own twig must surface it.
        for sg in &sgs {
            let root = sg.root;
            let left = binary
                .left(root)
                .map_or(Label::EPSILON, |c| binary.label(c));
            let right = binary
                .right(root)
                .map_or(Label::EPSILON, |c| binary.label(c));
            let position = index.probe_position(general_post[root.index()], n);
            let mut found = false;
            index.probe(n, position, binary.label(root), left, right, |h| {
                if index.subgraph_meta(h).ordinal == sg.ordinal {
                    found = true;
                }
            });
            assert!(found, "subgraph {} not found by self-probe", sg.ordinal);
        }
    }

    #[test]
    fn fast_path_agrees_with_probe_wrapper() {
        let tau = 2;
        let (tree, binary, sgs, _) = subgraphs_of("{a{b{c}{d}}{e{f}{g}}{h{i}{j}}}", tau);
        let general_post = tree.postorder_numbers();
        let mut index = SubgraphIndex::new(tau, WindowPolicy::Safe);
        let n = binary.len() as u32;
        index.insert_tree(n, sgs);
        let layer = index.layer(index.layer_id(n).unwrap());
        for node in binary.node_ids() {
            let label = binary.label(node);
            let left = binary
                .left(node)
                .map_or(Label::EPSILON, |c| binary.label(c));
            let right = binary
                .right(node)
                .map_or(Label::EPSILON, |c| binary.label(c));
            let position = index.probe_position(general_post[node.index()], n);
            let mut wrapper = Vec::new();
            index.probe(n, position, label, left, right, |h| wrapper.push(h));
            let mut fast = Vec::new();
            let keys = TwigKeys::new(label, left, right);
            layer.probe(position, &keys, |h| fast.push(h));
            wrapper.sort_unstable();
            fast.sort_unstable();
            assert_eq!(wrapper, fast);
        }
    }

    #[test]
    fn matches_at_agrees_with_subgraph_matches() {
        use crate::subgraph::subgraph_matches;
        let tau = 1;
        let (_, binary, sgs, _) = subgraphs_of("{a{b{c}{d}}{e{f}{g}}{h{i}{j}}}", tau);
        let mut index = SubgraphIndex::new(tau, WindowPolicy::Safe);
        index.insert_tree(binary.len() as u32, sgs.clone());
        let mut cache = MatchCache::new();
        for node in binary.node_ids() {
            cache.begin_node();
            for (h, sg) in sgs.iter().enumerate() {
                assert_eq!(
                    index.matches_at(
                        h as SubgraphHandle,
                        &binary,
                        node,
                        MatchSemantics::Exact,
                        &mut cache
                    ),
                    subgraph_matches(sg, &binary, node),
                    "handle {h} at node {node}"
                );
            }
        }
    }

    #[test]
    fn interning_shares_components_across_trees() {
        // Inserting the same tree's subgraphs twice (as two container
        // trees) must not grow the distinct component table.
        let tau = 1;
        let (tree, binary, _, _) = subgraphs_of("{a{b{c}{d}}{e{f}{g}}{h{i}{j}}}", tau);
        let delta = 2 * tau as usize + 1;
        let gamma = max_min_size(&binary, delta);
        let cuts = select_cuts(&binary, delta, gamma);
        let posts = tree.postorder_numbers();
        let mut index = SubgraphIndex::new(tau, WindowPolicy::Safe);
        index.insert_tree(
            binary.len() as u32,
            build_subgraphs(&binary, &posts, &cuts, 0),
        );
        let (pool, distinct) = (index.len(), index.distinct_components());
        index.insert_tree(
            binary.len() as u32,
            build_subgraphs(&binary, &posts, &cuts, 1),
        );
        assert_eq!(index.len(), 2 * pool);
        assert_eq!(index.distinct_components(), distinct);
        // A memoized verdict must agree with a fresh one.
        let mut cache = MatchCache::new();
        cache.begin_node();
        let node = binary.root();
        for h in 0..index.len() as u32 {
            let first = index.matches_at(h, &binary, node, MatchSemantics::Exact, &mut cache);
            let again = index.matches_at(h, &binary, node, MatchSemantics::Exact, &mut cache);
            assert_eq!(first, again);
        }
    }

    #[test]
    fn probe_wrong_size_is_empty() {
        let tau = 1;
        let (_, binary, sgs, _) = subgraphs_of("{a{b{c}{d}}{e{f}{g}}{h{i}{j}}}", tau);
        let mut index = SubgraphIndex::new(tau, WindowPolicy::Tight);
        let n = binary.len() as u32;
        index.insert_tree(n, sgs);
        assert!(index.layer_id(n + 5).is_none());
        let mut count = 0;
        index.probe(
            n + 5,
            0,
            Label::from_raw(1),
            Label::EPSILON,
            Label::EPSILON,
            |_| count += 1,
        );
        assert_eq!(count, 0);
    }

    #[test]
    fn probe_past_bucket_range_is_empty() {
        let tau = 1;
        let (_, binary, sgs, _) = subgraphs_of("{a{b{c}{d}}{e{f}{g}}{h{i}{j}}}", tau);
        let mut index = SubgraphIndex::new(tau, WindowPolicy::Safe);
        let n = binary.len() as u32;
        index.insert_tree(n, sgs);
        let layer = index.layer(index.layer_id(n).unwrap());
        let mut count = 0;
        // A position far beyond any registered key indexes past the bucket
        // vector; must be silently empty, not panic.
        layer.probe(
            10_000,
            &TwigKeys::new(Label::from_raw(1), Label::EPSILON, Label::EPSILON),
            |_| count += 1,
        );
        assert_eq!(count, 0);
    }

    #[test]
    fn registrations_count_window_entries() {
        let tau = 1;
        let (_, binary, sgs, _) = subgraphs_of("{a{b{c}{d}}{e{f}{g}}{h{i}{j}}}", tau);
        // k=1: ∆′=1 → 3 entries; k=2: ∆′=0 → 1; k=3: ∆′=0 → 1. Total 5.
        let mut index = SubgraphIndex::new(tau, WindowPolicy::Tight);
        index.insert_tree(binary.len() as u32, sgs.clone());
        assert_eq!(index.registrations(), 5);
        let layer = index.layer(index.layer_id(binary.len() as u32).unwrap());
        assert_eq!(layer.postings(), 5);

        let mut safe = SubgraphIndex::new(tau, WindowPolicy::Safe);
        safe.insert_tree(binary.len() as u32, sgs);
        // Safe: every subgraph gets 2τ+1 = 3 entries (minus clamping at 0).
        assert!(safe.registrations() >= 7, "{}", safe.registrations());
    }

    #[test]
    fn twig_key_dedup_probes_each_group_once() {
        // A probe with ε children must not visit the same group twice.
        let tau = 0;
        let (_, binary, sgs, _) = subgraphs_of("{a}", tau);
        let mut index = SubgraphIndex::new(tau, WindowPolicy::Tight);
        let n = binary.len() as u32;
        index.insert_tree(n, sgs);
        let mut visits = 0;
        let root_label = binary.label(binary.root());
        index.probe(n, 0, root_label, Label::EPSILON, Label::EPSILON, |_| {
            visits += 1
        });
        assert_eq!(visits, 1);
    }

    #[test]
    fn large_buckets_binary_search_path() {
        // Push one bucket past LINEAR_SCAN_MAX and check both lookup paths
        // surface the same postings.
        let tau = 0;
        let (_, binary, sgs, _) = subgraphs_of("{a{b}{c}}", tau);
        let n = binary.len() as u32;
        let mut index = SubgraphIndex::new(tau, WindowPolicy::Safe);
        let copies = LINEAR_SCAN_MAX + TAIL_MAX + 16;
        for _ in 0..copies {
            index.insert_tree(n, sgs.clone());
        }
        let layer = index.layer(index.layer_id(n).unwrap());
        let sg = &sgs[0];
        let position = index.position_of(sg);
        let bucket = &layer.buckets[position as usize];
        assert!(
            bucket.sorted_len as usize > LINEAR_SCAN_MAX,
            "sorted prefix {} must exceed the linear-scan cutoff",
            bucket.sorted_len
        );
        assert!(
            bucket.postings.len() > bucket.sorted_len as usize,
            "an unsorted tail must be present to exercise the tail scan"
        );
        let root = binary.root();
        let left = binary
            .left(root)
            .map_or(Label::EPSILON, |c| binary.label(c));
        let right = binary
            .right(root)
            .map_or(Label::EPSILON, |c| binary.label(c));
        let keys = TwigKeys::new(binary.label(root), left, right);
        let mut hits = 0;
        layer.probe(position, &keys, |_| hits += 1);
        assert_eq!(hits, copies);
    }

    #[test]
    fn dump_restore_round_trips_bit_identically() {
        let tau = 1;
        let (tree, binary, sgs, _) = subgraphs_of("{a{b{c}{d}}{e{f}{g}}{h{i}{j}}}", tau);
        let mut index = SubgraphIndex::new(tau, WindowPolicy::Safe);
        let n = binary.len() as u32;
        index.insert_tree(n, sgs.clone());
        // A second size class plus enough duplicates to build a sorted
        // prefix and a tail in at least one bucket.
        for _ in 0..(TAIL_MAX + 8) {
            index.insert_tree(n, sgs.clone());
        }
        let dump = index.dump();
        let restored = SubgraphIndex::restore(dump.clone()).expect("valid dump restores");
        assert_eq!(restored.dump(), dump, "dump→restore→dump is a fixpoint");
        assert_eq!(restored.len(), index.len());
        assert_eq!(restored.registrations(), index.registrations());
        assert_eq!(restored.distinct_components(), index.distinct_components());
        // Every probe surfaces the same handles in the same order.
        let posts = tree.postorder_numbers();
        let layer_a = index.layer(index.layer_id(n).unwrap());
        let layer_b = restored.layer(restored.layer_id(n).unwrap());
        for node in binary.node_ids() {
            let left = binary
                .left(node)
                .map_or(Label::EPSILON, |c| binary.label(c));
            let right = binary
                .right(node)
                .map_or(Label::EPSILON, |c| binary.label(c));
            let keys = TwigKeys::new(binary.label(node), left, right);
            let position = index.probe_position(posts[node.index()], n);
            let (mut a, mut b) = (Vec::new(), Vec::new());
            layer_a.probe(position, &keys, |h| a.push(h));
            layer_b.probe(position, &keys, |h| b.push(h));
            assert_eq!(a, b, "probe order must survive the round trip");
        }
        // The restored interning table still dedups further inserts.
        let mut grown = SubgraphIndex::restore(index.dump()).unwrap();
        let distinct = grown.distinct_components();
        grown.insert_tree(n, sgs);
        assert_eq!(grown.distinct_components(), distinct);
    }

    #[test]
    fn restore_rejects_corrupt_dumps() {
        let tau = 1;
        let (_, binary, sgs, _) = subgraphs_of("{a{b{c}{d}}{e{f}{g}}{h{i}{j}}}", tau);
        let mut index = SubgraphIndex::new(tau, WindowPolicy::Safe);
        index.insert_tree(binary.len() as u32, sgs);
        let good = index.dump();
        assert!(SubgraphIndex::restore(good.clone()).is_ok());

        let mut bad = good.clone();
        bad.size_layers[0].1 = 99;
        assert!(SubgraphIndex::restore(bad).is_err(), "layer out of range");

        let mut bad = good.clone();
        bad.metas[0].component = 99;
        assert!(
            SubgraphIndex::restore(bad).is_err(),
            "component out of range"
        );

        let mut bad = good.clone();
        bad.components[0].len = bad.arena.len() as u32 + 1;
        assert!(SubgraphIndex::restore(bad).is_err(), "arena overrun");

        let mut bad = good.clone();
        for layer in &mut bad.layers {
            for bucket in &mut layer.buckets {
                for posting in &mut bucket.postings {
                    posting.1 = 1_000;
                }
            }
        }
        assert!(SubgraphIndex::restore(bad).is_err(), "handle out of range");

        let mut bad = good.clone();
        bad.registrations += 1;
        assert!(
            SubgraphIndex::restore(bad).is_err(),
            "registration mismatch"
        );

        let mut bad = good;
        bad.layers.push(LayerDump {
            buckets: Vec::new(),
        });
        assert!(SubgraphIndex::restore(bad).is_err(), "orphan layer");
    }

    #[test]
    fn paper_absolute_uses_raw_postorder() {
        let tau = 1;
        let (_, binary, sgs, _) = subgraphs_of("{a{b{c}{d}}{e{f}{g}}{h{i}{j}}}", tau);
        let index = SubgraphIndex::new(tau, WindowPolicy::PaperAbsolute);
        for sg in &sgs {
            assert_eq!(index.position_of(sg), sg.root_post);
        }
        assert_eq!(index.probe_position(7, binary.len() as u32), 7);
        let tight = SubgraphIndex::new(tau, WindowPolicy::Tight);
        for sg in &sgs {
            assert_eq!(tight.position_of(sg), sg.suffix);
        }
    }
}
