//! Histogram correctness: percentile exactness on known distributions,
//! the saturating overflow bucket, and concurrent multi-thread
//! recording folding to the same totals as sequential recording.

use std::sync::Arc;
use std::thread;
use tsj_obs::{bucket_bound, MetricsRegistry, MAX_TRACKED, NUM_BUCKETS};

/// The same rank rule the histogram uses: value at rank ⌈q·n⌉ of the
/// sorted data, clamped to [1, n].
fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// When every recorded value sits on a bucket bound, quantile readout
/// is *exact* — not approximate — for any q: this is what clock-ms
/// tests rely on.
#[test]
fn percentiles_are_exact_on_bucket_bound_distributions() {
    // A skewed distribution over bucket bounds: lots of fast requests,
    // a slow tail. 3 is recorded 50×, 16 recorded 30×, and so on.
    let distribution: &[(u64, usize)] = &[(3, 50), (16, 30), (96, 15), (1536, 4), (24576, 1)];
    let registry = MetricsRegistry::new();
    let histogram = registry.histogram("lat_ms");
    let mut values = Vec::new();
    for &(v, times) in distribution {
        for _ in 0..times {
            histogram.record(v);
            values.push(v);
        }
    }
    values.sort_unstable();

    let snapshot = registry.snapshot();
    let h = snapshot.histogram("lat_ms").unwrap();
    assert_eq!(h.count(), values.len() as u64);
    assert_eq!(h.sum, values.iter().sum::<u64>());
    assert_eq!(h.max, 24576);
    for q in [0.0, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0] {
        assert_eq!(
            h.quantile(q),
            exact_percentile(&values, q),
            "quantile {q} must be exact on bucket-bound data"
        );
    }
    assert_eq!(h.p50(), 3);
    assert_eq!(h.p90(), 96);
    assert_eq!(h.p99(), 1536);
}

/// Off-bound values land in the right bucket and quantiles never
/// over-report past the exact tracked max.
#[test]
fn quantiles_clamp_to_the_exact_max() {
    let registry = MetricsRegistry::new();
    let histogram = registry.histogram("lat_ms");
    // 5 falls in the (4, 6] bucket; the readout would be 6, but the
    // exact max 5 clamps it.
    for _ in 0..10 {
        histogram.record(5);
    }
    let snapshot = registry.snapshot();
    let h = snapshot.histogram("lat_ms").unwrap();
    assert_eq!(h.max, 5);
    assert_eq!(h.p50(), 5);
    assert_eq!(h.p99(), 5);
}

/// Values above `MAX_TRACKED` saturate into the overflow bucket: counts
/// stay exact, the max stays exact, and tail quantiles read as the max.
#[test]
fn overflow_bucket_saturates_without_losing_counts() {
    let registry = MetricsRegistry::new();
    let histogram = registry.histogram("lat_ms");
    histogram.record(1);
    histogram.record(MAX_TRACKED); // last finite bucket
    histogram.record(MAX_TRACKED + 1); // first overflowing value
    histogram.record(MAX_TRACKED * 1000);
    let snapshot = registry.snapshot();
    let h = snapshot.histogram("lat_ms").unwrap();
    assert_eq!(h.count(), 4);
    assert_eq!(h.buckets[NUM_BUCKETS - 1], 2, "two values overflowed");
    assert_eq!(h.max, MAX_TRACKED * 1000);
    assert_eq!(h.quantile(1.0), MAX_TRACKED * 1000, "overflow reads as max");
    assert_eq!(h.p50(), MAX_TRACKED);
    // The finite bounds end exactly at MAX_TRACKED.
    assert_eq!(bucket_bound(NUM_BUCKETS - 2), Some(MAX_TRACKED));
    assert_eq!(bucket_bound(NUM_BUCKETS - 1), None);
}

/// Four threads hammering one shared histogram lose nothing: the merged
/// totals equal a sequential run over the same values.
#[test]
fn concurrent_recording_matches_sequential_totals() {
    let values: Vec<u64> = (0..4000).map(|i| (i * i) % 3000).collect();

    let sequential = MetricsRegistry::new();
    let histogram = sequential.histogram("lat_ms");
    for &v in &values {
        histogram.record(v);
    }
    let expected = sequential.snapshot();

    let shared = Arc::new(MetricsRegistry::new());
    let chunk = values.len() / 4;
    thread::scope(|scope| {
        for part in values.chunks(chunk) {
            let registry = shared.clone();
            scope.spawn(move || {
                let histogram = registry.histogram("lat_ms");
                registry.counter("records_total").add(part.len() as u64);
                for &v in part {
                    histogram.record(v);
                }
            });
        }
    });
    let concurrent = shared.snapshot();
    assert_eq!(
        concurrent.histogram("lat_ms"),
        expected.histogram("lat_ms"),
        "shared-histogram recording must be lossless"
    );
    assert_eq!(concurrent.counter("records_total"), Some(4000));
}

/// Per-worker local registries folded on gather reach the same totals
/// as recording everything into one registry — the fold model the join
/// engines use.
#[test]
fn per_worker_registries_fold_to_sequential_totals() {
    let values: Vec<u64> = (0..4000).map(|i| (i * 7) % 2500).collect();

    let direct = MetricsRegistry::new();
    let histogram = direct.histogram("lat_ms");
    for &v in &values {
        histogram.record(v);
    }
    direct.counter("records_total").add(values.len() as u64);
    let expected = direct.snapshot();

    let target = MetricsRegistry::new();
    thread::scope(|scope| {
        let target = &target;
        for part in values.chunks(values.len() / 4) {
            scope.spawn(move || {
                let local = MetricsRegistry::new();
                let histogram = local.histogram("lat_ms");
                local.counter("records_total").add(part.len() as u64);
                for &v in part {
                    histogram.record(v);
                }
                local.fold_into(target);
            });
        }
    });
    assert_eq!(target.snapshot(), expected, "fold-on-gather is lossless");
}
