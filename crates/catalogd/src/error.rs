//! The `catalogd` error type: every failure in the server, the client
//! or the pool is a typed, printable value — wire violations carry
//! their [`WireError`], cluster-layer failures their
//! [`ClusterError`], and handshake disagreements name both sides.

use crate::wire::{ErrorCode, WireError};
use tsj_cluster::ClusterError;

/// Any error the catalogd layer can produce.
#[derive(Debug)]
pub enum CatalogdError {
    /// A frame failed to encode, decode, or cross the socket.
    Wire(WireError),
    /// The underlying cluster layer failed (snapshot decode, topology,
    /// threshold above frozen, …).
    Cluster(ClusterError),
    /// A socket-level operation failed outside framing (bind, connect,
    /// address resolution).
    Io {
        /// The I/O error kind.
        kind: std::io::ErrorKind,
        /// What was being attempted.
        context: String,
    },
    /// The peer answered the handshake with something unusable: version
    /// or snapshot mismatch, or inconsistent cluster facts across nodes.
    Handshake {
        /// What disagreed.
        context: String,
    },
    /// The server answered a request with a typed
    /// [`Frame::Error`](crate::wire::Frame::Error) the client cannot
    /// retry.
    Server {
        /// The error code the server sent.
        code: ErrorCode,
        /// The server's message.
        message: String,
    },
    /// The peer sent a frame that violates the protocol state machine
    /// (e.g. a response type that does not match the request).
    Protocol {
        /// What was expected and what arrived.
        context: String,
    },
}

impl std::fmt::Display for CatalogdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogdError::Wire(e) => write!(f, "wire error: {e}"),
            CatalogdError::Cluster(e) => write!(f, "cluster error: {e}"),
            CatalogdError::Io { kind, context } => write!(f, "i/o error ({kind:?}): {context}"),
            CatalogdError::Handshake { context } => write!(f, "handshake failed: {context}"),
            CatalogdError::Server { code, message } => {
                write!(f, "server error {code:?}: {message}")
            }
            CatalogdError::Protocol { context } => write!(f, "protocol violation: {context}"),
        }
    }
}

impl std::error::Error for CatalogdError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CatalogdError::Wire(e) => Some(e),
            CatalogdError::Cluster(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for CatalogdError {
    fn from(e: WireError) -> CatalogdError {
        CatalogdError::Wire(e)
    }
}

impl From<ClusterError> for CatalogdError {
    fn from(e: ClusterError) -> CatalogdError {
        CatalogdError::Cluster(e)
    }
}

impl From<tsj_catalog::CatalogError> for CatalogdError {
    fn from(e: tsj_catalog::CatalogError) -> CatalogdError {
        CatalogdError::Cluster(ClusterError::Snapshot(e))
    }
}
