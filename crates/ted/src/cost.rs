//! Edit operation cost model.
//!
//! The paper (and all of its baselines) uses the standard unit-cost model:
//! insertion, deletion and relabeling each cost 1, and renaming a node to
//! its own label costs 0. The model is kept configurable so the library can
//! be used with weighted costs, but every bound shipped in this workspace
//! (traversal-string, binary-branch, histogram) is only valid for unit
//! costs and asserts as much where it matters.

use tsj_tree::Label;

/// Costs of the three node edit operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Cost of inserting a node.
    pub insert: u32,
    /// Cost of deleting a node.
    pub delete: u32,
    /// Cost of changing a node's label to a *different* label.
    pub relabel: u32,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::UNIT
    }
}

impl CostModel {
    /// The unit-cost model used throughout the paper.
    pub const UNIT: CostModel = CostModel {
        insert: 1,
        delete: 1,
        relabel: 1,
    };

    /// Cost of renaming a node labeled `a` into one labeled `b`.
    #[inline]
    pub fn rename(&self, a: Label, b: Label) -> u32 {
        if a == b {
            0
        } else {
            self.relabel
        }
    }

    /// Whether this is the unit-cost model (required by the filter bounds).
    pub fn is_unit(&self) -> bool {
        *self == CostModel::UNIT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_model_is_default() {
        assert_eq!(CostModel::default(), CostModel::UNIT);
        assert!(CostModel::UNIT.is_unit());
    }

    #[test]
    fn rename_is_zero_for_equal_labels() {
        let costs = CostModel::UNIT;
        let a = Label::from_raw(1);
        let b = Label::from_raw(2);
        assert_eq!(costs.rename(a, a), 0);
        assert_eq!(costs.rename(a, b), 1);
    }

    #[test]
    fn weighted_model_detected() {
        let weighted = CostModel {
            insert: 2,
            delete: 2,
            relabel: 3,
        };
        assert!(!weighted.is_unit());
        assert_eq!(weighted.rename(Label::from_raw(1), Label::from_raw(2)), 3);
    }
}
