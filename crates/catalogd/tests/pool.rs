//! Connection-pool behavior against a live loopback server: checkout /
//! checkin reuse, dead-connection eviction, idle caps, and concurrent
//! checkout contention.

mod common;

use std::io::Write;
use tsj_catalogd::wire::Frame;
use tsj_catalogd::{Catalogd, ConnPool, PoolConfig, ServerConfig};

fn spawn_server() -> tsj_catalogd::RunningServer {
    let (snapshot, _, _) = common::freeze_demo(40, 1, 4, 11);
    Catalogd::bind(snapshot, &ServerConfig::new(0, 1, 1), "127.0.0.1:0")
        .expect("bind")
        .spawn()
        .expect("spawn")
}

#[test]
fn checkout_checkin_reuses_connections() {
    let server = spawn_server();
    let addr = server.addr();
    let pool = ConnPool::new(PoolConfig::default());

    assert_eq!(pool.idle_count(addr), 0);
    let conn = pool.checkout(addr).expect("fresh dial");
    pool.checkin(addr, conn, true);
    assert_eq!(pool.idle_count(addr), 1);

    // The pooled connection comes back out (LIFO) and still works.
    let mut conn = pool.checkout(addr).expect("pooled checkout");
    assert_eq!(pool.idle_count(addr), 0);
    Frame::Health.write_to(&mut conn).expect("ping out");
    match Frame::read_from(&mut conn).expect("ping back") {
        Frame::HealthAck { node, .. } => assert_eq!(node, 0),
        other => panic!("expected HealthAck, got {other:?}"),
    }
    pool.checkin(addr, conn, true);
    assert_eq!(pool.idle_count(addr), 1);
}

#[test]
fn unhealthy_checkin_drops_the_connection() {
    let server = spawn_server();
    let addr = server.addr();
    let pool = ConnPool::new(PoolConfig::default());
    let conn = pool.checkout(addr).expect("dial");
    pool.checkin(addr, conn, false);
    assert_eq!(pool.idle_count(addr), 0, "unhealthy conns never re-enter");
}

#[test]
fn idle_cap_is_enforced() {
    let server = spawn_server();
    let addr = server.addr();
    let pool = ConnPool::new(PoolConfig {
        max_idle_per_addr: 2,
        ..PoolConfig::default()
    });
    let conns: Vec<_> = (0..4).map(|_| pool.checkout(addr).expect("dial")).collect();
    for conn in conns {
        pool.checkin(addr, conn, true);
    }
    assert_eq!(pool.idle_count(addr), 2, "surplus checkins close");
}

#[test]
fn ping_on_checkout_evicts_dead_idle_connections() {
    let server = spawn_server();
    let addr = server.addr();
    let pool = ConnPool::new(PoolConfig {
        ping_on_checkout: true,
        ..PoolConfig::default()
    });
    // Pool two live connections, then kill the server: both idle conns
    // are now dead, and a fresh dial cannot succeed either.
    let a = pool.checkout(addr).expect("dial a");
    let b = pool.checkout(addr).expect("dial b");
    pool.checkin(addr, a, true);
    pool.checkin(addr, b, true);
    assert_eq!(pool.idle_count(addr), 2);
    server.stop();

    let result = pool.checkout(addr);
    assert!(
        result.is_err(),
        "dead idle conns must be evicted, not handed out"
    );
    assert_eq!(pool.idle_count(addr), 0, "both dead conns were dropped");
}

#[test]
fn ping_on_checkout_survives_a_server_restart_with_fresh_dials() {
    let server = spawn_server();
    let addr = server.addr();
    let pool = ConnPool::new(PoolConfig {
        ping_on_checkout: true,
        ..PoolConfig::default()
    });
    let conn = pool.checkout(addr).expect("dial");
    pool.checkin(addr, conn, true);
    server.stop();

    // Restart on the same port (loopback, SO_REUSEADDR not needed once
    // the listener is fully closed).
    let (snapshot, _, _) = common::freeze_demo(40, 1, 4, 11);
    let restarted = Catalogd::bind(snapshot, &ServerConfig::new(0, 1, 1), &addr.to_string())
        .expect("rebind same addr")
        .spawn()
        .expect("respawn");

    // The stale idle conn fails its ping and a fresh dial replaces it.
    let mut conn = pool.checkout(addr).expect("fresh dial after restart");
    Frame::Health.write_to(&mut conn).expect("ping out");
    assert!(matches!(
        Frame::read_from(&mut conn).expect("ping back"),
        Frame::HealthAck { .. }
    ));
    drop(restarted);
}

#[test]
fn concurrent_checkouts_contend_safely() {
    let server = spawn_server();
    let addr = server.addr();
    let pool = ConnPool::new(PoolConfig {
        max_idle_per_addr: 4,
        ..PoolConfig::default()
    });
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| {
                for _ in 0..25 {
                    let mut conn = pool.checkout(addr).expect("checkout under contention");
                    Frame::Health.write_to(&mut conn).expect("ping out");
                    let healthy =
                        matches!(Frame::read_from(&mut conn), Ok(Frame::HealthAck { .. }));
                    pool.checkin(addr, conn, healthy);
                }
            });
        }
    });
    assert!(
        pool.idle_count(addr) <= 4,
        "idle cap holds under contention"
    );
    // Everything pooled is still usable.
    let mut conn = pool.checkout(addr).expect("post-contention checkout");
    Frame::Health.write_to(&mut conn).expect("ping out");
    assert!(matches!(
        Frame::read_from(&mut conn).expect("ping back"),
        Frame::HealthAck { .. }
    ));
    let _ = conn.flush();
}
