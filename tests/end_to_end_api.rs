//! Integration tests exercising the public facade API end to end: parse →
//! transform → join → inspect, the way a downstream user would.

use tree_similarity_join::prelude::*;
use tree_similarity_join::tree::to_bracket;

#[test]
fn parse_join_inspect_round_trip() {
    let mut labels = LabelInterner::new();
    let docs = [
        "<album><title>x</title><year>1969</year></album>",
        "<album><title>x</title><year>2019</year></album>",
        "<album><title>y</title><artist>z</artist><year>1969</year></album>",
    ];
    let trees: Vec<Tree> = docs
        .iter()
        .map(|d| parse_xmlish(d, &mut labels).unwrap())
        .collect();

    let outcome = partsj_join(&trees, 1);
    assert_eq!(outcome.pairs, vec![(0, 1)]);
    assert_eq!(outcome.stats.results, 1);

    // Serialization of parsed trees round-trips structurally.
    for tree in &trees {
        let rendered = to_bracket(tree, &labels);
        let mut labels2 = LabelInterner::new();
        let reparsed = parse_bracket(&rendered, &mut labels2).unwrap();
        assert_eq!(reparsed.len(), tree.len());
    }
}

#[test]
fn binary_transform_is_exposed() {
    let mut labels = LabelInterner::new();
    let tree = parse_bracket("{a{b{c}{d}}{e}}", &mut labels).unwrap();
    let binary = BinaryTree::from_tree(&tree);
    assert_eq!(binary.len(), tree.len());
    assert!(binary.to_general().structurally_eq(&tree));
}

#[test]
fn ted_engine_and_join_stats_are_consistent() {
    let mut labels = LabelInterner::new();
    let trees: Vec<Tree> = ["{a{b}{c}}", "{a{b}{c}}", "{a{b}{d}}", "{z{x{y{w}}}}"]
        .iter()
        .map(|s| parse_bracket(s, &mut labels).unwrap())
        .collect();

    let outcome = partsj_join(&trees, 1);
    let mut engine = TedEngine::unit();
    for &(a, b) in &outcome.pairs {
        let d = engine.distance_trees(&trees[a as usize], &trees[b as usize]);
        assert!(d <= 1, "reported pair ({a},{b}) has TED {d} > tau");
    }
    // Non-pairs really are farther apart.
    for a in 0..trees.len() {
        for b in a + 1..trees.len() {
            if !outcome.pairs.contains(&(a as u32, b as u32)) {
                let d = engine.distance_trees(&trees[a], &trees[b]);
                assert!(d > 1, "missing pair ({a},{b}) with TED {d}");
            }
        }
    }
}

#[test]
fn collection_stats_reported_through_facade() {
    let trees = swissprot_like(80, 7);
    let stats = collection_stats(&trees);
    assert_eq!(stats.cardinality, 80);
    assert!(stats.avg_size > 30.0);
    assert!(stats.distinct_labels <= 84);
}

#[test]
fn detailed_join_exposes_filter_internals() {
    let trees = synthetic(
        100,
        &SyntheticParams {
            avg_size: 30,
            ..SyntheticParams::default()
        },
        11,
    );
    let (outcome, detail) = partsj_join_detailed(&trees, 2, &PartSjConfig::default());
    assert!(detail.subgraphs_built > 0);
    assert!(detail.probes > 0);
    assert!(detail.index_registrations >= detail.subgraphs_built);
    assert!(detail.matches >= outcome.stats.candidates - detail.small_tree_candidates);
}

#[test]
fn empty_collection_is_fine() {
    let outcome = partsj_join(&[], 3);
    assert!(outcome.pairs.is_empty());
    assert_eq!(outcome.stats.results, 0);
}
