//! The scratch-reuse refactor must be invisible: every join path now
//! runs through grow-only probe/verify scratch (rebuilt in place per
//! tree), and this suite pins that the results are **bit-identical** —
//! pairs, candidate counts *and* per-stage verification counters — to
//! the sequential reference across the full τ × window-policy ×
//! execution-mode matrix, including dirty-scratch reuse across calls.

use tree_similarity_join::prelude::*;
use tree_similarity_join::shard::{
    build_frozen_left, frozen_rs_join, frozen_rs_join_seq, FrozenJoinScratch, FrozenLeft,
};

fn dataset(n: usize, seed: u64) -> Vec<Tree> {
    synthetic(
        n,
        &SyntheticParams {
            avg_size: 30,
            ..SyntheticParams::default()
        },
        seed,
    )
}

/// Everything two outcomes must share to count as bit-identical.
fn assert_same(reference: &JoinOutcome, other: &JoinOutcome, what: &str) {
    assert_eq!(other.pairs, reference.pairs, "{what}: pairs diverged");
    assert_eq!(
        other.stats.candidates, reference.stats.candidates,
        "{what}: candidate counts diverged"
    );
    assert_eq!(
        other.stats.prefilter_skips, reference.stats.prefilter_skips,
        "{what}: prefilter skips diverged"
    );
    assert_eq!(
        other.stats.early_accepts, reference.stats.early_accepts,
        "{what}: early accepts diverged"
    );
    assert_eq!(
        other.stats.ted_calls, reference.stats.ted_calls,
        "{what}: TED call counts diverged"
    );
    assert_eq!(
        other.stats.stage_counts, reference.stats.stage_counts,
        "{what}: per-stage counters diverged"
    );
}

#[test]
fn self_join_paths_agree_across_tau_and_window_policies() {
    let trees = dataset(110, 48);
    for tau in [0u32, 1, 3] {
        for window in [
            WindowPolicy::Safe,
            WindowPolicy::Tight,
            WindowPolicy::PaperAbsolute,
        ] {
            // The incomplete window policies may legitimately differ
            // from `Safe` — the contract here is that all execution
            // modes agree with the sequential run of the *same* config.
            let config = PartSjConfig {
                window,
                ..PartSjConfig::default()
            };
            let reference = partsj_join_with(&trees, tau, &config);
            let parallel = partsj_join_parallel(&trees, tau, &config, 4);
            assert_same(
                &reference,
                &parallel,
                &format!("parallel tau={tau} window={window:?}"),
            );
            let sharded = tree_similarity_join::shard::sharded_join(
                &trees,
                tau,
                &config,
                &ShardConfig::with_shards(3),
            );
            assert_same(
                &reference,
                &sharded,
                &format!("sharded tau={tau} window={window:?}"),
            );
        }
    }
}

#[test]
fn frozen_join_scratch_reuse_is_bit_identical() {
    let left = dataset(80, 49);
    let right = dataset(40, 50);
    let config = PartSjConfig::default();
    // One engine + scratch survive the whole τ sweep: every later call
    // runs on buffers dirtied by a *different* threshold.
    let mut engine = VerifyEngine::new(3, &config);
    let mut scratch = FrozenJoinScratch::new();
    let mut pairs = Vec::new();
    let (index, small_by_size) = build_frozen_left(&left, 3, &config, &ShardConfig::with_shards(2));
    let left_data: Vec<VerifyData> = VerifyData::batch_for_config(&left, &config.verify);
    let frozen = FrozenLeft {
        index: &index,
        small_by_size: &small_by_size,
        left_data: &left_data,
    };
    for tau in [0u32, 1, 3, 1] {
        let reference = frozen_rs_join(&frozen, &right, tau, &config, 1, 1);
        let stats = frozen_rs_join_seq(
            &frozen,
            &right,
            tau,
            &config,
            &mut engine,
            &mut scratch,
            &mut pairs,
        );
        assert_eq!(pairs, reference.pairs, "tau={tau}: pairs diverged");
        let reused = JoinOutcome::new_bipartite(pairs.clone(), stats);
        assert_same(&reference, &reused, &format!("frozen seq tau={tau}"));
    }
}

#[test]
fn search_scratch_reuse_matches_fresh_queries() {
    let collection = dataset(90, 51);
    let probes = dataset(25, 52);
    let config = PartSjConfig::default();
    let index = SearchIndex::build(&collection, 2, config);
    let mut engine = VerifyEngine::new(2, &config);
    let mut scratch = partsj::SearchScratch::new();
    let mut hits = Vec::new();
    for probe in &probes {
        let fresh = index.query(probe);
        index.query_into(probe, &mut engine, &mut scratch, &mut hits);
        assert_eq!(hits, fresh, "recycled search query diverged");
    }
}
