//! The unified verification engine: a pluggable chain of cheap bounds in
//! front of exact TED.
//!
//! Every join entry point — sequential, parallel, R×S, streaming and
//! search in this crate, plus all of `tsj-shard` — verifies candidate
//! pairs the same way: run cheap distance *bounds* first and fall back to
//! the cubic exact-TED DP only when no bound decides the pair. Before
//! this module each entry point re-implemented that pipeline inline;
//! [`VerifyEngine`] owns it once, so a new bound added here speeds up
//! every entry point at the same time.
//!
//! ## The filter chain
//!
//! A [`VerifyEngine`] holds an ordered chain of [`FilterStage`]s, built
//! from [`VerifyConfig`] and evaluated **cheapest first**:
//!
//! | # | stage | kind | per-pair cost | decides |
//! |---|----------------|-------|----------------------|---------|
//! | 1 | `size` | lower | O(1) | reject |
//! | 2 | `shape-accept` | upper | O(1), O(n) on hit | accept |
//! | 3 | `label-hist` | lower | O(n) merge | reject |
//! | 4 | `traversal-sed`| lower | O(τ·n) banded DP | reject |
//! | — | exact TED | — | O(n²·min-height²) DP | both |
//!
//! A **lower-bound** stage computes `lb ≤ TED` and rejects when
//! `lb > τ`; rejection can never drop a true result. An **upper-bound**
//! stage exhibits a concrete edit script of cost `ub ≥ TED` and accepts
//! when `ub ≤ τ`; acceptance can never add a false result. Either way
//! the pair is *resolved* without the expensive DP, and the stage's
//! counter records it ([`JoinStats::stage_counts`]).
//!
//! ## Why the early accept hashes shapes instead of reusing SED
//!
//! A tempting upper bound is the exact traversal-string SED itself —
//! "if `SED ≤ τ`, accept". It is **unsound**: SED of preorder/postorder
//! strings *lower*-bounds TED (that is exactly why stage 4 may reject
//! with it). The paper's own Figure 3 pair (`{1{2}{1{3}}}` vs
//! `{1{2{1}{3}}}`) has `max(SED) = 2` but `TED = 3`, so SED-accepting at
//! `τ = 2` would report a false pair — the regression test
//! `sed_accept_would_be_unsound` pins this counterexample. The sound
//! replacement: when two trees have the *same shape* (equal preorder
//! degree sequences — which uniquely determine an ordered tree), renaming
//! every label mismatch in place is a valid edit script, so the label
//! Hamming distance upper-bounds TED. Near-duplicate corpora are full of
//! rename-only pairs, which makes this the stage that eliminates most
//! TED calls on the paper's workloads.

use crate::config::{AdaptiveConfig, PartSjConfig, VerifyConfig};
use std::cell::Cell;
use std::hash::Hasher as _;
use std::time::Instant;
use tsj_ted::bounds::{histogram_bound, traversal_within_with, TraversalStrings};
use tsj_ted::{JoinStats, PreparedTree, SedScratch, StageCount, TedBuildScratch, TedEngine};
use tsj_tree::{FxHasher, Label, NodeId, Tree};

/// Per-tree verification inputs, precomputed once at index-build /
/// data-prep time so every stage is allocation-free per pair.
///
/// Built with [`VerifyData::for_config`], only the inputs of *enabled*
/// stages are materialized (disabled ones stay empty, and every stage
/// skips itself on empty inputs — trees are never empty, so emptiness
/// is unambiguous). A fully populated instance from [`VerifyData::new`]
/// works with any chain.
#[derive(Debug, Clone)]
pub struct VerifyData {
    /// Both TED decompositions, for the exact fallback.
    pub prepared: PreparedTree,
    /// Preorder/postorder label strings (traversal-SED stage; the
    /// preorder string doubles as the rename-script label sequence).
    pub traversals: TraversalStrings,
    /// Sorted label multiset (label-histogram stage).
    pub histogram: Vec<Label>,
    /// Preorder child-count sequence — uniquely identifies the ordered
    /// tree *shape* (shape-accept stage).
    pub shape: Vec<u32>,
    /// Fx-style hash of [`VerifyData::shape`]: O(1) shape inequality.
    pub shape_hash: u64,
}

/// Reusable temporaries for [`VerifyData`] preparation: the TED-tree
/// build scratch plus the traversal walk stacks. One instance batched
/// across a whole collection ([`VerifyData::batch_for_config`]) or
/// carried in a probe scratch ([`VerifyData::rebuild`]) makes repeated
/// preparation allocation-free in steady state.
#[derive(Debug, Default)]
pub struct VerifyPrep {
    ted: TedBuildScratch,
    pre_stack: Vec<NodeId>,
    post_stack: Vec<(NodeId, usize)>,
}

impl VerifyPrep {
    /// An empty scratch; buffers are grown on first use.
    pub fn new() -> VerifyPrep {
        VerifyPrep::default()
    }
}

impl VerifyData {
    /// Precomputes every stage's inputs for `tree`.
    pub fn new(tree: &Tree) -> VerifyData {
        VerifyData::for_config(tree, &VerifyConfig::ALL)
    }

    /// Precomputes the inputs of the stages `filters` enables; disabled
    /// stages cost neither setup time nor memory.
    pub fn for_config(tree: &Tree, filters: &VerifyConfig) -> VerifyData {
        VerifyData::for_config_with(tree, filters, &mut VerifyPrep::new())
    }

    /// [`VerifyData::for_config`] using caller-provided preparation
    /// temporaries — the building block of [`VerifyData::batch_for_config`].
    pub fn for_config_with(
        tree: &Tree,
        filters: &VerifyConfig,
        prep: &mut VerifyPrep,
    ) -> VerifyData {
        let mut data = VerifyData {
            prepared: PreparedTree::new_with(tree, &mut prep.ted),
            traversals: TraversalStrings {
                preorder: Vec::new(),
                postorder: Vec::new(),
            },
            histogram: Vec::new(),
            shape: Vec::new(),
            shape_hash: 0,
        };
        data.fill_stage_inputs(tree, filters, prep);
        data
    }

    /// Prepares a whole collection through one shared set of temporaries
    /// (full stage inputs, as [`VerifyData::new`] per tree).
    pub fn batch(trees: &[Tree]) -> Vec<VerifyData> {
        VerifyData::batch_for_config(trees, &VerifyConfig::ALL)
    }

    /// Prepares a whole collection through one shared set of temporaries,
    /// materializing only the inputs of enabled stages. Equivalent to
    /// mapping [`VerifyData::for_config`] but the walk/build scratch is
    /// allocated once instead of per tree.
    pub fn batch_for_config(trees: &[Tree], filters: &VerifyConfig) -> Vec<VerifyData> {
        let mut prep = VerifyPrep::new();
        trees
            .iter()
            .map(|tree| VerifyData::for_config_with(tree, filters, &mut prep))
            .collect()
    }

    /// Rebuilds this instance in place for a new `tree`, reusing every
    /// buffer. Equivalent to `*self = VerifyData::for_config(tree,
    /// filters)` but allocation-free once buffers fit the largest tree
    /// seen — repeated probes reuse one instance through a scratch.
    pub fn rebuild(&mut self, tree: &Tree, filters: &VerifyConfig, prep: &mut VerifyPrep) {
        self.prepared.rebuild(tree, &mut prep.ted);
        self.fill_stage_inputs(tree, filters, prep);
    }

    /// (Re)fills the per-stage inputs: one preorder walk produces the
    /// preorder label string, the shape sequence and its hash together;
    /// one postorder walk produces the postorder string; the histogram
    /// is an in-place sort. All buffers are cleared first, so disabled
    /// stages leave their inputs unambiguously empty.
    fn fill_stage_inputs(&mut self, tree: &Tree, filters: &VerifyConfig, prep: &mut VerifyPrep) {
        self.traversals.preorder.clear();
        self.traversals.postorder.clear();
        self.histogram.clear();
        self.shape.clear();
        self.shape_hash = 0;

        // The shape-accept stage reads the preorder string too (the
        // rename-script label sequence).
        let want_traversals = filters.traversal || filters.shape_accept;
        if want_traversals || filters.shape_accept {
            let mut hasher = FxHasher::default();
            prep.pre_stack.clear();
            prep.pre_stack.push(tree.root());
            while let Some(node) = prep.pre_stack.pop() {
                if want_traversals {
                    self.traversals.preorder.push(tree.label(node));
                }
                if filters.shape_accept {
                    let degree = tree.children(node).len() as u32;
                    self.shape.push(degree);
                    hasher.write_u32(degree);
                }
                for &child in tree.children(node).iter().rev() {
                    prep.pre_stack.push(child);
                }
            }
            if filters.shape_accept {
                self.shape_hash = hasher.finish();
            }
        }
        if want_traversals {
            prep.post_stack.clear();
            prep.post_stack.push((tree.root(), 0));
            while let Some(&mut (node, ref mut next)) = prep.post_stack.last_mut() {
                let children = tree.children(node);
                if *next < children.len() {
                    let child = children[*next];
                    *next += 1;
                    prep.post_stack.push((child, 0));
                } else {
                    self.traversals.postorder.push(tree.label(node));
                    prep.post_stack.pop();
                }
            }
        }
        if filters.histogram {
            self.histogram
                .extend(tree.node_ids().map(|n| tree.label(n)));
            self.histogram.sort_unstable();
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.prepared.len()
    }

    /// Trees are never empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Whether a stage bounds TED from below (can only reject) or from above
/// (can only accept).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// Computes `lb ≤ TED`; rejects when `lb > τ`.
    LowerBound,
    /// Exhibits an edit script of cost `ub ≥ TED`; accepts when `ub ≤ τ`.
    UpperBound,
}

/// One stage's decision for one candidate pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageVerdict {
    /// A lower bound exceeded `τ`: the pair is not a result.
    Reject,
    /// An upper bound certified the pair with the **exact** distance `d`
    /// (the stage proved no cheaper script exists).
    AcceptExact(u32),
    /// An upper bound certified the pair: `TED ≤ d ≤ τ`, but `d` may
    /// overestimate the true distance. Sufficient for joins (membership),
    /// not for [`VerifyEngine::check_exact`] consumers.
    AcceptWithin(u32),
    /// No decision; evaluate the next stage (or exact TED).
    Continue,
}

/// The engine-owned scratch arena stages compute out of: per-pair
/// working memory that must not be allocated per candidate. Each
/// [`VerifyEngine`] owns exactly one (engines are per-worker, so no
/// locking is ever needed) and passes it to every
/// [`FilterStage::apply`] call.
#[derive(Debug, Default)]
pub struct VerifyScratch {
    /// Row/band buffers for the SED-based stages.
    pub sed: SedScratch,
}

impl VerifyScratch {
    /// An empty scratch; buffers are grown on first use.
    pub fn new() -> VerifyScratch {
        VerifyScratch::default()
    }
}

/// A reusable probe-side [`VerifyData`] slot: one data instance plus its
/// preparation temporaries, rebuilt in place per probe tree. Holding one
/// across a query/insert loop makes the per-probe verification setup
/// allocation-free once the buffers fit the largest probe seen.
#[derive(Debug, Default)]
pub struct ProbeVerify {
    prep: VerifyPrep,
    data: Option<VerifyData>,
}

impl ProbeVerify {
    /// An empty slot; buffers are grown on first use.
    pub fn new() -> ProbeVerify {
        ProbeVerify::default()
    }

    /// Prepares the verification inputs of `tree` for the stages
    /// `filters` enables. The result is valid until the next call.
    pub fn prepare(&mut self, tree: &Tree, filters: &VerifyConfig) -> &VerifyData {
        match &mut self.data {
            Some(data) => data.rebuild(tree, filters, &mut self.prep),
            None => self.data = Some(VerifyData::for_config_with(tree, filters, &mut self.prep)),
        }
        self.data.as_ref().expect("prepared above")
    }
}

/// A pluggable verification filter. Implementations must be `Send + Sync`
/// so parallel verify pools can build one chain per worker; all per-pair
/// state lives in the [`VerifyData`] arguments and the engine-owned
/// [`VerifyScratch`].
///
/// To add a new bound: implement this trait (see the module docs for the
/// soundness contract per [`StageKind`]), give it a distinct [`name`],
/// and splice it into [`VerifyEngine::with_filters`] at its cost rank —
/// every entry point picks it up through `PartSjConfig`.
///
/// [`name`]: FilterStage::name
pub trait FilterStage: Send + Sync {
    /// Stable stage name, used for [`StageCount`] reporting and for
    /// merging per-worker counters ([`VerifyEngine::fold_into`] keys on
    /// it, so it must be unique within a chain).
    fn name(&self) -> &'static str;

    /// Lower or upper bound (documents which verdicts are legal).
    fn kind(&self) -> StageKind;

    /// Relative per-pair cost weight, used by the adaptive chain
    /// reordering to rank stages by kills-per-cost. Purely advisory —
    /// correctness never depends on it. Defaults to `1`.
    fn cost(&self) -> u32 {
        1
    }

    /// Evaluates the stage on one candidate pair at threshold `tau`,
    /// computing out of the engine-owned `scratch` so steady-state
    /// verification performs no heap allocation.
    fn apply(
        &self,
        a: &VerifyData,
        b: &VerifyData,
        tau: u32,
        scratch: &mut VerifyScratch,
    ) -> StageVerdict;
}

/// Size lower bound `||T1| − |T2|| ≤ TED` (§3.2 footnote 1).
struct SizeFilter;

impl FilterStage for SizeFilter {
    fn name(&self) -> &'static str {
        "size"
    }

    fn kind(&self) -> StageKind {
        StageKind::LowerBound
    }

    fn cost(&self) -> u32 {
        1 // two cached lengths
    }

    #[inline]
    fn apply(
        &self,
        a: &VerifyData,
        b: &VerifyData,
        tau: u32,
        _: &mut VerifyScratch,
    ) -> StageVerdict {
        if a.len().abs_diff(b.len()) as u32 > tau {
            StageVerdict::Reject
        } else {
            StageVerdict::Continue
        }
    }
}

/// Rename-script early accept: same shape ⇒ TED ≤ label Hamming
/// distance. See the module docs for why this replaces the (unsound)
/// SED-based accept.
struct ShapeAcceptFilter;

impl FilterStage for ShapeAcceptFilter {
    fn name(&self) -> &'static str {
        "shape-accept"
    }

    fn kind(&self) -> StageKind {
        StageKind::UpperBound
    }

    fn cost(&self) -> u32 {
        2 // O(1) hash compare, O(n) only on the rare hash hit
    }

    #[inline]
    fn apply(
        &self,
        a: &VerifyData,
        b: &VerifyData,
        tau: u32,
        _: &mut VerifyScratch,
    ) -> StageVerdict {
        // An empty shape means the input was built without this stage
        // (trees are never empty): no decision. The preorder-length
        // check rejects mixed-construction inputs the same way.
        if a.shape.is_empty()
            || a.shape_hash != b.shape_hash
            || a.shape != b.shape
            || a.traversals.preorder.len() != a.shape.len()
            || b.traversals.preorder.len() != b.shape.len()
        {
            return StageVerdict::Continue;
        }
        // Equal preorder degree sequences ⇒ identical shapes; mapping
        // nodes by preorder position and renaming every label mismatch is
        // a valid edit script of cost `hamming`.
        let mut hamming = 0u32;
        for (&la, &lb) in a.traversals.preorder.iter().zip(&b.traversals.preorder) {
            hamming += u32::from(la != lb);
            if hamming > tau {
                return StageVerdict::Continue;
            }
        }
        // hamming = 0 ⇒ identical trees ⇒ TED = 0. hamming = 1 with
        // equal sizes ⇒ the trees differ, so TED ≥ 1 — the bound is
        // tight. From 2 on, mixed insert/delete scripts can be cheaper
        // than renames, so the certificate is only an upper bound.
        if hamming <= 1 {
            StageVerdict::AcceptExact(hamming)
        } else {
            StageVerdict::AcceptWithin(hamming)
        }
    }
}

/// Label-histogram L1 lower bound `⌈L1/2⌉ ≤ TED` (Kailing et al.).
struct HistogramFilter;

impl FilterStage for HistogramFilter {
    fn name(&self) -> &'static str {
        "label-hist"
    }

    fn kind(&self) -> StageKind {
        StageKind::LowerBound
    }

    fn cost(&self) -> u32 {
        8 // O(n) sorted-multiset merge
    }

    #[inline]
    fn apply(
        &self,
        a: &VerifyData,
        b: &VerifyData,
        tau: u32,
        _: &mut VerifyScratch,
    ) -> StageVerdict {
        // Empty histogram = input built without this stage: no decision
        // (a one-sided empty histogram would inflate the L1 bound).
        if a.histogram.is_empty() || b.histogram.is_empty() {
            return StageVerdict::Continue;
        }
        if histogram_bound(&a.histogram, &b.histogram) > tau {
            StageVerdict::Reject
        } else {
            StageVerdict::Continue
        }
    }
}

/// Banded traversal-string SED lower bound
/// `max(SED(pre), SED(post)) ≤ TED` (Guha et al.).
struct TraversalFilter;

impl FilterStage for TraversalFilter {
    fn name(&self) -> &'static str {
        "traversal-sed"
    }

    fn kind(&self) -> StageKind {
        StageKind::LowerBound
    }

    fn cost(&self) -> u32 {
        32 // O(τ·n) banded DP, twice (preorder + postorder)
    }

    #[inline]
    fn apply(
        &self,
        a: &VerifyData,
        b: &VerifyData,
        tau: u32,
        scratch: &mut VerifyScratch,
    ) -> StageVerdict {
        // Empty strings = input built without this stage: no decision
        // (a one-sided empty string would inflate the SED bound).
        if a.traversals.preorder.is_empty() || b.traversals.preorder.is_empty() {
            return StageVerdict::Continue;
        }
        if traversal_within_with(&a.traversals, &b.traversals, tau, &mut scratch.sed) {
            StageVerdict::Continue
        } else {
            StageVerdict::Reject
        }
    }
}

/// The verification engine: one filter chain, one exact-TED engine, and
/// the per-stage counters — everything one verifier thread needs.
///
/// Entry points create one engine per verifying thread (the sequential
/// joins own one; the parallel and sharded pools build one per worker)
/// and fold the counters into the run's [`JoinStats`] at the end with
/// [`VerifyEngine::fold_into`].
///
/// ## Adaptive reordering
///
/// When [`AdaptiveConfig::reorder_chain`] is set (via
/// [`VerifyEngine::new`]), the engine re-ranks its **lower-bound**
/// stages every `reorder_every` checks by observed kills-per-cost:
/// `(rejections / evaluations) / cost`. Upper-bound stages keep their
/// chain slots — an accept and a reject can never both fire on the same
/// pair (both bounds are sound, so they would contradict each other),
/// which is exactly why permuting the lower bounds among themselves
/// changes neither the decision for any pair nor the number of pairs
/// that fall through to exact TED. Only *which* stage gets credited
/// with a kill (and the filter work spent) depends on the order.
#[derive(Debug)]
pub struct VerifyEngine {
    tau: u32,
    /// Stages in canonical (cheapest-first construction) order; counters
    /// stay aligned with this vector no matter how evaluation is
    /// reordered.
    stages: Vec<Box<dyn FilterStage>>,
    /// Evaluation order: a permutation of `0..stages.len()`.
    order: Vec<usize>,
    /// Pairs resolved per stage, aligned with `stages`.
    counts: Vec<u64>,
    /// Pairs each stage was evaluated on, aligned with `stages` (the
    /// kill-rate denominator).
    seen: Vec<u64>,
    /// Checks between adaptive reorders; `0` = static chain.
    reorder_every: u32,
    /// Checks since the last reorder.
    since_reorder: u32,
    /// Total lower-bound rejections (sum over lower stages).
    lower_skips: u64,
    /// Total upper-bound admissions (sum over upper stages).
    early_accepts: u64,
    /// Whether to stopwatch each stage evaluation. Sampled from
    /// [`tsj_obs::stage_timings_enabled`] at construction (off by
    /// default: the `Instant` stamps would dominate the O(1) stages).
    time_stages: bool,
    /// Accumulated per-stage wall time in nanoseconds, aligned with
    /// `stages`; only written when `time_stages` is set.
    stage_ns: Vec<u64>,
    /// One-shot guard so [`VerifyEngine::fold_into`] publishes the stage
    /// timings to the global registry exactly once per engine.
    timings_flushed: Cell<bool>,
    /// The engine-owned scratch arena stages compute out of; per-worker
    /// engines therefore need no locking and no per-pair allocation.
    scratch: VerifyScratch,
    ted: TedEngine,
}

impl std::fmt::Debug for dyn FilterStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FilterStage")
            .field("name", &self.name())
            .field("kind", &self.kind())
            .finish()
    }
}

impl VerifyEngine {
    /// Engine for threshold `tau` with the chain configured in
    /// `config.verify`, honoring `config.adaptive` (chain reordering).
    pub fn new(tau: u32, config: &PartSjConfig) -> VerifyEngine {
        let mut engine = VerifyEngine::with_filters(tau, &config.verify);
        if config.adaptive.reorder_chain {
            engine.reorder_every = match config.adaptive.reorder_every {
                0 => AdaptiveConfig::FULL.reorder_every,
                n => n,
            };
        }
        engine
    }

    /// Engine for threshold `tau` with an explicit stage selection and a
    /// **static** chain. The chain is assembled cheapest-first regardless
    /// of the order the flags are written.
    pub fn with_filters(tau: u32, filters: &VerifyConfig) -> VerifyEngine {
        let mut stages: Vec<Box<dyn FilterStage>> = Vec::new();
        if filters.size {
            stages.push(Box::new(SizeFilter));
        }
        if filters.shape_accept {
            stages.push(Box::new(ShapeAcceptFilter));
        }
        if filters.histogram {
            stages.push(Box::new(HistogramFilter));
        }
        if filters.traversal {
            stages.push(Box::new(TraversalFilter));
        }
        let counts = vec![0; stages.len()];
        let seen = vec![0; stages.len()];
        let stage_ns = vec![0; stages.len()];
        let order = (0..stages.len()).collect();
        let time_stages = tsj_obs::stage_timings_enabled() && tsj_obs::global().is_enabled();
        VerifyEngine {
            tau,
            stages,
            order,
            counts,
            seen,
            reorder_every: 0,
            since_reorder: 0,
            lower_skips: 0,
            early_accepts: 0,
            time_stages,
            stage_ns,
            timings_flushed: Cell::new(false),
            scratch: VerifyScratch::new(),
            ted: TedEngine::unit(),
        }
    }

    /// The threshold the engine verifies against.
    pub fn tau(&self) -> u32 {
        self.tau
    }

    /// Tightens (or relaxes) the verification threshold in place. The
    /// top-k join mode shrinks τ to the current k-th best distance as
    /// its result heap fills; counters and any learned stage order carry
    /// over unchanged.
    pub fn set_tau(&mut self, tau: u32) {
        self.tau = tau;
    }

    /// Stage names in canonical (construction) order — stable under
    /// adaptive reordering; counters and [`fold_into`] report in this
    /// order.
    ///
    /// [`fold_into`]: VerifyEngine::fold_into
    pub fn stage_names(&self) -> Vec<&'static str> {
        self.stages.iter().map(|s| s.name()).collect()
    }

    /// Stage names in the **current evaluation order** — equals
    /// [`VerifyEngine::stage_names`] until an adaptive reorder promotes
    /// a more effective lower bound.
    pub fn evaluation_order(&self) -> Vec<&'static str> {
        self.order.iter().map(|&i| self.stages[i].name()).collect()
    }

    /// Exact TED computations performed so far.
    pub fn ted_calls(&self) -> u64 {
        self.ted.computations()
    }

    /// Pairs admitted by an upper bound without exact TED so far.
    pub fn early_accepts(&self) -> u64 {
        self.early_accepts
    }

    /// Pairs rejected by a lower bound so far.
    pub fn prefilter_skips(&self) -> u64 {
        self.lower_skips
    }

    /// Zeroes every work counter (stage counts, TED calls, skip/accept
    /// totals) while keeping the learned evaluation order and all scratch
    /// capacity. Callers that reuse one engine across independent runs
    /// (e.g. repeated scratch joins) reset between runs so each run's
    /// [`VerifyEngine::fold_into`] reports only its own work.
    pub fn reset_counters(&mut self) {
        self.counts.fill(0);
        self.seen.fill(0);
        self.stage_ns.fill(0);
        self.since_reorder = 0;
        self.lower_skips = 0;
        self.early_accepts = 0;
        self.ted.reset_counters();
    }

    /// Membership check: `Some(d)` iff `TED(a, b) ≤ τ`, where `d ≤ τ` is
    /// a distance certificate — exact unless an [`AcceptWithin`] upper
    /// bound resolved the pair first. Joins and streaming monitors (which
    /// report pair *sets*) use this; use [`VerifyEngine::check_exact`]
    /// when the caller surfaces the distance value.
    ///
    /// [`AcceptWithin`]: StageVerdict::AcceptWithin
    pub fn check(&mut self, a: &VerifyData, b: &VerifyData) -> Option<u32> {
        let decision = self.decide(a, b, false);
        self.tick();
        decision
    }

    /// Like [`VerifyEngine::check`] but the returned distance is always
    /// **exact**: upper-bound stages only short-circuit when their
    /// certificate is provably tight ([`StageVerdict::AcceptExact`]);
    /// otherwise the pair falls through to the exact TED DP. Similarity
    /// search and the top-k join use this to report `(tree, distance)`
    /// hits.
    pub fn check_exact(&mut self, a: &VerifyData, b: &VerifyData) -> Option<u32> {
        let decision = self.decide(a, b, true);
        self.tick();
        decision
    }

    /// The shared chain walk behind both check flavours. With `exact`,
    /// an [`StageVerdict::AcceptWithin`] certificate is not enough to
    /// short-circuit and the pair falls through to the exact DP.
    fn decide(&mut self, a: &VerifyData, b: &VerifyData, exact: bool) -> Option<u32> {
        for pos in 0..self.order.len() {
            let idx = self.order[pos];
            self.seen[idx] += 1;
            let started = self.time_stages.then(Instant::now);
            let verdict = self.stages[idx].apply(a, b, self.tau, &mut self.scratch);
            if let Some(t) = started {
                self.stage_ns[idx] += t.elapsed().as_nanos() as u64;
            }
            match verdict {
                StageVerdict::Reject => {
                    self.counts[idx] += 1;
                    self.lower_skips += 1;
                    return None;
                }
                StageVerdict::AcceptExact(d) => {
                    self.counts[idx] += 1;
                    self.early_accepts += 1;
                    return Some(d);
                }
                StageVerdict::AcceptWithin(d) if !exact => {
                    self.counts[idx] += 1;
                    self.early_accepts += 1;
                    return Some(d);
                }
                StageVerdict::AcceptWithin(_) | StageVerdict::Continue => {}
            }
        }
        let d = self.ted.distance(&a.prepared, &b.prepared);
        (d <= self.tau).then_some(d)
    }

    /// Counts one completed check toward the adaptive reorder period.
    #[inline]
    fn tick(&mut self) {
        if self.reorder_every == 0 {
            return;
        }
        self.since_reorder += 1;
        if self.since_reorder >= self.reorder_every {
            self.since_reorder = 0;
            self.reorder_stages();
        }
    }

    /// Re-ranks the lower-bound stages among the chain slots they
    /// currently occupy, best observed kills-per-cost first (ties break
    /// toward canonical order, keeping the permutation deterministic).
    /// Upper-bound stages keep their slots.
    fn reorder_stages(&mut self) {
        let mut slots: Vec<usize> = Vec::with_capacity(self.order.len());
        let mut movers: Vec<usize> = Vec::with_capacity(self.order.len());
        for (pos, &idx) in self.order.iter().enumerate() {
            if self.stages[idx].kind() == StageKind::LowerBound {
                slots.push(pos);
                movers.push(idx);
            }
        }
        movers.sort_by(|&x, &y| {
            self.kill_rate(y)
                .partial_cmp(&self.kill_rate(x))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(x.cmp(&y))
        });
        for (slot, idx) in slots.into_iter().zip(movers) {
            self.order[slot] = idx;
        }
    }

    /// Observed kills-per-cost of a stage: `(rejections / evaluations) /
    /// cost`, `0` before the stage has seen any pair.
    fn kill_rate(&self, idx: usize) -> f64 {
        if self.seen[idx] == 0 {
            return 0.0;
        }
        let rate = self.counts[idx] as f64 / self.seen[idx] as f64;
        rate / f64::from(self.stages[idx].cost().max(1))
    }

    /// Folds this engine's counters into `stats`: TED calls, total
    /// lower-bound skips, upper-bound accepts, and the per-stage
    /// breakdown. Stage counters merge **by stage name**, so engines
    /// with differently ordered — or differently enabled — chains fold
    /// into one coherent breakdown (adaptive workers may each have
    /// learned a different order). First-folded engines establish the
    /// display order of stages not yet present.
    pub fn fold_into(&self, stats: &mut JoinStats) {
        stats.ted_calls += self.ted.computations();
        stats.prefilter_skips += self.lower_skips;
        stats.early_accepts += self.early_accepts;
        if stats.stage_counts.is_empty() {
            // One exact allocation instead of push-doubling growth — the
            // stage-count rows are the only allocation a recycled join
            // makes per call.
            stats.stage_counts.reserve_exact(self.stages.len());
        }
        for (idx, stage) in self.stages.iter().enumerate() {
            let name = stage.name();
            match stats.stage_counts.iter_mut().find(|c| c.stage == name) {
                Some(slot) => slot.count += self.counts[idx],
                None => stats.stage_counts.push(StageCount {
                    stage: name,
                    count: self.counts[idx],
                }),
            }
        }
        // Publish stage timings (profile mode) exactly once per engine —
        // fold_into may be called again on a still-live engine.
        if self.time_stages && !self.timings_flushed.replace(true) {
            let obs = tsj_obs::global();
            for (idx, stage) in self.stages.iter().enumerate() {
                obs.counter(&tsj_obs::labeled(
                    "tsj_core_verify_stage_ns_total",
                    "stage",
                    stage.name(),
                ))
                .add(self.stage_ns[idx]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsj_tree::{parse_bracket, LabelInterner};

    fn data(specs: &[&str]) -> Vec<VerifyData> {
        let mut labels = LabelInterner::new();
        specs
            .iter()
            .map(|s| VerifyData::new(&parse_bracket(s, &mut labels).unwrap()))
            .collect()
    }

    #[test]
    fn default_chain_order_is_cheapest_first() {
        let engine = VerifyEngine::with_filters(1, &VerifyConfig::default());
        assert_eq!(
            engine.stage_names(),
            vec!["size", "shape-accept", "label-hist", "traversal-sed"]
        );
        let empty = VerifyEngine::with_filters(1, &VerifyConfig::NONE);
        assert!(empty.stage_names().is_empty());
    }

    #[test]
    fn identical_trees_accept_without_ted() {
        let d = data(&["{a{b}{c}}", "{a{b}{c}}"]);
        let mut engine = VerifyEngine::with_filters(0, &VerifyConfig::default());
        assert_eq!(engine.check(&d[0], &d[1]), Some(0));
        assert_eq!(engine.ted_calls(), 0);
        assert_eq!(engine.early_accepts(), 1);
    }

    #[test]
    fn rename_only_pair_accepts_exactly() {
        let d = data(&["{a{b}{c}}", "{a{b}{z}}"]);
        let mut engine = VerifyEngine::with_filters(1, &VerifyConfig::default());
        // One rename: exact certificate, both check flavours short-circuit.
        assert_eq!(engine.check_exact(&d[0], &d[1]), Some(1));
        assert_eq!(engine.ted_calls(), 0);
    }

    #[test]
    fn inexact_certificate_falls_through_in_check_exact() {
        // Path a→b→c vs b→c→a: same shape, hamming 3, but TED = 2
        // (delete the root `a`, insert `a` below `c`).
        let d = data(&["{a{b{c}}}", "{b{c{a}}}"]);
        let mut engine = VerifyEngine::with_filters(3, &VerifyConfig::default());
        assert_eq!(engine.check(&d[0], &d[1]), Some(3), "upper certificate");
        assert_eq!(engine.ted_calls(), 0);
        assert_eq!(engine.check_exact(&d[0], &d[1]), Some(2), "exact distance");
        assert_eq!(engine.ted_calls(), 1);
    }

    #[test]
    fn sed_accept_would_be_unsound() {
        // Figure 3 of the paper: max(SED(pre), SED(post)) = 2 < TED = 3.
        // An "exact SED ≤ τ accepts" stage would report a false pair at
        // τ = 2; the shape-accept stage must not (shapes differ here).
        let d = data(&["{1{2}{1{3}}}", "{1{2{1}{3}}}"]);
        assert!(tsj_ted::traversal_within(
            &d[0].traversals,
            &d[1].traversals,
            2
        ));
        let mut engine = VerifyEngine::with_filters(2, &VerifyConfig::default());
        assert_eq!(engine.check(&d[0], &d[1]), None);
        assert_eq!(engine.ted_calls(), 1, "only exact TED may decide");
    }

    #[test]
    fn size_rejects_before_any_work() {
        let d = data(&["{a{b}{c}{d}{e}}", "{a}"]);
        let mut engine = VerifyEngine::with_filters(2, &VerifyConfig::default());
        assert_eq!(engine.check(&d[0], &d[1]), None);
        assert_eq!(engine.ted_calls(), 0);
        assert_eq!(engine.prefilter_skips(), 1);
    }

    #[test]
    fn histogram_rejects_disjoint_labels() {
        // Same size and shape-compatible, but entirely different labels:
        // L1 = 6 ⇒ bound 3 > τ = 2 (traversal never runs — its stage
        // count stays 0).
        let d = data(&["{a{b}{c}}", "{x{y}{z}}"]);
        let mut engine = VerifyEngine::with_filters(2, &VerifyConfig::default());
        assert_eq!(engine.check(&d[0], &d[1]), None);
        assert_eq!(engine.ted_calls(), 0);
        let mut stats = JoinStats::default();
        engine.fold_into(&mut stats);
        let hist = stats
            .stage_counts
            .iter()
            .find(|c| c.stage == "label-hist")
            .unwrap();
        assert_eq!(hist.count, 1);
    }

    #[test]
    fn disabled_chain_is_pure_ted() {
        let d = data(&["{a{b}{c}}", "{a{b}{c}}", "{q{r}{s}}"]);
        let mut engine = VerifyEngine::with_filters(1, &VerifyConfig::NONE);
        assert_eq!(engine.check(&d[0], &d[1]), Some(0));
        assert_eq!(engine.check(&d[0], &d[2]), None);
        assert_eq!(engine.ted_calls(), 2, "every pair pays exact TED");
        let mut stats = JoinStats::default();
        engine.fold_into(&mut stats);
        assert!(stats.stage_counts.is_empty());
        assert_eq!(stats.ted_calls, 2);
    }

    #[test]
    fn fold_into_merges_worker_engines() {
        let d = data(&["{a{b}{c}}", "{a{b}{c}}", "{a{b}{z}}", "{m{n{o{p{q}}}}}"]);
        let mut stats = JoinStats::default();
        let mut w1 = VerifyEngine::with_filters(1, &VerifyConfig::default());
        let mut w2 = VerifyEngine::with_filters(1, &VerifyConfig::default());
        w1.check(&d[0], &d[1]); // shape-accept
        w2.check(&d[0], &d[3]); // size reject
        w2.check(&d[1], &d[2]); // shape-accept (rename)
        w1.fold_into(&mut stats);
        w2.fold_into(&mut stats);
        assert_eq!(stats.early_accepts, 2);
        assert_eq!(stats.prefilter_skips, 1);
        assert_eq!(stats.stage_counts.len(), 4);
        assert_eq!(stats.stage_counts[0].count, 1, "size");
        assert_eq!(stats.stage_counts[1].count, 2, "shape-accept");
    }

    #[test]
    fn fold_into_merges_heterogeneous_chains_by_name() {
        // Regression for the positional zip: worker chains that differ
        // in enabled subset (or learned order) must merge by stage name,
        // not by chain position.
        let d = data(&["{a{b}{c}}", "{x{y}{z}}", "{m{n{o{p{q}}}}}"]);
        let mut stats = JoinStats::default();
        // Worker 1: full default chain. Histogram rejects the
        // disjoint-label pair.
        let mut w1 = VerifyEngine::with_filters(1, &VerifyConfig::default());
        assert_eq!(w1.check(&d[0], &d[1]), None);
        // Worker 2: traversal-only chain — its single counter sits at
        // position 0, where w1 keeps "size".
        let trav_only = VerifyConfig {
            size: false,
            shape_accept: false,
            histogram: false,
            traversal: true,
        };
        let mut w2 = VerifyEngine::with_filters(1, &trav_only);
        assert_eq!(w2.check(&d[0], &d[1]), None, "SED rejects at τ=1");
        w1.fold_into(&mut stats);
        w2.fold_into(&mut stats);
        assert_eq!(stats.prefilter_skips, 2);
        let by_name = |name: &str| {
            stats
                .stage_counts
                .iter()
                .find(|c| c.stage == name)
                .map(|c| c.count)
        };
        assert_eq!(by_name("size"), Some(0), "w2's kill must not land here");
        assert_eq!(by_name("label-hist"), Some(1));
        assert_eq!(by_name("traversal-sed"), Some(1));
        let total: u64 = stats.stage_counts.iter().map(|c| c.count).sum();
        assert_eq!(total, stats.prefilter_skips + stats.early_accepts);
    }

    #[test]
    fn adaptive_reorder_promotes_the_killing_stage() {
        use crate::config::{AdaptiveConfig, PartSjConfig};
        // Same size, same label multiset, same (chain) shape with
        // hamming > τ: only traversal-SED can reject these pairs.
        let d = data(&["{a{b{c{d{e}}}}}", "{e{d{c{b{a}}}}}"]);
        let config = PartSjConfig {
            adaptive: AdaptiveConfig {
                reorder_chain: true,
                reorder_every: 4,
                ..AdaptiveConfig::OFF
            },
            ..Default::default()
        };
        let mut engine = VerifyEngine::new(1, &config);
        assert_eq!(engine.evaluation_order()[0], "size");
        for _ in 0..4 {
            assert_eq!(engine.check(&d[0], &d[1]), None);
        }
        // After the reorder window, the only stage with observed kills
        // leads the evaluation order; canonical reporting order is
        // untouched.
        assert_eq!(engine.evaluation_order()[0], "traversal-sed");
        assert_eq!(engine.stage_names()[0], "size");
        // Upper-bound stages keep their slot.
        assert_eq!(engine.evaluation_order()[1], "shape-accept");
    }

    #[test]
    fn adaptive_engine_matches_static_decisions() {
        use crate::config::{AdaptiveConfig, PartSjConfig};
        let d = data(&[
            "{a{b{c{d{e}}}}}",
            "{e{d{c{b{a}}}}}",
            "{a{b}{c}}",
            "{a{b}{z}}",
            "{x{y}{z}}",
            "{m{n{o{p{q}}}}}",
        ]);
        let adaptive_cfg = PartSjConfig {
            adaptive: AdaptiveConfig {
                reorder_chain: true,
                reorder_every: 2,
                ..AdaptiveConfig::OFF
            },
            ..Default::default()
        };
        let mut fixed = VerifyEngine::new(1, &PartSjConfig::default());
        let mut adaptive = VerifyEngine::new(1, &adaptive_cfg);
        for i in 0..d.len() {
            for j in (i + 1)..d.len() {
                assert_eq!(
                    fixed.check(&d[i], &d[j]),
                    adaptive.check(&d[i], &d[j]),
                    "membership must not depend on stage order ({i}, {j})"
                );
            }
        }
        // Sound bounds never contradict, so the totals — not just the
        // pair decisions — are order-independent; only the per-stage
        // attribution may differ.
        assert_eq!(fixed.ted_calls(), adaptive.ted_calls());
        assert_eq!(fixed.prefilter_skips(), adaptive.prefilter_skips());
        assert_eq!(fixed.early_accepts(), adaptive.early_accepts());
    }

    #[test]
    fn set_tau_retunes_a_live_engine() {
        let d = data(&["{a{b}{c}}", "{x{y}{z}}"]);
        let mut engine = VerifyEngine::with_filters(5, &VerifyConfig::default());
        assert!(engine.check_exact(&d[0], &d[1]).is_some());
        engine.set_tau(1);
        assert_eq!(engine.tau(), 1);
        assert_eq!(engine.check_exact(&d[0], &d[1]), None, "tightened τ");
    }

    #[test]
    fn for_config_skips_disabled_stage_inputs() {
        let mut labels = LabelInterner::new();
        let tree = parse_bracket("{a{b}{c}}", &mut labels).unwrap();
        let bare = VerifyData::for_config(&tree, &VerifyConfig::NONE);
        assert!(bare.histogram.is_empty());
        assert!(bare.shape.is_empty());
        assert!(bare.traversals.preorder.is_empty());
        // Stage-less inputs under a full chain: every stage must abstain
        // (not mis-decide on the empty vectors) and exact TED decides.
        let other = VerifyData::for_config(
            &parse_bracket("{a{b}{z}}", &mut labels).unwrap(),
            &VerifyConfig::NONE,
        );
        let mut engine = VerifyEngine::with_filters(1, &VerifyConfig::default());
        assert_eq!(engine.check(&bare, &other), Some(1));
        assert_eq!(engine.ted_calls(), 1);
        assert_eq!(engine.early_accepts(), 0);
        assert_eq!(engine.prefilter_skips(), 0);
    }

    #[test]
    fn shape_hash_distinguishes_shapes_sharing_labels() {
        let d = data(&["{a{b}{c}}", "{a{b{c}}}"]);
        assert_ne!(d[0].shape_hash, d[1].shape_hash);
        assert_ne!(d[0].shape, d[1].shape);
        // Same labels, different shape: stage must not accept.
        let mut engine = VerifyEngine::with_filters(2, &VerifyConfig::default());
        assert_eq!(engine.check(&d[0], &d[1]), Some(2));
        assert_eq!(engine.ted_calls(), 1);
    }
}
