//! A frozen catalog serving indexed-left joins — the "reference catalog
//! × incoming feed" regime: freeze the catalog's sharded index **once**,
//! persist it as a snapshot, and serve every subsequent probe batch from
//! the loaded snapshot instead of rebuilding the index per join.
//!
//! The demo walks the whole life cycle:
//!
//! 1. **Freeze** a generated reference collection at `τ = 3`.
//! 2. **Save** the snapshot (versioned, per-section checksummed binary).
//! 3. **Load** it back, as a fresh server process would.
//! 4. **Serve** probe batches at *per-query* thresholds `τ ∈ {1, 2, 3}`
//!    from the one snapshot, plus single-probe `query` lookups — and
//!    cross-check one batch against a from-scratch `sharded_rs_join`.
//!
//! ```bash
//! cargo run --release --example catalog_server
//! ```

use tree_similarity_join::prelude::*;

fn main() {
    let config = PartSjConfig::default();
    let shard_cfg = ShardConfig::with_shards(4);
    let frozen_tau = 3;

    // The reference side: a catalog of documents that changes rarely.
    let catalog_trees = swissprot_like(400, 2015);
    println!(
        "catalog: {} trees, avg size {:.1}",
        catalog_trees.len(),
        catalog_trees.iter().map(|t| t.len()).sum::<usize>() as f64 / catalog_trees.len() as f64
    );

    // 1. Freeze: partition + index once, at the largest threshold any
    //    query will ever need.
    let start = std::time::Instant::now();
    let catalog = Catalog::freeze(
        catalog_trees.clone(),
        LabelInterner::new(),
        frozen_tau,
        &config,
        &shard_cfg,
    );
    println!(
        "freeze: tau = {}, {} shards, {} live postings in {:?}",
        catalog.tau(),
        catalog.shard_count(),
        catalog.index().live_postings(),
        start.elapsed()
    );

    // 2. Save the snapshot.
    let path = std::env::temp_dir().join("catalog_server_demo.tsjcat");
    let start = std::time::Instant::now();
    catalog.save(&path).expect("save snapshot");
    let file_len = std::fs::metadata(&path).expect("snapshot metadata").len();
    println!(
        "save: {} bytes to {} in {:?}",
        file_len,
        path.display(),
        start.elapsed()
    );

    // 3. Load it back — this is all a serving process has to do; no
    //    partitioning, no index build.
    let start = std::time::Instant::now();
    let served = Catalog::load(&path).expect("load snapshot");
    println!(
        "load: {} trees, {} shards in {:?}",
        served.len(),
        served.shard_count(),
        start.elapsed()
    );

    // 4. Serve batches at per-query thresholds from the one snapshot.
    //    The feed mixes fresh documents with lightly edited revisions of
    //    catalog entries — the near-duplicates a serving join exists to
    //    find.
    use tree_similarity_join::datagen::random_edit_script;
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
    let mut feed = swissprot_like(60, 7);
    for (i, original) in catalog_trees.iter().enumerate().step_by(7).take(60) {
        let k = (i % frozen_tau as usize) + 1;
        let (revision, _) = random_edit_script(original, k, &mut rng, 64);
        feed.push(revision);
    }
    for tau in 1..=frozen_tau {
        let start = std::time::Instant::now();
        let outcome = served
            .join(&feed, tau, &config, &shard_cfg)
            .expect("tau within the frozen ceiling");
        println!(
            "serve: tau = {tau} -> {} pairs from {} candidates ({} TED calls) in {:?}",
            outcome.pairs.len(),
            outcome.stats.candidates,
            outcome.stats.ted_calls,
            start.elapsed()
        );
    }

    // Cross-check one batch against building the index from scratch.
    let direct = sharded_rs_join(&catalog_trees, &feed, frozen_tau, &config, &shard_cfg);
    let served_full = served
        .join(&feed, frozen_tau, &config, &shard_cfg)
        .expect("frozen tau");
    assert_eq!(
        served_full.pairs, direct.pairs,
        "snapshot-served join must be bit-identical to the direct join"
    );
    println!(
        "cross-check: snapshot join == fresh sharded_rs_join ({} pairs)",
        direct.pairs.len()
    );

    // Single-probe lookups (exact distances), SearchIndex semantics.
    // feed[60] is the first edited revision, so it has catalog neighbors.
    let probe = &feed[60];
    let hits = served.query(probe, 2, &config).expect("query");
    println!(
        "query: probe 60 has {} neighbors within tau = 2",
        hits.len()
    );
    for (tree, distance) in hits.iter().take(5) {
        println!("  catalog[{tree}] at distance {distance}");
    }

    // A threshold above the frozen ceiling is a typed error, not a
    // silently incomplete result.
    let err = served
        .join(&feed, frozen_tau + 1, &config, &shard_cfg)
        .unwrap_err();
    println!("over-ceiling query rejected: {err}");

    std::fs::remove_file(&path).ok();
}
