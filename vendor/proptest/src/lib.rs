//! Offline-vendored minimal subset of the `proptest` API.
//!
//! The build container has no access to crates.io, so this path crate
//! stands in for the registry crate. It supports the surface the
//! workspace's property tests use: the [`proptest!`] macro (with an
//! optional `#![proptest_config(…)]` header), [`prop_assert!`],
//! [`prop_assert_eq!`], [`prop_assume!`], [`strategy::any`] and integer
//! ranges as strategies. Cases are generated from a deterministic
//! per-case seed; there is **no shrinking** — a failure reports the
//! case number and seed so it can be replayed. Swap this for the real
//! `proptest` by pointing the workspace dependency back at the registry.

#[doc(hidden)]
pub use rand as __rand;

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::{Rng, RngCore};

    /// A source of generated values for one test-case parameter.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    /// Types with a canonical whole-domain strategy (`proptest`'s
    /// `Arbitrary`).
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen::<f64>()
        }
    }

    /// Strategy over the full domain of `T`.
    pub struct Any<T>(core::marker::PhantomData<T>);

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod test_runner {
    //! Runner configuration.

    /// Subset of `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. Each `fn name(arg in strategy, …) { body }`
/// item becomes a `#[test]` that runs `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::strategy::Strategy as _;
                let config: $crate::test_runner::Config = $config;
                for case in 0..config.cases {
                    // Deterministic per-test, per-case seed (FNV-1a over
                    // the test name, mixed with the case number).
                    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
                    for byte in concat!(module_path!(), "::", stringify!($name)).bytes() {
                        seed = (seed ^ byte as u64).wrapping_mul(0x0000_0100_0000_01B3);
                    }
                    seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1));
                    let mut rng =
                        <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(seed);
                    let outcome: ::core::result::Result<(), ::std::string::String> = (|| {
                        $(let $arg = ($strat).generate(&mut rng);)+
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(message) = outcome {
                        panic!(
                            "property {} failed at case {case} (seed {seed:#x}): {message}",
                            stringify!($name),
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// `assert!` that fails the surrounding property case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// `assert_eq!` that fails the surrounding property case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`): {}",
            stringify!($left),
            stringify!($right),
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// `assert_ne!` that fails the surrounding property case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(x in 3u32..10, y in any::<u64>()) {
            prop_assert!((3..10).contains(&x));
            let _ = y;
        }

        #[test]
        fn assume_skips(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in any::<u8>()) {
            prop_assert!(u32::from(x) < 256);
        }
    }

    #[test]
    fn failure_reports_case_and_seed() {
        // Expand what proptest! generates for an always-failing body and
        // check the panic message shape.
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(1))]
                fn always_fails(x in 0u32..10) {
                    prop_assert!(x > 100, "x was {x}");
                }
            }
            always_fails();
        });
        let message = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains("always_fails"), "{message}");
        assert!(message.contains("case 0"), "{message}");
    }
}
