//! Bench-regression comparison: diff a fresh `CRITERION_JSON_OUT` run
//! against a checked-in baseline (`BENCH_*.json`) by median.
//!
//! Two input shapes are understood, sniffed automatically:
//!
//! * **JSONL** — what the vendored criterion stub writes: one
//!   `{"name": …, "median_ns": …}` object per line;
//! * **baseline files** — the repo's `BENCH_*.json`: a single object
//!   whose `"benchmarks"` member maps series name to an object with a
//!   `"median_ns"` member (other members are ignored).
//!
//! Everything here is a hand-rolled minimal JSON reader because the
//! build container has no serde; it supports exactly the JSON subset
//! those files use (objects, arrays, strings with escapes, numbers,
//! booleans, null).

use std::collections::BTreeMap;

/// A parsed JSON value (minimal subset).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if any.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct JsonReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonReader<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("invalid \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte sequences pass
                    // through untouched).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Parses one complete JSON value; trailing whitespace is allowed,
/// trailing content is an error.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut reader = JsonReader {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = reader.value()?;
    reader.skip_ws();
    if reader.pos != reader.bytes.len() {
        return Err(format!("trailing content at byte {}", reader.pos));
    }
    Ok(value)
}

/// Extracts `name → median_ns` from either supported shape (see the
/// module docs). Duplicate names keep the *last* occurrence, matching
/// the stub's append semantics within a run.
pub fn parse_measurements(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let trimmed = text.trim();
    if trimmed.is_empty() {
        return Err("empty measurements input".into());
    }
    // Whole-file parse first: the BENCH_*.json baseline shape.
    if let Ok(value) = parse_json(trimmed) {
        if let Some(Json::Obj(benchmarks)) = value.get("benchmarks") {
            let mut out = BTreeMap::new();
            for (name, entry) in benchmarks {
                // Two baseline generations: `"name": 123.4` (BENCH_seed)
                // and `"name": {"median_ns": 123.4, …}` (later PRs).
                let median = entry
                    .as_f64()
                    .or_else(|| entry.get("median_ns").and_then(Json::as_f64))
                    .ok_or_else(|| format!("benchmark {name:?} lacks a numeric median_ns"))?;
                out.insert(name.clone(), median);
            }
            return Ok(out);
        }
    }
    // Otherwise: JSONL, one object per line.
    let mut out = BTreeMap::new();
    for (lineno, line) in trimmed.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let value = parse_json(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let name = value
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing name", lineno + 1))?;
        let median = value
            .get("median_ns")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("line {}: missing median_ns", lineno + 1))?;
        out.insert(name.to_string(), median);
    }
    if out.is_empty() {
        return Err("no measurements found".into());
    }
    Ok(out)
}

/// One series present in both runs, with its relative drift.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDelta {
    /// Series name (`group/function/param`).
    pub name: String,
    /// Baseline median, nanoseconds.
    pub baseline_ns: f64,
    /// Current median, nanoseconds.
    pub current_ns: f64,
    /// `(current − baseline) / baseline × 100`; positive = slower.
    pub delta_pct: f64,
}

impl BenchDelta {
    /// Whether this series got slower by more than `tolerance_pct`.
    pub fn is_regression(&self, tolerance_pct: f64) -> bool {
        self.delta_pct > tolerance_pct
    }
}

/// The full diff of two measurement sets.
#[derive(Debug, Clone, Default)]
pub struct BenchComparison {
    /// Series in both sets, name-sorted.
    pub deltas: Vec<BenchDelta>,
    /// Series only in the baseline (vanished from the current run).
    pub missing: Vec<String>,
    /// Series only in the current run (no baseline yet).
    pub added: Vec<String>,
}

impl BenchComparison {
    /// Series slower than `tolerance_pct`, name-sorted.
    pub fn regressions(&self, tolerance_pct: f64) -> Vec<&BenchDelta> {
        self.deltas
            .iter()
            .filter(|d| d.is_regression(tolerance_pct))
            .collect()
    }
}

/// Diffs `current` against `baseline`, keeping only series whose name
/// contains `filter` (when given).
pub fn compare(
    baseline: &BTreeMap<String, f64>,
    current: &BTreeMap<String, f64>,
    filter: Option<&str>,
) -> BenchComparison {
    let keep = |name: &str| filter.is_none_or(|f| name.contains(f));
    let mut cmp = BenchComparison::default();
    for (name, &baseline_ns) in baseline {
        if !keep(name) {
            continue;
        }
        match current.get(name) {
            Some(&current_ns) => cmp.deltas.push(BenchDelta {
                name: name.clone(),
                baseline_ns,
                current_ns,
                delta_pct: if baseline_ns > 0.0 {
                    (current_ns - baseline_ns) / baseline_ns * 100.0
                } else {
                    0.0
                },
            }),
            None => cmp.missing.push(name.clone()),
        }
    }
    for name in current.keys() {
        if keep(name) && !baseline.contains_key(name) {
            cmp.added.push(name.clone());
        }
    }
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_jsonl() {
        let text = "\
{\"name\": \"a/b/1\", \"median_ns\": 120.5}\n\
{\"name\": \"a/b/2\", \"median_ns\": 300.0}\n";
        let m = parse_measurements(text).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m["a/b/1"], 120.5);
    }

    #[test]
    fn parses_baseline_shape() {
        let text = r#"{
            "note": "context — with escapes",
            "benchmarks": {
                "join/tau/PRT/1": { "median_ns": 1844.5, "before_ns": 1894.4, "delta_pct": -2.6 },
                "join/tau/PRT/3": { "median_ns": 4177.0 }
            }
        }"#;
        let m = parse_measurements(text).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m["join/tau/PRT/1"], 1844.5);
    }

    #[test]
    fn real_checked_in_baselines_parse() {
        for file in [
            "BENCH_seed.json",
            "BENCH_pr2.json",
            "BENCH_pr3.json",
            "BENCH_pr4.json",
            "BENCH_pr5.json",
            "BENCH_pr6.json",
        ] {
            let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../..").to_string() + "/" + file;
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!("reading {path}: {e}");
            });
            let m = parse_measurements(&text).unwrap_or_else(|e| {
                panic!("parsing {file}: {e}");
            });
            assert!(!m.is_empty(), "{file} has no benchmarks");
        }
    }

    #[test]
    fn compare_flags_regressions_and_membership() {
        let baseline: BTreeMap<String, f64> = [
            ("a".to_string(), 100.0),
            ("b".to_string(), 100.0),
            ("gone".to_string(), 50.0),
        ]
        .into();
        let current: BTreeMap<String, f64> = [
            ("a".to_string(), 130.0),
            ("b".to_string(), 90.0),
            ("new".to_string(), 10.0),
        ]
        .into();
        let cmp = compare(&baseline, &current, None);
        assert_eq!(cmp.missing, vec!["gone"]);
        assert_eq!(cmp.added, vec!["new"]);
        assert_eq!(cmp.deltas.len(), 2);
        let regressions = cmp.regressions(25.0);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].name, "a");
        assert!((regressions[0].delta_pct - 30.0).abs() < 1e-9);
        // A ±25% band keeps a 30% regression out only at higher tolerance.
        assert!(cmp.regressions(35.0).is_empty());
    }

    #[test]
    fn filter_restricts_names() {
        let baseline: BTreeMap<String, f64> =
            [("x/one".to_string(), 1.0), ("y/two".to_string(), 1.0)].into();
        let current = baseline.clone();
        let cmp = compare(&baseline, &current, Some("x/"));
        assert_eq!(cmp.deltas.len(), 1);
        assert_eq!(cmp.deltas[0].name, "x/one");
    }

    /// The `--filter` path against the real checked-in baselines: two
    /// adjacent PR baselines are diffed with and without a name filter,
    /// and the filtered diff must be exactly the unfiltered diff
    /// restricted to matching names — no series invented, none dropped.
    #[test]
    fn filter_against_checked_in_baselines() {
        let read = |file: &str| {
            let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../..").to_string() + "/" + file;
            parse_measurements(&std::fs::read_to_string(&path).unwrap()).unwrap()
        };
        let baseline = read("BENCH_pr4.json");
        let current = read("BENCH_pr5.json");
        let needle = "join";
        let full = compare(&baseline, &current, None);
        let filtered = compare(&baseline, &current, Some(needle));
        assert!(
            !filtered.deltas.is_empty(),
            "the baselines are expected to share join benches"
        );
        for delta in &filtered.deltas {
            assert!(delta.name.contains(needle), "{} leaked through", delta.name);
        }
        let expected: Vec<&BenchDelta> = full
            .deltas
            .iter()
            .filter(|d| d.name.contains(needle))
            .collect();
        assert_eq!(filtered.deltas.iter().collect::<Vec<_>>(), expected);
        let expected_added: Vec<&String> =
            full.added.iter().filter(|n| n.contains(needle)).collect();
        assert_eq!(filtered.added.iter().collect::<Vec<_>>(), expected_added);
        let expected_missing: Vec<&String> =
            full.missing.iter().filter(|n| n.contains(needle)).collect();
        assert_eq!(
            filtered.missing.iter().collect::<Vec<_>>(),
            expected_missing
        );
        // A filter matching nothing yields a clean, empty comparison.
        let none = compare(&baseline, &current, Some("no-such-bench"));
        assert!(none.deltas.is_empty() && none.added.is_empty() && none.missing.is_empty());
    }

    #[test]
    fn malformed_input_is_an_error_not_a_panic() {
        assert!(parse_measurements("").is_err());
        assert!(parse_measurements("not json").is_err());
        assert!(
            parse_measurements("{\"name\": \"a\"}").is_err(),
            "no median"
        );
        assert!(parse_measurements("{\"benchmarks\": {\"a\": {}}}").is_err());
    }
}
