//! Streaming-join throughput under heavy insert traffic — the workload
//! the paper's closing note motivates ("tree objects … inserted and
//! updated at a high rate") and the sliding-window eviction PR makes
//! sustainable.
//!
//! Each measurement replays a fixed synthetic feed of `FEED` trees into
//! a fresh join, so `median ns / FEED` is the per-insert cost and
//! `FEED / median s` the inserts/sec figure:
//!
//! * `streaming/insert/tau{1,3}` — the insert-only baseline
//!   (`partsj::StreamingJoin`, index grows forever);
//! * `streaming/insert_sharded/tau{1,3}` — the sharded dynamic join
//!   without eviction (same semantics, dynamic index);
//! * `streaming/evict_count/tau{1,3}` — sliding window of
//!   [`WINDOW`] trees: every insert beyond the window also pays one
//!   eviction (tombstone + amortized compaction), so the same quotient
//!   doubles as evictions/sec;
//! * `streaming/evict_time/tau{1,3}` — the logical-timestamp window.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use partsj::{PartSjConfig, StreamingJoin};
use std::hint::black_box;
use tsj_datagen::{synthetic, SyntheticParams};
use tsj_shard::{EvictionPolicy, ShardConfig, ShardedStreamingJoin};
use tsj_tree::Tree;

/// Inserts per measured pass.
const FEED: usize = 300;
/// Live-window size for the eviction benches (≪ FEED, so most inserts
/// evict).
const WINDOW: usize = 64;

fn feed() -> Vec<Tree> {
    synthetic(
        FEED,
        &SyntheticParams {
            avg_size: 30,
            ..Default::default()
        },
        2015,
    )
}

fn run_sharded(trees: &[Tree], tau: u32, policy: EvictionPolicy) -> u64 {
    let mut join = ShardedStreamingJoin::new(
        tau,
        PartSjConfig::default(),
        ShardConfig::with_shards(4),
        policy,
    );
    for tree in trees {
        black_box(join.insert(tree));
    }
    join.pairs_found() + join.evictions()
}

fn bench_streaming_throughput(c: &mut Criterion) {
    let trees = feed();
    let mut group = c.benchmark_group("streaming");
    for tau in [1u32, 3] {
        group.bench_with_input(BenchmarkId::new("insert", tau), &tau, |bench, &tau| {
            bench.iter(|| {
                let mut join = StreamingJoin::new(tau, PartSjConfig::default());
                for tree in &trees {
                    black_box(join.insert(tree));
                }
                join.pairs_found()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("insert_sharded", tau),
            &tau,
            |bench, &tau| bench.iter(|| run_sharded(&trees, tau, EvictionPolicy::Retain)),
        );
        group.bench_with_input(BenchmarkId::new("evict_count", tau), &tau, |bench, &tau| {
            bench.iter(|| run_sharded(&trees, tau, EvictionPolicy::SlidingCount(WINDOW)))
        });
        group.bench_with_input(BenchmarkId::new("evict_time", tau), &tau, |bench, &tau| {
            // insert() stamps arrival ordinals, so a horizon of WINDOW
            // ticks keeps the same number of trees live as the count
            // window.
            bench.iter(|| run_sharded(&trees, tau, EvictionPolicy::SlidingTime(WINDOW as u64)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_streaming_throughput);
criterion_main!(benches);
