//! The catalog's headline guarantee: **freeze → save → load → join is
//! bit-identical to the direct joins** — same pairs *and* same candidate
//! counts — across shard counts × thresholds × window policies, and the
//! per-query-τ contract holds (any `τ_q ≤ τ_frozen` reproduces the
//! direct join at `τ_q` exactly).

use partsj::{partsj_join_rs, PartSjConfig, WindowPolicy};
use tsj_catalog::{Catalog, CatalogError};
use tsj_datagen::{synthetic, SyntheticParams};
use tsj_shard::{sharded_rs_join, ShardConfig};
use tsj_ted::{ted, TreeIdx};
use tsj_tree::Tree;

fn collection(n: usize, avg_size: usize, seed: u64) -> Vec<Tree> {
    synthetic(
        n,
        &SyntheticParams {
            avg_size,
            ..Default::default()
        },
        seed,
    )
}

/// Freeze `left`, push it through a full byte round trip, and return the
/// reloaded catalog.
fn frozen_round_trip(left: &[Tree], tau: u32, config: &PartSjConfig, shards: usize) -> Catalog {
    let catalog = Catalog::freeze(
        left.to_vec(),
        tsj_tree::LabelInterner::new(),
        tau,
        config,
        &ShardConfig {
            shards,
            probe_threads: 1,
            verify_threads: 1,
            ..Default::default()
        },
    );
    Catalog::from_bytes(catalog.to_bytes()).expect("round trip")
}

#[test]
fn loaded_catalog_join_bit_identical_to_direct_joins() {
    let left = collection(60, 24, 311);
    let right = collection(70, 24, 412);
    for tau in [0u32, 1, 3] {
        let config = PartSjConfig::default();
        let reference = partsj_join_rs(&left, &right, tau, &config);
        for shards in [1usize, 2, 4] {
            let shard_cfg = ShardConfig {
                shards,
                probe_threads: 1,
                verify_threads: 1,
                ..Default::default()
            };
            let direct = sharded_rs_join(&left, &right, tau, &config, &shard_cfg);
            assert_eq!(direct.pairs, reference.pairs, "sharded vs rs, tau = {tau}");

            let catalog = frozen_round_trip(&left, tau, &config, shards);
            let served = catalog.join(&right, tau, &config, &shard_cfg).unwrap();
            assert_eq!(
                served.pairs, direct.pairs,
                "catalog pairs, shards = {shards}, tau = {tau}"
            );
            assert_eq!(
                served.stats.candidates, direct.stats.candidates,
                "catalog candidates, shards = {shards}, tau = {tau}"
            );
            assert_eq!(
                served.stats.ted_calls, direct.stats.ted_calls,
                "catalog ted calls, shards = {shards}, tau = {tau}"
            );
            assert_eq!(served.stats.stage_counts, direct.stats.stage_counts);
        }
    }
}

#[test]
fn round_trip_holds_for_every_window_policy() {
    let left = collection(40, 20, 99);
    let right = collection(45, 20, 98);
    let tau = 2u32;
    for window in [
        WindowPolicy::Safe,
        WindowPolicy::Tight,
        WindowPolicy::PaperAbsolute,
    ] {
        let config = PartSjConfig::with_window(window);
        let shard_cfg = ShardConfig {
            shards: 2,
            probe_threads: 1,
            verify_threads: 1,
            ..Default::default()
        };
        let direct = sharded_rs_join(&left, &right, tau, &config, &shard_cfg);
        let catalog = frozen_round_trip(&left, tau, &config, 2);
        assert_eq!(catalog.window(), window);
        let served = catalog.join(&right, tau, &config, &shard_cfg).unwrap();
        assert_eq!(served.pairs, direct.pairs, "{window:?}");
        assert_eq!(
            served.stats.candidates, direct.stats.candidates,
            "{window:?}"
        );
    }
}

#[test]
fn pooled_probe_and_verify_threads_match_inline() {
    let left = collection(50, 22, 5);
    let right = collection(90, 22, 6);
    let tau = 2u32;
    let config = PartSjConfig {
        parallel_fallback: 0,
        verify_batch: 8,
        ..Default::default()
    };
    let catalog = frozen_round_trip(&left, tau, &config, 4);
    let inline = catalog
        .join(
            &right,
            tau,
            &config,
            &ShardConfig {
                shards: 4,
                probe_threads: 1,
                verify_threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
    let pooled = catalog
        .join(
            &right,
            tau,
            &config,
            &ShardConfig {
                shards: 4,
                probe_threads: 3,
                verify_threads: 2,
                ..Default::default()
            },
        )
        .unwrap();
    assert_eq!(pooled.pairs, inline.pairs);
    assert_eq!(pooled.stats.candidates, inline.stats.candidates);
}

/// One snapshot, many thresholds: a catalog frozen at `τ_f` answers any
/// `τ_q ≤ τ_f` with exactly the pairs of a direct join at `τ_q`.
#[test]
fn per_query_tau_reproduces_direct_joins() {
    let left = collection(50, 20, 21);
    let right = collection(55, 20, 22);
    let config = PartSjConfig::default();
    let frozen_tau = 3u32;
    let catalog = frozen_round_trip(&left, frozen_tau, &config, 4);
    let shard_cfg = ShardConfig {
        shards: 4,
        probe_threads: 1,
        verify_threads: 1,
        ..Default::default()
    };
    for tau_q in 0..=frozen_tau {
        let reference = partsj_join_rs(&left, &right, tau_q, &config);
        let served = catalog.join(&right, tau_q, &config, &shard_cfg).unwrap();
        assert_eq!(served.pairs, reference.pairs, "tau_q = {tau_q}");
        // The frozen (wider) windows may surface extra candidates at
        // smaller thresholds; they may never drop one.
        assert!(
            served.stats.candidates >= reference.stats.candidates,
            "tau_q = {tau_q}: frozen candidates {} < direct {}",
            served.stats.candidates,
            reference.stats.candidates
        );
    }
    assert!(matches!(
        catalog.join(&right, frozen_tau + 1, &config, &shard_cfg),
        Err(CatalogError::TauExceedsFrozen {
            query: 4,
            frozen: 3
        })
    ));
}

#[test]
fn single_probe_query_matches_linear_ted_scan() {
    let left = collection(40, 18, 77);
    let probes = collection(8, 18, 78);
    let config = PartSjConfig::default();
    let catalog = frozen_round_trip(&left, 3, &config, 2);
    for tau_q in [0u32, 1, 3] {
        for probe in &probes {
            let expected: Vec<(TreeIdx, u32)> = left
                .iter()
                .enumerate()
                .filter_map(|(i, t)| {
                    let d = ted(t, probe);
                    (d <= tau_q).then_some((i as TreeIdx, d))
                })
                .collect();
            let hits = catalog.query(probe, tau_q, &config).unwrap();
            assert_eq!(hits, expected, "tau_q = {tau_q}");
        }
    }
}

#[test]
fn save_and_load_through_the_filesystem() {
    let left = collection(30, 20, 55);
    let right = collection(30, 20, 56);
    let config = PartSjConfig::default();
    let catalog = Catalog::freeze(
        left.clone(),
        tsj_tree::LabelInterner::new(),
        2,
        &config,
        &ShardConfig::with_shards(2),
    );
    let dir = std::env::temp_dir().join(format!("tsj-catalog-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("catalog.tsjcat");
    catalog.save(&path).unwrap();
    let loaded = Catalog::load(&path).unwrap();
    let shard_cfg = ShardConfig {
        shards: 2,
        probe_threads: 1,
        verify_threads: 1,
        ..Default::default()
    };
    let a = catalog.join(&right, 2, &config, &shard_cfg).unwrap();
    let b = loaded.join(&right, 2, &config, &shard_cfg).unwrap();
    assert_eq!(a.pairs, b.pairs);
    assert_eq!(a.stats.candidates, b.stats.candidates);
    std::fs::remove_dir_all(&dir).unwrap();
}
