//! # tsj-catalog
//!
//! A **frozen catalog service** for PartSJ: freeze a collection's
//! sharded subgraph index once, persist it as a versioned binary
//! snapshot, and serve many indexed-left joins and similarity queries
//! against it — the "join against a frozen catalog" regime of the
//! roadmap, in the spirit of *Dynamic Enumeration of Similarity Joins*
//! (long-lived indexed side, stream of probes).
//!
//! The paper's batch join treats both collections as transient and
//! rebuilds the index per run. A serving system inverts that: one side —
//! the catalog — is long-lived and read-mostly, while probes arrive
//! continuously. This crate provides the three pieces:
//!
//! * **[`Catalog::freeze`]** — partition and index a collection for a
//!   freeze threshold `τ_f`, exactly as [`tsj_shard::sharded_rs_join`]'s
//!   build phase would.
//! * **Snapshots** — [`Catalog::save`] / [`Catalog::load`] persist the
//!   catalog as a checked binary format (magic, version, per-section
//!   FNV-1a checksums): label store, tree store, and one independently
//!   decodable section per shard — the unit of multi-node placement.
//!   Corruption surfaces as a typed [`CatalogError`], never a panic.
//!   [`SnapshotReader`] reads headers and individual shards without
//!   decoding the rest.
//! * **Serving** — [`Catalog::join`] runs batch probes through the same
//!   probe fan-out + bounded-channel verify pool as the sharded R×S
//!   join (bit-identical pairs and candidate counts at `τ = τ_f`);
//!   [`Catalog::query`] answers single-probe searches with exact
//!   distances. Both accept any per-query `τ ≤ τ_f` — postings are
//!   registered once with the freeze-time window, and smaller
//!   thresholds only narrow the probed size window, so completeness is
//!   preserved (see [`Catalog`] for the argument).
//!
//! ```
//! use tsj_catalog::Catalog;
//! use partsj::PartSjConfig;
//! use tsj_shard::ShardConfig;
//! use tsj_tree::{parse_bracket, LabelInterner};
//!
//! let mut labels = LabelInterner::new();
//! let trees: Vec<_> = ["{item{kbd}{price}}", "{item{dock}{ports}}"]
//!     .iter()
//!     .map(|s| parse_bracket(s, &mut labels).unwrap())
//!     .collect();
//! let catalog = Catalog::freeze(
//!     trees,
//!     labels,
//!     2,
//!     &PartSjConfig::default(),
//!     &ShardConfig::with_shards(2),
//! );
//!
//! // Persist and reload — byte-for-byte deterministic.
//! let bytes = catalog.to_bytes();
//! let served = Catalog::from_bytes(bytes).unwrap();
//!
//! // Probe at a *smaller* per-query threshold than the frozen tau = 2.
//! let mut labels = served.labels().clone();
//! let probe = parse_bracket("{item{dock}{plug}}", &mut labels).unwrap();
//! let outcome = served
//!     .join(&[probe], 1, &PartSjConfig::default(), &ShardConfig::default())
//!     .unwrap();
//! assert_eq!(outcome.pairs, vec![(1, 0)]); // catalog[1] ≈ probe, one rename
//! ```

#![warn(missing_docs)]

pub mod catalog;
pub mod error;
pub mod format;
pub mod snapshot;

pub use catalog::{Catalog, QueryScratch};
pub use error::CatalogError;
pub use snapshot::{SnapshotReader, FORMAT_VERSION, MAGIC};
