//! The scatter/gather router: planning, fan-out, retry, degradation.
//!
//! A join runs in three deterministic phases:
//!
//! 1. **Plan** — each probe's size window `[|T| − τ, |T| + τ]`
//!    ([`partsj::window_of`]) is split by the snapshot's `ShardMap` into
//!    one [`ShardRequest`] per owning shard, carrying exactly the classes
//!    that shard owns (the unit of coverage accounting). Requests go to
//!    the first *alive* replica of their shard.
//! 2. **Scatter** — one worker per addressed node serves its batch in
//!    planning order over the crossbeam scope. The fault injector is
//!    consulted *before* any compute, so failed attempts contribute no
//!    stats and retries can never double-count. Fault decisions are
//!    stateless hashes, so the schedule is identical under any thread
//!    interleaving.
//! 3. **Gather + retry** — failed requests are retried *sequentially* in
//!    request order against replicas: a dead node means immediate
//!    failover (and a health mark the rest of the join sees); anything
//!    else backs off exponentially with deterministic jitter, bounded by
//!    [`crate::RetryPolicy::max_attempts`] and the per-probe deadline.
//!    Requests that exhaust replicas, attempts or deadline degrade: their
//!    classes are reported unserved, never silently dropped.
//!
//! Because every catalog tree's postings live in exactly one shard,
//! per-request candidate sets are disjoint and the gathered union is
//! bit-identical — pairs, candidate counts and filter-stage counters —
//! to single-node `Catalog::join`.
//!
//! **Accounting**: every [`crate::Telemetry`] increment has a per-node
//! twin in [`crate::Cluster::metrics`] (recorded in the sequential
//! gather phase under identical conditions, so sums reconcile exactly)
//! and a per-request row in [`crate::RequestStats`]. The whole join runs
//! under a `cluster.join` trace span on the cluster's clock.

use crate::cluster::{Cluster, NodeSlot};
use crate::error::ClusterError;
use crate::fault::Fault;
use crate::node::{NodeScratch, ProbeCtx, ShardRequest, ShardResponse};
use crate::outcome::{ClusterJoin, Degraded, RequestStats, Telemetry};
use partsj::{window_of, PartSjConfig};
use std::collections::BTreeMap;
use tsj_ted::{JoinOutcome, JoinStats, TreeIdx};
use tsj_tree::Tree;

/// Outcome of a request's first (scattered) attempt.
enum Attempt {
    /// Served by this node, absorbing this much injected delay.
    Served(ShardResponse, u64, usize),
    /// Failed with this fault on this node.
    Failed(Fault, usize),
    /// Never attempted: no alive replica at planning time.
    NoReplica,
}

impl Cluster {
    /// Scatter/gather join of `probes` against the cluster at threshold
    /// `tau ≤ tau_frozen`: all `(catalog tree, probe)` pairs within TED
    /// `tau`, plus a [`Degraded`] report if any size classes went
    /// unserved. Fault handling is part of the contract: results are
    /// never silently incomplete and faults never panic.
    pub fn join(
        &mut self,
        probes: &[Tree],
        tau: u32,
        config: &PartSjConfig,
    ) -> Result<ClusterJoin, ClusterError> {
        if tau > self.tau {
            return Err(ClusterError::TauExceedsFrozen {
                query: tau,
                frozen: self.tau,
            });
        }
        let join_span = tsj_obs::tracer().span(&self.clock, "cluster.join", "cluster");
        let mut telemetry = Telemetry::default();

        // Phase 1: plan shard requests.
        let mut requests: Vec<ShardRequest> = Vec::new();
        for (j, tree) in probes.iter().enumerate() {
            let (lo, hi) = window_of(tree.len() as u32, tau);
            let mut by_shard: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
            for n in lo..=hi {
                by_shard
                    .entry(self.map.shard_of(n, self.shard_count) as u32)
                    .or_default()
                    .push(n);
            }
            for (shard, classes) in by_shard {
                requests.push(ShardRequest {
                    probe: j as TreeIdx,
                    shard,
                    classes,
                });
            }
        }
        telemetry.requests = requests.len() as u64;
        let ctxs: Vec<ProbeCtx> = ProbeCtx::batch(probes, config);

        // Phase 2: scatter to the first alive replica of each shard.
        let mut outcomes: Vec<Option<Attempt>> = requests.iter().map(|_| None).collect();
        let mut per_node: Vec<Vec<usize>> = vec![Vec::new(); self.topology.nodes()];
        for (r, req) in requests.iter().enumerate() {
            match self
                .topology
                .replicas(req.shard)
                .iter()
                .copied()
                .find(|&n| self.health[n])
            {
                Some(n) => per_node[n].push(r),
                None => outcomes[r] = Some(Attempt::NoReplica),
            }
        }
        {
            let slots = &self.slots;
            let injector = &self.injector;
            let clock = &*self.clock;
            let timeout = self.retry.request_timeout_ms;
            let requests = &requests;
            let ctxs = &ctxs;
            let gathered = crossbeam::scope(|scope| {
                let handles: Vec<_> = per_node
                    .iter()
                    .enumerate()
                    .filter(|(_, list)| !list.is_empty())
                    .map(|(n, list)| {
                        scope.spawn(move |_| -> Result<Vec<(usize, Attempt)>, ClusterError> {
                            let NodeSlot::Up(node) = &slots[n] else {
                                unreachable!("healthy nodes are restored")
                            };
                            let mut scratch = NodeScratch::default();
                            let mut out = Vec::with_capacity(list.len());
                            for &r in list {
                                let req = &requests[r];
                                let ctx = &ctxs[req.probe as usize];
                                let attempt = match injector.decide(n, req.probe, req.shard, 0) {
                                    None => Attempt::Served(
                                        node.serve(req, ctx, tau, config, &mut scratch)?,
                                        0,
                                        n,
                                    ),
                                    Some(Fault::Delay(d)) if d <= timeout => {
                                        clock.sleep_ms(d);
                                        Attempt::Served(
                                            node.serve(req, ctx, tau, config, &mut scratch)?,
                                            d,
                                            n,
                                        )
                                    }
                                    // A delay past the timeout *is* a
                                    // timeout: the response is discarded
                                    // before any work runs.
                                    Some(Fault::Delay(_)) => Attempt::Failed(Fault::Timeout, n),
                                    Some(fault) => Attempt::Failed(fault, n),
                                };
                                out.push((r, attempt));
                            }
                            Ok(out)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("scatter worker panicked"))
                    .collect::<Vec<_>>()
            })
            .expect("scatter scope");
            for worker in gathered {
                for (r, attempt) in worker? {
                    outcomes[r] = Some(attempt);
                }
            }
        }

        // Phase 3: gather; retry failures sequentially, in request order.
        // All metric attribution happens here (never in the scatter
        // workers), so per-node counters are deterministic under any
        // thread interleaving.
        let mut responses: Vec<ShardResponse> = Vec::new();
        let mut unserved: Vec<(TreeIdx, u32)> = Vec::new();
        let mut probe_spent: Vec<u64> = vec![0; probes.len()];
        let mut scratch = NodeScratch::default();
        // Effort sunk into requests that still went unserved.
        let (mut lost_attempts, mut lost_retries, mut lost_backoff) = (0u64, 0u64, 0u64);
        for (r, outcome) in outcomes.into_iter().enumerate() {
            let req = &requests[r];
            let p = req.probe as usize;
            let mut request = RequestStats {
                probe: req.probe,
                shard: req.shard,
                attempts: 0,
                retries: 0,
                backoff_ms: 0,
                spent_ms: 0,
                served: false,
            };
            let mut last_fault = match outcome.expect("every request got a first attempt") {
                Attempt::Served(resp, delay, node) => {
                    telemetry.attempts += 1;
                    request.attempts = 1;
                    request.served = true;
                    let cells = self.metrics.node(node);
                    cells.attempts.inc();
                    cells.served.inc();
                    if delay > 0 {
                        telemetry.faults += 1;
                        telemetry.delay_ms += delay;
                        probe_spent[p] += delay;
                        request.spent_ms += delay;
                        cells.delays.inc();
                        cells.delay_ms.add(delay);
                    }
                    cells.latency.record(request.spent_ms);
                    telemetry.per_request.push(request);
                    responses.push(resp);
                    continue;
                }
                Attempt::Failed(fault, n) => {
                    telemetry.attempts += 1;
                    request.attempts = 1;
                    telemetry.faults += 1;
                    let cells = self.metrics.node(n);
                    cells.attempts.inc();
                    cells.failed.inc();
                    match fault {
                        Fault::NodeDown => {
                            self.health[n] = false;
                            telemetry.failovers += 1;
                            cells.failovers.inc();
                        }
                        Fault::Timeout => {
                            probe_spent[p] += self.retry.request_timeout_ms;
                            request.spent_ms += self.retry.request_timeout_ms;
                        }
                        Fault::Transient => {}
                        Fault::Delay(_) => unreachable!("scatter maps delays to served/timeout"),
                    }
                    fault
                }
                Attempt::NoReplica => Fault::NodeDown,
            };
            let mut served = false;
            for attempt in 1..self.retry.max_attempts {
                // Failover target: scan the replica ring from `attempt`
                // so consecutive retries of the same request prefer
                // different copies; skip anything known dead.
                let replicas = self.topology.replicas(req.shard);
                let target = (0..replicas.len())
                    .map(|i| replicas[(attempt as usize + i) % replicas.len()])
                    .find(|&n| self.health[n]);
                let Some(target) = target else {
                    break; // every replica lost: unrecoverable
                };
                if last_fault != Fault::NodeDown {
                    // Dead nodes fail over immediately; everything else
                    // backs off first — within the probe's deadline.
                    let backoff = self.retry.backoff_ms(
                        self.injector.plan().seed,
                        req.probe,
                        req.shard,
                        attempt,
                    );
                    if probe_spent[p] + backoff > self.retry.probe_deadline_ms {
                        break;
                    }
                    self.clock.sleep_ms(backoff);
                    probe_spent[p] += backoff;
                    telemetry.backoff_ms += backoff;
                    request.backoff_ms += backoff;
                    request.spent_ms += backoff;
                    self.metrics.node(target).backoff_ms.add(backoff);
                }
                telemetry.retries += 1;
                telemetry.attempts += 1;
                request.retries += 1;
                request.attempts += 1;
                let cells = self.metrics.node(target);
                cells.retries.inc();
                cells.attempts.inc();
                match self.injector.decide(target, req.probe, req.shard, attempt) {
                    None => {
                        let NodeSlot::Up(node) = &self.slots[target] else {
                            unreachable!("healthy nodes are restored")
                        };
                        responses.push(node.serve(
                            req,
                            &ctxs[req.probe as usize],
                            tau,
                            config,
                            &mut scratch,
                        )?);
                        cells.served.inc();
                        cells.latency.record(request.spent_ms);
                        served = true;
                        break;
                    }
                    Some(Fault::Delay(d)) if d <= self.retry.request_timeout_ms => {
                        telemetry.faults += 1;
                        if probe_spent[p] + d > self.retry.probe_deadline_ms {
                            probe_spent[p] = self.retry.probe_deadline_ms;
                            // The late response is discarded: the attempt
                            // produced nothing usable.
                            cells.failed.inc();
                            break; // the late response would land past the deadline
                        }
                        self.clock.sleep_ms(d);
                        probe_spent[p] += d;
                        telemetry.delay_ms += d;
                        request.spent_ms += d;
                        cells.delays.inc();
                        cells.delay_ms.add(d);
                        let NodeSlot::Up(node) = &self.slots[target] else {
                            unreachable!("healthy nodes are restored")
                        };
                        responses.push(node.serve(
                            req,
                            &ctxs[req.probe as usize],
                            tau,
                            config,
                            &mut scratch,
                        )?);
                        cells.served.inc();
                        cells.latency.record(request.spent_ms);
                        served = true;
                        break;
                    }
                    Some(Fault::Delay(_)) | Some(Fault::Timeout) => {
                        telemetry.faults += 1;
                        probe_spent[p] += self.retry.request_timeout_ms;
                        request.spent_ms += self.retry.request_timeout_ms;
                        cells.failed.inc();
                        last_fault = Fault::Timeout;
                        if probe_spent[p] >= self.retry.probe_deadline_ms {
                            break;
                        }
                    }
                    Some(Fault::Transient) => {
                        telemetry.faults += 1;
                        cells.failed.inc();
                        last_fault = Fault::Transient;
                    }
                    Some(Fault::NodeDown) => {
                        telemetry.faults += 1;
                        self.health[target] = false;
                        telemetry.failovers += 1;
                        cells.failed.inc();
                        cells.failovers.inc();
                        last_fault = Fault::NodeDown;
                    }
                }
            }
            request.served = served;
            if !served {
                unserved.extend(req.classes.iter().map(|&c| (req.probe, c)));
                lost_attempts += u64::from(request.attempts);
                lost_retries += u64::from(request.retries);
                lost_backoff += request.backoff_ms;
            }
            telemetry.per_request.push(request);
        }

        // Union: pair sets are disjoint across shards, stats fold by name.
        telemetry.served = responses.len() as u64;
        let mut pairs: Vec<(TreeIdx, TreeIdx)> = Vec::new();
        let mut stats = JoinStats::default();
        for resp in &responses {
            pairs.extend(resp.matches.iter().map(|&i| (i, resp.probe)));
            stats.merge_partial(&resp.stats);
        }
        let outcome = JoinOutcome::new_bipartite(pairs, stats);
        let degraded = if unserved.is_empty() {
            None
        } else {
            unserved.sort_unstable();
            unserved.dedup();
            tsj_obs::tracer().instant(&*self.clock, "cluster.degraded", "cluster");
            Some(Degraded {
                unserved,
                lost_shards: self.lost_shards(),
                attempts: lost_attempts,
                retries: lost_retries,
                backoff_ms: lost_backoff,
            })
        };
        let obs = tsj_obs::global();
        if obs.is_enabled() {
            obs.counter("tsj_cluster_joins_total").inc();
            if degraded.is_some() {
                obs.counter("tsj_cluster_degraded_joins_total").inc();
            }
        }
        join_span.end();
        Ok(ClusterJoin {
            outcome,
            degraded,
            telemetry,
        })
    }
}
