//! Equivalence guarantees of the sharded subsystem:
//!
//! * the sharded batch join is **bit-identical** to sequential
//!   `partsj_join` for every shard count × τ × thread mix;
//! * the sharded R×S join is bit-identical to `partsj_join_rs`;
//! * the sharded streaming join without eviction reproduces the batch
//!   join over any insertion order;
//! * insert-then-remove is indistinguishable from never-inserted;
//! * sliding windows (by count and by logical time) report exactly the
//!   brute-force partners of the live window, while compaction reclaims
//!   tombstoned postings.

use partsj::{partsj_join, partsj_join_rs, AdaptiveConfig, PartSjConfig, WindowPolicy};
use tsj_datagen::{synthetic, SyntheticParams};
use tsj_shard::{sharded_join, sharded_rs_join, EvictionPolicy, ShardConfig, ShardedStreamingJoin};
use tsj_ted::{ted, TreeIdx};
use tsj_tree::Tree;

fn collection(n: usize, avg_size: usize, seed: u64) -> Vec<Tree> {
    synthetic(
        n,
        &SyntheticParams {
            avg_size,
            ..Default::default()
        },
        seed,
    )
}

#[test]
fn sharded_join_bit_identical_across_shard_counts() {
    let trees = collection(120, 30, 42);
    for tau in [0u32, 1, 3] {
        let reference = partsj_join(&trees, tau);
        for shards in [1usize, 2, 4, 8] {
            let outcome = sharded_join(
                &trees,
                tau,
                &PartSjConfig::default(),
                &ShardConfig {
                    shards,
                    probe_threads: 1,
                    verify_threads: 1,
                    ..Default::default()
                },
            );
            assert_eq!(
                outcome.pairs, reference.pairs,
                "shards = {shards}, tau = {tau}"
            );
            // Same candidate semantics, not just same results.
            assert_eq!(
                outcome.stats.candidates, reference.stats.candidates,
                "shards = {shards}, tau = {tau}"
            );
            assert_eq!(
                outcome.stats.prefilter_skips, reference.stats.prefilter_skips,
                "shards = {shards}, tau = {tau}"
            );
        }
    }
}

/// The balanced shard map changes *placement only*: for every shard
/// count × τ × window policy, results and candidate semantics are
/// bit-identical to hash routing.
#[test]
fn balanced_shard_map_is_result_invariant() {
    let trees = collection(100, 28, 31);
    for window in [
        WindowPolicy::Safe,
        WindowPolicy::Tight,
        WindowPolicy::PaperAbsolute,
    ] {
        let hash_cfg = PartSjConfig {
            window,
            ..Default::default()
        };
        let balanced_cfg = PartSjConfig {
            window,
            adaptive: AdaptiveConfig {
                balanced_shards: true,
                ..AdaptiveConfig::OFF
            },
            ..Default::default()
        };
        for tau in [0u32, 1, 3] {
            for shards in [1usize, 2, 4, 8] {
                let shard_cfg = ShardConfig {
                    shards,
                    probe_threads: 1,
                    verify_threads: 1,
                    ..Default::default()
                };
                let hash = sharded_join(&trees, tau, &hash_cfg, &shard_cfg);
                let balanced = sharded_join(&trees, tau, &balanced_cfg, &shard_cfg);
                let ctx = format!("window {window:?}, tau {tau}, shards {shards}");
                assert_eq!(balanced.pairs, hash.pairs, "{ctx}");
                assert_eq!(balanced.stats.candidates, hash.stats.candidates, "{ctx}");
                assert_eq!(
                    balanced.stats.prefilter_skips, hash.stats.prefilter_skips,
                    "{ctx}"
                );
                assert_eq!(balanced.stats.ted_calls, hash.stats.ted_calls, "{ctx}");
            }
        }
    }
}

/// Adaptive chain reordering inside the sharded join — including the
/// multi-worker verify pool, whose per-worker engines fold their
/// reordered counters into one `JoinStats` — must be invisible in
/// results and aggregate stats.
#[test]
fn adaptive_chain_is_result_invariant_in_the_sharded_join() {
    let trees = collection(120, 26, 37);
    let adaptive_cfg = PartSjConfig {
        parallel_fallback: 0, // force the worker pools even when small
        adaptive: AdaptiveConfig {
            reorder_chain: true,
            reorder_every: 16,
            balanced_shards: true,
        },
        ..Default::default()
    };
    let fixed_cfg = PartSjConfig {
        parallel_fallback: 0,
        ..Default::default()
    };
    for tau in [0u32, 1, 3] {
        let shard_cfg = ShardConfig {
            shards: 4,
            probe_threads: 2,
            verify_threads: 2,
            ..Default::default()
        };
        let fixed = sharded_join(&trees, tau, &fixed_cfg, &shard_cfg);
        let adaptive = sharded_join(&trees, tau, &adaptive_cfg, &shard_cfg);
        assert_eq!(adaptive.pairs, fixed.pairs, "tau {tau}");
        assert_eq!(adaptive.stats.candidates, fixed.stats.candidates);
        assert_eq!(adaptive.stats.ted_calls, fixed.stats.ted_calls);
        assert_eq!(adaptive.stats.prefilter_skips, fixed.stats.prefilter_skips);
        assert_eq!(adaptive.stats.early_accepts, fixed.stats.early_accepts);
        // The per-worker fold (keyed by stage name, since each worker's
        // engine may sit in a different order) must still produce one
        // coherent stats block: no duplicate stage rows, and the stage
        // counters accounting for exactly the skips and accepts.
        let shape = |stats: &tsj_ted::JoinStats| {
            let mut names: Vec<&'static str> = stats.stage_counts.iter().map(|c| c.stage).collect();
            names.sort_unstable();
            let sum: u64 = stats.stage_counts.iter().map(|c| c.count).sum();
            (names, sum)
        };
        let (a_names, a_sum) = shape(&adaptive.stats);
        let (f_names, f_sum) = shape(&fixed.stats);
        let mut deduped = a_names.clone();
        deduped.dedup();
        assert_eq!(
            deduped.len(),
            a_names.len(),
            "duplicate stage rows after fold"
        );
        assert_eq!(a_names, f_names, "tau {tau}");
        assert_eq!(a_sum, f_sum, "tau {tau}");
        assert_eq!(
            a_sum,
            fixed.stats.prefilter_skips + fixed.stats.early_accepts,
            "tau {tau}"
        );
    }
}

#[test]
fn sharded_join_parallel_pipeline_matches_sequential() {
    let trees = collection(150, 25, 7);
    // parallel_fallback 0 forces the probe/verify pools even on small
    // inputs and single-core machines.
    let config = PartSjConfig {
        parallel_fallback: 0,
        verify_batch: 8,
        ..Default::default()
    };
    for tau in [0u32, 1, 3] {
        let reference = partsj_join(&trees, tau);
        for (shards, probe_threads, verify_threads) in [(1, 2, 2), (4, 2, 2), (4, 3, 1), (8, 2, 3)]
        {
            let outcome = sharded_join(
                &trees,
                tau,
                &config,
                &ShardConfig {
                    shards,
                    probe_threads,
                    verify_threads,
                    ..Default::default()
                },
            );
            assert_eq!(
                outcome.pairs, reference.pairs,
                "shards = {shards}, probe = {probe_threads}, verify = {verify_threads}, tau = {tau}"
            );
            assert_eq!(outcome.stats.candidates, reference.stats.candidates);
        }
    }
}

#[test]
fn sharded_rs_join_matches_sequential_rs() {
    let left = collection(60, 22, 11);
    let right = collection(80, 22, 12);
    for tau in [0u32, 1, 3] {
        let reference = partsj_join_rs(&left, &right, tau, &PartSjConfig::default());
        for shards in [1usize, 4] {
            let inline = sharded_rs_join(
                &left,
                &right,
                tau,
                &PartSjConfig::default(),
                &ShardConfig {
                    shards,
                    probe_threads: 1,
                    verify_threads: 1,
                    ..Default::default()
                },
            );
            assert_eq!(inline.pairs, reference.pairs, "inline, shards = {shards}");
            let pooled = sharded_rs_join(
                &left,
                &right,
                tau,
                &PartSjConfig {
                    parallel_fallback: 0,
                    ..Default::default()
                },
                &ShardConfig {
                    shards,
                    probe_threads: 2,
                    verify_threads: 2,
                    ..Default::default()
                },
            );
            assert_eq!(pooled.pairs, reference.pairs, "pooled, shards = {shards}");
        }
    }
}

/// Streaming (no eviction) must reproduce the batch join over any
/// insertion order — including descending size, the hard case for the
/// symmetric probe window.
#[test]
fn streaming_without_eviction_matches_batch() {
    let mut trees = collection(80, 25, 13);
    for pass in 0..2 {
        if pass == 1 {
            trees.reverse();
        }
        for tau in [0u32, 1, 3] {
            let batch = partsj_join(&trees, tau);
            for shards in [1usize, 4] {
                let mut stream = ShardedStreamingJoin::new(
                    tau,
                    PartSjConfig::default(),
                    ShardConfig::with_shards(shards),
                    EvictionPolicy::Retain,
                );
                let mut pairs: Vec<(TreeIdx, TreeIdx)> = Vec::new();
                for (i, tree) in trees.iter().enumerate() {
                    for j in stream.insert(tree) {
                        pairs.push((j.min(i as TreeIdx), j.max(i as TreeIdx)));
                    }
                }
                pairs.sort_unstable();
                assert_eq!(pairs, batch.pairs, "shards = {shards}, tau = {tau}");
                assert_eq!(stream.live(), trees.len());
                assert_eq!(stream.evictions(), 0);
            }
        }
    }
}

/// Inserting trees and removing them again must leave the stream
/// indistinguishable from one where they never existed.
#[test]
fn insert_then_remove_equals_never_inserted() {
    let trees = collection(50, 24, 17);
    let victims = collection(12, 24, 99);
    let split = 25usize;
    let tau = 2u32;

    // Run B: victims never exist.
    let mut clean = ShardedStreamingJoin::new(
        tau,
        PartSjConfig::default(),
        ShardConfig::with_shards(4),
        EvictionPolicy::Retain,
    );
    let mut clean_partners: Vec<Vec<TreeIdx>> = Vec::new();
    for tree in &trees {
        clean_partners.push(clean.insert(tree));
    }

    // Run A: victims are inserted mid-stream, then removed (with an
    // aggressive compaction config so removal also exercises rebuilds).
    let mut dirty = ShardedStreamingJoin::new(
        tau,
        PartSjConfig::default(),
        ShardConfig {
            shards: 4,
            max_dead_fraction: 0.05,
            min_dead_postings: 1,
            ..Default::default()
        },
        EvictionPolicy::Retain,
    );
    for tree in &trees[..split] {
        let id = dirty.len() as TreeIdx;
        assert_eq!(dirty.insert(tree), clean_partners[id as usize]);
    }
    let victim_base = dirty.len() as TreeIdx;
    for tree in &victims {
        dirty.insert(tree);
    }
    for v in 0..victims.len() as TreeIdx {
        assert!(dirty.remove(victim_base + v));
        assert!(!dirty.remove(victim_base + v), "double remove");
    }
    // Later inserts: partners must match run B after translating ids
    // (everything after the victim block is shifted by the block size).
    let shift = victims.len() as TreeIdx;
    for (m, tree) in trees.iter().enumerate().skip(split) {
        let partners = dirty.insert(tree);
        let mapped: Vec<TreeIdx> = partners
            .iter()
            .map(|&p| {
                assert!(
                    !(victim_base..victim_base + shift).contains(&p),
                    "removed tree {p} reported as partner"
                );
                if p >= victim_base {
                    p - shift
                } else {
                    p
                }
            })
            .collect();
        assert_eq!(mapped, clean_partners[m], "insert #{m}");
    }
    assert_eq!(dirty.evictions(), shift as u64);
}

/// Mirror of the implementation's eviction bookkeeping, used to compute
/// brute-force expectations.
struct WindowMirror {
    live: Vec<(TreeIdx, u64, Tree)>,
}

impl WindowMirror {
    fn evict_for(&mut self, policy: EvictionPolicy, now: u64) {
        match policy {
            EvictionPolicy::Retain => {}
            EvictionPolicy::SlidingCount(k) => {
                let keep = k.saturating_sub(1);
                while self.live.len() > keep {
                    self.live.remove(0);
                }
            }
            EvictionPolicy::SlidingTime(h) => {
                self.live.retain(|&(_, ts, _)| now < ts.saturating_add(h));
            }
        }
    }

    fn expected_partners(&self, tree: &Tree, tau: u32) -> Vec<TreeIdx> {
        let mut out: Vec<TreeIdx> = self
            .live
            .iter()
            .filter(|(_, _, t)| ted(t, tree) <= tau)
            .map(|&(id, _, _)| id)
            .collect();
        out.sort_unstable();
        out
    }
}

#[test]
fn sliding_count_window_matches_brute_force() {
    let trees = collection(70, 18, 23);
    let tau = 2u32;
    let policy = EvictionPolicy::SlidingCount(9);
    let mut stream = ShardedStreamingJoin::new(
        tau,
        PartSjConfig::default(),
        ShardConfig {
            shards: 4,
            max_dead_fraction: 0.2,
            min_dead_postings: 8,
            ..Default::default()
        },
        policy,
    );
    let mut mirror = WindowMirror { live: Vec::new() };
    for (i, tree) in trees.iter().enumerate() {
        let ts = i as u64;
        mirror.evict_for(policy, ts);
        let partners = stream.insert(tree);
        assert_eq!(partners, mirror.expected_partners(tree, tau), "insert #{i}");
        mirror.live.push((i as TreeIdx, ts, tree.clone()));
        assert!(stream.live() <= 9, "window bound violated");
        assert_eq!(stream.live(), mirror.live.len());
    }
    assert_eq!(stream.evictions(), (trees.len() - 9) as u64);
    assert!(
        stream.compactions() > 0,
        "heavy eviction must trigger compaction"
    );
    // Tombstones actually get reclaimed.
    assert!(stream.index().dead_postings() <= stream.index().live_postings() + 64);
}

#[test]
fn sliding_time_window_matches_brute_force() {
    let trees = collection(60, 18, 29);
    let tau = 1u32;
    let policy = EvictionPolicy::SlidingTime(5);
    let mut stream = ShardedStreamingJoin::new(
        tau,
        PartSjConfig::default(),
        ShardConfig::with_shards(2),
        policy,
    );
    let mut mirror = WindowMirror { live: Vec::new() };
    for (i, tree) in trees.iter().enumerate() {
        // Two inserts per tick: same-timestamp arrivals must both work.
        let ts = (i / 2) as u64;
        mirror.evict_for(policy, ts);
        let partners = stream.insert_at(tree, ts);
        assert_eq!(
            partners,
            mirror.expected_partners(tree, tau),
            "insert #{i} at ts {ts}"
        );
        mirror.live.push((i as TreeIdx, ts, tree.clone()));
        assert_eq!(stream.live(), mirror.live.len());
    }
    assert!(stream.evictions() > 0);
}
