//! # tsj-obs
//!
//! Zero-dependency observability for the tree-similarity-join stack:
//! a lock-free [`MetricsRegistry`] of named counters, gauges and
//! log-scale latency histograms; structured trace [`Span`]s stamped on
//! an injectable [`Clock`] and collected in a bounded ring; and two
//! exporters — Prometheus text and a stable JSON snapshot
//! ([`export`]).
//!
//! The crate follows the repo's fold discipline: per-worker code
//! records into a local registry (or straight into the global one —
//! recording is a relaxed atomic op either way) and merges by metric
//! name on gather, exactly like `JoinStats`'s stage counters. The
//! [`Clock`] abstraction is promoted here from `tsj-cluster`, so trace
//! spans and the router's retry/backoff accounting share one notion of
//! time and virtual-clock tests can assert exact durations.
//!
//! ## The global layer
//!
//! Instrumented crates use the process-global registry/tracer through
//! [`global`], [`tracer`], [`span`] and [`instant`], governed by one
//! [`ObsConfig`] via [`configure`] — default **on**, with per-stage
//! verify timings off (see [`ObsConfig`]). Disabling observability
//! can never change join results: the same instrumented code runs
//! against shared sink cells.
//!
//! ```
//! use tsj_obs::{configure, global, span, ObsConfig};
//!
//! configure(&ObsConfig::default());
//! let work = span("demo.step", "demo");
//! global().counter("demo_steps_total").inc();
//! global().histogram("demo_latency_ms").record(3);
//! work.end();
//!
//! let snapshot = global().snapshot();
//! assert!(snapshot.counter("demo_steps_total") >= Some(1));
//! println!("{}", tsj_obs::export::to_prometheus(&snapshot));
//! ```

#![warn(missing_docs)]

mod clock;
mod config;
pub mod export;
mod metrics;
mod trace;

pub use clock::{Clock, SystemClock, VirtualClock};
pub use config::ObsConfig;
pub use metrics::{
    bucket_bound, bucket_index, labeled, Counter, Gauge, Histogram, HistogramSnapshot,
    MetricsRegistry, MetricsSnapshot, MAX_TRACKED, NUM_BUCKETS,
};
pub use trace::{EventKind, Span, TraceBuffer, TraceEvent};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// The most common imports in one place.
pub mod prelude {
    pub use crate::export::{to_json, to_prometheus, validate_prometheus};
    pub use crate::{
        configure, global, instant, labeled, span, tracer, Clock, Counter, Gauge, Histogram,
        HistogramSnapshot, MetricsRegistry, MetricsSnapshot, ObsConfig, Span, SystemClock,
        TraceBuffer, TraceEvent, VirtualClock,
    };
}

fn stage_timings_flag() -> &'static AtomicBool {
    static FLAG: OnceLock<AtomicBool> = OnceLock::new();
    FLAG.get_or_init(|| AtomicBool::new(false))
}

fn global_clock_cell() -> &'static RwLock<Arc<dyn Clock>> {
    static CLOCK: OnceLock<RwLock<Arc<dyn Clock>>> = OnceLock::new();
    CLOCK.get_or_init(|| RwLock::new(Arc::new(SystemClock::new())))
}

/// The process-global metrics registry every instrumented crate records
/// into.
pub fn global() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(MetricsRegistry::new)
}

/// The process-global trace ring buffer.
pub fn tracer() -> &'static Arc<TraceBuffer> {
    static TRACER: OnceLock<Arc<TraceBuffer>> = OnceLock::new();
    TRACER.get_or_init(|| Arc::new(TraceBuffer::new(ObsConfig::ON.trace_capacity)))
}

/// The clock global spans are stamped on — [`SystemClock`] unless
/// [`set_clock`] swapped it.
pub fn clock() -> Arc<dyn Clock> {
    global_clock_cell().read().expect("clock lock").clone()
}

/// Swaps the clock global spans are stamped on (e.g. a shared
/// [`VirtualClock`] a test inspects).
pub fn set_clock(clock: Arc<dyn Clock>) {
    *global_clock_cell().write().expect("clock lock") = clock;
}

/// Applies `config` to the global registry, tracer and stage-timing
/// flag. Callable any number of times; instrumented code observes the
/// new state on its next recording.
pub fn configure(config: &ObsConfig) {
    global().set_enabled(config.metrics);
    tracer().set_enabled(config.trace);
    tracer().set_capacity(config.trace_capacity);
    stage_timings_flag().store(config.stage_timings, Ordering::Relaxed);
}

/// Whether verify-chain per-stage timing stamps are on (see
/// [`ObsConfig::stage_timings`]).
pub fn stage_timings_enabled() -> bool {
    stage_timings_flag().load(Ordering::Relaxed)
}

/// Begins a span on the global tracer and clock; the event is recorded
/// when the guard drops (inert while tracing is disabled).
pub fn span(name: impl Into<String>, cat: &'static str) -> Span {
    tracer().span(&clock(), name, cat)
}

/// Records a zero-duration marker on the global tracer and clock.
pub fn instant(name: impl Into<String>, cat: &'static str) {
    tracer().instant(&*clock(), name, cat);
}
