//! Integration checks of the workload generators against the paper's
//! dataset descriptions — the statistics that drive the filters' relative
//! behaviour must be in the right regime at harness scale.

use tree_similarity_join::prelude::*;

#[test]
fn swissprot_like_statistics() {
    let stats = collection_stats(&swissprot_like(400, 1));
    assert!(
        (45.0..80.0).contains(&stats.avg_size),
        "avg size {} vs paper 62.37",
        stats.avg_size
    );
    assert!(stats.distinct_labels <= 84);
    assert!(
        stats.avg_depth < 3.6,
        "avg depth {} vs paper 2.65",
        stats.avg_depth
    );
}

#[test]
fn treebank_like_statistics() {
    let stats = collection_stats(&treebank_like(400, 2));
    assert!(
        (33.0..58.0).contains(&stats.avg_size),
        "avg size {} vs paper 45.12",
        stats.avg_size
    );
    assert!(stats.distinct_labels <= 218 && stats.distinct_labels > 100);
    assert!(
        stats.avg_depth > 3.5,
        "deep parses expected, got {}",
        stats.avg_depth
    );
}

#[test]
fn sentiment_like_statistics() {
    let stats = collection_stats(&sentiment_like(400, 3));
    assert!(
        (26.0..50.0).contains(&stats.avg_size),
        "avg size {} vs paper 37.31",
        stats.avg_size
    );
    assert_eq!(stats.distinct_labels.min(5), stats.distinct_labels);
    assert!(
        stats.avg_depth > 5.0,
        "binarized parses are deep, got {}",
        stats.avg_depth
    );
}

#[test]
fn synthetic_follows_table1_parameters() {
    let params = SyntheticParams::default();
    let stats = collection_stats(&synthetic(400, &params, 4));
    assert!((55.0..105.0).contains(&stats.avg_size));
    assert!(stats.distinct_labels <= 20);
}

#[test]
fn joins_have_results_at_every_threshold() {
    // The τ-sweep figures need non-trivial REL series everywhere.
    for (name, trees) in [
        ("swissprot", swissprot_like(300, 5)),
        ("treebank", treebank_like(300, 6)),
        ("sentiment", sentiment_like(300, 7)),
    ] {
        let r1 = partsj_join(&trees, 1).stats.results;
        let r5 = partsj_join(&trees, 5).stats.results;
        assert!(r1 > 0, "{name}: no results at tau 1");
        assert!(r5 > r1, "{name}: results must grow with tau ({r1} -> {r5})");
    }
}

#[test]
fn sensitivity_parameters_change_the_workload() {
    // Fig. 14 sweeps must actually vary the collection.
    let base = SyntheticParams::default();
    let narrow = SyntheticParams { fanout: 2, ..base };
    let wide = SyntheticParams { fanout: 6, ..base };
    let stats_narrow = collection_stats(&synthetic(150, &narrow, 8));
    let stats_wide = collection_stats(&synthetic(150, &wide, 8));
    // Fanout 2 with depth 5 caps trees at 63 nodes.
    assert!(stats_narrow.avg_size < stats_wide.avg_size);
    assert!(stats_narrow.max_size <= 63 + 10);
}
