//! Quickstart: join a small collection of bracket-notation trees with all
//! four methods and compare their work.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use tree_similarity_join::prelude::*;

fn main() {
    // A toy collection: three music-album records (two near-duplicates),
    // one HTML-ish fragment, and one unrelated deep tree.
    let mut labels = LabelInterner::new();
    let sources = [
        "{album{title{Abbey Road}}{artist{The Beatles}}{year{1969}}{tracks{t1}{t2}{t3}}}",
        "{album{title{Abbey Road}}{artist{The Beatles}}{year{2019}}{tracks{t1}{t2}{t3}}}",
        "{album{title{Abbey Road}}{artist{Beatles}}{year{1969}}{tracks{t1}{t2}{t3}}}",
        "{html{head{title{shop}}}{body{div{p{hello}}}}}",
        "{a{b{c{d{e{f{g{h}}}}}}}}",
    ];
    let trees: Vec<Tree> = sources
        .iter()
        .map(|s| parse_bracket(s, &mut labels).expect("valid bracket input"))
        .collect();

    let tau = 2;
    println!(
        "similarity self-join of {} trees at tau = {tau}\n",
        trees.len()
    );

    // Exact pairwise distances, for reference.
    let mut engine = TedEngine::unit();
    for i in 0..trees.len() {
        for j in i + 1..trees.len() {
            let d = engine.distance_trees(&trees[i], &trees[j]);
            println!("  TED(T{i}, T{j}) = {d}");
        }
    }

    println!();
    for (name, outcome) in [
        ("PartSJ (paper)", partsj_join(&trees, tau)),
        ("STR baseline", str_join(&trees, tau)),
        ("SET baseline", set_join(&trees, tau)),
        ("brute force", brute_force_join(&trees, tau)),
    ] {
        println!(
            "{name:14} -> pairs {:?}, candidates {}, exact TED calls {}",
            outcome.pairs, outcome.stats.candidates, outcome.stats.ted_calls
        );
    }

    println!(
        "\nAll methods agree on the result; they differ in how many pairs\n\
         survive filtering and reach the cubic-time TED verification."
    );
}
