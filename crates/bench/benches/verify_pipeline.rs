//! Verification-pipeline benchmarks: what the filter chain buys over
//! bare exact-TED verification.
//!
//! * `verify_pipeline/check/*` — the [`partsj::VerifyEngine::check`]
//!   micro-path over a fixed candidate list, full chain vs. no chain;
//! * `verify_pipeline/join/*` — the end-to-end join under both
//!   configurations (same dataset family as the `join/tau` series).
//!
//! Before the timings, the harness prints `verify_pipeline:` info lines
//! with the candidates-per-TED-call ratio at τ ∈ {1, 3} on the
//! `join/tau` dataset (synthetic, n = 150, seed 2015): the ratio is the
//! figure-of-merit for the chain — how many candidates one cubic DP
//! amortizes over — and `ted_calls` with the chain enabled must sit
//! strictly below the filter-free count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use partsj::{partsj_join_with, PartSjConfig, VerifyConfig, VerifyData, VerifyEngine};
use std::hint::black_box;
use tsj_datagen::{swissprot_like, synthetic, SyntheticParams};
use tsj_tree::Tree;

fn chain_configs() -> [(&'static str, PartSjConfig); 2] {
    [
        ("full_chain", PartSjConfig::default()),
        (
            "ted_only",
            PartSjConfig {
                verify: VerifyConfig::NONE,
                ..Default::default()
            },
        ),
    ]
}

/// Size-window candidate pairs of a collection — the verifier's input
/// distribution without the probe machinery in the measured loop.
fn candidate_pairs(trees: &[Tree], tau: u32) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    for i in 0..trees.len() {
        for j in (i + 1)..trees.len() {
            if trees[i].len().abs_diff(trees[j].len()) as u32 <= tau {
                pairs.push((i, j));
            }
        }
    }
    pairs
}

fn report_ratios() {
    let trees = synthetic(150, &SyntheticParams::default(), 2015);
    // `pr3_chain` is the pre-refactor pipeline (size + traversal-SED
    // inline, no histogram, no early accept) — the baseline the new
    // stages must beat on TED calls.
    let pr3 = (
        "pr3_chain",
        PartSjConfig {
            verify: VerifyConfig {
                size: true,
                traversal: true,
                shape_accept: false,
                histogram: false,
            },
            ..Default::default()
        },
    );
    for tau in [1u32, 3] {
        for (name, config) in chain_configs().into_iter().chain([pr3]) {
            let outcome = partsj_join_with(&trees, tau, &config);
            let stats = &outcome.stats;
            let ratio = stats.candidates as f64 / (stats.ted_calls.max(1)) as f64;
            println!(
                "verify_pipeline: tau={tau} config={name} candidates={} ted_calls={} \
                 prefilter_skips={} early_accepts={} candidates_per_ted={ratio:.2}",
                stats.candidates, stats.ted_calls, stats.prefilter_skips, stats.early_accepts
            );
        }
    }
}

fn bench_check(c: &mut Criterion) {
    let trees = swissprot_like(90, 2015);
    let data: Vec<VerifyData> = trees.iter().map(VerifyData::new).collect();
    let mut group = c.benchmark_group("verify_pipeline/check");
    for tau in [1u32, 3] {
        let pairs = candidate_pairs(&trees, tau);
        for (name, config) in chain_configs() {
            group.bench_with_input(BenchmarkId::new(name, tau), &tau, |bench, &tau| {
                bench.iter(|| {
                    let mut engine = VerifyEngine::new(tau, &config);
                    let mut within = 0usize;
                    for &(i, j) in &pairs {
                        within += usize::from(engine.check(&data[i], &data[j]).is_some());
                    }
                    black_box(within)
                })
            });
        }
    }
    group.finish();
}

fn bench_join(c: &mut Criterion) {
    let trees = synthetic(150, &SyntheticParams::default(), 2015);
    let mut group = c.benchmark_group("verify_pipeline/join");
    for tau in [1u32, 3] {
        for (name, config) in chain_configs() {
            group.bench_with_input(BenchmarkId::new(name, tau), &tau, |bench, &tau| {
                bench.iter(|| black_box(partsj_join_with(&trees, tau, &config)))
            });
        }
    }
    group.finish();
}

fn bench_all(c: &mut Criterion) {
    report_ratios();
    bench_check(c);
    bench_join(c);
}

criterion_group!(benches, bench_all);
criterion_main!(benches);
