//! The scatter/gather router: planning, fan-out, retry, degradation —
//! generic over the [`NodeTransport`] that carries attempts to nodes.
//!
//! A join runs in three deterministic phases:
//!
//! 1. **Plan** — each probe's size window `[|T| − τ, |T| + τ]`
//!    ([`partsj::window_of`]) is split by the snapshot's `ShardMap` into
//!    one [`ShardRequest`] per owning shard, carrying exactly the classes
//!    that shard owns (the unit of coverage accounting). Requests go to
//!    the first *alive* replica of their shard.
//! 2. **Scatter** — the transport fans first attempts out, one worker per
//!    addressed node, in planning order. The in-process transport
//!    consults the fault injector *before* any compute, so failed
//!    attempts contribute no stats and retries can never double-count;
//!    the TCP transport sends real frames over pooled connections.
//! 3. **Gather + retry** — failed requests are retried *sequentially* in
//!    request order against replicas: a dead node means immediate
//!    failover (and a health mark the rest of the join sees); anything
//!    else backs off exponentially with deterministic jitter, bounded by
//!    [`crate::RetryPolicy::max_attempts`] and the per-probe deadline.
//!    Requests that exhaust replicas, attempts or deadline degrade: their
//!    classes are reported unserved, never silently dropped.
//!
//! Because every catalog tree's postings live in exactly one shard,
//! per-request candidate sets are disjoint and the gathered union is
//! bit-identical — pairs, candidate counts and filter-stage counters —
//! to single-node `Catalog::join`. The router is *one* implementation
//! ([`route_requests`]) shared by the in-process [`Cluster`] and the
//! `tsj-catalogd` TCP client, so the property suites that pin the
//! contract cover both transports.
//!
//! **Accounting**: every [`crate::Telemetry`] increment has a per-node
//! twin in [`crate::Cluster::metrics`] (recorded in the sequential
//! gather phase under identical conditions, so sums reconcile exactly)
//! and a per-request row in [`crate::RequestStats`]. The whole join runs
//! under a `cluster.join` trace span on the cluster's clock.

use crate::cluster::Cluster;
use crate::error::ClusterError;
use crate::fault::Fault;
use crate::metrics::ClusterMetrics;
use crate::node::ShardRequest;
use crate::outcome::{ClusterJoin, Degraded, RequestStats, Telemetry};
use crate::retry::RetryPolicy;
use crate::topology::Topology;
use crate::transport::{AttemptOutcome, LocalTransport, NodeTransport};
use partsj::{window_of, PartSjConfig};
use std::collections::BTreeMap;
use tsj_obs::Clock;
use tsj_shard::ShardMap;
use tsj_ted::{JoinOutcome, JoinStats, TreeIdx};
use tsj_tree::Tree;

/// Splits each probe's size window across the owning shards: one
/// [`ShardRequest`] per `(probe, shard)` combination, in probe order —
/// the plan phase, shared by the in-process cluster and the TCP client.
pub fn plan_requests(
    probes: &[Tree],
    tau: u32,
    map: &ShardMap,
    shard_count: usize,
) -> Vec<ShardRequest> {
    let mut requests: Vec<ShardRequest> = Vec::new();
    for (j, tree) in probes.iter().enumerate() {
        let (lo, hi) = window_of(tree.len() as u32, tau);
        let mut by_shard: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for n in lo..=hi {
            by_shard
                .entry(map.shard_of(n, shard_count) as u32)
                .or_default()
                .push(n);
        }
        for (shard, classes) in by_shard {
            requests.push(ShardRequest {
                probe: j as TreeIdx,
                shard,
                classes,
            });
        }
    }
    requests
}

/// Everything the generic router borrows from whoever drives it —
/// topology and health for replica choice, policy and clock for
/// retry/backoff, metrics for per-node attribution.
pub struct RouterEnv<'a> {
    /// The shard→replica placement table.
    pub topology: &'a Topology,
    /// Per-node liveness; the router clears entries when an attempt
    /// finds a node dead, and consults it for failover targets.
    pub health: &'a mut [bool],
    /// Retry/backoff/deadline policy.
    pub retry: &'a RetryPolicy,
    /// Seed of the deterministic backoff jitter
    /// ([`RetryPolicy::backoff_ms`]).
    pub backoff_seed: u64,
    /// The clock backoff sleeps on.
    pub clock: &'a dyn Clock,
    /// Per-node lifetime counters and latency histograms.
    pub metrics: &'a ClusterMetrics,
}

impl std::fmt::Debug for RouterEnv<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouterEnv")
            .field("nodes", &self.topology.nodes())
            .field("health", &self.health)
            .finish()
    }
}

/// The one scatter/gather implementation: fans `requests` out through
/// `transport`, retries failures sequentially with backoff and
/// failover, and unions the responses into a [`ClusterJoin`] whose
/// degradation report accounts for every unserved `(probe, class)`.
///
/// Both transports run through here — [`Cluster::join`] with the
/// in-process [`LocalTransport`], the `tsj-catalogd` `ClusterClient`
/// with its TCP transport — so retry policy, deadline accounting,
/// health marking, metrics attribution and the degradation contract
/// have exactly one implementation to test.
pub fn route_requests(
    transport: &mut dyn NodeTransport,
    requests: Vec<ShardRequest>,
    probe_count: usize,
    tau: u32,
    env: &mut RouterEnv<'_>,
) -> Result<ClusterJoin, ClusterError> {
    let mut telemetry = Telemetry {
        requests: requests.len() as u64,
        ..Telemetry::default()
    };

    // Phase 2: scatter to the first alive replica of each shard.
    let mut per_node: Vec<Vec<usize>> = vec![Vec::new(); env.topology.nodes()];
    let mut assigned: Vec<Option<usize>> = vec![None; requests.len()];
    for (r, req) in requests.iter().enumerate() {
        if let Some(n) = env
            .topology
            .replicas(req.shard)
            .iter()
            .copied()
            .find(|&n| env.health[n])
        {
            per_node[n].push(r);
            assigned[r] = Some(n);
        }
    }
    let outcomes = transport.scatter(&requests, &per_node, tau)?;

    // Phase 3: gather; retry failures sequentially, in request order.
    // All metric attribution happens here (never in the scatter
    // workers), so per-node counters are deterministic under any
    // thread interleaving.
    let mut responses = Vec::new();
    let mut unserved: Vec<(TreeIdx, u32)> = Vec::new();
    let mut probe_spent: Vec<u64> = vec![0; probe_count];
    // Effort sunk into requests that still went unserved.
    let (mut lost_attempts, mut lost_retries, mut lost_backoff) = (0u64, 0u64, 0u64);
    for (r, outcome) in outcomes.into_iter().enumerate() {
        let req = &requests[r];
        let p = req.probe as usize;
        let mut request = RequestStats {
            probe: req.probe,
            shard: req.shard,
            attempts: 0,
            retries: 0,
            backoff_ms: 0,
            spent_ms: 0,
            served: false,
        };
        let mut last_fault = match (outcome, assigned[r]) {
            (
                Some(AttemptOutcome::Served {
                    resp,
                    injected_delay_ms,
                    latency_ms,
                }),
                Some(node),
            ) => {
                telemetry.attempts += 1;
                request.attempts = 1;
                request.served = true;
                let cells = env.metrics.node(node);
                cells.attempts.inc();
                cells.served.inc();
                probe_spent[p] += latency_ms;
                request.spent_ms += latency_ms;
                if injected_delay_ms > 0 {
                    telemetry.faults += 1;
                    telemetry.delay_ms += injected_delay_ms;
                    cells.delays.inc();
                    cells.delay_ms.add(injected_delay_ms);
                }
                cells.latency.record(request.spent_ms);
                telemetry.per_request.push(request);
                responses.push(resp);
                continue;
            }
            (Some(AttemptOutcome::Failed(fault)), Some(n)) => {
                telemetry.attempts += 1;
                request.attempts = 1;
                telemetry.faults += 1;
                let cells = env.metrics.node(n);
                cells.attempts.inc();
                cells.failed.inc();
                match fault {
                    Fault::NodeDown => {
                        env.health[n] = false;
                        telemetry.failovers += 1;
                        cells.failovers.inc();
                    }
                    Fault::Timeout => {
                        probe_spent[p] += env.retry.request_timeout_ms;
                        request.spent_ms += env.retry.request_timeout_ms;
                    }
                    Fault::Transient => {}
                    Fault::Delay(_) => unreachable!("transports resolve delays before reporting"),
                }
                fault
            }
            (Some(AttemptOutcome::DeadlineExceeded), Some(n)) => {
                // A first attempt that already knows it cannot land in
                // time: charge the fault, degrade without retrying.
                telemetry.attempts += 1;
                request.attempts = 1;
                telemetry.faults += 1;
                probe_spent[p] = env.retry.probe_deadline_ms;
                let cells = env.metrics.node(n);
                cells.attempts.inc();
                cells.failed.inc();
                unserved.extend(req.classes.iter().map(|&c| (req.probe, c)));
                lost_attempts += 1;
                telemetry.per_request.push(request);
                continue;
            }
            // Never attempted: no alive replica at planning time.
            _ => Fault::NodeDown,
        };
        let mut served = false;
        for attempt in 1..env.retry.max_attempts {
            // Failover target: scan the replica ring from `attempt`
            // so consecutive retries of the same request prefer
            // different copies; skip anything known dead.
            let replicas = env.topology.replicas(req.shard);
            let target = (0..replicas.len())
                .map(|i| replicas[(attempt as usize + i) % replicas.len()])
                .find(|&n| env.health[n]);
            let Some(target) = target else {
                break; // every replica lost: unrecoverable
            };
            if last_fault != Fault::NodeDown {
                // Dead nodes fail over immediately; everything else
                // backs off first — within the probe's deadline.
                let backoff = env
                    .retry
                    .backoff_ms(env.backoff_seed, req.probe, req.shard, attempt);
                if probe_spent[p] + backoff > env.retry.probe_deadline_ms {
                    break;
                }
                env.clock.sleep_ms(backoff);
                probe_spent[p] += backoff;
                telemetry.backoff_ms += backoff;
                request.backoff_ms += backoff;
                request.spent_ms += backoff;
                env.metrics.node(target).backoff_ms.add(backoff);
            }
            telemetry.retries += 1;
            telemetry.attempts += 1;
            request.retries += 1;
            request.attempts += 1;
            let cells = env.metrics.node(target);
            cells.retries.inc();
            cells.attempts.inc();
            let deadline_left = env.retry.probe_deadline_ms.saturating_sub(probe_spent[p]);
            match transport.serve(target, req, attempt, tau, deadline_left)? {
                AttemptOutcome::Served {
                    resp,
                    injected_delay_ms,
                    latency_ms,
                } => {
                    if injected_delay_ms > 0 {
                        telemetry.faults += 1;
                        telemetry.delay_ms += injected_delay_ms;
                        cells.delays.inc();
                        cells.delay_ms.add(injected_delay_ms);
                    }
                    probe_spent[p] += latency_ms;
                    request.spent_ms += latency_ms;
                    responses.push(resp);
                    cells.served.inc();
                    cells.latency.record(request.spent_ms);
                    served = true;
                    break;
                }
                AttemptOutcome::DeadlineExceeded => {
                    telemetry.faults += 1;
                    probe_spent[p] = env.retry.probe_deadline_ms;
                    // The late response is discarded: the attempt
                    // produced nothing usable.
                    cells.failed.inc();
                    break; // the late response would land past the deadline
                }
                AttemptOutcome::Failed(Fault::Timeout)
                | AttemptOutcome::Failed(Fault::Delay(_)) => {
                    telemetry.faults += 1;
                    probe_spent[p] += env.retry.request_timeout_ms;
                    request.spent_ms += env.retry.request_timeout_ms;
                    cells.failed.inc();
                    last_fault = Fault::Timeout;
                    if probe_spent[p] >= env.retry.probe_deadline_ms {
                        break;
                    }
                }
                AttemptOutcome::Failed(Fault::Transient) => {
                    telemetry.faults += 1;
                    cells.failed.inc();
                    last_fault = Fault::Transient;
                }
                AttemptOutcome::Failed(Fault::NodeDown) => {
                    telemetry.faults += 1;
                    env.health[target] = false;
                    telemetry.failovers += 1;
                    cells.failed.inc();
                    cells.failovers.inc();
                    last_fault = Fault::NodeDown;
                }
            }
        }
        request.served = served;
        if !served {
            unserved.extend(req.classes.iter().map(|&c| (req.probe, c)));
            lost_attempts += u64::from(request.attempts);
            lost_retries += u64::from(request.retries);
            lost_backoff += request.backoff_ms;
        }
        telemetry.per_request.push(request);
    }

    // Union: pair sets are disjoint across shards, stats fold by name.
    telemetry.served = responses.len() as u64;
    let mut pairs: Vec<(TreeIdx, TreeIdx)> = Vec::new();
    let mut stats = JoinStats::default();
    for resp in &responses {
        pairs.extend(resp.matches.iter().map(|&i| (i, resp.probe)));
        stats.merge_partial(&resp.stats);
    }
    let outcome = JoinOutcome::new_bipartite(pairs, stats);
    let degraded = if unserved.is_empty() {
        None
    } else {
        unserved.sort_unstable();
        unserved.dedup();
        let lost_shards = (0..env.topology.shards() as u32)
            .filter(|&s| env.topology.replicas(s).iter().all(|&n| !env.health[n]))
            .collect();
        tsj_obs::tracer().instant(env.clock, "cluster.degraded", "cluster");
        Some(Degraded {
            unserved,
            lost_shards,
            attempts: lost_attempts,
            retries: lost_retries,
            backoff_ms: lost_backoff,
        })
    };
    let obs = tsj_obs::global();
    if obs.is_enabled() {
        obs.counter("tsj_cluster_joins_total").inc();
        if degraded.is_some() {
            obs.counter("tsj_cluster_degraded_joins_total").inc();
        }
    }
    Ok(ClusterJoin {
        outcome,
        degraded,
        telemetry,
    })
}

impl Cluster {
    /// Scatter/gather join of `probes` against the cluster at threshold
    /// `tau ≤ tau_frozen`: all `(catalog tree, probe)` pairs within TED
    /// `tau`, plus a [`Degraded`] report if any size classes went
    /// unserved. Fault handling is part of the contract: results are
    /// never silently incomplete and faults never panic.
    pub fn join(
        &mut self,
        probes: &[Tree],
        tau: u32,
        config: &PartSjConfig,
    ) -> Result<ClusterJoin, ClusterError> {
        if tau > self.tau {
            return Err(ClusterError::TauExceedsFrozen {
                query: tau,
                frozen: self.tau,
            });
        }
        let join_span = tsj_obs::tracer().span(&self.clock, "cluster.join", "cluster");

        // Phase 1: plan shard requests.
        let requests = plan_requests(probes, tau, &self.map, self.shard_count);
        let mut transport = LocalTransport::new(
            &self.slots,
            &self.injector,
            &*self.clock,
            self.retry.request_timeout_ms,
            probes,
            config,
        );
        let mut env = RouterEnv {
            topology: &self.topology,
            health: &mut self.health,
            retry: &self.retry,
            backoff_seed: self.injector.plan().seed,
            clock: &*self.clock,
            metrics: &self.metrics,
        };
        let result = route_requests(&mut transport, requests, probes.len(), tau, &mut env);
        join_span.end();
        result
    }
}
