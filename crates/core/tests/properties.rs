//! Property-based correctness tests for PartSJ.
//!
//! The two load-bearing properties:
//!
//! 1. **Lemma 2** — after at most `τ` edit operations, at least one
//!    subgraph of any `δ = 2τ+1`-partitioning of the original tree embeds
//!    in the edited tree;
//! 2. **Join equivalence** — PartSJ (all complete configurations) returns
//!    exactly the brute-force result set on random collections.

use partsj::{
    build_subgraphs, max_min_size, partitionable, partsj_join_detailed, partsj_join_with,
    select_cuts, subgraph_matches, PartSjConfig, PartitionScheme, WindowPolicy,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tsj_baselines::brute_force_join;
use tsj_datagen::{grow_tree, random_edit_script, ShapeProfile};
use tsj_tree::{BinaryTree, Tree};

fn random_tree(seed: u64, size: usize, labels: u32, deepen: f64) -> Tree {
    let profile = ShapeProfile {
        max_fanout: 4,
        max_depth: 12,
        deepen_prob: deepen,
    };
    grow_tree(&mut StdRng::seed_from_u64(seed), size, labels, &profile)
}

fn random_collection(seed: u64, count: usize, labels: u32) -> Vec<Tree> {
    // Mix fresh trees with lightly edited copies so joins are non-empty.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trees = Vec::with_capacity(count);
    for i in 0..count {
        if i >= 2 && rng.gen_bool(0.5) {
            let base_idx = rng.gen_range(0..trees.len());
            let edits = rng.gen_range(0..4usize);
            let (edited, _) = random_edit_script(&trees[base_idx], edits, &mut rng, labels);
            trees.push(edited);
        } else {
            let size = rng.gen_range(4..28usize);
            let deepen = rng.gen_range(0.0..0.7);
            trees.push(random_tree(rng.gen(), size, labels, deepen));
        }
    }
    trees
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma 2, end to end: partition, edit ≤ τ times, search for an
    /// embedded subgraph anywhere in the edited tree.
    #[test]
    fn lemma2_some_subgraph_survives(seed in any::<u64>(), tau in 1u32..4) {
        let delta = 2 * tau as usize + 1;
        let mut rng = StdRng::seed_from_u64(seed);
        let size = rng.gen_range(delta..delta + 40);
        let tree = random_tree(rng.gen(), size, 6, 0.3);
        prop_assume!(tree.len() >= delta);

        let binary = BinaryTree::from_tree(&tree);
        let gamma = max_min_size(&binary, delta);
        let cuts = select_cuts(&binary, delta, gamma);
        let subgraphs = build_subgraphs(&binary, &tree.postorder_numbers(), &cuts, 0);
        prop_assert_eq!(subgraphs.len(), delta);

        let edits = rng.gen_range(0..=tau as usize);
        let (edited, _) = random_edit_script(&tree, edits, &mut rng, 6);
        let edited_bin = BinaryTree::from_tree(&edited);

        let survived = subgraphs.iter().any(|sg| {
            edited_bin
                .node_ids()
                .any(|node| subgraph_matches(sg, &edited_bin, node))
        });
        prop_assert!(
            survived,
            "no subgraph survived {} edits (tau {}, tree size {})",
            edits, tau, tree.len()
        );
    }

    /// Join equivalence: every *complete* configuration (Safe window with
    /// MaxMin or Random partitioning) must equal brute force. The paper's
    /// Tight window is knowingly incomplete (≈0.2% of randomized runs, see
    /// `window_sweep.rs`), so it is only required to be a subset.
    #[test]
    fn partsj_equals_brute_force(seed in any::<u64>(), tau in 1u32..4) {
        let trees = random_collection(seed, 26, 5);
        let expected = brute_force_join(&trees, tau);

        for config in [
            PartSjConfig::default(),
            PartSjConfig {
                partitioning: PartitionScheme::Random { seed },
                ..Default::default()
            },
        ] {
            let outcome = partsj_join_with(&trees, tau, &config);
            prop_assert_eq!(
                &outcome.pairs,
                &expected.pairs,
                "config {:?} diverged from brute force (tau {})",
                config,
                tau
            );
        }

        let tight = partsj_join_with(
            &trees,
            tau,
            &PartSjConfig { window: WindowPolicy::Tight, ..Default::default() },
        );
        for pair in &tight.pairs {
            prop_assert!(
                expected.pairs.contains(pair),
                "tight window produced a non-result pair {:?}",
                pair
            );
        }
    }

    /// Candidate-count ordering between the windows: the tight window
    /// registers subgraphs in fewer groups, so it can only produce fewer
    /// (or equal) candidates, and its results are a subset of Safe's.
    #[test]
    fn window_candidate_ordering(seed in any::<u64>(), tau in 1u32..3) {
        let trees = random_collection(seed, 20, 5);
        let (tight, _) = partsj_join_detailed(
            &trees,
            tau,
            &PartSjConfig { window: WindowPolicy::Tight, ..Default::default() },
        );
        let (safe, _) = partsj_join_detailed(&trees, tau, &PartSjConfig::default());
        prop_assert!(tight.stats.candidates <= safe.stats.candidates);
        prop_assert!(tight.stats.results <= tight.stats.candidates);
        for pair in &tight.pairs {
            prop_assert!(safe.pairs.contains(pair));
        }
    }

    /// Partition invariants on random trees: δ disjoint components covering
    /// the tree, each of at least the optimal γ nodes, and γ is maximal.
    #[test]
    fn partition_invariants(seed in any::<u64>(), tau in 1u32..5) {
        let delta = 2 * tau as usize + 1;
        let mut rng = StdRng::seed_from_u64(seed);
        let size = rng.gen_range(delta..delta + 60);
        let tree = random_tree(rng.gen(), size, 8, 0.4);
        prop_assume!(tree.len() >= delta);
        let binary = BinaryTree::from_tree(&tree);

        let gamma = max_min_size(&binary, delta);
        prop_assert!(partitionable(&binary, delta, gamma));
        prop_assert!(!partitionable(&binary, delta, gamma + 1));

        let cuts = select_cuts(&binary, delta, gamma);
        prop_assert_eq!(cuts.len(), delta - 1);
        let subgraphs = build_subgraphs(&binary, &tree.postorder_numbers(), &cuts, 0);
        prop_assert_eq!(subgraphs.len(), delta);

        let total: usize = subgraphs.iter().map(|s| s.component_size()).sum();
        prop_assert_eq!(total, binary.len(), "components must partition the tree");
        for sg in &subgraphs {
            prop_assert!(
                sg.component_size() >= gamma as usize,
                "subgraph {} has {} nodes < gamma {}",
                sg.ordinal, sg.component_size(), gamma
            );
        }
        // Ordinals are assigned in discovery order, 1-based and dense.
        for (idx, sg) in subgraphs.iter().enumerate() {
            prop_assert_eq!(sg.ordinal as usize, idx + 1);
        }
    }

    /// Every subgraph of a tree matches its own tree at its own root
    /// (self-containment sanity for the matcher).
    #[test]
    fn subgraphs_match_their_container(seed in any::<u64>(), tau in 1u32..4) {
        let delta = 2 * tau as usize + 1;
        let mut rng = StdRng::seed_from_u64(seed);
        let size = rng.gen_range(delta..delta + 30);
        let tree = random_tree(rng.gen(), size, 4, 0.2);
        prop_assume!(tree.len() >= delta);
        let binary = BinaryTree::from_tree(&tree);
        let gamma = max_min_size(&binary, delta);
        let subgraphs = build_subgraphs(
            &binary,
            &tree.postorder_numbers(),
            &select_cuts(&binary, delta, gamma),
            0,
        );
        for sg in &subgraphs {
            prop_assert!(subgraph_matches(sg, &binary, sg.root));
        }
    }
}

/// Deterministic regression net: many seeds, moderate scale, sequential.
#[test]
fn join_equivalence_sweep() {
    for seed in 0..12u64 {
        let trees = random_collection(seed.wrapping_mul(0x9e3779b9), 30, 6);
        for tau in 1..=3u32 {
            let expected = brute_force_join(&trees, tau);
            let actual = partsj_join_with(&trees, tau, &PartSjConfig::default());
            assert_eq!(
                actual.pairs, expected.pairs,
                "seed {seed} tau {tau}: PartSJ diverged from brute force"
            );
        }
    }
}

/// The literal paper window (absolute postorder keys) must be a subset of
/// the truth — and this test documents that it *can* miss results, which
/// is why the suffix correction is the default.
#[test]
fn paper_absolute_window_is_subset_and_can_miss() {
    let mut missed_anywhere = false;
    for seed in 0..40u64 {
        let trees = random_collection(seed.wrapping_mul(31), 24, 5);
        for tau in 1..=3u32 {
            let expected = brute_force_join(&trees, tau);
            let paper = partsj_join_with(
                &trees,
                tau,
                &PartSjConfig {
                    window: WindowPolicy::PaperAbsolute,
                    ..Default::default()
                },
            );
            for pair in &paper.pairs {
                assert!(
                    expected.pairs.contains(pair),
                    "paper window produced a non-result pair {pair:?}"
                );
            }
            if paper.pairs.len() < expected.pairs.len() {
                missed_anywhere = true;
            }
        }
    }
    // We do not assert `missed_anywhere` — completeness violations need
    // size-differing near-pairs — but report it for the curious:
    eprintln!("paper-absolute window missed results in sweep: {missed_anywhere}");
}
