//! The transport seam between the scatter/gather router and whatever
//! actually serves a shard request.
//!
//! PR 7's router talked to nodes by calling [`crate::Node::serve`]
//! directly; `catalogd` needs the *same* plan/retry/failover/degradation
//! logic to drive requests over TCP. [`NodeTransport`] is the cut line:
//! the router plans requests, picks replicas, sleeps backoff, charges
//! deadlines and folds responses — a transport only answers "attempt
//! this request on that node" and reports what happened as an
//! [`AttemptOutcome`]. Two implementations exist:
//!
//! * [`LocalTransport`] (here) — the in-process path: consults the
//!   deterministic [`crate::FaultInjector`] *before* any compute, then
//!   calls `Node::serve` on the restored node. This is bit-for-bit the
//!   PR 7 behavior; every cluster property suite runs through it.
//! * `TcpTransport` (in the `tsj-catalogd` crate) — the same contract
//!   over pooled TCP connections, where faults are real: a refused or
//!   reset connection is [`Fault::NodeDown`], a socket read timeout is
//!   [`Fault::Timeout`], a server `Error` frame is [`Fault::Transient`].
//!
//! Because both transports feed the one router implementation
//! ([`crate::router::route_requests`]), the bit-identity contract —
//! pairs, candidate counts, filter-stage counters identical to
//! single-node `Catalog::join` — and the typed degradation contract are
//! proven once and inherited by every transport.

use crate::cluster::NodeSlot;
use crate::error::ClusterError;
use crate::fault::{Fault, FaultInjector};
use crate::node::{NodeScratch, ProbeCtx, ShardRequest, ShardResponse};
use partsj::PartSjConfig;
use tsj_obs::Clock;
use tsj_tree::Tree;

/// What one serve attempt produced, as the router's gather phase
/// consumes it.
#[derive(Debug)]
pub enum AttemptOutcome {
    /// The node answered.
    Served {
        /// The shard response (matches + partial stats).
        resp: ShardResponse,
        /// Injected delay the attempt absorbed before answering, in
        /// clock milliseconds — counted as a fault by the router.
        /// Real transports report `0` here.
        injected_delay_ms: u64,
        /// Deadline-accounted time the attempt cost, in clock
        /// milliseconds. For the in-process transport this equals the
        /// injected delay (compute is free on a virtual clock); a TCP
        /// transport reports measured wall time.
        latency_ms: u64,
    },
    /// The attempt failed with a retryable fault ([`Fault::Delay`] never
    /// appears here — transports resolve delays into `Served` or
    /// [`Fault::Timeout`] before reporting).
    Failed(Fault),
    /// The response would have landed past the probe's remaining
    /// deadline, so it was discarded before any wait: the request stops
    /// retrying and degrades.
    DeadlineExceeded,
}

/// One way of getting a [`ShardRequest`] answered by a node.
///
/// The router owns *policy* (replica choice, retry, backoff, deadlines,
/// health, metrics attribution); a transport owns *mechanism* (how an
/// attempt reaches a node and what its failure modes are). Transports
/// are constructed per join — they capture the probe batch and config up
/// front so retries can resend without re-preparing.
pub trait NodeTransport {
    /// First attempts, fanned out: `per_node[n]` lists the indices into
    /// `requests` routed to node `n` (only alive nodes appear). Returns
    /// one outcome per request index; entries for requests not listed in
    /// `per_node` stay `None` (the router treats them as having no alive
    /// replica). A returned error aborts the whole join — reserved for
    /// non-fault failures (a routing bug, a poisoned local node).
    fn scatter(
        &mut self,
        requests: &[ShardRequest],
        per_node: &[Vec<usize>],
        tau: u32,
    ) -> Result<Vec<Option<AttemptOutcome>>, ClusterError>;

    /// One sequential retry attempt of `req` against `node`, `attempt`
    /// being the 1-based retry ordinal (the fault injector and any
    /// server see fresh coordinates per attempt). `deadline_left_ms` is
    /// the probe's remaining deadline budget: a transport that knows the
    /// answer would land later returns
    /// [`AttemptOutcome::DeadlineExceeded`] without waiting.
    fn serve(
        &mut self,
        node: usize,
        req: &ShardRequest,
        attempt: u32,
        tau: u32,
        deadline_left_ms: u64,
    ) -> Result<AttemptOutcome, ClusterError>;
}

/// The in-process transport: the PR 7 scatter/gather mechanics against
/// restored [`crate::Node`]s, faults decided by the deterministic
/// injector *before* any compute runs (so failed attempts contribute no
/// stats and retries can never double-count).
pub struct LocalTransport<'a> {
    slots: &'a [NodeSlot],
    injector: &'a FaultInjector,
    clock: &'a dyn Clock,
    request_timeout_ms: u64,
    config: &'a PartSjConfig,
    /// Probe-side contexts, prepared once per join and shared by every
    /// shard request of a probe (scatter workers and retries alike).
    ctxs: Vec<ProbeCtx>,
    /// Serve scratch for the sequential retry path; scatter workers keep
    /// their own.
    scratch: NodeScratch,
}

impl<'a> LocalTransport<'a> {
    /// Prepares the transport for one join of `probes` under `config`.
    /// Crate-internal: only [`crate::Cluster::join`] builds one (the
    /// node slots it wraps are not public API).
    pub(crate) fn new(
        slots: &'a [NodeSlot],
        injector: &'a FaultInjector,
        clock: &'a dyn Clock,
        request_timeout_ms: u64,
        probes: &[Tree],
        config: &'a PartSjConfig,
    ) -> LocalTransport<'a> {
        LocalTransport {
            slots,
            injector,
            clock,
            request_timeout_ms,
            config,
            ctxs: ProbeCtx::batch(probes, config),
            scratch: NodeScratch::default(),
        }
    }

    fn node(&self, n: usize) -> &'a crate::Node {
        let NodeSlot::Up(node) = &self.slots[n] else {
            unreachable!("the router only routes to healthy nodes, which are restored")
        };
        node
    }
}

impl NodeTransport for LocalTransport<'_> {
    fn scatter(
        &mut self,
        requests: &[ShardRequest],
        per_node: &[Vec<usize>],
        tau: u32,
    ) -> Result<Vec<Option<AttemptOutcome>>, ClusterError> {
        let mut outcomes: Vec<Option<AttemptOutcome>> = requests.iter().map(|_| None).collect();
        let slots = self.slots;
        let injector = self.injector;
        let clock = self.clock;
        let timeout = self.request_timeout_ms;
        let config = self.config;
        let ctxs = &self.ctxs;
        let gathered = crossbeam::scope(|scope| {
            let handles: Vec<_> = per_node
                .iter()
                .enumerate()
                .filter(|(_, list)| !list.is_empty())
                .map(|(n, list)| {
                    scope.spawn(
                        move |_| -> Result<Vec<(usize, AttemptOutcome)>, ClusterError> {
                            let NodeSlot::Up(node) = &slots[n] else {
                                unreachable!("healthy nodes are restored")
                            };
                            let mut scratch = NodeScratch::default();
                            let mut out = Vec::with_capacity(list.len());
                            for &r in list {
                                let req = &requests[r];
                                let ctx = &ctxs[req.probe as usize];
                                let outcome = match injector.decide(n, req.probe, req.shard, 0) {
                                    None => AttemptOutcome::Served {
                                        resp: node.serve(req, ctx, tau, config, &mut scratch)?,
                                        injected_delay_ms: 0,
                                        latency_ms: 0,
                                    },
                                    Some(Fault::Delay(d)) if d <= timeout => {
                                        clock.sleep_ms(d);
                                        AttemptOutcome::Served {
                                            resp: node.serve(
                                                req,
                                                ctx,
                                                tau,
                                                config,
                                                &mut scratch,
                                            )?,
                                            injected_delay_ms: d,
                                            latency_ms: d,
                                        }
                                    }
                                    // A delay past the timeout *is* a
                                    // timeout: the response is discarded
                                    // before any work runs.
                                    Some(Fault::Delay(_)) => AttemptOutcome::Failed(Fault::Timeout),
                                    Some(fault) => AttemptOutcome::Failed(fault),
                                };
                                out.push((r, outcome));
                            }
                            Ok(out)
                        },
                    )
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scatter worker panicked"))
                .collect::<Vec<_>>()
        })
        .expect("scatter scope");
        for worker in gathered {
            for (r, outcome) in worker? {
                outcomes[r] = Some(outcome);
            }
        }
        Ok(outcomes)
    }

    fn serve(
        &mut self,
        node: usize,
        req: &ShardRequest,
        attempt: u32,
        tau: u32,
        deadline_left_ms: u64,
    ) -> Result<AttemptOutcome, ClusterError> {
        let ctx = &self.ctxs[req.probe as usize];
        match self.injector.decide(node, req.probe, req.shard, attempt) {
            None => Ok(AttemptOutcome::Served {
                resp: self
                    .node(node)
                    .serve(req, ctx, tau, self.config, &mut self.scratch)?,
                injected_delay_ms: 0,
                latency_ms: 0,
            }),
            Some(Fault::Delay(d)) if d <= self.request_timeout_ms => {
                if d > deadline_left_ms {
                    // The late response would land past the deadline:
                    // discard it before any work (or waiting) happens.
                    return Ok(AttemptOutcome::DeadlineExceeded);
                }
                self.clock.sleep_ms(d);
                Ok(AttemptOutcome::Served {
                    resp: self
                        .node(node)
                        .serve(req, ctx, tau, self.config, &mut self.scratch)?,
                    injected_delay_ms: d,
                    latency_ms: d,
                })
            }
            Some(Fault::Delay(_)) => Ok(AttemptOutcome::Failed(Fault::Timeout)),
            Some(fault) => Ok(AttemptOutcome::Failed(fault)),
        }
    }
}

impl std::fmt::Debug for LocalTransport<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalTransport")
            .field("nodes", &self.slots.len())
            .field("probes", &self.ctxs.len())
            .finish()
    }
}
