//! String (sequence) edit distance over label sequences.
//!
//! The STR baseline (Guha et al., reference \[13\]) lower-bounds TED by the
//! string edit distance between preorder/postorder label sequences. Joins
//! only care whether that bound exceeds the threshold `τ`, so besides the
//! full two-row DP we provide a banded computation that touches only the
//! `2τ + 1` diagonals around the main diagonal (Ukkonen's observation: a
//! cell `(i, j)` with `|i − j| > τ` can never be part of an alignment of
//! cost ≤ τ under unit costs).

use tsj_tree::Label;

/// Sentinel larger than any real distance but safe to add to.
const INF: u32 = u32::MAX / 4;

/// Full unit-cost string edit distance (Levenshtein) between two label
/// sequences, using the two-row dynamic program.
pub fn sed(a: &[Label], b: &[Label]) -> u32 {
    // Keep the inner loop over the shorter sequence for cache friendliness.
    let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
    let n = b.len();
    let mut prev: Vec<u32> = (0..=n as u32).collect();
    let mut cur: Vec<u32> = vec![0; n + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i as u32 + 1;
        for (j, &cb) in b.iter().enumerate() {
            let subst = prev[j] + u32::from(ca != cb);
            cur[j + 1] = subst.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[n]
}

/// Banded string edit distance with early rejection.
///
/// Returns `Some(d)` iff `sed(a, b) = d ≤ tau`, and `None` when the
/// distance exceeds `tau`. Runs in `O((τ + 1) · min(|a|, |b|))` time.
pub fn sed_within(a: &[Label], b: &[Label], tau: u32) -> Option<u32> {
    if a.len().abs_diff(b.len()) as u32 > tau {
        return None;
    }
    let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
    let (m, n) = (a.len(), b.len());
    let band = tau as usize;

    // Row i covers columns [i.saturating_sub(band), min(n, i + band)].
    let width = 2 * band + 1;
    let mut prev = vec![INF; width + 2];
    let mut cur = vec![INF; width + 2];
    // prev/cur[k] holds cell (i, j) with k = j + band - i + 1 (1-based
    // inside the buffer so k-1 / k+1 never go out of bounds).
    let idx = |i: usize, j: usize| j + band + 1 - i;

    // Row 0: cells (0, j) = j for j ≤ band.
    for j in 0..=band.min(n) {
        prev[idx(0, j)] = j as u32;
    }
    if m == 0 {
        let d = prev[idx(0, n)];
        return (d <= tau).then_some(d);
    }

    for i in 1..=m {
        cur.fill(INF);
        let lo = i.saturating_sub(band);
        let hi = (i + band).min(n);
        if lo > hi {
            return None;
        }
        let mut row_min = INF;
        for j in lo..=hi {
            let k = idx(i, j);
            let mut best = INF;
            if j > 0 {
                // (i-1, j-1) sits at the same k in the previous row.
                let subst = prev[k] + u32::from(a[i - 1] != b[j - 1]);
                best = best.min(subst);
                // (i, j-1): left neighbour in the current row.
                best = best.min(cur[k - 1].saturating_add(1));
            } else {
                best = best.min(i as u32); // (i, 0) boundary: delete i items
            }
            // (i-1, j): one diagonal to the right in the previous row.
            best = best.min(prev[k + 1].saturating_add(1));
            cur[k] = best;
            row_min = row_min.min(best);
        }
        if row_min > tau {
            return None; // the band can only grow costs downward
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let d = prev[idx(m, n)];
    (d <= tau).then_some(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(ids: &[u32]) -> Vec<Label> {
        ids.iter().map(|&i| Label::from_raw(i)).collect()
    }

    #[test]
    fn empty_and_trivial_cases() {
        assert_eq!(sed(&[], &[]), 0);
        assert_eq!(sed(&labels(&[1, 2, 3]), &[]), 3);
        assert_eq!(sed(&[], &labels(&[1, 2])), 2);
        assert_eq!(sed(&labels(&[1]), &labels(&[1])), 0);
        assert_eq!(sed(&labels(&[1]), &labels(&[2])), 1);
    }

    #[test]
    fn classic_cases() {
        // kitten -> sitting analog with label ids.
        let kitten = labels(&[11, 9, 20, 20, 5, 14]);
        let sitting = labels(&[19, 9, 20, 20, 9, 14, 7]);
        assert_eq!(sed(&kitten, &sitting), 3);
        assert_eq!(sed(&sitting, &kitten), 3);
    }

    #[test]
    fn paper_figure3_sequences() {
        // Preorder sequences of Figure 3 are identical: SED = 0.
        let pre = labels(&[1, 2, 1, 3]);
        assert_eq!(sed(&pre, &pre), 0);
        // Postorder sequences ℓ2ℓ3ℓ1ℓ1 vs ℓ1ℓ3ℓ2ℓ1: SED = 2.
        let post1 = labels(&[2, 3, 1, 1]);
        let post2 = labels(&[1, 3, 2, 1]);
        assert_eq!(sed(&post1, &post2), 2);
    }

    #[test]
    fn banded_agrees_with_full_when_within() {
        let a = labels(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let b = labels(&[1, 9, 3, 4, 6, 7, 8, 8]);
        let full = sed(&a, &b);
        for tau in full..full + 3 {
            assert_eq!(sed_within(&a, &b, tau), Some(full), "tau = {tau}");
        }
        for tau in 0..full {
            assert_eq!(sed_within(&a, &b, tau), None, "tau = {tau}");
        }
    }

    #[test]
    fn banded_rejects_on_length_gap() {
        let a = labels(&[1, 2, 3, 4, 5, 6]);
        let b = labels(&[1]);
        assert_eq!(sed_within(&a, &b, 3), None);
        assert_eq!(sed_within(&a, &b, 5), Some(5));
    }

    #[test]
    fn banded_zero_tau() {
        let a = labels(&[1, 2, 3]);
        assert_eq!(sed_within(&a, &a, 0), Some(0));
        let b = labels(&[1, 2, 4]);
        assert_eq!(sed_within(&a, &b, 0), None);
    }

    #[test]
    fn banded_empty_sequences() {
        assert_eq!(sed_within(&[], &[], 0), Some(0));
        assert_eq!(sed_within(&labels(&[1, 2]), &[], 2), Some(2));
        assert_eq!(sed_within(&labels(&[1, 2]), &[], 1), None);
    }

    #[test]
    fn randomized_banded_equals_full() {
        // Deterministic pseudo-random sweep (no external RNG needed here).
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200 {
            let la = (next() % 12) as usize;
            let lb = (next() % 12) as usize;
            let a: Vec<Label> = (0..la)
                .map(|_| Label::from_raw((next() % 4) as u32 + 1))
                .collect();
            let b: Vec<Label> = (0..lb)
                .map(|_| Label::from_raw((next() % 4) as u32 + 1))
                .collect();
            let full = sed(&a, &b);
            for tau in 0..8 {
                let banded = sed_within(&a, &b, tau);
                if full <= tau {
                    assert_eq!(banded, Some(full));
                } else {
                    assert_eq!(banded, None);
                }
            }
        }
    }
}
