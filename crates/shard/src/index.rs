//! The sharded dynamic subgraph index.
//!
//! [`ShardedIndex`] partitions subgraph postings across `N` shards by
//! the **container size class** through a pluggable [`ShardMap`]: every
//! size list `I_n` lives in exactly one shard, each shard owns an
//! independent [`partsj::SubgraphIndex`], and a probe window `[lo, hi]`
//! touches at most `min(hi − lo + 1, N)` shards. Shards therefore
//! build, probe and compact independently — the parallelism unit of
//! [`crate::join`] and the isolation unit of delete/evict. The default
//! map is a fixed multiplicative hash; batch builds can derive a
//! [`ShardMap::balanced`] assignment from the observed size histogram
//! instead (see `AdaptiveConfig::balanced_shards`).
//!
//! ## Dynamics
//!
//! The wrapped [`SubgraphIndex`] is insert-only, so removal is layered on
//! top:
//!
//! * [`ShardedIndex::remove_tree`] flips the tree's **liveness bit** —
//!   probe sinks filter dead container trees in O(1) per surfaced handle
//!   — and tombstones the tree's stored postings in its shard.
//! * Each shard tracks its live/dead posting counts. Once the dead
//!   fraction exceeds [`ShardConfig::max_dead_fraction`] (and at least
//!   [`ShardConfig::min_dead_postings`] postings are dead, so tiny shards
//!   don't thrash), the shard **compacts**: it rebuilds its private
//!   `SubgraphIndex` from the retained trees' stored subgraphs, in
//!   original insertion order, and drops the tombstones. Amortized, a
//!   posting is re-inserted at most `1/max_dead_fraction` times per
//!   eviction epoch.
//!
//! Storing each tree's subgraphs for replay roughly doubles the index's
//! memory; that is the standard price of compaction-based deletion (cf.
//! LSM tombstones) and is bounded by the live window in streaming use.

use partsj::probe::{probe_tree_nodes, CandidateSink, ProbeCounters};
use partsj::subgraph::Subgraph;
use partsj::{resolve_layers, LayerId, MatchCache, SubgraphIndex, WindowPolicy};
use tsj_obs::{Counter, Gauge};
use tsj_ted::TreeIdx;
use tsj_tree::{BinaryTree, FxHashMap};

/// Hoisted observability handles (global registry, sampled once at index
/// construction). Recording is a relaxed atomic op; with observability
/// disabled nothing is recorded at all.
#[derive(Debug)]
struct ObsCells {
    enabled: bool,
    inserts: Counter,
    removals: Counter,
    compactions: Counter,
    live_trees: Gauge,
    live_postings: Gauge,
}

impl ObsCells {
    fn new() -> ObsCells {
        let obs = tsj_obs::global();
        ObsCells {
            enabled: obs.is_enabled(),
            inserts: obs.counter("tsj_shard_trees_inserted_total"),
            removals: obs.counter("tsj_shard_trees_removed_total"),
            compactions: obs.counter("tsj_shard_compactions_total"),
            live_trees: obs.gauge("tsj_shard_live_trees"),
            live_postings: obs.gauge("tsj_shard_live_postings"),
        }
    }
}

/// Configuration of the shard layer (the join-level knobs — window,
/// partitioning, matching — stay in [`partsj::PartSjConfig`]).
#[derive(Debug, Clone, Copy)]
pub struct ShardConfig {
    /// Number of shards (≥ 1). More shards mean more build/compaction
    /// parallelism and smaller compaction units; probe cost is unchanged
    /// (each size class still lives in exactly one shard).
    pub shards: usize,
    /// Probe-side worker threads for the batch joins; `0` sizes the pool
    /// from `std::thread::available_parallelism`. `1` keeps candidate
    /// generation inline (no channel, no scope).
    pub probe_threads: usize,
    /// Verifier threads for the batch joins; `0` = auto.
    pub verify_threads: usize,
    /// A shard compacts once `dead / (dead + live)` postings exceed this
    /// fraction.
    pub max_dead_fraction: f64,
    /// …and at least this many postings are dead (hysteresis so small
    /// shards don't rebuild on every removal).
    pub min_dead_postings: u64,
}

impl Default for ShardConfig {
    fn default() -> ShardConfig {
        ShardConfig {
            shards: 4,
            probe_threads: 0,
            verify_threads: 0,
            max_dead_fraction: 0.25,
            min_dead_postings: 256,
        }
    }
}

impl ShardConfig {
    /// Default configuration with an explicit shard count.
    pub fn with_shards(shards: usize) -> ShardConfig {
        ShardConfig {
            shards,
            ..Default::default()
        }
    }

    /// Resolved probe-worker count (`0` → machine parallelism).
    pub fn resolved_probe_threads(&self) -> usize {
        resolve_threads(self.probe_threads)
    }

    /// Resolved verifier count (`0` → machine parallelism).
    pub fn resolved_verify_threads(&self) -> usize {
        resolve_threads(self.verify_threads)
    }
}

fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// The fixed multiplicative hash: the [`ShardMap::Hash`] routing and the
/// fallback for size classes a balanced map never observed.
#[inline]
fn hash_shard(size: u32, shards: usize) -> usize {
    let h = (u64::from(size).wrapping_mul(0x9e37_79b9_7f4a_7c15)) >> 32;
    (h % shards.max(1) as u64) as usize
}

/// How container size classes are routed to shards.
///
/// Routing decides *where* a size class's postings live, never *whether*
/// they exist, so any valid map yields bit-identical join results — the
/// choice only moves per-shard load around. The default [`Hash`] spreads
/// adjacent size classes with a fixed multiplicative hash; under a
/// skewed size distribution that can pile the heavy classes onto few
/// shards, which [`Balanced`] corrects by bin-packing the *observed*
/// posting masses (enabled via `AdaptiveConfig::balanced_shards`).
///
/// The map is part of a frozen catalog's identity: snapshots carry it in
/// an explicit, checksummed section, and loading validates every shard's
/// size classes against it.
///
/// [`Hash`]: ShardMap::Hash
/// [`Balanced`]: ShardMap::Balanced
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ShardMap {
    /// Fixed multiplicative hash of the size class (the static default).
    #[default]
    Hash,
    /// Explicit `size class → shard` assignments, sorted by size class.
    /// Sizes absent from the list (never observed when the map was
    /// derived) fall back to the hash — both insert and probe consult
    /// the same map, so routing stays consistent.
    Balanced(Vec<(u32, u32)>),
}

impl ShardMap {
    /// Derives a balanced map from an observed `(size class, posting
    /// mass)` histogram by greedy bin-packing: classes are placed
    /// heaviest-first onto the currently least-loaded shard (ties break
    /// toward the smaller size class and the lower shard id, keeping the
    /// derivation fully deterministic). Duplicate size entries are
    /// aggregated first.
    pub fn balanced(histogram: &[(u32, u64)], shards: usize) -> ShardMap {
        let shards = shards.max(1);
        let mut classes: Vec<(u32, u64)> = histogram.to_vec();
        classes.sort_unstable_by_key(|&(size, _)| size);
        classes.dedup_by(|b, a| {
            if a.0 == b.0 {
                a.1 += b.1;
                true
            } else {
                false
            }
        });
        // Heaviest first; among equals, smaller size class first.
        classes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut load = vec![0u64; shards];
        let mut assignment: Vec<(u32, u32)> = Vec::with_capacity(classes.len());
        for (size, mass) in classes {
            let target = (0..shards)
                .min_by_key(|&s| (load[s], s))
                .expect("at least one shard");
            // Even zero-mass classes count one unit, so they spread
            // instead of all landing on shard 0.
            load[target] += mass.max(1);
            assignment.push((size, target as u32));
        }
        assignment.sort_unstable_by_key(|&(size, _)| size);
        ShardMap::Balanced(assignment)
    }

    /// The shard owning `size` under this map, for a `shards`-shard
    /// index.
    #[inline]
    pub fn shard_of(&self, size: u32, shards: usize) -> usize {
        match self {
            ShardMap::Hash => hash_shard(size, shards),
            ShardMap::Balanced(pairs) => match pairs.binary_search_by_key(&size, |&(s, _)| s) {
                Ok(i) => pairs[i].1 as usize,
                Err(_) => hash_shard(size, shards),
            },
        }
    }

    /// Checks the map is usable with a `shards`-shard index: assignments
    /// sorted by strictly ascending size class, every target shard in
    /// range. A snapshot with an out-of-range or unsorted assignment
    /// fails here instead of panicking later.
    pub fn validate(&self, shards: usize) -> Result<(), String> {
        let ShardMap::Balanced(pairs) = self else {
            return Ok(());
        };
        for window in pairs.windows(2) {
            if window[0].0 >= window[1].0 {
                return Err(format!(
                    "shard map entries out of order: size {} then {}",
                    window[0].0, window[1].0
                ));
            }
        }
        for &(size, shard) in pairs {
            if shard as usize >= shards {
                return Err(format!(
                    "shard map routes size class {size} to shard {shard}, but only {shards} shards exist"
                ));
            }
        }
        Ok(())
    }
}

/// Derives a [`ShardMap::balanced`] assignment from partitioned build
/// items — the `(tree, size, subgraphs)` triples headed for
/// [`ShardedIndex::insert_all`] — using each size class's subgraph
/// count as its posting-mass proxy (bucket registrations are not known
/// until insertion and track subgraph counts closely). This is the
/// histogram the batch joins and the catalog freeze observe when
/// `AdaptiveConfig::balanced_shards` is on.
pub fn balanced_map_for(items: &[(TreeIdx, u32, Vec<Subgraph>)], shards: usize) -> ShardMap {
    let mut hist: FxHashMap<u32, u64> = FxHashMap::default();
    for (_, size, subgraphs) in items {
        *hist.entry(*size).or_insert(0) += subgraphs.len() as u64;
    }
    let mut hist: Vec<(u32, u64)> = hist.into_iter().collect();
    hist.sort_unstable();
    ShardMap::balanced(&hist, shards)
}

/// One tree's replayable contribution to a shard.
#[derive(Debug)]
struct Stored {
    tree: TreeIdx,
    size: u32,
    /// Bucket registrations this tree contributed (tombstone accounting).
    regs: u64,
    subgraphs: Vec<Subgraph>,
    dead: bool,
}

/// One shard: a private [`SubgraphIndex`] plus the replay log that makes
/// it compactable.
#[derive(Debug)]
struct Shard {
    index: SubgraphIndex,
    /// Insertion-ordered replay log; `dead` entries are dropped at the
    /// next compaction.
    stored: Vec<Stored>,
    slot_of: FxHashMap<TreeIdx, usize>,
    live_postings: u64,
    dead_postings: u64,
}

impl Shard {
    fn new(tau: u32, window: WindowPolicy) -> Shard {
        Shard {
            index: SubgraphIndex::new(tau, window),
            stored: Vec::new(),
            slot_of: FxHashMap::default(),
            live_postings: 0,
            dead_postings: 0,
        }
    }

    fn insert(&mut self, tree: TreeIdx, size: u32, subgraphs: Vec<Subgraph>, replay: bool) {
        let before = self.index.registrations();
        if replay {
            self.index.insert_tree(size, subgraphs.clone());
            let regs = self.index.registrations() - before;
            self.live_postings += regs;
            self.slot_of.insert(tree, self.stored.len());
            self.stored.push(Stored {
                tree,
                size,
                regs,
                subgraphs,
                dead: false,
            });
        } else {
            // Static (build-once) use: move the subgraphs straight into
            // the index — no clone, no replay log.
            self.index.insert_tree(size, subgraphs);
            self.live_postings += self.index.registrations() - before;
        }
    }

    /// Tombstones `tree`'s postings; returns whether the shard stored it.
    fn tombstone(&mut self, tree: TreeIdx) -> bool {
        let Some(&slot) = self.slot_of.get(&tree) else {
            return false;
        };
        let entry = &mut self.stored[slot];
        if entry.dead {
            return false;
        }
        entry.dead = true;
        self.live_postings -= entry.regs;
        self.dead_postings += entry.regs;
        self.slot_of.remove(&tree);
        true
    }

    fn should_compact(&self, max_dead_fraction: f64, min_dead_postings: u64) -> bool {
        self.dead_postings >= min_dead_postings.max(1)
            && (self.dead_postings as f64)
                > max_dead_fraction * (self.dead_postings + self.live_postings) as f64
    }

    /// Rebuilds the shard's index from the retained trees, in original
    /// insertion order, dropping every tombstone.
    fn compact(&mut self) {
        let mut index = SubgraphIndex::new(self.index.tau(), self.index.window());
        self.stored.retain(|entry| !entry.dead);
        self.slot_of.clear();
        for (slot, entry) in self.stored.iter().enumerate() {
            index.insert_tree(entry.size, entry.subgraphs.clone());
            self.slot_of.insert(entry.tree, slot);
        }
        self.index = index;
        self.live_postings = self.index.registrations();
        self.dead_postings = 0;
    }
}

/// A dynamic subgraph index partitioned across shards by container size
/// class. See the [module docs](crate::index) for the design.
#[derive(Debug)]
pub struct ShardedIndex {
    tau: u32,
    window: WindowPolicy,
    max_dead_fraction: f64,
    min_dead_postings: u64,
    /// Whether shards keep the compaction replay log (see
    /// [`ShardedIndex::without_replay`]).
    replay: bool,
    /// Size-class→shard routing (hash by default; a balanced map must be
    /// installed before the first insertion).
    map: ShardMap,
    shards: Vec<Shard>,
    /// Liveness bitmap over all tracked tree ids (small trees included).
    alive: Vec<bool>,
    /// Size of each tracked tree (`u32::MAX` = never tracked).
    sizes: Vec<u32>,
    live_trees: usize,
    removed_trees: u64,
    compactions: u64,
    obs: ObsCells,
}

impl ShardedIndex {
    /// Creates an empty sharded index for threshold `tau` under `window`.
    pub fn new(tau: u32, window: WindowPolicy, config: &ShardConfig) -> ShardedIndex {
        let shards = config.shards.max(1);
        ShardedIndex {
            tau,
            window,
            max_dead_fraction: config.max_dead_fraction,
            min_dead_postings: config.min_dead_postings,
            replay: true,
            map: ShardMap::Hash,
            shards: (0..shards).map(|_| Shard::new(tau, window)).collect(),
            alive: Vec::new(),
            sizes: Vec::new(),
            live_trees: 0,
            removed_trees: 0,
            compactions: 0,
            obs: ObsCells::new(),
        }
    }

    /// Disables the compaction replay log: subgraphs are moved into the
    /// shards (no clone, no `Stored` copy), halving build memory and
    /// skipping a full posting copy. For **static** (build-once) uses —
    /// the batch joins. [`ShardedIndex::remove_tree`] still works (the
    /// liveness bitmap filters probes) but tombstoned postings are never
    /// compacted away. Call before the first insertion.
    pub fn without_replay(mut self) -> ShardedIndex {
        debug_assert!(self.live_trees == 0, "set replay mode before inserting");
        self.replay = false;
        self
    }

    /// Reassembles a sharded index from per-shard [`SubgraphIndex`]es
    /// restored out of a snapshot (`tsj-catalog`), plus the `(tree id,
    /// size)` pairs of every tracked tree — all of which are alive: a
    /// freeze compacts liveness away, so a frozen snapshot has no dead
    /// entries to restore.
    ///
    /// The result is a static index (no replay log, like
    /// [`ShardedIndex::without_replay`]) that probes bit-identically to
    /// the index the shards were dumped from. Validates that every shard
    /// matches `(tau, window)` and that each shard only holds size
    /// classes it owns under `map` — a shard-section mix-up, or a
    /// snapshot whose shard-map section disagrees with its shard
    /// sections, surfaces here as an error, not as silently empty probe
    /// results.
    pub fn from_frozen_parts(
        tau: u32,
        window: WindowPolicy,
        map: ShardMap,
        shard_indexes: Vec<SubgraphIndex>,
        tracked: impl IntoIterator<Item = (TreeIdx, u32)>,
    ) -> Result<ShardedIndex, String> {
        if shard_indexes.is_empty() {
            return Err("a sharded index needs at least one shard".into());
        }
        let mut index = ShardedIndex::new(
            tau,
            window,
            &ShardConfig {
                shards: shard_indexes.len(),
                ..Default::default()
            },
        )
        .without_replay();
        index.set_shard_map(map)?;
        for (s, shard_index) in shard_indexes.into_iter().enumerate() {
            if shard_index.tau() != tau || shard_index.window() != window {
                return Err(format!(
                    "shard {s} was frozen for (tau {}, {:?}), expected (tau {tau}, {window:?})",
                    shard_index.tau(),
                    shard_index.window()
                ));
            }
            for size in shard_index.size_classes() {
                let owner = index.shard_of_size(size);
                if owner != s {
                    return Err(format!(
                        "shard {s} holds size class {size}, which shard {owner} owns"
                    ));
                }
            }
            index.shards[s].live_postings = shard_index.registrations();
            index.shards[s].index = shard_index;
        }
        for (tree, size) in tracked {
            let idx = tree as usize;
            if index.alive.get(idx).copied().unwrap_or(false) {
                return Err(format!("tree {tree} tracked twice"));
            }
            index.track(tree, size);
        }
        Ok(index)
    }

    /// Installs a size-class→shard routing map. Must happen before the
    /// first insertion — rerouting a populated index would strand
    /// postings in shards the probes no longer visit.
    pub fn set_shard_map(&mut self, map: ShardMap) -> Result<(), String> {
        if self.live_trees != 0 || self.live_postings() != 0 {
            return Err("install the shard map before inserting".into());
        }
        map.validate(self.shards.len())?;
        self.map = map;
        Ok(())
    }

    /// The active size-class→shard routing map.
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// The shard owning size class `size` under the active [`ShardMap`]
    /// (by default a multiplicative hash, so adjacent size classes spread
    /// across shards — a probe window `[|T| − τ, |T| + τ]` is a run of
    /// adjacent sizes).
    #[inline]
    pub fn shard_of_size(&self, size: u32) -> usize {
        self.map.shard_of(size, self.shards.len())
    }

    /// Live postings per shard — the load-imbalance diagnostic the
    /// balanced map is judged by (`max/mean` over this vector).
    pub fn shard_posting_loads(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.live_postings).collect()
    }

    /// The deduplicated shard ids covering size window `[lo, hi]`, in
    /// ascending shard order (deterministic). At most `min(hi − lo + 1,
    /// shards)` entries.
    pub fn shard_set(&self, lo: u32, hi: u32, out: &mut Vec<usize>) {
        out.clear();
        out.extend((lo..=hi).map(|n| self.shard_of_size(n)));
        out.sort_unstable();
        out.dedup();
    }

    /// Registers `tree` (of `size` nodes) as tracked and alive *without*
    /// postings — the side channel for trees below `δ` that cannot be
    /// partitioned but still need liveness/eviction accounting.
    pub fn track(&mut self, tree: TreeIdx, size: u32) {
        let idx = tree as usize;
        if self.alive.len() <= idx {
            self.alive.resize(idx + 1, false);
            self.sizes.resize(idx + 1, u32::MAX);
        }
        debug_assert!(!self.alive[idx], "tree {tree} tracked twice");
        self.alive[idx] = true;
        self.sizes[idx] = size;
        self.live_trees += 1;
        if self.obs.enabled {
            self.obs.inserts.inc();
            self.obs.live_trees.set(self.live_trees as i64);
        }
    }

    /// Inserts a partitioned tree: tracks it and registers its subgraphs
    /// in the shard owning size class `size`.
    pub fn insert_tree(&mut self, tree: TreeIdx, size: u32, subgraphs: Vec<Subgraph>) {
        self.track(tree, size);
        let shard = self.shard_of_size(size);
        let replay = self.replay;
        self.shards[shard].insert(tree, size, subgraphs, replay);
        if self.obs.enabled {
            self.obs.live_postings.set(self.live_postings() as i64);
        }
    }

    /// Bulk-inserts `(tree, size, subgraphs)` triples, preserving the
    /// given order within every shard. With `parallel`, shards ingest
    /// concurrently over scoped threads (they own disjoint size classes,
    /// so no synchronization is needed); the resulting index is
    /// *identical* to sequential insertion either way.
    pub fn insert_all(&mut self, items: Vec<(TreeIdx, u32, Vec<Subgraph>)>, parallel: bool) {
        let build_span = tsj_obs::span("shard.build", "shard");
        let mut per_shard: Vec<Vec<(TreeIdx, u32, Vec<Subgraph>)>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (tree, size, subgraphs) in items {
            self.track(tree, size);
            per_shard[self.shard_of_size(size)].push((tree, size, subgraphs));
        }
        let replay = self.replay;
        if parallel && self.shards.len() > 1 {
            crossbeam::scope(|scope| {
                for (shard, items) in self.shards.iter_mut().zip(per_shard) {
                    if items.is_empty() {
                        continue;
                    }
                    scope.spawn(move |_| {
                        for (tree, size, subgraphs) in items {
                            shard.insert(tree, size, subgraphs, replay);
                        }
                    });
                }
            })
            .expect("shard build scope");
        } else {
            for (shard, items) in self.shards.iter_mut().zip(per_shard) {
                for (tree, size, subgraphs) in items {
                    shard.insert(tree, size, subgraphs, replay);
                }
            }
        }
        if self.obs.enabled {
            self.obs.live_postings.set(self.live_postings() as i64);
        }
        build_span.end();
    }

    /// Removes a tracked tree: clears its liveness bit (probes stop
    /// surfacing it immediately), tombstones its postings, and compacts
    /// the owning shard if its dead fraction crossed the threshold.
    /// Returns `false` if the tree was unknown or already removed.
    pub fn remove_tree(&mut self, tree: TreeIdx) -> bool {
        let idx = tree as usize;
        if idx >= self.alive.len() || !self.alive[idx] {
            return false;
        }
        self.alive[idx] = false;
        self.live_trees -= 1;
        self.removed_trees += 1;
        let shard_id = self.shard_of_size(self.sizes[idx]);
        let shard = &mut self.shards[shard_id];
        if shard.tombstone(tree)
            && shard.should_compact(self.max_dead_fraction, self.min_dead_postings)
        {
            shard.compact();
            self.compactions += 1;
            if self.obs.enabled {
                self.obs.compactions.inc();
            }
        }
        if self.obs.enabled {
            self.obs.removals.inc();
            self.obs.live_trees.set(self.live_trees as i64);
            self.obs.live_postings.set(self.live_postings() as i64);
        }
        true
    }

    /// Whether `tree` is tracked and not removed.
    #[inline]
    pub fn is_alive(&self, tree: TreeIdx) -> bool {
        self.alive.get(tree as usize).copied().unwrap_or(false)
    }

    /// The liveness bitmap, indexed by tree id — probe sinks capture this
    /// slice instead of borrowing the whole index.
    #[inline]
    pub fn alive_bitmap(&self) -> &[bool] {
        &self.alive
    }

    /// Size of a tracked tree (`None` if never tracked).
    pub fn size_of(&self, tree: TreeIdx) -> Option<u32> {
        match self.sizes.get(tree as usize) {
            Some(&s) if s != u32::MAX => Some(s),
            _ => None,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The private index of shard `s` (probe it with
    /// [`partsj::probe_tree_nodes`]).
    #[inline]
    pub fn shard_index(&self, s: usize) -> &SubgraphIndex {
        &self.shards[s].index
    }

    /// Currently alive tracked trees (side-listed small trees included).
    pub fn live_trees(&self) -> usize {
        self.live_trees
    }

    /// Trees removed over the index's lifetime.
    pub fn removed_trees(&self) -> u64 {
        self.removed_trees
    }

    /// Shard compactions performed over the index's lifetime.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Live postings across all shards.
    pub fn live_postings(&self) -> u64 {
        self.shards.iter().map(|s| s.live_postings).sum()
    }

    /// Tombstoned (not yet compacted) postings across all shards.
    pub fn dead_postings(&self) -> u64 {
        self.shards.iter().map(|s| s.dead_postings).sum()
    }

    /// The configured threshold.
    pub fn tau(&self) -> u32 {
        self.tau
    }

    /// The configured window policy.
    pub fn window(&self) -> WindowPolicy {
        self.window
    }

    /// Probes every node of `binary` against every shard covering size
    /// window `[lo, hi]`, visiting each shard's populated layers through
    /// the shared Algorithm 1 inner loop. Dead container trees are
    /// filtered before the sink sees them. `caches` must hold one
    /// [`MatchCache`] per shard (component ids are per-shard);
    /// `shard_scratch`/`layer_scratch` are reusable buffers.
    #[allow(clippy::too_many_arguments)]
    pub fn probe_tree<S: CandidateSink>(
        &self,
        binary: &BinaryTree,
        posts: &[u32],
        probe_size: u32,
        lo: u32,
        hi: u32,
        matching: partsj::MatchSemantics,
        caches: &mut [MatchCache],
        shard_scratch: &mut Vec<usize>,
        layer_scratch: &mut Vec<LayerId>,
        counters: &mut ProbeCounters,
        sink: &mut S,
    ) {
        self.shard_set(lo, hi, shard_scratch);
        for &s in shard_scratch.iter() {
            let index = &self.shards[s].index;
            resolve_layers(index, lo, hi, layer_scratch);
            if layer_scratch.is_empty() {
                continue;
            }
            let mut live_sink = LiveSink {
                alive: &self.alive,
                inner: &mut *sink,
            };
            probe_tree_nodes(
                index,
                layer_scratch,
                binary,
                posts,
                probe_size,
                matching,
                &mut caches[s],
                counters,
                &mut live_sink,
            );
        }
    }
}

/// Sink adapter that drops dead container trees before delegating.
struct LiveSink<'a, S> {
    alive: &'a [bool],
    inner: &'a mut S,
}

impl<S: CandidateSink> CandidateSink for LiveSink<'_, S> {
    #[inline]
    fn admit(&mut self, tree: TreeIdx) -> bool {
        self.alive.get(tree as usize).copied().unwrap_or(false) && self.inner.admit(tree)
    }

    #[inline]
    fn accept(&mut self, tree: TreeIdx) {
        self.inner.accept(tree);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partsj::partition::cuts_for;
    use partsj::subgraph::build_subgraphs;
    use partsj::{PartSjConfig, StampSink};
    use tsj_tree::{parse_bracket, LabelInterner, Tree};

    fn subgraphs_for(tree: &Tree, tau: u32, id: TreeIdx) -> (u32, Vec<Subgraph>) {
        let binary = BinaryTree::from_tree(tree);
        let delta = 2 * tau as usize + 1;
        let cuts = cuts_for(
            &binary,
            delta,
            PartSjConfig::default().partitioning,
            u64::from(id),
        );
        let sgs = build_subgraphs(&binary, &tree.postorder_numbers(), &cuts, id);
        (tree.len() as u32, sgs)
    }

    fn probe_live(index: &ShardedIndex, tree: &Tree, tau: u32, tracked: usize) -> Vec<TreeIdx> {
        let binary = BinaryTree::from_tree(tree);
        let posts = tree.postorder_numbers();
        let size = tree.len() as u32;
        let mut caches: Vec<MatchCache> = (0..index.shard_count())
            .map(|_| MatchCache::new())
            .collect();
        let mut stamp = vec![TreeIdx::MAX; tracked];
        let mut candidates = Vec::new();
        let mut sink = StampSink {
            stamp: &mut stamp,
            marker: 0,
            candidates: &mut candidates,
        };
        let (mut shards, mut layers) = (Vec::new(), Vec::new());
        let mut counters = ProbeCounters::default();
        index.probe_tree(
            &binary,
            &posts,
            size,
            size.saturating_sub(tau).max(1),
            size + tau,
            partsj::MatchSemantics::Exact,
            &mut caches,
            &mut shards,
            &mut layers,
            &mut counters,
            &mut sink,
        );
        candidates.sort_unstable();
        candidates
    }

    #[test]
    fn window_covers_bounded_shard_set() {
        let index = ShardedIndex::new(3, WindowPolicy::Safe, &ShardConfig::with_shards(8));
        let mut set = Vec::new();
        index.shard_set(10, 16, &mut set); // 2τ + 1 = 7 sizes
        assert!(!set.is_empty() && set.len() <= 7);
        assert!(set.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
        // Every size in the window is owned by a shard in the set.
        for n in 10..=16 {
            assert!(set.contains(&index.shard_of_size(n)));
        }
    }

    #[test]
    fn insert_remove_and_liveness() {
        let mut labels = LabelInterner::new();
        let tau = 1;
        let specs = ["{a{b}{c}{d}}", "{a{b}{c}{e}}", "{a{b}{c}{f}}"];
        let trees: Vec<Tree> = specs
            .iter()
            .map(|s| parse_bracket(s, &mut labels).unwrap())
            .collect();
        let mut index = ShardedIndex::new(tau, WindowPolicy::Safe, &ShardConfig::with_shards(4));
        for (i, tree) in trees.iter().enumerate() {
            let (size, sgs) = subgraphs_for(tree, tau, i as TreeIdx);
            index.insert_tree(i as TreeIdx, size, sgs);
        }
        assert_eq!(index.live_trees(), 3);

        let probe = parse_bracket("{a{b}{c}{d}}", &mut labels).unwrap();
        let found = probe_live(&index, &probe, tau, 3);
        assert_eq!(found, vec![0, 1, 2]);

        assert!(index.remove_tree(1));
        assert!(!index.remove_tree(1), "double remove is a no-op");
        assert!(!index.is_alive(1));
        assert_eq!(index.live_trees(), 2);
        let found = probe_live(&index, &probe, tau, 3);
        assert_eq!(found, vec![0, 2], "removed tree no longer surfaces");
    }

    #[test]
    fn compaction_triggers_and_preserves_results() {
        let mut labels = LabelInterner::new();
        let tau = 1;
        let mut index = ShardedIndex::new(
            tau,
            WindowPolicy::Safe,
            &ShardConfig {
                shards: 2,
                max_dead_fraction: 0.2,
                min_dead_postings: 1,
                ..Default::default()
            },
        );
        let mut trees = Vec::new();
        for i in 0..20u32 {
            // Same shape, distinct leaf labels: all within TED 2 of each
            // other but distinct trees.
            let src = format!("{{a{{b}}{{c}}{{l{i}}}}}");
            let tree = parse_bracket(&src, &mut labels).unwrap();
            let (size, sgs) = subgraphs_for(&tree, tau, i);
            index.insert_tree(i, size, sgs);
            trees.push(tree);
        }
        for i in 0..10u32 {
            index.remove_tree(i);
        }
        assert!(
            index.compactions() > 0,
            "dead fraction must trigger compaction"
        );
        assert_eq!(index.live_trees(), 10);
        // After compaction the survivors still probe correctly.
        let found = probe_live(&index, &trees[10], tau, 20);
        assert_eq!(found, (10..20).collect::<Vec<_>>());
        // And the dead postings were actually dropped somewhere.
        assert!(index.dead_postings() < index.live_postings());
    }

    #[test]
    fn without_replay_probes_and_removes_but_keeps_no_log() {
        let mut labels = LabelInterner::new();
        let tau = 1;
        let specs = ["{a{b}{c}{d}}", "{a{b}{c}{e}}", "{a{b}{c}{f}}"];
        let trees: Vec<Tree> = specs
            .iter()
            .map(|s| parse_bracket(s, &mut labels).unwrap())
            .collect();
        let mut index = ShardedIndex::new(tau, WindowPolicy::Safe, &ShardConfig::with_shards(4))
            .without_replay();
        for (i, tree) in trees.iter().enumerate() {
            let (size, sgs) = subgraphs_for(tree, tau, i as TreeIdx);
            index.insert_tree(i as TreeIdx, size, sgs);
        }
        let probe = parse_bracket("{a{b}{c}{d}}", &mut labels).unwrap();
        assert_eq!(probe_live(&index, &probe, tau, 3), vec![0, 1, 2]);
        // Removal still hides the tree from probes (liveness bitmap) even
        // though nothing is tombstoned or compacted.
        assert!(index.remove_tree(1));
        assert_eq!(probe_live(&index, &probe, tau, 3), vec![0, 2]);
        assert_eq!(index.dead_postings(), 0);
        assert_eq!(index.compactions(), 0);
    }

    #[test]
    fn balanced_map_evens_a_skewed_histogram() {
        // One giant class plus many small ones: the hash may stack them;
        // greedy bin-packing must keep the max shard load near the mean.
        let histogram: Vec<(u32, u64)> = std::iter::once((10u32, 1000u64))
            .chain((11..27).map(|s| (s, 50)))
            .collect();
        let total: u64 = histogram.iter().map(|&(_, m)| m).sum();
        let shards = 4;
        let map = ShardMap::balanced(&histogram, shards);
        map.validate(shards).unwrap();
        let mut load = vec![0u64; shards];
        for &(size, mass) in &histogram {
            load[map.shard_of(size, shards)] += mass;
        }
        let max = *load.iter().max().unwrap();
        // The giant class dominates: optimal max load is 1000, and
        // greedy placement must not co-locate anything heavy with it.
        assert_eq!(max, 1000, "{load:?}");
        assert_eq!(load.iter().sum::<u64>(), total);
    }

    #[test]
    fn balanced_map_is_deterministic_and_falls_back_on_unseen_sizes() {
        let histogram = [(5u32, 7u64), (9, 7), (3, 2), (12, 0)];
        let a = ShardMap::balanced(&histogram, 3);
        let b = ShardMap::balanced(&histogram, 3);
        assert_eq!(a, b);
        // A size the histogram never saw routes through the hash, same
        // as the Hash map itself.
        assert_eq!(a.shard_of(999, 3), ShardMap::Hash.shard_of(999, 3));
        // Zero-mass classes still get a (validated) home.
        let ShardMap::Balanced(pairs) = &a else {
            panic!("balanced constructor must not return Hash")
        };
        assert!(pairs.iter().any(|&(size, _)| size == 12));
    }

    #[test]
    fn shard_map_validation_rejects_bad_assignments() {
        assert!(
            ShardMap::Balanced(vec![(4, 9)]).validate(4).is_err(),
            "out of range"
        );
        assert!(
            ShardMap::Balanced(vec![(7, 0), (5, 1)])
                .validate(4)
                .is_err(),
            "unsorted"
        );
        assert!(ShardMap::Balanced(vec![(5, 1), (7, 0)]).validate(4).is_ok());
        assert!(ShardMap::Hash.validate(1).is_ok());
    }

    #[test]
    fn shard_map_installs_only_on_an_empty_index() {
        let mut labels = LabelInterner::new();
        let tau = 1;
        let mut index = ShardedIndex::new(tau, WindowPolicy::Safe, &ShardConfig::with_shards(2));
        index
            .set_shard_map(ShardMap::Balanced(vec![(4, 1)]))
            .unwrap();
        assert_eq!(index.shard_of_size(4), 1);
        let tree = parse_bracket("{a{b}{c}{d}}", &mut labels).unwrap();
        let (size, sgs) = subgraphs_for(&tree, tau, 0);
        index.insert_tree(0, size, sgs);
        assert!(
            index.set_shard_map(ShardMap::Hash).is_err(),
            "rerouting a populated index must fail"
        );
        assert_eq!(index.shard_posting_loads().len(), 2);
        assert!(index.shard_posting_loads()[1] > 0, "routed to shard 1");
    }

    #[test]
    fn frozen_parts_validate_against_the_map() {
        let tau = 1;
        let window = WindowPolicy::Safe;
        let mut labels = LabelInterner::new();
        let tree = parse_bracket("{a{b}{c}{d}}", &mut labels).unwrap();
        let (size, sgs) = subgraphs_for(&tree, tau, 0);
        let mut donor = SubgraphIndex::new(tau, window);
        donor.insert_tree(size, sgs);
        let empty = SubgraphIndex::new(tau, window);
        // The donor shard sits at position 0, but the map says size 4
        // belongs to shard 1: loading must fail loudly.
        let err = ShardedIndex::from_frozen_parts(
            tau,
            window,
            ShardMap::Balanced(vec![(size, 1)]),
            vec![donor, empty],
            [(0, size)],
        );
        assert!(err.is_err());
    }

    #[test]
    fn small_trees_track_without_postings() {
        let mut index = ShardedIndex::new(2, WindowPolicy::Safe, &ShardConfig::default());
        index.track(0, 2);
        assert!(index.is_alive(0));
        assert_eq!(index.size_of(0), Some(2));
        assert_eq!(index.live_postings(), 0);
        assert!(index.remove_tree(0));
        assert_eq!(index.live_trees(), 0);
    }
}
