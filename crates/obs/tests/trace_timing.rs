//! Virtual-clock span timing: spans stamped on a [`VirtualClock`]
//! record *exact* begin stamps and durations — no tolerance windows —
//! and the chrome-trace dump carries them verbatim in microseconds.

use std::sync::Arc;
use tsj_obs::{Clock, EventKind, ObsConfig, TraceBuffer, VirtualClock};

fn setup() -> (Arc<TraceBuffer>, Arc<VirtualClock>, Arc<dyn Clock>) {
    let buffer = Arc::new(TraceBuffer::new(64));
    let virtual_clock = Arc::new(VirtualClock::new());
    let clock: Arc<dyn Clock> = virtual_clock.clone();
    (buffer, virtual_clock, clock)
}

#[test]
fn span_durations_are_exact_on_a_virtual_clock() {
    let (buffer, virtual_clock, clock) = setup();
    virtual_clock.sleep_ms(100); // begin at t = 100
    let span = buffer.span(&clock, "serve", "cluster");
    assert_eq!(span.begin_ms(), 100);
    virtual_clock.sleep_ms(37);
    assert_eq!(span.end(), 37, "end() returns the exact duration");

    let events = buffer.events();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].name, "serve");
    assert_eq!(events[0].cat, "cluster");
    assert_eq!(events[0].ts_ms, 100);
    assert_eq!(events[0].dur_ms, 37);
    assert_eq!(events[0].kind, EventKind::Span);
}

#[test]
fn nested_spans_record_their_own_exact_windows() {
    let (buffer, virtual_clock, clock) = setup();
    let outer = buffer.span(&clock, "join", "core");
    virtual_clock.sleep_ms(5);
    {
        let inner = buffer.span(&clock, "verify", "core");
        virtual_clock.sleep_ms(11);
        drop(inner); // recorded first: [5, 16)
    }
    virtual_clock.sleep_ms(4);
    drop(outer); // recorded second: [0, 20)

    let events = buffer.events();
    assert_eq!(events.len(), 2);
    assert_eq!((events[0].ts_ms, events[0].dur_ms), (5, 11), "inner");
    assert_eq!((events[1].ts_ms, events[1].dur_ms), (0, 20), "outer");
}

#[test]
fn instants_stamp_the_current_time() {
    let (buffer, virtual_clock, clock) = setup();
    virtual_clock.sleep_ms(42);
    buffer.instant(&*clock, "node.down", "cluster");
    let events = buffer.events();
    assert_eq!((events[0].ts_ms, events[0].dur_ms), (42, 0));
    assert_eq!(events[0].kind, EventKind::Instant);
}

#[test]
fn chrome_trace_dump_carries_exact_microsecond_stamps() {
    let (buffer, virtual_clock, clock) = setup();
    virtual_clock.sleep_ms(3);
    let span = buffer.span(&clock, "freeze", "catalog");
    virtual_clock.sleep_ms(9);
    drop(span);
    let json = buffer.to_chrome_json();
    assert!(
        json.contains("\"ph\":\"X\",\"ts\":3000,\"dur\":9000"),
        "exact µs stamps, got: {json}"
    );
}

/// The global layer obeys [`ObsConfig`]: a disabled tracer makes spans
/// inert, re-enabling restores exact recording on an injected clock.
#[test]
fn global_spans_follow_the_config_and_injected_clock() {
    let virtual_clock = Arc::new(VirtualClock::new());
    tsj_obs::set_clock(virtual_clock.clone());
    tsj_obs::configure(&ObsConfig::DISABLED);
    tsj_obs::tracer().clear();
    let quiet = tsj_obs::span("invisible", "test");
    virtual_clock.sleep_ms(8);
    assert_eq!(quiet.end(), 0, "disabled spans are inert");
    assert!(tsj_obs::tracer().is_empty());

    tsj_obs::configure(&ObsConfig::ON);
    let span = tsj_obs::span("visible", "test");
    virtual_clock.sleep_ms(13);
    assert_eq!(span.end(), 13);
    let events = tsj_obs::tracer().events();
    let visible = events.iter().find(|e| e.name == "visible").unwrap();
    assert_eq!(visible.dur_ms, 13);
    tsj_obs::configure(&ObsConfig::default());
}
