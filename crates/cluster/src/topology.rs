//! Shard placement: which nodes hold which shard sections.
//!
//! Placement is round-robin with replication: shard `s`'s replica list
//! is `[(s + k) mod N for k in 0..R]`, primary first — deterministic,
//! balanced (node loads differ by at most one shard), and every replica
//! set holds `R` *distinct* nodes as long as `R ≤ N`. The topology is a
//! plain table, so recovery can reassign a dead node's slot to a
//! survivor ([`Topology::reassign`]) without disturbing anything else.

use crate::error::ClusterError;

/// The shard→replica-nodes table of one cluster.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: usize,
    replication: usize,
    /// `assignment[shard]` = replica nodes, primary first.
    assignment: Vec<Vec<usize>>,
}

impl Topology {
    /// Round-robin placement of `shards` shards over `nodes` nodes with
    /// `replication` copies each. `replication` is clamped to the node
    /// count (more copies than nodes is not placeable); zero nodes is a
    /// typed error.
    pub fn new(shards: usize, nodes: usize, replication: usize) -> Result<Topology, ClusterError> {
        if nodes == 0 {
            return Err(ClusterError::Topology {
                context: "a cluster needs at least one node".into(),
            });
        }
        let replication = replication.clamp(1, nodes);
        let assignment = (0..shards)
            .map(|s| (0..replication).map(|k| (s + k) % nodes).collect())
            .collect();
        Ok(Topology {
            nodes,
            replication,
            assignment,
        })
    }

    /// Builds a topology from an explicit `assignment[shard]` replica
    /// table (each list primary first) — how a TCP client reconstructs
    /// placement from what a node set *advertises* rather than assuming
    /// round-robin. Every list must be non-empty, duplicate-free, and
    /// within `0..nodes`.
    pub fn from_assignment(
        nodes: usize,
        assignment: Vec<Vec<usize>>,
    ) -> Result<Topology, ClusterError> {
        if nodes == 0 {
            return Err(ClusterError::Topology {
                context: "a cluster needs at least one node".into(),
            });
        }
        let mut replication = 1;
        for (s, replicas) in assignment.iter().enumerate() {
            if replicas.is_empty() {
                return Err(ClusterError::Topology {
                    context: format!("shard {s} has no replicas"),
                });
            }
            let mut seen = replicas.clone();
            seen.sort_unstable();
            seen.dedup();
            if seen.len() != replicas.len() || seen.last().copied().unwrap_or(0) >= nodes {
                return Err(ClusterError::Topology {
                    context: format!("shard {s} has an invalid replica list {replicas:?}"),
                });
            }
            replication = replication.max(replicas.len());
        }
        Ok(Topology {
            nodes,
            replication,
            assignment,
        })
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Copies per shard.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Number of shards placed.
    pub fn shards(&self) -> usize {
        self.assignment.len()
    }

    /// Replica nodes of `shard`, primary first.
    pub fn replicas(&self, shard: u32) -> &[usize] {
        &self.assignment[shard as usize]
    }

    /// The shards `node` holds a replica of, ascending.
    pub fn shards_of(&self, node: usize) -> Vec<u32> {
        (0..self.assignment.len() as u32)
            .filter(|&s| self.assignment[s as usize].contains(&node))
            .collect()
    }

    /// Moves `shard`'s replica slot from `from` to `to` (recovery after
    /// node loss). No-op if `from` holds no slot; refuses to create a
    /// duplicate replica on `to`.
    pub fn reassign(&mut self, shard: u32, from: usize, to: usize) -> Result<(), ClusterError> {
        let slots = &mut self.assignment[shard as usize];
        if slots.contains(&to) {
            return Err(ClusterError::Topology {
                context: format!("node {to} already holds a replica of shard {shard}"),
            });
        }
        if let Some(slot) = slots.iter_mut().find(|n| **n == from) {
            *slot = to;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicas_are_distinct_and_balanced() {
        let topo = Topology::new(8, 4, 2).unwrap();
        for s in 0..8 {
            let replicas = topo.replicas(s);
            assert_eq!(replicas.len(), 2);
            assert_ne!(replicas[0], replicas[1]);
        }
        let loads: Vec<usize> = (0..4).map(|n| topo.shards_of(n).len()).collect();
        assert_eq!(loads, vec![4, 4, 4, 4]);
    }

    #[test]
    fn replication_clamps_to_node_count() {
        let topo = Topology::new(4, 2, 5).unwrap();
        assert_eq!(topo.replication(), 2);
        assert!(Topology::new(4, 0, 1).is_err());
    }

    #[test]
    fn reassign_moves_a_slot() {
        let mut topo = Topology::new(4, 4, 2).unwrap();
        let replicas = topo.replicas(0).to_vec();
        let spare = (0..4).find(|n| !replicas.contains(n)).unwrap();
        topo.reassign(0, replicas[1], spare).unwrap();
        assert!(topo.replicas(0).contains(&spare));
        assert!(!topo.replicas(0).contains(&replicas[1]));
        // A duplicate replica is refused.
        assert!(topo.reassign(0, replicas[0], spare).is_err());
    }
}
