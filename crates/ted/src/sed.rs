//! String (sequence) edit distance over label sequences.
//!
//! The STR baseline (Guha et al., reference \[13\]) lower-bounds TED by the
//! string edit distance between preorder/postorder label sequences. Joins
//! only care whether that bound exceeds the threshold `τ`, so besides the
//! full two-row DP we provide a banded computation that touches only the
//! `2τ + 1` diagonals around the main diagonal (Ukkonen's observation: a
//! cell `(i, j)` with `|i − j| > τ` can never be part of an alignment of
//! cost ≤ τ under unit costs).
//!
//! Both kernels run out of a caller-provided [`SedScratch`] so that the
//! verify hot path performs no heap allocation per candidate: the row and
//! band buffers grow to the largest sequence seen and are reused from then
//! on. The band buffer uses `u16` cells whenever the distances fit (they
//! do for any sequence under ~32k labels), halving the working set the
//! inner loop streams through.

use tsj_tree::Label;

/// Sentinel larger than any real distance but safe to add to.
const INF: u32 = u32::MAX / 4;

/// Reusable row/band buffers for [`sed_with`] and [`sed_within_with`].
///
/// Grow-only: buffers are resized up to the largest request and never
/// shrink, so steady-state calls are allocation-free. One scratch serves
/// both the full DP (two `u32` rows of length `min(|a|, |b|) + 1`) and the
/// banded DP (two fixed-width band rows, `u16` when distances fit).
/// Carrying a dirty scratch across calls of different sizes is safe — each
/// kernel fully initializes the region it reads.
#[derive(Debug, Default, Clone)]
pub struct SedScratch {
    prev32: Vec<u32>,
    cur32: Vec<u32>,
    prev16: Vec<u16>,
    cur16: Vec<u16>,
}

impl SedScratch {
    /// An empty scratch; buffers are grown on first use.
    pub fn new() -> SedScratch {
        SedScratch::default()
    }
}

/// A band-buffer cell: `u16` when the distances fit, `u32` otherwise.
/// Only the arithmetic the banded DP needs — everything inlines to plain
/// integer ops.
trait Cell: Copy + Ord {
    /// Sentinel larger than any real distance, safe to `bump` once.
    const INF: Self;
    fn from_u32(v: u32) -> Self;
    fn to_u32(self) -> u32;
    /// `self + 1` (insertion/deletion step).
    fn bump(self) -> Self;
    /// `self + cost` for a 0/1 substitution cost.
    fn add_cost(self, cost: u32) -> Self;
}

impl Cell for u32 {
    const INF: u32 = INF;
    #[inline(always)]
    fn from_u32(v: u32) -> u32 {
        v
    }
    #[inline(always)]
    fn to_u32(self) -> u32 {
        self
    }
    #[inline(always)]
    fn bump(self) -> u32 {
        self + 1
    }
    #[inline(always)]
    fn add_cost(self, cost: u32) -> u32 {
        self + cost
    }
}

impl Cell for u16 {
    // Real cells never exceed m + band + 1 (every in-band cell has a real
    // diagonal predecessor), so INF only ever gets bumped once: INF + 1
    // stays well under u16::MAX.
    const INF: u16 = u16::MAX / 2;
    #[inline(always)]
    fn from_u32(v: u32) -> u16 {
        v as u16
    }
    #[inline(always)]
    fn to_u32(self) -> u32 {
        u32::from(self)
    }
    #[inline(always)]
    fn bump(self) -> u16 {
        self + 1
    }
    #[inline(always)]
    fn add_cost(self, cost: u32) -> u16 {
        self + cost as u16
    }
}

/// Full unit-cost string edit distance (Levenshtein) between two label
/// sequences, using the two-row dynamic program.
///
/// Convenience wrapper over [`sed_with`] that allocates a fresh scratch;
/// hot paths should hold a [`SedScratch`] and call [`sed_with`] directly.
pub fn sed(a: &[Label], b: &[Label]) -> u32 {
    sed_with(a, b, &mut SedScratch::new())
}

/// Full unit-cost string edit distance using caller-provided row buffers.
/// Allocation-free once `scratch` has grown to the sequence length.
pub fn sed_with(a: &[Label], b: &[Label], scratch: &mut SedScratch) -> u32 {
    // Keep the inner loop over the shorter sequence for cache friendliness.
    let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
    let n = b.len();
    if scratch.prev32.len() < n + 1 {
        scratch.prev32.resize(n + 1, 0);
        scratch.cur32.resize(n + 1, 0);
    }
    let mut prev: &mut [u32] = &mut scratch.prev32[..n + 1];
    let mut cur: &mut [u32] = &mut scratch.cur32[..n + 1];
    for (j, cell) in prev.iter_mut().enumerate() {
        *cell = j as u32;
    }
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i as u32 + 1;
        for (j, &cb) in b.iter().enumerate() {
            let subst = prev[j] + u32::from(ca != cb);
            cur[j + 1] = subst.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[n]
}

/// Banded string edit distance with early rejection.
///
/// Returns `Some(d)` iff `sed(a, b) = d ≤ tau`, and `None` when the
/// distance exceeds `tau`. Runs in `O((τ + 1) · min(|a|, |b|))` time.
///
/// Convenience wrapper over [`sed_within_with`] that allocates a fresh
/// scratch; hot paths should hold a [`SedScratch`] and call
/// [`sed_within_with`] directly.
pub fn sed_within(a: &[Label], b: &[Label], tau: u32) -> Option<u32> {
    sed_within_with(a, b, tau, &mut SedScratch::new())
}

/// Banded string edit distance using caller-provided band buffers.
/// Allocation-free once `scratch` has grown to the band width; uses `u16`
/// cells whenever the distances fit (sequences under ~32k labels).
pub fn sed_within_with(
    a: &[Label],
    b: &[Label],
    tau: u32,
    scratch: &mut SedScratch,
) -> Option<u32> {
    if a.len().abs_diff(b.len()) as u32 > tau {
        return None;
    }
    let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
    // Real cells are bounded by m + band + 1; pick u16 whenever that fits
    // under its INF sentinel so the inner loop streams half the bytes.
    if a.len() + tau as usize + 2 <= u16::INF.to_u32() as usize {
        banded::<u16>(a, b, tau, &mut scratch.prev16, &mut scratch.cur16)
    } else {
        banded::<u32>(a, b, tau, &mut scratch.prev32, &mut scratch.cur32)
    }
}

/// The banded DP proper, generic over the cell width. `a` is the longer
/// sequence; the length gap has already been checked against `tau`.
///
/// The inner loop is branchless: the `j = 0` boundary column is hoisted
/// out, and each remaining cell is a pure min-of-three over the band
/// buffers (compiled to `cmov`/`min` instructions, no data-dependent
/// branches).
fn banded<C: Cell>(
    a: &[Label],
    b: &[Label],
    tau: u32,
    prev_buf: &mut Vec<C>,
    cur_buf: &mut Vec<C>,
) -> Option<u32> {
    let (m, n) = (a.len(), b.len());
    let band = tau as usize;

    // Row i covers columns [i.saturating_sub(band), min(n, i + band)].
    let width = 2 * band + 3;
    if prev_buf.len() < width {
        prev_buf.resize(width, C::INF);
        cur_buf.resize(width, C::INF);
    }
    let mut prev: &mut [C] = &mut prev_buf[..width];
    let mut cur: &mut [C] = &mut cur_buf[..width];
    // prev/cur[k] holds cell (i, j) with k = j + band - i + 1 (1-based
    // inside the buffer so k-1 / k+1 never go out of bounds).
    let idx = |i: usize, j: usize| j + band + 1 - i;

    // Row 0: cells (0, j) = j for j ≤ band.
    prev.fill(C::INF);
    for j in 0..=band.min(n) {
        prev[idx(0, j)] = C::from_u32(j as u32);
    }
    if m == 0 {
        let d = prev[idx(0, n)].to_u32();
        return (d <= tau).then_some(d);
    }

    for i in 1..=m {
        cur.fill(C::INF);
        let lo = i.saturating_sub(band);
        let hi = (i + band).min(n);
        debug_assert!(lo <= hi, "band never empties while the gap ≤ τ");
        let mut row_min = C::INF;
        if lo == 0 {
            // Column 0 boundary: (i, 0) costs i deletions. Hoisted so the
            // inner loop needs no j == 0 test.
            let v = C::from_u32(i as u32);
            cur[idx(i, 0)] = v;
            row_min = v;
        }
        for j in lo.max(1)..=hi {
            let k = j + band + 1 - i;
            // (i-1, j-1) sits at the same k in the previous row; it is
            // always a real (in-band) value, so costs never accumulate
            // past INF + 1.
            let subst = prev[k].add_cost(u32::from(a[i - 1] != b[j - 1]));
            // (i-1, j): one diagonal to the right in the previous row.
            let del = prev[k + 1].bump();
            // (i, j-1): left neighbour in the current row.
            let ins = cur[k - 1].bump();
            let best = subst.min(del).min(ins);
            cur[k] = best;
            row_min = row_min.min(best);
        }
        if row_min.to_u32() > tau {
            return None; // the band can only grow costs downward
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let d = prev[idx(m, n)].to_u32();
    (d <= tau).then_some(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(ids: &[u32]) -> Vec<Label> {
        ids.iter().map(|&i| Label::from_raw(i)).collect()
    }

    #[test]
    fn empty_and_trivial_cases() {
        assert_eq!(sed(&[], &[]), 0);
        assert_eq!(sed(&labels(&[1, 2, 3]), &[]), 3);
        assert_eq!(sed(&[], &labels(&[1, 2])), 2);
        assert_eq!(sed(&labels(&[1]), &labels(&[1])), 0);
        assert_eq!(sed(&labels(&[1]), &labels(&[2])), 1);
    }

    #[test]
    fn classic_cases() {
        // kitten -> sitting analog with label ids.
        let kitten = labels(&[11, 9, 20, 20, 5, 14]);
        let sitting = labels(&[19, 9, 20, 20, 9, 14, 7]);
        assert_eq!(sed(&kitten, &sitting), 3);
        assert_eq!(sed(&sitting, &kitten), 3);
    }

    #[test]
    fn paper_figure3_sequences() {
        // Preorder sequences of Figure 3 are identical: SED = 0.
        let pre = labels(&[1, 2, 1, 3]);
        assert_eq!(sed(&pre, &pre), 0);
        // Postorder sequences ℓ2ℓ3ℓ1ℓ1 vs ℓ1ℓ3ℓ2ℓ1: SED = 2.
        let post1 = labels(&[2, 3, 1, 1]);
        let post2 = labels(&[1, 3, 2, 1]);
        assert_eq!(sed(&post1, &post2), 2);
    }

    #[test]
    fn banded_agrees_with_full_when_within() {
        let a = labels(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let b = labels(&[1, 9, 3, 4, 6, 7, 8, 8]);
        let full = sed(&a, &b);
        for tau in full..full + 3 {
            assert_eq!(sed_within(&a, &b, tau), Some(full), "tau = {tau}");
        }
        for tau in 0..full {
            assert_eq!(sed_within(&a, &b, tau), None, "tau = {tau}");
        }
    }

    #[test]
    fn banded_rejects_on_length_gap() {
        let a = labels(&[1, 2, 3, 4, 5, 6]);
        let b = labels(&[1]);
        assert_eq!(sed_within(&a, &b, 3), None);
        assert_eq!(sed_within(&a, &b, 5), Some(5));
    }

    #[test]
    fn banded_zero_tau() {
        let a = labels(&[1, 2, 3]);
        assert_eq!(sed_within(&a, &a, 0), Some(0));
        let b = labels(&[1, 2, 4]);
        assert_eq!(sed_within(&a, &b, 0), None);
    }

    #[test]
    fn banded_empty_sequences() {
        assert_eq!(sed_within(&[], &[], 0), Some(0));
        assert_eq!(sed_within(&labels(&[1, 2]), &[], 2), Some(2));
        assert_eq!(sed_within(&labels(&[1, 2]), &[], 1), None);
    }

    #[test]
    fn randomized_banded_equals_full() {
        // Deterministic pseudo-random sweep (no external RNG needed here).
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200 {
            let la = (next() % 12) as usize;
            let lb = (next() % 12) as usize;
            let a: Vec<Label> = (0..la)
                .map(|_| Label::from_raw((next() % 4) as u32 + 1))
                .collect();
            let b: Vec<Label> = (0..lb)
                .map(|_| Label::from_raw((next() % 4) as u32 + 1))
                .collect();
            let full = sed(&a, &b);
            for tau in 0..8 {
                let banded = sed_within(&a, &b, tau);
                if full <= tau {
                    assert_eq!(banded, Some(full));
                } else {
                    assert_eq!(banded, None);
                }
            }
        }
    }

    #[test]
    fn dirty_scratch_reuse_across_mismatched_sizes() {
        // One scratch carried across wildly different sequence lengths and
        // thresholds must behave exactly like fresh allocations: each call
        // fully initializes the region it reads.
        let mut scratch = SedScratch::new();
        let mut state = 0xdeadbeefcafef00du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..300 {
            let la = (next() % 40) as usize;
            let lb = (next() % 40) as usize;
            let a: Vec<Label> = (0..la)
                .map(|_| Label::from_raw((next() % 5) as u32 + 1))
                .collect();
            let b: Vec<Label> = (0..lb)
                .map(|_| Label::from_raw((next() % 5) as u32 + 1))
                .collect();
            let tau = (next() % 10) as u32;
            let full_fresh = sed(&a, &b);
            assert_eq!(sed_with(&a, &b, &mut scratch), full_fresh, "round {round}");
            let banded = sed_within_with(&a, &b, tau, &mut scratch);
            if full_fresh <= tau {
                assert_eq!(banded, Some(full_fresh), "round {round}");
            } else {
                assert_eq!(banded, None, "round {round}");
            }
        }
    }

    #[test]
    fn u32_band_path_matches_u16() {
        // Force the u32 cell path by exceeding the u16 length cutoff and
        // check it agrees with the full DP.
        let len = u16::MAX as usize / 2 + 10;
        let a: Vec<Label> = (0..len)
            .map(|i| Label::from_raw((i % 7) as u32 + 1))
            .collect();
        let mut b = a.clone();
        b[100] = Label::from_raw(99);
        b[2000] = Label::from_raw(98);
        let mut scratch = SedScratch::new();
        assert_eq!(sed_within_with(&a, &b, 3, &mut scratch), Some(2));
        assert_eq!(sed_within_with(&a, &b, 1, &mut scratch), None);
        assert_eq!(sed_within_with(&a, &a, 0, &mut scratch), Some(0));
    }
}
