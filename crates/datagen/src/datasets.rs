//! Collection generators for the paper's four evaluation datasets (§4).
//!
//! The three real datasets (Swissprot, Treebank, Sentiment) are not
//! redistributable offline, so — per the substitution policy in DESIGN.md —
//! each is simulated by a generator tuned to reproduce the statistics the
//! paper reports (average tree size, label count, average and maximum
//! depth). The synthetic dataset follows the Zaki generator parameters of
//! Table 1 plus the decay factor `Dz` of Yang et al.
//!
//! Every collection mixes *independent* random trees with clusters of
//! lightly-edited near-duplicates (the decay model of Yang et al.): real
//! collections contain both unrelated entries and versioned/near-duplicate
//! ones, and it is this mix the filters under study are sensitive to. A
//! mother-tree sampler in the style of Zaki's generator is also available
//! ([`crate::mother`]) for workloads with heavy substructure sharing.
//! Collections are deterministic in `(n, seed)`.

use crate::grow::{grow_tree, ShapeProfile};
use crate::mutate::random_edit_script;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use tsj_tree::Tree;

/// Parameters of the Zaki-style synthetic generator (paper Table 1).
#[derive(Debug, Clone, Copy)]
pub struct SyntheticParams {
    /// Maximum fanout `f` (default 3).
    pub fanout: usize,
    /// Maximum depth `d` (default 5).
    pub depth: usize,
    /// Number of distinct labels `l` (default 20).
    pub labels: u32,
    /// Average tree size `t` (default 80).
    pub avg_size: usize,
    /// Decay factor `Dz` (default 0.05, as in Yang et al.).
    pub decay: f64,
}

impl Default for SyntheticParams {
    fn default() -> Self {
        SyntheticParams {
            fanout: 3,
            depth: 5,
            labels: 20,
            avg_size: 80,
            decay: 0.05,
        }
    }
}

/// Fraction of the collection that belongs to near-duplicate clusters.
const CLUSTER_FRACTION: f64 = 0.5;
/// Trees per near-duplicate cluster (one base plus mutated copies).
const CLUSTER_SIZE: usize = 4;

/// Mixed generation: independent random trees plus light-edit clusters.
///
/// Each cluster copy receives `Uniform{0..=max_ops}` random edit
/// operations against the cluster base, with `max_ops ≈ 2·dz·avg_size`
/// (so the expected per-copy edit count matches the decay model's
/// `dz·avg_size`). Pairwise distances inside a cluster therefore spread
/// from 0 to `2·max_ops`, giving the τ-sweep results at every threshold.
fn mixed_collection<R: Rng, F: FnMut(&mut R) -> Tree>(
    n: usize,
    rng: &mut R,
    num_labels: u32,
    avg_size: usize,
    dz: f64,
    mut fresh: F,
) -> Vec<Tree> {
    let max_ops = ((2.0 * dz * avg_size as f64).round() as usize).clamp(2, 10);
    let clustered_target = (n as f64 * CLUSTER_FRACTION) as usize;
    let mut trees = Vec::with_capacity(n);
    while trees.len() < clustered_target.min(n) {
        let base = fresh(rng);
        let copies = (CLUSTER_SIZE - 1).min(n - trees.len() - 1);
        for _ in 0..copies {
            let ops = rng.gen_range(0..=max_ops);
            let (copy, _) = random_edit_script(&base, ops, rng, num_labels);
            trees.push(copy);
        }
        trees.push(base);
    }
    while trees.len() < n {
        trees.push(fresh(rng));
    }
    trees.shuffle(rng);
    trees
}

/// Samples a tree size uniformly in `[avg/2, 3·avg/2]` (mean `avg`).
fn sample_size<R: Rng>(rng: &mut R, avg: usize) -> usize {
    let lo = (avg / 2).max(1);
    let hi = (3 * avg) / 2;
    rng.gen_range(lo..=hi.max(lo))
}

/// The synthetic dataset: Zaki-style random trees + decay clusters
/// (§4, Table 1).
pub fn synthetic(n: usize, params: &SyntheticParams, seed: u64) -> Vec<Tree> {
    let mut rng = StdRng::seed_from_u64(seed);
    let profile = ShapeProfile {
        max_fanout: params.fanout,
        max_depth: params.depth,
        deepen_prob: 0.25,
    };
    let (labels, avg, decay) = (params.labels, params.avg_size, params.decay);
    mixed_collection(n, &mut rng, labels, avg, decay, move |rng| {
        let size = sample_size(rng, avg);
        grow_tree(rng, size, labels, &profile)
    })
}

/// Swissprot-like: 100K-scale flat, medium trees.
///
/// Paper statistics: average size 62.37, 84 labels, average depth 2.65,
/// maximum depth 4. Protein entries are wide shallow records, so the
/// profile uses high fanout, depth cap 4 and no deepening bias.
pub fn swissprot_like(n: usize, seed: u64) -> Vec<Tree> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x5155));
    let profile = ShapeProfile {
        max_fanout: 24,
        max_depth: 4,
        deepen_prob: 0.0,
    };
    mixed_collection(n, &mut rng, 84, 62, 0.05, move |rng| {
        let size = sample_size(rng, 62);
        grow_tree(rng, size, 84, &profile)
    })
}

/// Treebank-like: small, deep parse trees.
///
/// Paper statistics: average size 45.12, 218 labels, average depth 6.93,
/// maximum depth 35. A strong deepening bias yields parse-like spines.
pub fn treebank_like(n: usize, seed: u64) -> Vec<Tree> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x7EEB));
    let profile = ShapeProfile {
        max_fanout: 6,
        max_depth: 35,
        deepen_prob: 0.66,
    };
    mixed_collection(n, &mut rng, 218, 45, 0.05, move |rng| {
        let size = sample_size(rng, 45);
        grow_tree(rng, size, 218, &profile)
    })
}

/// Sentiment-like: binarized sentiment parse trees.
///
/// Paper statistics: average size 37.31, 5 labels, average depth 10.84,
/// maximum depth 30. Fanout is capped at 2 (the Stanford sentiment
/// treebank is binarized) with a moderate deepening bias.
pub fn sentiment_like(n: usize, seed: u64) -> Vec<Tree> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x5E47));
    let profile = ShapeProfile {
        max_fanout: 2,
        max_depth: 30,
        deepen_prob: 0.78,
    };
    mixed_collection(n, &mut rng, 5, 37, 0.05, move |rng| {
        let size = sample_size(rng, 37);
        grow_tree(rng, size, 5, &profile)
    })
}

/// Summary statistics of a collection, mirroring the numbers the paper
/// reports for each dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectionStats {
    /// Number of trees.
    pub cardinality: usize,
    /// Mean tree size.
    pub avg_size: f64,
    /// Largest tree size.
    pub max_size: usize,
    /// Number of distinct labels across the collection.
    pub distinct_labels: usize,
    /// Mean node depth over all nodes of all trees (the statistic the
    /// paper reports as "average depth").
    pub avg_depth: f64,
    /// Maximum depth over all trees.
    pub max_depth: u32,
}

/// Computes [`CollectionStats`] for `trees`.
pub fn collection_stats(trees: &[Tree]) -> CollectionStats {
    let mut labels = tsj_tree::FxHashSet::default();
    let mut total_size = 0usize;
    let mut max_size = 0usize;
    let mut depth_sum = 0f64;
    let mut max_depth = 0u32;
    for tree in trees {
        total_size += tree.len();
        max_size = max_size.max(tree.len());
        let depths = tree.depths();
        for &d in &depths {
            depth_sum += d as f64;
            max_depth = max_depth.max(d);
        }
        for node in tree.node_ids() {
            labels.insert(tree.label(node));
        }
    }
    CollectionStats {
        cardinality: trees.len(),
        avg_size: total_size as f64 / trees.len().max(1) as f64,
        max_size,
        distinct_labels: labels.len(),
        avg_depth: depth_sum / total_size.max(1) as f64,
        max_depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_matches_table1_defaults() {
        let trees = synthetic(200, &SyntheticParams::default(), 42);
        assert_eq!(trees.len(), 200);
        let stats = collection_stats(&trees);
        assert!(stats.avg_size > 50.0 && stats.avg_size < 110.0, "{stats:?}");
        assert!(
            stats.max_depth <= 5 + 3,
            "decay inserts may deepen slightly"
        );
        assert!(stats.distinct_labels <= 20);
        for tree in &trees {
            tree.validate().unwrap();
        }
    }

    #[test]
    fn swissprot_like_is_flat_and_medium() {
        let trees = swissprot_like(150, 1);
        let stats = collection_stats(&trees);
        assert!(stats.avg_size > 45.0 && stats.avg_size < 80.0, "{stats:?}");
        assert!(stats.avg_depth < 3.5, "{stats:?}");
        assert!(stats.distinct_labels <= 84);
    }

    #[test]
    fn treebank_like_is_deep() {
        let trees = treebank_like(150, 2);
        let stats = collection_stats(&trees);
        assert!(stats.avg_size > 30.0 && stats.avg_size < 60.0, "{stats:?}");
        assert!(stats.avg_depth > 4.5, "{stats:?}");
        assert!(stats.max_depth <= 35 + 5);
    }

    #[test]
    fn sentiment_like_is_binary_and_deep() {
        let trees = sentiment_like(150, 3);
        let stats = collection_stats(&trees);
        assert!(stats.avg_size > 25.0 && stats.avg_size < 50.0, "{stats:?}");
        assert!(stats.distinct_labels <= 5);
        assert!(stats.avg_depth > 6.0, "{stats:?}");
        // Insertions adopting consecutive children can momentarily exceed
        // fanout 2, but the bulk of the collection must stay binary.
        let binaryish = trees.iter().filter(|t| t.max_fanout() <= 3).count();
        assert!(binaryish * 10 >= trees.len() * 9);
    }

    #[test]
    fn collections_are_deterministic() {
        let a = synthetic(50, &SyntheticParams::default(), 7);
        let b = synthetic(50, &SyntheticParams::default(), 7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!(x.structurally_eq(y));
        }
        let c = synthetic(50, &SyntheticParams::default(), 8);
        let all_equal = a.iter().zip(&c).all(|(x, y)| x.structurally_eq(y));
        assert!(!all_equal, "different seeds should differ");
    }

    #[test]
    fn mother_sampling_creates_similar_pairs() {
        // Trees sampled from one mother must include pairs within a small
        // TED — the join workload is non-degenerate. Smaller trees keep
        // the brute-force check cheap.
        let params = SyntheticParams {
            avg_size: 24,
            ..SyntheticParams::default()
        };
        let trees = synthetic(120, &params, 9);
        let mut engine = tsj_ted::TedEngine::unit();
        let mut close_pairs = 0;
        'outer: for i in 0..trees.len() {
            for j in i + 1..trees.len() {
                if trees[i].len().abs_diff(trees[j].len()) <= 6
                    && engine.distance_trees(&trees[i], &trees[j]) <= 6
                {
                    close_pairs += 1;
                    if close_pairs >= 3 {
                        break 'outer;
                    }
                }
            }
        }
        assert!(close_pairs >= 1, "no similar pairs generated");
    }

    #[test]
    fn stats_on_empty_collection() {
        let stats = collection_stats(&[]);
        assert_eq!(stats.cardinality, 0);
        assert_eq!(stats.avg_size, 0.0);
    }
}
