//! The shared candidate-generation probe loop.
//!
//! Every index consumer — the batch join ([`crate::join`]), the parallel
//! variant ([`crate::parallel`]), the bipartite join ([`crate::rs_join`]),
//! the streaming join ([`crate::streaming`]) and similarity search
//! ([`crate::search`]) — runs the same inner loop of Algorithm 1: walk the
//! probing tree's LC-RS nodes, compute the up-to-four [`TwigKeys`] once
//! per node, probe every size layer of the resolved window, and match
//! surfaced subgraphs at the node. What differs is only *bookkeeping*:
//! how a consumer deduplicates container trees and where it records
//! accepted candidates. [`probe_tree_nodes`] owns the loop;
//! [`CandidateSink`] abstracts the bookkeeping.
//!
//! Centralizing the loop keeps the hoisting discipline of PR 2 (size
//! layers resolved once per tree, twig keys once per node, match verdicts
//! memoized per node across layers) in exactly one place — and lets the
//! sharded index (`tsj-shard`) drive the identical loop against each
//! shard's private [`SubgraphIndex`].

use crate::config::MatchSemantics;
use crate::index::{LayerId, MatchCache, SubgraphIndex, TwigKeys};
use tsj_ted::TreeIdx;
use tsj_tree::{BinaryTree, Label, NodeId, Tree};

/// Reusable probe-tree preparation: one LC-RS representation and one
/// general-postorder array, rebuilt in place per probing tree. All
/// buffers are grow-only, so a serving or join loop that prepares a
/// stream of probes through one scratch allocates nothing once the
/// buffers fit the largest tree seen.
#[derive(Debug, Default)]
pub struct ProbeScratch {
    binary: Option<BinaryTree>,
    posts: Vec<u32>,
    walk: Vec<(NodeId, usize)>,
}

impl ProbeScratch {
    /// An empty scratch; buffers are grown on first use.
    pub fn new() -> ProbeScratch {
        ProbeScratch::default()
    }

    /// Prepares `tree` for probing, returning its LC-RS form and its
    /// 1-based general-postorder numbers (the two hoisted inputs of
    /// [`probe_tree_nodes`]). Results are valid until the next call.
    pub fn prepare(&mut self, tree: &Tree) -> (&BinaryTree, &[u32]) {
        match &mut self.binary {
            Some(binary) => binary.rebuild_from(tree),
            None => self.binary = Some(BinaryTree::from_tree(tree)),
        }
        tree.postorder_numbers_into(&mut self.posts, &mut self.walk);
        (self.binary.as_ref().expect("prepared above"), &self.posts)
    }
}

/// Consumer-side bookkeeping for one probing tree.
///
/// `admit` is the cheap pre-match gate (stamp/alive/order checks) applied
/// to every surfaced handle *before* the component walk; `accept` records
/// a successful subgraph match (stamp the pair, push the candidate).
pub trait CandidateSink {
    /// Whether `tree` is still an interesting container for the current
    /// probe — `false` skips the match attempt entirely (already a
    /// candidate, removed from a dynamic index, or filtered by the
    /// caller's processing order).
    fn admit(&mut self, tree: TreeIdx) -> bool;

    /// Called once per newly matched container tree (a subgraph of `tree`
    /// embeds at the current probe node).
    fn accept(&mut self, tree: TreeIdx);
}

/// Probe-side work counters, accumulated across calls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeCounters {
    /// Index probes issued (node × populated size-layer combinations).
    pub probes: u64,
    /// Subgraph match attempts (admitted handles surfaced by the index).
    pub match_attempts: u64,
    /// Match attempts that succeeded.
    pub matches: u64,
}

/// The container-size window a probe of `size` nodes must visit at
/// threshold `tau`: `[max(size − τ, 1), size + τ]`. Every consumer —
/// batch joins, point queries, the frozen catalog and the cluster
/// router — derives its probed size classes from this one definition,
/// so candidate generation cannot drift between entry points.
#[inline]
pub fn window_of(size: u32, tau: u32) -> (u32, u32) {
    (size.saturating_sub(tau).max(1), size + tau)
}

/// Resolves the populated size layers of `[lo, hi]` into `out` (cleared
/// first). Resolve once per probing tree; every node then walks the same
/// slice instead of re-querying the size map.
#[inline]
pub fn resolve_layers(index: &SubgraphIndex, lo: u32, hi: u32, out: &mut Vec<LayerId>) {
    out.clear();
    out.extend((lo..=hi).filter_map(|n| index.layer_id(n)));
}

/// Probes every node of `binary` against the resolved `layer_window` of
/// `index` — one full iteration of Algorithm 1's inner loop.
///
/// `posts` maps node ids to 1-based *general-tree* postorder numbers
/// ([`tsj_tree::Tree::postorder_numbers`]) and `probe_size` is the probing
/// tree's node count (both feed [`SubgraphIndex::probe_position`]).
/// `cache` memoizes per-node match verdicts; it is reset per node here,
/// so a caller-owned cache can be reused across trees.
#[allow(clippy::too_many_arguments)] // one hot loop, all parts hoisted by callers
pub fn probe_tree_nodes<S: CandidateSink>(
    index: &SubgraphIndex,
    layer_window: &[LayerId],
    binary: &BinaryTree,
    posts: &[u32],
    probe_size: u32,
    matching: MatchSemantics,
    cache: &mut MatchCache,
    counters: &mut ProbeCounters,
    sink: &mut S,
) {
    if layer_window.is_empty() {
        return;
    }
    for node in binary.node_ids() {
        let label = binary.label(node);
        let left = binary
            .left(node)
            .map_or(Label::EPSILON, |c| binary.label(c));
        let right = binary
            .right(node)
            .map_or(Label::EPSILON, |c| binary.label(c));
        let keys = TwigKeys::new(label, left, right);
        cache.begin_node();
        let position = index.probe_position(posts[node.index()], probe_size);
        for &layer in layer_window {
            counters.probes += 1;
            index.layer(layer).probe(position, &keys, |handle| {
                let tree = index.tree_of(handle);
                if !sink.admit(tree) {
                    return;
                }
                counters.match_attempts += 1;
                if index.matches_at(handle, binary, node, matching, cache) {
                    counters.matches += 1;
                    sink.accept(tree);
                }
            });
        }
    }
}

/// The ubiquitous sink: a stamp array deduplicates container trees per
/// probing tree (stamp value = probe marker) and accepted candidates are
/// pushed to a list. Used by the batch, streaming and bipartite joins;
/// consumers with extra bookkeeping (batched channel sends, order
/// filters, liveness checks) wrap their own [`CandidateSink`].
#[derive(Debug)]
pub struct StampSink<'a> {
    /// `stamp[j] == marker` ⇔ tree `j` is already a candidate of the
    /// current probe.
    pub stamp: &'a mut [TreeIdx],
    /// Marker of the current probing tree (any value unique to it).
    pub marker: TreeIdx,
    /// Accepted candidates, in discovery order.
    pub candidates: &'a mut Vec<TreeIdx>,
}

impl CandidateSink for StampSink<'_> {
    #[inline]
    fn admit(&mut self, tree: TreeIdx) -> bool {
        self.stamp[tree as usize] != self.marker
    }

    #[inline]
    fn accept(&mut self, tree: TreeIdx) {
        self.stamp[tree as usize] = self.marker;
        self.candidates.push(tree);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PartSjConfig, WindowPolicy};
    use crate::partition::cuts_for;
    use crate::subgraph::build_subgraphs;
    use tsj_tree::{parse_bracket, LabelInterner, Tree};

    fn probe_candidates(index: &SubgraphIndex, tree: &Tree, lo: u32, hi: u32) -> Vec<TreeIdx> {
        let binary = BinaryTree::from_tree(tree);
        let posts = tree.postorder_numbers();
        let mut layers = Vec::new();
        resolve_layers(index, lo, hi, &mut layers);
        let mut stamp = vec![TreeIdx::MAX; 16];
        let mut candidates = Vec::new();
        let mut sink = StampSink {
            stamp: &mut stamp,
            marker: 7,
            candidates: &mut candidates,
        };
        let mut cache = MatchCache::new();
        let mut counters = ProbeCounters::default();
        probe_tree_nodes(
            index,
            &layers,
            &binary,
            &posts,
            tree.len() as u32,
            MatchSemantics::Exact,
            &mut cache,
            &mut counters,
            &mut sink,
        );
        assert!(counters.match_attempts >= counters.matches);
        candidates.sort_unstable();
        candidates
    }

    #[test]
    fn stamp_sink_dedups_and_collects() {
        let mut labels = LabelInterner::new();
        let tau = 1;
        let config = PartSjConfig::default();
        let mut index = SubgraphIndex::new(tau, WindowPolicy::Safe);
        for (i, src) in ["{a{b}{c}{d}}", "{a{b}{c}{e}}", "{z{y}{x}{w}}"]
            .iter()
            .enumerate()
        {
            let tree = parse_bracket(src, &mut labels).unwrap();
            let binary = BinaryTree::from_tree(&tree);
            let delta = 2 * tau as usize + 1;
            let cuts = cuts_for(&binary, delta, config.partitioning, i as u64);
            let sgs = build_subgraphs(&binary, &tree.postorder_numbers(), &cuts, i as TreeIdx);
            index.insert_tree(tree.len() as u32, sgs);
        }
        let probe = parse_bracket("{a{b}{c}{d}}", &mut labels).unwrap();
        let n = probe.len() as u32;
        let found = probe_candidates(&index, &probe, n.saturating_sub(tau).max(1), n + tau);
        // Tree 0 is identical, tree 1 one rename away: both share subgraphs.
        assert!(found.contains(&0));
        assert!(found.contains(&1));
        // Deduplicated: each candidate appears once.
        let mut dedup = found.clone();
        dedup.dedup();
        assert_eq!(found, dedup);
    }

    #[test]
    fn empty_window_probes_nothing() {
        let mut labels = LabelInterner::new();
        let index = SubgraphIndex::new(1, WindowPolicy::Safe);
        let probe = parse_bracket("{a{b}}", &mut labels).unwrap();
        assert!(probe_candidates(&index, &probe, 1, 3).is_empty());
    }
}
