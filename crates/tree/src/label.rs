//! Node labels and label interning.
//!
//! All tree algorithms in this workspace compare labels by identity, so
//! labels are interned once into dense `u32` ids. Id `0` is reserved for the
//! dummy label `ε` used by binary branches and label-twig index keys (a
//! missing child is represented by `ε`, following Yang et al. and §3.4 of
//! the paper).

use crate::hash::FxHashMap;
use std::fmt;

/// An interned node label.
///
/// `Label::EPSILON` (id 0) denotes the dummy/empty label; real labels start
/// at id 1. Labels are meaningful only relative to the [`LabelInterner`]
/// that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(u32);

impl Label {
    /// The dummy label `ε` attached to missing children.
    pub const EPSILON: Label = Label(0);

    /// Maximum number of distinct real labels supported.
    ///
    /// Twig keys pack three label ids into a `u64` (21 bits each), so ids
    /// must stay below `2^21`.
    pub const MAX_LABELS: u32 = (1 << 21) - 1;

    /// Creates a label from a raw interned id.
    ///
    /// Intended for tests and generators that manage their own id space;
    /// prefer [`LabelInterner::intern`] for string labels.
    ///
    /// # Panics
    /// Panics if `id` exceeds [`Label::MAX_LABELS`].
    #[inline]
    pub fn from_raw(id: u32) -> Label {
        assert!(id <= Self::MAX_LABELS, "label id {id} out of range");
        Label(id)
    }

    /// The raw interned id.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Whether this is the dummy label `ε`.
    #[inline]
    pub fn is_epsilon(self) -> bool {
        self.0 == 0
    }
}

/// Packs a `(root, left, right)` label triple into one `u64` key.
///
/// Used both for binary branches (SET baseline, §2) and the label-twig
/// layer of the two-layer subgraph index (§3.4). Each label id fits in 21
/// bits (enforced by [`Label::MAX_LABELS`]); `ε` packs as 0.
#[inline]
pub fn pack_twig(root: Label, left: Label, right: Label) -> u64 {
    ((root.0 as u64) << 42) | ((left.0 as u64) << 21) | right.0 as u64
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_epsilon() {
            write!(f, "ε")
        } else {
            write!(f, "ℓ{}", self.0)
        }
    }
}

/// Bidirectional map between label strings and dense [`Label`] ids.
///
/// ```
/// use tsj_tree::LabelInterner;
/// let mut interner = LabelInterner::new();
/// let a = interner.intern("html");
/// let b = interner.intern("body");
/// assert_ne!(a, b);
/// assert_eq!(interner.intern("html"), a);
/// assert_eq!(interner.resolve(a), Some("html"));
/// ```
#[derive(Debug, Default, Clone)]
pub struct LabelInterner {
    map: FxHashMap<Box<str>, Label>,
    /// `names[i]` is the string for label id `i + 1` (id 0 is `ε`).
    names: Vec<Box<str>>,
}

impl LabelInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning the existing id if already present.
    ///
    /// # Panics
    /// Panics if more than [`Label::MAX_LABELS`] distinct labels are
    /// interned.
    pub fn intern(&mut self, name: &str) -> Label {
        if let Some(&label) = self.map.get(name) {
            return label;
        }
        let id = self.names.len() as u32 + 1;
        assert!(id <= Label::MAX_LABELS, "too many distinct labels");
        let label = Label(id);
        self.names.push(name.into());
        self.map.insert(name.into(), label);
        label
    }

    /// Looks up a label by string without interning.
    pub fn get(&self, name: &str) -> Option<Label> {
        self.map.get(name).copied()
    }

    /// Resolves a label back to its string; `None` for `ε` and foreign ids.
    pub fn resolve(&self, label: Label) -> Option<&str> {
        if label.is_epsilon() {
            return None;
        }
        self.names.get(label.0 as usize - 1).map(|s| s.as_ref())
    }

    /// Number of distinct interned labels (excluding `ε`).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no labels have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(Label, &str)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Label, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, s)| (Label(i as u32 + 1), s.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = LabelInterner::new();
        let a1 = i.intern("a");
        let b = i.intern("b");
        let a2 = i.intern("a");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trip() {
        let mut i = LabelInterner::new();
        for name in ["x", "y", "z", "a longer label", "ℓ-unicode"] {
            let l = i.intern(name);
            assert_eq!(i.resolve(l), Some(name));
        }
    }

    #[test]
    fn epsilon_is_reserved() {
        let mut i = LabelInterner::new();
        let first = i.intern("first");
        assert_eq!(first.raw(), 1);
        assert!(Label::EPSILON.is_epsilon());
        assert!(!first.is_epsilon());
        assert_eq!(i.resolve(Label::EPSILON), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Label::EPSILON.to_string(), "ε");
        assert_eq!(Label::from_raw(7).to_string(), "ℓ7");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_raw_rejects_oversized_ids() {
        let _ = Label::from_raw(Label::MAX_LABELS + 1);
    }

    #[test]
    fn pack_twig_is_injective_on_samples() {
        let mut seen = std::collections::HashSet::new();
        for a in 0..8u32 {
            for b in 0..8u32 {
                for c in 0..8u32 {
                    let key = pack_twig(Label(a), Label(b), Label(c));
                    assert!(seen.insert(key), "collision at ({a},{b},{c})");
                }
            }
        }
    }

    #[test]
    fn pack_twig_boundaries() {
        let max = Label(Label::MAX_LABELS);
        let key = pack_twig(max, max, max);
        assert_eq!(key >> 63, 0, "top bit stays clear");
        assert_eq!(pack_twig(Label::EPSILON, Label::EPSILON, Label::EPSILON), 0);
    }

    #[test]
    fn iter_preserves_order() {
        let mut i = LabelInterner::new();
        i.intern("p");
        i.intern("q");
        let collected: Vec<_> = i.iter().map(|(_, s)| s.to_string()).collect();
        assert_eq!(collected, vec!["p", "q"]);
    }
}
