//! Preprocessed trees for the tree edit distance dynamic programs.
//!
//! Zhang–Shasha's algorithm works on 1-based postorder arrays: node labels,
//! leftmost-leaf descendants (`lld`) and *keyroots* (nodes whose leftmost
//! leaf differs from their parent's — the roots of the "relevant subtrees"
//! whose forest distances must be computed).
//!
//! [`TedTree::mirrored`] builds the same arrays for the mirror image of the
//! tree (children reversed at every node). Running Zhang–Shasha on two
//! mirrored inputs computes the *right-path* decomposition of the original
//! pair — the second half of the RTED-inspired hybrid in
//! [`crate::hybrid`].

use tsj_tree::{Label, Tree};

/// A tree preprocessed for the Zhang–Shasha dynamic program.
///
/// All arrays are 1-based (slot 0 is unused padding) and ordered by the
/// tree's postorder — possibly the mirrored postorder, see
/// [`TedTree::mirrored`].
#[derive(Debug, Clone)]
pub struct TedTree {
    n: usize,
    /// `labels[i]`: label of the node with postorder number `i`.
    labels: Vec<Label>,
    /// `lld[i]`: postorder number of the leftmost leaf descendant of `i`.
    lld: Vec<usize>,
    /// Keyroots in ascending postorder.
    keyroots: Vec<usize>,
    /// Σ over keyroots of their relevant-forest span; the number of
    /// forest-distance cells this decomposition touches scales with this,
    /// so it drives the hybrid's left-vs-right choice.
    decomposition_cost: u64,
}

impl TedTree {
    /// Preprocesses `tree` with its natural (left-to-right) child order.
    pub fn new(tree: &Tree) -> TedTree {
        Self::build(tree, false)
    }

    /// Preprocesses the mirror image of `tree` (children reversed).
    ///
    /// `TED(a, b) == TED(mirror(a), mirror(b))` because edit mappings are
    /// preserved under simultaneous mirroring, so Zhang–Shasha over two
    /// mirrored `TedTree`s yields the same distance while decomposing along
    /// right paths of the original trees.
    pub fn mirrored(tree: &Tree) -> TedTree {
        Self::build(tree, true)
    }

    fn build(tree: &Tree, mirror: bool) -> TedTree {
        let n = tree.len();
        let mut labels = vec![Label::EPSILON; n + 1];
        let mut lld = vec![0usize; n + 1];
        let mut post_of = vec![0usize; n];

        // Iterative (possibly mirrored) postorder.
        let mut order = Vec::with_capacity(n);
        let mut stack: Vec<(tsj_tree::NodeId, usize)> = vec![(tree.root(), 0)];
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let children = tree.children(node);
            if *next < children.len() {
                let child = if mirror {
                    children[children.len() - 1 - *next]
                } else {
                    children[*next]
                };
                *next += 1;
                stack.push((child, 0));
            } else {
                post_of[node.index()] = order.len() + 1;
                order.push(node);
                stack.pop();
            }
        }

        for (i, &node) in order.iter().enumerate() {
            let post = i + 1;
            labels[post] = tree.label(node);
            let children = tree.children(node);
            let first = if mirror {
                children.last()
            } else {
                children.first()
            };
            lld[post] = match first {
                // The leftmost leaf of an inner node is the leftmost leaf
                // of its first (in visit order) child, which was already
                // numbered because postorder visits children first.
                Some(&c) => lld[post_of[c.index()]],
                None => post,
            };
        }

        // Keyroots: nodes with no higher-postorder node sharing their lld.
        let mut seen = vec![false; n + 1];
        let mut keyroots = Vec::new();
        for i in (1..=n).rev() {
            if !seen[lld[i]] {
                seen[lld[i]] = true;
                keyroots.push(i);
            }
        }
        keyroots.reverse();

        let decomposition_cost = keyroots.iter().map(|&k| (k - lld[k] + 1) as u64).sum();

        TedTree {
            n,
            labels,
            lld,
            keyroots,
            decomposition_cost,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Trees are never empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Label of the node with postorder number `i` (1-based).
    #[inline]
    pub fn label(&self, i: usize) -> Label {
        self.labels[i]
    }

    /// Leftmost-leaf descendant (postorder number) of node `i` (1-based).
    #[inline]
    pub fn lld(&self, i: usize) -> usize {
        self.lld[i]
    }

    /// Keyroots in ascending postorder; the last one is the root.
    #[inline]
    pub fn keyroots(&self) -> &[usize] {
        &self.keyroots
    }

    /// Work estimate of decomposing along this tree's paths (Σ keyroot
    /// spans). Used by the hybrid strategy.
    #[inline]
    pub fn decomposition_cost(&self) -> u64 {
        self.decomposition_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsj_tree::{parse_bracket, LabelInterner};

    fn t(input: &str) -> Tree {
        let mut labels = LabelInterner::new();
        parse_bracket(input, &mut labels).unwrap()
    }

    #[test]
    fn postorder_arrays_for_small_tree() {
        // {f {d {a} {c {b}}} {e}} — the classic Zhang–Shasha example tree.
        let tree = t("{f{d{a}{c{b}}}{e}}");
        let tt = TedTree::new(&tree);
        assert_eq!(tt.len(), 6);
        // Postorder: a(1), b(2), c(3), d(4), e(5), f(6).
        // llds:      a:1, b:2, c:2, d:1, e:5, f:1.
        assert_eq!(
            (1..=6).map(|i| tt.lld(i)).collect::<Vec<_>>(),
            vec![1, 2, 2, 1, 5, 1]
        );
        // Keyroots: highest-postorder node per distinct lld = {c(3), e(5), f(6)}.
        assert_eq!(tt.keyroots(), &[3, 5, 6]);
    }

    #[test]
    fn mirrored_swaps_decomposition() {
        let tree = t("{f{d{a}{c{b}}}{e}}");
        let tt = TedTree::mirrored(&tree);
        // Mirrored postorder: e(1), b(2), c(3), a(4), d(5), f(6).
        // In the mirror, "first child" is the original last child.
        assert_eq!(tt.lld(6), 1, "root's mirrored leftmost leaf is e");
        assert_eq!(tt.len(), 6);
        // Root is always a keyroot.
        assert_eq!(*tt.keyroots().last().unwrap(), 6);
    }

    #[test]
    fn leaf_tree() {
        let tree = t("{x}");
        let tt = TedTree::new(&tree);
        assert_eq!(tt.len(), 1);
        assert_eq!(tt.lld(1), 1);
        assert_eq!(tt.keyroots(), &[1]);
        assert_eq!(tt.decomposition_cost(), 1);
    }

    #[test]
    fn path_tree_has_single_keyroot() {
        // A path collapses to one keyroot (the root) under left
        // decomposition: every node shares the same leftmost leaf.
        let tree = t("{a{b{c{d}}}}");
        let tt = TedTree::new(&tree);
        assert_eq!(tt.keyroots(), &[4]);
        assert_eq!(tt.decomposition_cost(), 4);
    }

    #[test]
    fn star_tree_keyroots() {
        // Root with k children: every non-first child is a keyroot.
        let tree = t("{r{a}{b}{c}{d}}");
        let tt = TedTree::new(&tree);
        assert_eq!(tt.keyroots().len(), 4); // b, c, d, root
        assert_eq!(tt.decomposition_cost(), 1 + 1 + 1 + 5);
    }

    #[test]
    fn decomposition_costs_differ_for_skewed_trees() {
        // A left-deep comb is cheap for left decomposition and expensive
        // for right decomposition; the mirror flips this.
        let comb = t("{a{b{c{d{e}}}{x3}}{x2}}");
        let left = TedTree::new(&comb);
        let right = TedTree::mirrored(&comb);
        assert_ne!(left.decomposition_cost(), right.decomposition_cost());
    }
}
