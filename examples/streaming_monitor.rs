//! Streaming near-duplicate monitoring — the scenario that closes the
//! paper's evaluation: "streaming workloads where tree objects (e.g., XML
//! and HTML entities) are inserted and updated at a high rate".
//!
//! Documents arrive one at a time; [`partsj::StreamingJoin`] reports each
//! newcomer's near-duplicates among everything seen so far, immediately,
//! by probing and then extending the on-the-fly subgraph index.
//!
//! ```bash
//! cargo run --release --example streaming_monitor
//! ```

use partsj::{PartSjConfig, StreamingJoin};
use tree_similarity_join::prelude::*;

fn main() {
    // A feed of incoming product pages; some are re-submissions with
    // small edits (the near-duplicates a marketplace wants to flag live).
    let feed = [
        (
            "v1 listing A",
            "{item{name{kbd}}{price{49}}{specs{color}{warranty}}}",
        ),
        (
            "fresh B",
            "{item{name{dock}}{price{99}}{ports{usbc}{hdmi}{jack}}}",
        ),
        (
            "v2 listing A",
            "{item{name{kbd}}{price{54}}{specs{color}{warranty}}}",
        ),
        (
            "fresh C",
            "{page{header{nav}}{body{article{p}{p}}}{footer}}",
        ),
        (
            "v2 listing B",
            "{item{name{dock}}{price{89}}{ports{usbc}{hdmi}{jack}}}",
        ),
        (
            "v3 listing A",
            "{item{name{kbd}}{price{54}}{specs{color}{warranty}{rgb}}}",
        ),
    ];

    let mut labels = LabelInterner::new();
    let tau = 2;
    let mut monitor = StreamingJoin::new(tau, PartSjConfig::default());
    let mut names: Vec<&str> = Vec::new();

    println!("streaming monitor at tau = {tau}\n");
    for (name, source) in feed {
        let tree = parse_bracket(source, &mut labels).expect("valid feed document");
        let partners = monitor.insert(&tree);
        if partners.is_empty() {
            println!("insert {name:14} -> no near-duplicates");
        } else {
            let matched: Vec<&str> = partners.iter().map(|&j| names[j as usize]).collect();
            println!("insert {name:14} -> near-duplicate of {matched:?}");
        }
        names.push(name);
    }

    println!(
        "\nprocessed {} documents, reported {} pairs with {} exact TED calls",
        monitor.len(),
        monitor.pairs_found(),
        monitor.ted_calls()
    );
}
