//! # partsj
//!
//! **PartSJ** — the partition-based similarity join over tree-structured
//! data of Tang, Cai & Mamoulis, *Scaling Similarity Joins over
//! Tree-Structured Data*, PVLDB 8(11), 2015. This crate is the paper's
//! primary contribution:
//!
//! * δ-partitioning of LC-RS binary trees with the max-min subgraph size
//!   scheme (§3.3, Algorithms 2–3) — [`partition`];
//! * subgraph extraction with bridging edges and embedding matching
//!   (§3.1/§3.4) — [`subgraph`];
//! * the on-the-fly two-layer (postorder × label-twig) inverted index
//!   (§3.4) — [`index`];
//! * the join loop itself (§3.2, Algorithm 1) — [`join`], plus a
//!   crossbeam-parallel verification variant — [`parallel`].
//!
//! ```
//! use partsj::partsj_join;
//! use tsj_tree::{parse_bracket, LabelInterner};
//!
//! let mut labels = LabelInterner::new();
//! let trees: Vec<_> = ["{a{b}{c}}", "{a{b}{c}}", "{a{b}{z}}", "{x{y}}"]
//!     .iter()
//!     .map(|s| parse_bracket(s, &mut labels).unwrap())
//!     .collect();
//! let outcome = partsj_join(&trees, 1);
//! assert_eq!(outcome.pairs, vec![(0, 1), (0, 2), (1, 2)]);
//! ```
//!
//! Result pairs are always `(i, j)` with `i < j`, sorted
//! lexicographically and deduplicated ([`JoinOutcome::new`] normalizes
//! them), so outcomes compare with `assert_eq!` across join methods,
//! thread counts and runs.
//!
//! [`JoinOutcome::new`]: tsj_ted::JoinOutcome::new
//!
//! The filtering principle (Lemma 2): if `TED(T1, T2) ≤ τ`, any
//! `δ = 2τ + 1`-partitioning of `T1`'s binary representation contains at
//! least one subgraph that also appears in `T2`'s — so a pair without a
//! shared subgraph is pruned without computing TED.

#![warn(missing_docs)]

pub mod config;
pub mod index;
pub mod join;
pub mod parallel;
pub mod partition;
pub mod probe;
pub mod rs_join;
pub mod search;
pub mod streaming;
pub mod subgraph;
pub mod topk;
pub mod verify;

pub use config::{
    AdaptiveConfig, MatchSemantics, PartSjConfig, PartitionScheme, VerifyConfig, WindowPolicy,
};
pub use index::{
    BucketDump, ComponentDump, ComponentId, IndexDump, LayerDump, LayerId, MatchCache,
    PostorderLayer, SubgraphHandle, SubgraphIndex, SubgraphMeta, TwigKeys,
};
pub use join::{
    partsj_join, partsj_join_detailed, partsj_join_paper_window, partsj_join_with, PartSjDetail,
};
pub use parallel::{default_verify_threads, partsj_join_parallel, partsj_join_parallel_auto};
pub use partition::{cuts_for, max_min_size, partitionable, select_cuts, select_random_cuts};
pub use probe::{
    probe_tree_nodes, resolve_layers, window_of, CandidateSink, ProbeCounters, ProbeScratch,
    StampSink,
};
pub use rs_join::partsj_join_rs;
pub use search::{SearchIndex, SearchScratch};
pub use streaming::StreamingJoin;
pub use subgraph::{
    build_subgraphs, nodes_match_at, subgraph_matches, subgraph_matches_with, ChildKind, SgNode,
    Subgraph,
};
pub use topk::{partsj_topk, partsj_topk_with, TopKOutcome, TopKPair};
pub use verify::{
    FilterStage, ProbeVerify, StageKind, StageVerdict, VerifyData, VerifyEngine, VerifyPrep,
    VerifyScratch,
};
