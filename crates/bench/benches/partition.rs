//! Micro-benchmarks of the δ-partitioning pipeline (§3.3): the
//! `(δ,γ)`-partitionable greedy test, the max-min binary search, cut
//! selection and subgraph construction. These costs are paid once per
//! indexed tree in Algorithm 1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use partsj::{build_subgraphs, max_min_size, partitionable, select_cuts, select_random_cuts};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use tsj_datagen::{grow_tree, ShapeProfile};
use tsj_tree::{BinaryTree, Tree};

fn sample_tree(seed: u64, size: usize) -> Tree {
    let profile = ShapeProfile {
        max_fanout: 4,
        max_depth: 16,
        deepen_prob: 0.35,
    };
    grow_tree(&mut StdRng::seed_from_u64(seed), size, 20, &profile)
}

fn bench_partitionable(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition/partitionable");
    for size in [40usize, 80, 200] {
        let tree = sample_tree(1, size);
        let binary = BinaryTree::from_tree(&tree);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |bench, _| {
            bench.iter(|| black_box(partitionable(black_box(&binary), 7, 5)))
        });
    }
    group.finish();
}

fn bench_max_min_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition/max_min_size");
    for tau in [1u32, 3, 5] {
        let delta = 2 * tau as usize + 1;
        let tree = sample_tree(2, 80);
        let binary = BinaryTree::from_tree(&tree);
        group.bench_with_input(BenchmarkId::new("tau", tau), &tau, |bench, _| {
            bench.iter(|| black_box(max_min_size(black_box(&binary), delta)))
        });
    }
    group.finish();
}

fn bench_full_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition/pipeline");
    let tree = sample_tree(3, 80);
    let binary = BinaryTree::from_tree(&tree);
    let posts = tree.postorder_numbers();
    let delta = 7;
    group.bench_function("maxmin_cuts_and_build", |bench| {
        bench.iter(|| {
            let gamma = max_min_size(&binary, delta);
            let cuts = select_cuts(&binary, delta, gamma);
            black_box(build_subgraphs(&binary, &posts, &cuts, 0))
        })
    });
    group.bench_function("random_cuts_and_build", |bench| {
        bench.iter(|| {
            let cuts = select_random_cuts(&binary, delta, 42);
            black_box(build_subgraphs(&binary, &posts, &cuts, 0))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_partitionable,
    bench_max_min_size,
    bench_full_pipeline
);
criterion_main!(benches);
