//! Byte-level primitives of the snapshot format: little-endian scalar
//! encoding, a bounds-checked reader whose failures are typed
//! [`CatalogError`]s, and the FNV-1a section checksum.
//!
//! The reader validates *before* allocating: every length prefix is
//! checked against the bytes actually remaining (given a per-element
//! minimum size), so a corrupted count cannot drive an out-of-memory
//! allocation — it surfaces as [`CatalogError::Truncated`].

use crate::error::CatalogError;

/// Appends little-endian scalars to a growing byte buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes raw bytes verbatim.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// A cursor over a byte slice; every read is bounds-checked and reports
/// the failing `context` in its [`CatalogError::Truncated`].
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Reads from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], CatalogError> {
        if self.remaining() < n {
            return Err(CatalogError::Truncated { context });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self, context: &'static str) -> Result<u8, CatalogError> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self, context: &'static str) -> Result<u16, CatalogError> {
        Ok(u16::from_le_bytes(
            self.take(2, context)?.try_into().unwrap(),
        ))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self, context: &'static str) -> Result<u32, CatalogError> {
        Ok(u32::from_le_bytes(
            self.take(4, context)?.try_into().unwrap(),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self, context: &'static str) -> Result<u64, CatalogError> {
        Ok(u64::from_le_bytes(
            self.take(8, context)?.try_into().unwrap(),
        ))
    }

    /// Reads `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], CatalogError> {
        self.take(n, context)
    }

    /// Reads a `u32` element count and sanity-checks it against the
    /// remaining bytes: with at least `elem_min_bytes` per element, a
    /// count the buffer cannot possibly hold is reported as truncation
    /// instead of driving a giant allocation.
    pub fn get_count(
        &mut self,
        elem_min_bytes: usize,
        context: &'static str,
    ) -> Result<usize, CatalogError> {
        let count = self.get_u32(context)? as usize;
        if count
            .checked_mul(elem_min_bytes.max(1))
            .is_none_or(|need| need > self.remaining())
        {
            return Err(CatalogError::Truncated { context });
        }
        Ok(count)
    }
}

/// FNV-1a 64-bit checksum of `bytes` — the per-section integrity check.
/// Not cryptographic; it detects bit rot and partial writes, not
/// adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(300);
        w.put_u32(70_000);
        w.put_u64(u64::MAX - 1);
        w.put_bytes(b"abc");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8("a").unwrap(), 7);
        assert_eq!(r.get_u16("b").unwrap(), 300);
        assert_eq!(r.get_u32("c").unwrap(), 70_000);
        assert_eq!(r.get_u64("d").unwrap(), u64::MAX - 1);
        assert_eq!(r.get_bytes(3, "e").unwrap(), b"abc");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn reads_past_the_end_are_typed_truncations() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(matches!(
            r.get_u32("tiny"),
            Err(CatalogError::Truncated { context: "tiny" })
        ));
        // The failed read consumed nothing.
        assert_eq!(r.get_u16("ok").unwrap(), 0x0201);
    }

    #[test]
    fn absurd_counts_are_rejected_before_allocation() {
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.get_count(4, "postings"),
            Err(CatalogError::Truncated { .. })
        ));
    }

    #[test]
    fn fnv_is_stable_and_sensitive() {
        // Reference vectors for FNV-1a 64.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a64(b"catalog"), fnv1a64(b"catalpg"));
    }
}
