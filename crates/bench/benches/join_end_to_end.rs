//! End-to-end join benchmarks at reduced scale — one group per figure
//! family of the paper's evaluation:
//!
//! * `join/tau/*` — the τ sweep of Figure 10;
//! * `join/cardinality/*` — the scalability sweep of Figure 12;
//! * `join/dataset/*` — one fixed setting per dataset (Figures 10a–d);
//! * `join/ablation/*` — partitioning-scheme and window ablations.
//!
//! Criterion wants sub-second iterations, so cardinalities here are far
//! below the harness defaults; the `experiments` binary regenerates the
//! full tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use partsj::{partsj_join_with, PartSjConfig, PartitionScheme, WindowPolicy};
use std::hint::black_box;
use tsj_baselines::{set_join, str_join};
use tsj_datagen::{synthetic, SyntheticParams};
use tsj_shard::{sharded_join, ShardConfig};
use tsj_tree::Tree;

fn dataset(n: usize) -> Vec<Tree> {
    synthetic(n, &SyntheticParams::default(), 2015)
}

fn bench_tau_sweep(c: &mut Criterion) {
    let trees = dataset(150);
    let mut group = c.benchmark_group("join/tau");
    for tau in [1u32, 3, 5] {
        group.bench_with_input(BenchmarkId::new("PRT", tau), &tau, |bench, &tau| {
            bench.iter(|| black_box(partsj_join_with(&trees, tau, &PartSjConfig::default())))
        });
        group.bench_with_input(BenchmarkId::new("STR", tau), &tau, |bench, &tau| {
            bench.iter(|| black_box(str_join(&trees, tau)))
        });
        group.bench_with_input(BenchmarkId::new("SET", tau), &tau, |bench, &tau| {
            bench.iter(|| black_box(set_join(&trees, tau)))
        });
    }
    group.finish();
}

fn bench_cardinality(c: &mut Criterion) {
    let trees = dataset(400);
    let mut group = c.benchmark_group("join/cardinality");
    group.sample_size(10);
    for n in [100usize, 200, 400] {
        let slice = &trees[..n];
        group.bench_with_input(BenchmarkId::new("PRT", n), &n, |bench, _| {
            bench.iter(|| black_box(partsj_join_with(slice, 3, &PartSjConfig::default())))
        });
        // Sharded candidate generation, pools sized to the machine
        // (collapses to the inline sharded path on one core).
        group.bench_with_input(BenchmarkId::new("PRT-sh4", n), &n, |bench, _| {
            bench.iter(|| {
                black_box(sharded_join(
                    slice,
                    3,
                    &PartSjConfig::default(),
                    &ShardConfig::default(),
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("STR", n), &n, |bench, _| {
            bench.iter(|| black_box(str_join(slice, 3)))
        });
        group.bench_with_input(BenchmarkId::new("SET", n), &n, |bench, _| {
            bench.iter(|| black_box(set_join(slice, 3)))
        });
    }
    group.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let trees = dataset(200);
    let mut group = c.benchmark_group("join/ablation");
    for (name, config) in [
        ("maxmin_safe", PartSjConfig::default()),
        (
            "random_safe",
            PartSjConfig {
                partitioning: PartitionScheme::Random { seed: 7 },
                ..Default::default()
            },
        ),
        (
            "maxmin_tight",
            PartSjConfig {
                window: WindowPolicy::Tight,
                ..Default::default()
            },
        ),
        (
            "maxmin_paper",
            PartSjConfig {
                window: WindowPolicy::PaperAbsolute,
                ..Default::default()
            },
        ),
    ] {
        group.bench_function(name, |bench| {
            bench.iter(|| black_box(partsj_join_with(&trees, 3, &config)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tau_sweep, bench_cardinality, bench_ablations);
criterion_main!(benches);
