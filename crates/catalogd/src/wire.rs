//! The `catalogd` wire codec: length-prefixed, checksummed binary frames
//! over TCP.
//!
//! Every frame has the same envelope (all scalars little-endian):
//!
//! ```text
//! ┌──────────┬─────────┬───────────────┬──────────────┐
//! │ len: u32 │ type:u8 │ payload bytes │ checksum:u64 │
//! └──────────┴─────────┴───────────────┴──────────────┘
//!             ╰──────────── len bytes ───────────────╯
//! ```
//!
//! `len` counts the type byte, the payload and the trailing checksum
//! (so the smallest legal frame has `len == 9`); `checksum` is
//! [`tsj_catalog::format::fnv1a64`] over the type byte followed by the
//! payload — the same integrity check the snapshot sections use. A
//! frame longer than [`MAX_FRAME_LEN`] is rejected *before* any
//! allocation, exactly like the snapshot reader's alloc guard.
//!
//! Decoding follows the PR 5 corruption-suite discipline: malformed,
//! truncated or oversized bytes yield a typed [`WireError`], never a
//! panic and never an uncontrolled allocation (the wire fuzz suite
//! mutates valid frames arbitrarily and asserts exactly this). The
//! byte-exact layout of every payload is specified in
//! `docs/PROTOCOL.md`, which a round-trip test keeps in lockstep with
//! this module.

use std::sync::Mutex;
use tsj_catalog::format::{fnv1a64, ByteReader, ByteWriter};
use tsj_catalog::CatalogError;
use tsj_ted::{JoinStats, StageCount};
use tsj_tree::{Label, LabelInterner, Tree};

/// Protocol version spoken by this build. A [`Frame::Hello`] carrying a
/// different version is answered with [`ErrorCode::VersionMismatch`] and
/// the connection closes: payload layouts are fixed *per version*, and
/// additions arrive as new frame types (see the forward-compat policy in
/// `docs/PROTOCOL.md`).
pub const PROTOCOL_VERSION: u16 = 1;

/// Hard cap on `len` (16 MiB): anything larger is
/// [`WireError::FrameTooLarge`] before a single payload byte is read, so
/// a corrupted length prefix cannot drive an out-of-memory allocation.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Envelope overhead inside `len`: the type byte plus the checksum.
const ENVELOPE: u32 = 1 + 8;

/// Wire frame type tags. Kept dense and explicit — `docs/PROTOCOL.md`
/// lists the same table.
mod tag {
    pub const HELLO: u8 = 0x01;
    pub const HELLO_ACK: u8 = 0x02;
    pub const PROBE: u8 = 0x03;
    pub const PROBE_BATCH: u8 = 0x04;
    pub const PROBE_ACK: u8 = 0x05;
    pub const JOIN_SHARD: u8 = 0x06;
    pub const JOIN_SHARD_RESP: u8 = 0x07;
    pub const METRICS: u8 = 0x08;
    pub const METRICS_RESP: u8 = 0x09;
    pub const HEALTH: u8 = 0x0A;
    pub const HEALTH_ACK: u8 = 0x0B;
    pub const SHUTDOWN: u8 = 0x0C;
    pub const SHUTDOWN_ACK: u8 = 0x0D;
    pub const ERROR: u8 = 0x0E;
}

/// Typed error codes carried by [`Frame::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The peer speaks a different [`PROTOCOL_VERSION`].
    VersionMismatch,
    /// The client pinned a snapshot hash the server does not hold.
    SnapshotMismatch,
    /// The requested threshold exceeds the frozen one.
    TauExceedsFrozen,
    /// A `JoinShard` referenced a probe index never registered on this
    /// connection.
    UnknownProbe,
    /// The addressed node holds no replica of the requested shard.
    ShardNotOwned,
    /// The frame decoded but its contents were unusable.
    BadRequest,
    /// The frame type tag is not known to this server version (the
    /// forward-compat answer: the connection survives).
    UnknownFrameType,
    /// The server failed internally; the request may be retried.
    Internal,
}

impl ErrorCode {
    fn to_u16(self) -> u16 {
        match self {
            ErrorCode::VersionMismatch => 1,
            ErrorCode::SnapshotMismatch => 2,
            ErrorCode::TauExceedsFrozen => 3,
            ErrorCode::UnknownProbe => 4,
            ErrorCode::ShardNotOwned => 5,
            ErrorCode::BadRequest => 6,
            ErrorCode::UnknownFrameType => 7,
            ErrorCode::Internal => 8,
        }
    }

    fn from_u16(v: u16) -> Result<ErrorCode, WireError> {
        Ok(match v {
            1 => ErrorCode::VersionMismatch,
            2 => ErrorCode::SnapshotMismatch,
            3 => ErrorCode::TauExceedsFrozen,
            4 => ErrorCode::UnknownProbe,
            5 => ErrorCode::ShardNotOwned,
            6 => ErrorCode::BadRequest,
            7 => ErrorCode::UnknownFrameType,
            8 => ErrorCode::Internal,
            _ => {
                return Err(WireError::Malformed {
                    context: "unknown error code",
                })
            }
        })
    }
}

/// One probe tree as shipped over the wire: per node, an index into the
/// frame's label string table and the parent slot (`0` = root, else
/// `parent index + 1`), in the order [`Tree::flatten`] produces
/// (preorder, parents before children).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireTree {
    /// `(label table index, parent + 1 or 0)` per node.
    pub nodes: Vec<(u32, u32)>,
}

/// A probe batch: the label strings the trees reference, plus the trees
/// themselves. Labels travel as *strings* so client and server need no
/// shared interner — the server re-interns them on arrival, and every
/// filter stage depends only on label equality, which any injective
/// remapping preserves (the bit-identity argument in `docs/PROTOCOL.md`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProbeBatch {
    /// The label string table.
    pub labels: Vec<String>,
    /// The probe trees, referencing `labels` by index.
    pub trees: Vec<WireTree>,
}

/// A decoded protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server greeting. `snapshot_hash == 0` means "any
    /// snapshot"; a nonzero hash pins the catalog the client expects.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u16,
        /// Expected snapshot hash, or 0 for first contact.
        snapshot_hash: u64,
    },
    /// Server → client handshake answer: everything a client needs to
    /// plan shard requests without trusting placement conventions.
    HelloAck {
        /// The server's [`PROTOCOL_VERSION`].
        version: u16,
        /// FNV-1a 64 of the full snapshot bytes this node restored from.
        snapshot_hash: u64,
        /// This node's id within the node set.
        node: u32,
        /// Total nodes in the set.
        nodes: u32,
        /// Copies per shard.
        replication: u32,
        /// The threshold the snapshot was frozen for.
        tau: u32,
        /// Shards in the snapshot.
        shard_count: u32,
        /// Catalog trees in the snapshot.
        tree_count: u32,
        /// The shards this node holds, ascending.
        owned_shards: Vec<u32>,
        /// The snapshot's size-class → shard map, encoded with
        /// [`tsj_catalog::snapshot::encode_shard_map`].
        shard_map: Vec<u8>,
    },
    /// Appends one probe tree to the connection's registered batch.
    Probe {
        /// The single-tree batch to append.
        batch: ProbeBatch,
    },
    /// Replaces the connection's registered probe batch.
    ProbeBatch(ProbeBatch),
    /// Acknowledges [`Frame::Probe`] / [`Frame::ProbeBatch`] with the
    /// connection's total registered probe count.
    ProbeAck {
        /// Probes now registered on this connection.
        count: u32,
    },
    /// One scatter unit: serve the registered probe `probe` against
    /// `shard`, restricted to `classes`, at threshold `tau`.
    JoinShard {
        /// Index into the connection's registered probe batch.
        probe: u32,
        /// The shard to serve from.
        shard: u32,
        /// Per-query threshold (≤ the frozen one).
        tau: u32,
        /// The probe-window size classes `shard` owns, ascending.
        classes: Vec<u32>,
    },
    /// A served [`Frame::JoinShard`]: matching catalog tree ids plus the
    /// partial [`JoinStats`] the client's router folds into the total.
    JoinShardResp {
        /// Echo of the request's probe index.
        probe: u32,
        /// Matching catalog tree ids, in candidate order.
        matches: Vec<u32>,
        /// This request's counters (durations carried as nanoseconds).
        stats: JoinStats,
    },
    /// Requests the node's metrics export.
    Metrics,
    /// The node's Prometheus text exposition (its own
    /// `tsj_catalogd_*` registry merged with the process-global
    /// [`tsj_obs::global`] registry).
    MetricsResp {
        /// Prometheus text format, as `tsj_obs::export::to_prometheus`
        /// renders it.
        text: String,
    },
    /// Liveness probe.
    Health,
    /// Liveness answer.
    HealthAck {
        /// The answering node's id.
        node: u32,
        /// Shards currently held.
        owned_shards: u32,
    },
    /// Asks the server process to stop accepting and exit its serve
    /// loop after acknowledging.
    Shutdown,
    /// Acknowledges [`Frame::Shutdown`]; the connection closes next.
    ShutdownAck,
    /// A typed failure answer; the connection survives unless the error
    /// is a framing violation.
    Error {
        /// What went wrong.
        code: ErrorCode,
        /// Human-readable detail (never required for dispatch).
        message: String,
    },
}

/// Everything that can go wrong encoding or decoding frames. Decoding
/// arbitrary bytes must land in exactly one of these — never a panic —
/// which the `wire_fuzz` suite enforces by mutating valid frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    FrameTooLarge {
        /// The advertised length.
        len: u32,
    },
    /// The length prefix cannot even hold the envelope.
    FrameTooShort {
        /// The advertised length.
        len: u32,
    },
    /// The frame checksum disagrees with its bytes.
    ChecksumMismatch {
        /// Checksum stored in the frame.
        stored: u64,
        /// Checksum of the bytes actually received.
        actual: u64,
    },
    /// The frame type tag is unknown to this build.
    UnknownType {
        /// The tag byte found.
        tag: u8,
    },
    /// The payload ended before the structure it promises.
    Truncated {
        /// What was being decoded when the bytes ran out.
        context: &'static str,
    },
    /// The payload parsed but describes an impossible structure
    /// (out-of-range index, non-UTF-8 string, trailing garbage, …).
    Malformed {
        /// What was wrong.
        context: &'static str,
    },
    /// The underlying socket failed.
    Io {
        /// The I/O error kind.
        kind: std::io::ErrorKind,
        /// What was being transferred.
        context: &'static str,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::FrameTooLarge { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap")
            }
            WireError::FrameTooShort { len } => {
                write!(f, "frame length {len} cannot hold a type byte and checksum")
            }
            WireError::ChecksumMismatch { stored, actual } => write!(
                f,
                "frame checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"
            ),
            WireError::UnknownType { tag } => write!(f, "unknown frame type {tag:#04x}"),
            WireError::Truncated { context } => {
                write!(f, "frame truncated while reading {context}")
            }
            WireError::Malformed { context } => write!(f, "malformed frame: {context}"),
            WireError::Io { kind, context } => write!(f, "i/o error ({kind:?}) during {context}"),
        }
    }
}

impl std::error::Error for WireError {}

impl WireError {
    /// Whether the error leaves the byte stream in an unknowable state —
    /// a peer hitting one of these must close the connection, because
    /// frame boundaries can no longer be trusted.
    pub fn desyncs_stream(&self) -> bool {
        matches!(
            self,
            WireError::FrameTooLarge { .. }
                | WireError::FrameTooShort { .. }
                | WireError::ChecksumMismatch { .. }
                | WireError::Io { .. }
        )
    }
}

impl From<CatalogError> for WireError {
    fn from(e: CatalogError) -> WireError {
        match e {
            CatalogError::Truncated { context } => WireError::Truncated { context },
            _ => WireError::Malformed {
                context: "invalid embedded section",
            },
        }
    }
}

/// Decode-side interner for [`StageCount::stage`] names (`&'static str`
/// on the receiving side). Bounded: stage names come from a small fixed
/// set of filter implementations, so more than [`MAX_STAGE_NAMES`]
/// distinct names (or one longer than [`MAX_STAGE_NAME_LEN`] bytes) is a
/// malformed frame, not a leak.
static STAGE_NAMES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

/// Cap on distinct interned stage names.
pub const MAX_STAGE_NAMES: usize = 256;
/// Cap on one stage name's byte length.
pub const MAX_STAGE_NAME_LEN: usize = 64;

fn intern_stage(name: &str) -> Result<&'static str, WireError> {
    if name.len() > MAX_STAGE_NAME_LEN {
        return Err(WireError::Malformed {
            context: "stage name too long",
        });
    }
    let mut names = STAGE_NAMES.lock().expect("stage interner poisoned");
    if let Some(s) = names.iter().find(|s| **s == name) {
        return Ok(s);
    }
    if names.len() >= MAX_STAGE_NAMES {
        return Err(WireError::Malformed {
            context: "too many distinct stage names",
        });
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    names.push(leaked);
    Ok(leaked)
}

fn put_str(w: &mut ByteWriter, s: &str) {
    w.put_u32(s.len() as u32);
    w.put_bytes(s.as_bytes());
}

fn get_str(r: &mut ByteReader<'_>, context: &'static str) -> Result<String, WireError> {
    let len = r.get_count(1, context)?;
    let bytes = r.get_bytes(len, context)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed {
        context: "non-UTF-8 string",
    })
}

fn put_u32s(w: &mut ByteWriter, vs: &[u32]) {
    w.put_u32(vs.len() as u32);
    for &v in vs {
        w.put_u32(v);
    }
}

fn get_u32s(r: &mut ByteReader<'_>, context: &'static str) -> Result<Vec<u32>, WireError> {
    let count = r.get_count(4, context)?;
    (0..count).map(|_| Ok(r.get_u32(context)?)).collect()
}

fn put_probe_batch(w: &mut ByteWriter, batch: &ProbeBatch) {
    w.put_u32(batch.labels.len() as u32);
    for label in &batch.labels {
        put_str(w, label);
    }
    w.put_u32(batch.trees.len() as u32);
    for tree in &batch.trees {
        w.put_u32(tree.nodes.len() as u32);
        for &(label, parent) in &tree.nodes {
            w.put_u32(label);
            w.put_u32(parent);
        }
    }
}

fn get_probe_batch(r: &mut ByteReader<'_>) -> Result<ProbeBatch, WireError> {
    let label_count = r.get_count(4, "probe label table")?;
    let labels = (0..label_count)
        .map(|_| get_str(r, "probe label"))
        .collect::<Result<Vec<_>, _>>()?;
    let tree_count = r.get_count(4, "probe tree count")?;
    let trees = (0..tree_count)
        .map(|_| {
            let nodes = r.get_count(8, "probe tree nodes")?;
            let nodes = (0..nodes)
                .map(|_| {
                    let label = r.get_u32("probe node label")?;
                    if label as usize >= labels.len() {
                        return Err(WireError::Malformed {
                            context: "probe node label out of table range",
                        });
                    }
                    let parent = r.get_u32("probe node parent")?;
                    Ok((label, parent))
                })
                .collect::<Result<Vec<_>, WireError>>()?;
            Ok(WireTree { nodes })
        })
        .collect::<Result<Vec<_>, WireError>>()?;
    Ok(ProbeBatch { labels, trees })
}

fn put_stats(w: &mut ByteWriter, stats: &JoinStats) {
    w.put_u64(stats.pairs_examined);
    w.put_u64(stats.candidates);
    w.put_u64(stats.results);
    w.put_u64(stats.candidate_time.as_nanos() as u64);
    w.put_u64(stats.verify_time.as_nanos() as u64);
    w.put_u64(stats.ted_calls);
    w.put_u64(stats.prefilter_skips);
    w.put_u64(stats.early_accepts);
    w.put_u32(stats.stage_counts.len() as u32);
    for sc in &stats.stage_counts {
        put_str(w, sc.stage);
        w.put_u64(sc.count);
    }
}

fn get_stats(r: &mut ByteReader<'_>) -> Result<JoinStats, WireError> {
    let mut stats = JoinStats {
        pairs_examined: r.get_u64("stats pairs_examined")?,
        candidates: r.get_u64("stats candidates")?,
        results: r.get_u64("stats results")?,
        candidate_time: std::time::Duration::from_nanos(r.get_u64("stats candidate_time")?),
        verify_time: std::time::Duration::from_nanos(r.get_u64("stats verify_time")?),
        ted_calls: r.get_u64("stats ted_calls")?,
        prefilter_skips: r.get_u64("stats prefilter_skips")?,
        early_accepts: r.get_u64("stats early_accepts")?,
        stage_counts: Vec::new(),
    };
    let stages = r.get_count(12, "stats stage count")?;
    for _ in 0..stages {
        let name = get_str(r, "stage name")?;
        let count = r.get_u64("stage counter")?;
        stats.stage_counts.push(StageCount {
            stage: intern_stage(&name)?,
            count,
        });
    }
    Ok(stats)
}

impl Frame {
    fn tag(&self) -> u8 {
        match self {
            Frame::Hello { .. } => tag::HELLO,
            Frame::HelloAck { .. } => tag::HELLO_ACK,
            Frame::Probe { .. } => tag::PROBE,
            Frame::ProbeBatch(_) => tag::PROBE_BATCH,
            Frame::ProbeAck { .. } => tag::PROBE_ACK,
            Frame::JoinShard { .. } => tag::JOIN_SHARD,
            Frame::JoinShardResp { .. } => tag::JOIN_SHARD_RESP,
            Frame::Metrics => tag::METRICS,
            Frame::MetricsResp { .. } => tag::METRICS_RESP,
            Frame::Health => tag::HEALTH,
            Frame::HealthAck { .. } => tag::HEALTH_ACK,
            Frame::Shutdown => tag::SHUTDOWN,
            Frame::ShutdownAck => tag::SHUTDOWN_ACK,
            Frame::Error { .. } => tag::ERROR,
        }
    }

    fn put_payload(&self, w: &mut ByteWriter) {
        match self {
            Frame::Hello {
                version,
                snapshot_hash,
            } => {
                w.put_u16(*version);
                w.put_u64(*snapshot_hash);
            }
            Frame::HelloAck {
                version,
                snapshot_hash,
                node,
                nodes,
                replication,
                tau,
                shard_count,
                tree_count,
                owned_shards,
                shard_map,
            } => {
                w.put_u16(*version);
                w.put_u64(*snapshot_hash);
                w.put_u32(*node);
                w.put_u32(*nodes);
                w.put_u32(*replication);
                w.put_u32(*tau);
                w.put_u32(*shard_count);
                w.put_u32(*tree_count);
                put_u32s(w, owned_shards);
                w.put_u32(shard_map.len() as u32);
                w.put_bytes(shard_map);
            }
            Frame::Probe { batch } => put_probe_batch(w, batch),
            Frame::ProbeBatch(batch) => put_probe_batch(w, batch),
            Frame::ProbeAck { count } => w.put_u32(*count),
            Frame::JoinShard {
                probe,
                shard,
                tau,
                classes,
            } => {
                w.put_u32(*probe);
                w.put_u32(*shard);
                w.put_u32(*tau);
                put_u32s(w, classes);
            }
            Frame::JoinShardResp {
                probe,
                matches,
                stats,
            } => {
                w.put_u32(*probe);
                put_u32s(w, matches);
                put_stats(w, stats);
            }
            Frame::Metrics | Frame::Health | Frame::Shutdown | Frame::ShutdownAck => {}
            Frame::MetricsResp { text } => put_str(w, text),
            Frame::HealthAck { node, owned_shards } => {
                w.put_u32(*node);
                w.put_u32(*owned_shards);
            }
            Frame::Error { code, message } => {
                w.put_u16(code.to_u16());
                put_str(w, message);
            }
        }
    }

    /// Encodes the full frame — length prefix, type, payload, checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = ByteWriter::new();
        payload.put_u8(self.tag());
        self.put_payload(&mut payload);
        let body = payload.into_bytes();
        let checksum = fnv1a64(&body);
        let mut out = ByteWriter::new();
        out.put_u32(body.len() as u32 + 8);
        out.put_bytes(&body);
        out.put_u64(checksum);
        out.into_bytes()
    }

    /// Decodes one frame from the front of `buf`, returning it and the
    /// number of bytes consumed. Every failure is a typed [`WireError`].
    pub fn decode(buf: &[u8]) -> Result<(Frame, usize), WireError> {
        let mut r = ByteReader::new(buf);
        let len = r.get_u32("frame length").map_err(WireError::from)?;
        if len > MAX_FRAME_LEN {
            return Err(WireError::FrameTooLarge { len });
        }
        if len < ENVELOPE {
            return Err(WireError::FrameTooShort { len });
        }
        let body = r
            .get_bytes(len as usize - 8, "frame body")
            .map_err(WireError::from)?;
        let stored = r.get_u64("frame checksum").map_err(WireError::from)?;
        let actual = fnv1a64(body);
        if stored != actual {
            return Err(WireError::ChecksumMismatch { stored, actual });
        }
        let frame = Frame::decode_body(body)?;
        Ok((frame, 4 + len as usize))
    }

    /// Decodes a checksum-verified frame body (type byte + payload).
    pub fn decode_body(body: &[u8]) -> Result<Frame, WireError> {
        let mut r = ByteReader::new(body);
        let tag = r.get_u8("frame type")?;
        let frame = match tag {
            tag::HELLO => Frame::Hello {
                version: r.get_u16("hello version")?,
                snapshot_hash: r.get_u64("hello snapshot hash")?,
            },
            tag::HELLO_ACK => Frame::HelloAck {
                version: r.get_u16("helloack version")?,
                snapshot_hash: r.get_u64("helloack snapshot hash")?,
                node: r.get_u32("helloack node")?,
                nodes: r.get_u32("helloack nodes")?,
                replication: r.get_u32("helloack replication")?,
                tau: r.get_u32("helloack tau")?,
                shard_count: r.get_u32("helloack shard count")?,
                tree_count: r.get_u32("helloack tree count")?,
                owned_shards: get_u32s(&mut r, "helloack owned shards")?,
                shard_map: {
                    let len = r.get_count(1, "helloack shard map")?;
                    r.get_bytes(len, "helloack shard map")?.to_vec()
                },
            },
            tag::PROBE => Frame::Probe {
                batch: get_probe_batch(&mut r)?,
            },
            tag::PROBE_BATCH => Frame::ProbeBatch(get_probe_batch(&mut r)?),
            tag::PROBE_ACK => Frame::ProbeAck {
                count: r.get_u32("probeack count")?,
            },
            tag::JOIN_SHARD => Frame::JoinShard {
                probe: r.get_u32("joinshard probe")?,
                shard: r.get_u32("joinshard shard")?,
                tau: r.get_u32("joinshard tau")?,
                classes: get_u32s(&mut r, "joinshard classes")?,
            },
            tag::JOIN_SHARD_RESP => Frame::JoinShardResp {
                probe: r.get_u32("joinresp probe")?,
                matches: get_u32s(&mut r, "joinresp matches")?,
                stats: get_stats(&mut r)?,
            },
            tag::METRICS => Frame::Metrics,
            tag::METRICS_RESP => Frame::MetricsResp {
                text: get_str(&mut r, "metrics text")?,
            },
            tag::HEALTH => Frame::Health,
            tag::HEALTH_ACK => Frame::HealthAck {
                node: r.get_u32("healthack node")?,
                owned_shards: r.get_u32("healthack owned")?,
            },
            tag::SHUTDOWN => Frame::Shutdown,
            tag::SHUTDOWN_ACK => Frame::ShutdownAck,
            tag::ERROR => Frame::Error {
                code: ErrorCode::from_u16(r.get_u16("error code")?)?,
                message: get_str(&mut r, "error message")?,
            },
            other => return Err(WireError::UnknownType { tag: other }),
        };
        if r.remaining() != 0 {
            return Err(WireError::Malformed {
                context: "trailing bytes after payload",
            });
        }
        Ok(frame)
    }

    /// Writes the frame to `stream` in one `write_all`.
    pub fn write_to(&self, stream: &mut impl std::io::Write) -> Result<(), WireError> {
        stream.write_all(&self.encode()).map_err(|e| WireError::Io {
            kind: e.kind(),
            context: "writing frame",
        })
    }

    /// Reads exactly one frame from `stream`. Socket failures surface as
    /// [`WireError::Io`] (a read timeout arrives as `WouldBlock` or
    /// `TimedOut`, depending on platform); framing and payload failures
    /// as their typed variants.
    pub fn read_from(stream: &mut impl std::io::Read) -> Result<Frame, WireError> {
        let mut len_bytes = [0u8; 4];
        read_exact(stream, &mut len_bytes, "frame length")?;
        let len = u32::from_le_bytes(len_bytes);
        if len > MAX_FRAME_LEN {
            return Err(WireError::FrameTooLarge { len });
        }
        if len < ENVELOPE {
            return Err(WireError::FrameTooShort { len });
        }
        let mut body = vec![0u8; len as usize];
        read_exact(stream, &mut body, "frame body")?;
        let stored = u64::from_le_bytes(body[len as usize - 8..].try_into().unwrap());
        let body = &body[..len as usize - 8];
        let actual = fnv1a64(body);
        if stored != actual {
            return Err(WireError::ChecksumMismatch { stored, actual });
        }
        Frame::decode_body(body)
    }
}

fn read_exact(
    stream: &mut impl std::io::Read,
    buf: &mut [u8],
    context: &'static str,
) -> Result<(), WireError> {
    stream.read_exact(buf).map_err(|e| WireError::Io {
        kind: e.kind(),
        context,
    })
}

/// Builds the wire [`ProbeBatch`] for `probes`, resolving each label to
/// its string through `labels`. A probe label the interner cannot
/// resolve is a typed error — it would be unanswerable server-side.
pub fn encode_probes(probes: &[Tree], labels: &LabelInterner) -> Result<ProbeBatch, WireError> {
    let mut table: Vec<String> = Vec::new();
    let mut index: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    let mut trees = Vec::with_capacity(probes.len());
    for probe in probes {
        let nodes = probe
            .flatten()
            .into_iter()
            .map(|(label, parent)| {
                let slot = match index.get(&label.raw()) {
                    Some(&slot) => slot,
                    None => {
                        let name = labels.resolve(label).ok_or(WireError::Malformed {
                            context: "probe label missing from the interner",
                        })?;
                        let slot = table.len() as u32;
                        table.push(name.to_string());
                        index.insert(label.raw(), slot);
                        slot
                    }
                };
                Ok((slot, parent.map_or(0, |p| p + 1)))
            })
            .collect::<Result<Vec<_>, WireError>>()?;
        trees.push(WireTree { nodes });
    }
    Ok(ProbeBatch {
        labels: table,
        trees,
    })
}

/// Rebuilds the probe [`Tree`]s from a wire batch, interning every label
/// string into `interner` (typically a per-connection clone of the
/// server's snapshot interner, so catalog labels map to their snapshot
/// ids and novel labels get fresh ones — an injective remapping, which
/// is all label-equality filtering needs).
pub fn decode_probes(
    batch: &ProbeBatch,
    interner: &mut LabelInterner,
) -> Result<Vec<Tree>, WireError> {
    let mapped: Vec<Label> = batch
        .labels
        .iter()
        .map(|name| interner.intern(name))
        .collect();
    batch
        .trees
        .iter()
        .map(|tree| {
            let nodes: Vec<(Label, Option<u32>)> = tree
                .nodes
                .iter()
                .map(|&(label, parent)| {
                    (
                        mapped[label as usize],
                        if parent == 0 { None } else { Some(parent - 1) },
                    )
                })
                .collect();
            Tree::from_flattened(&nodes).map_err(|_| WireError::Malformed {
                context: "probe tree structure invalid",
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsj_tree::parse_bracket;

    fn round_trip(frame: Frame) {
        let bytes = frame.encode();
        let (decoded, consumed) = Frame::decode(&bytes).expect("decodes");
        assert_eq!(consumed, bytes.len());
        assert_eq!(decoded, frame);
    }

    #[test]
    fn every_frame_round_trips() {
        let mut labels = LabelInterner::new();
        let probes = vec![
            parse_bracket("{a{b}{c}}", &mut labels).unwrap(),
            parse_bracket("{x{y{z}}}", &mut labels).unwrap(),
        ];
        let batch = encode_probes(&probes, &labels).unwrap();
        round_trip(Frame::Hello {
            version: PROTOCOL_VERSION,
            snapshot_hash: 0xDEAD_BEEF,
        });
        round_trip(Frame::HelloAck {
            version: PROTOCOL_VERSION,
            snapshot_hash: 1,
            node: 0,
            nodes: 2,
            replication: 2,
            tau: 3,
            shard_count: 8,
            tree_count: 100,
            owned_shards: vec![0, 2, 4, 6],
            shard_map: vec![9, 9, 9],
        });
        round_trip(Frame::Probe {
            batch: batch.clone(),
        });
        round_trip(Frame::ProbeBatch(batch));
        round_trip(Frame::ProbeAck { count: 2 });
        round_trip(Frame::JoinShard {
            probe: 1,
            shard: 3,
            tau: 2,
            classes: vec![4, 5, 6],
        });
        round_trip(Frame::JoinShardResp {
            probe: 1,
            matches: vec![10, 20],
            stats: JoinStats {
                pairs_examined: 5,
                candidates: 5,
                results: 0,
                ted_calls: 2,
                prefilter_skips: 3,
                early_accepts: 0,
                candidate_time: std::time::Duration::from_nanos(1234),
                verify_time: std::time::Duration::from_nanos(5678),
                stage_counts: vec![StageCount {
                    stage: intern_stage("traversal-sed").unwrap(),
                    count: 3,
                }],
            },
        });
        round_trip(Frame::Metrics);
        round_trip(Frame::MetricsResp {
            text: "# TYPE x counter\nx 1\n".into(),
        });
        round_trip(Frame::Health);
        round_trip(Frame::HealthAck {
            node: 1,
            owned_shards: 4,
        });
        round_trip(Frame::Shutdown);
        round_trip(Frame::ShutdownAck);
        round_trip(Frame::Error {
            code: ErrorCode::TauExceedsFrozen,
            message: "tau 9 > frozen 3".into(),
        });
    }

    #[test]
    fn probes_survive_the_wire_under_a_different_interner() {
        let mut client = LabelInterner::new();
        // Force disjoint id spaces: pre-intern noise client-side.
        client.intern("noise-1");
        client.intern("noise-2");
        let probes = vec![parse_bracket("{item{dock}{ports}}", &mut client).unwrap()];
        let batch = encode_probes(&probes, &client).unwrap();
        let mut server = LabelInterner::new();
        server.intern("item");
        let decoded = decode_probes(&batch, &mut server).unwrap();
        assert_eq!(decoded.len(), 1);
        assert_eq!(decoded[0].len(), probes[0].len());
        // Same structure, labels remapped injectively.
        assert_eq!(
            server.resolve(decoded[0].label(decoded[0].root())).unwrap(),
            "item"
        );
    }

    #[test]
    fn corrupt_frames_yield_typed_errors() {
        let frame = Frame::ProbeAck { count: 7 };
        let bytes = frame.encode();
        // Flip a payload byte: checksum catches it.
        let mut bad = bytes.clone();
        *bad.last_mut().unwrap() ^= 0xFF;
        assert!(matches!(
            Frame::decode(&bad),
            Err(WireError::ChecksumMismatch { .. })
        ));
        // Oversized length prefix: refused before allocation.
        let mut huge = bytes.clone();
        huge[..4].copy_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        assert!(matches!(
            Frame::decode(&huge),
            Err(WireError::FrameTooLarge { .. })
        ));
        // Undersized length prefix.
        let mut tiny = bytes.clone();
        tiny[..4].copy_from_slice(&3u32.to_le_bytes());
        assert!(matches!(
            Frame::decode(&tiny),
            Err(WireError::FrameTooShort { .. })
        ));
        // Truncated buffer.
        assert!(matches!(
            Frame::decode(&bytes[..bytes.len() - 3]),
            Err(WireError::Truncated { .. }) | Err(WireError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn unknown_frame_type_is_typed_and_checksummed() {
        // Hand-build a frame with an unknown tag but a valid checksum.
        let body = [0x7F_u8, 1, 2, 3];
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(body.len() as u32 + 8).to_le_bytes());
        bytes.extend_from_slice(&body);
        bytes.extend_from_slice(&fnv1a64(&body).to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes),
            Err(WireError::UnknownType { tag: 0x7F })
        ));
    }
}
