//! Streaming near-duplicate monitoring — the scenario that closes the
//! paper's evaluation: "streaming workloads where tree objects (e.g., XML
//! and HTML entities) are inserted and updated at a high rate".
//!
//! Documents arrive one at a time; the monitor reports each newcomer's
//! near-duplicates among everything *currently live*, immediately. This
//! example runs the sharded sliding-window join
//! ([`tsj_shard::ShardedStreamingJoin`]): a marketplace rarely cares
//! whether a listing duplicates one from last month, so the window keeps
//! only the most recent documents — older ones are **evicted**, their
//! index postings tombstoned and reclaimed by per-shard compaction, and
//! they stop matching instantly.
//!
//! ```bash
//! cargo run --release --example streaming_monitor
//! ```

use tree_similarity_join::prelude::*;

fn main() {
    // A feed of incoming product pages; some are re-submissions with
    // small edits (the near-duplicates a marketplace wants to flag live).
    let feed = [
        (
            "v1 listing A",
            "{item{name{kbd}}{price{49}}{specs{color}{warranty}}}",
        ),
        (
            "fresh B",
            "{item{name{dock}}{price{99}}{ports{usbc}{hdmi}{jack}}}",
        ),
        (
            "v2 listing A",
            "{item{name{kbd}}{price{54}}{specs{color}{warranty}}}",
        ),
        (
            "fresh C",
            "{page{header{nav}}{body{article{p}{p}}}{footer}}",
        ),
        (
            "v2 listing B",
            "{item{name{dock}}{price{89}}{ports{usbc}{hdmi}{jack}}}",
        ),
        (
            "v3 listing A",
            "{item{name{kbd}}{price{54}}{specs{color}{warranty}{rgb}}}",
        ),
        // By now the earliest documents have slid out of the window: this
        // exact copy of "v1 listing A" no longer matches it — only the
        // still-live revisions of listing A are reported.
        (
            "copy of v1 A",
            "{item{name{kbd}}{price{49}}{specs{color}{warranty}}}",
        ),
    ];

    let tau = 2;
    let window = 4; // keep only the 4 most recent documents live
    let mut labels = LabelInterner::new();
    let mut monitor = ShardedStreamingJoin::new(
        tau,
        PartSjConfig::default(),
        ShardConfig::default(),
        EvictionPolicy::SlidingCount(window),
    );
    let mut names: Vec<&str> = Vec::new();

    println!("sliding-window monitor: tau = {tau}, window = {window} docs\n");
    for (name, source) in feed {
        let tree = parse_bracket(source, &mut labels).expect("valid feed document");
        let partners = monitor.insert(&tree);
        if partners.is_empty() {
            println!("insert {name:14} -> no live near-duplicates");
        } else {
            let matched: Vec<&str> = partners.iter().map(|&j| names[j as usize]).collect();
            println!("insert {name:14} -> near-duplicate of {matched:?}");
        }
        names.push(name);
    }

    println!(
        "\nprocessed {} documents ({} live, {} evicted), reported {} pairs",
        monitor.len(),
        monitor.live(),
        monitor.evictions(),
        monitor.pairs_found(),
    );
    println!(
        "index: {} live postings, {} tombstoned, {} shard compactions, {} exact TED calls",
        monitor.index().live_postings(),
        monitor.index().dead_postings(),
        monitor.compactions(),
        monitor.ted_calls(),
    );
}
