//! Doc-link lint: every intra-repo markdown link in `README.md` and
//! `docs/*.md` must point at a file (or directory) that exists, and
//! every document under `docs/` must be reachable from the README.
//! Runs as part of the normal `cargo test` tier, so a renamed file or
//! a typo'd path fails CI instead of shipping a dead link.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// The documents the lint covers, relative to the repo root.
fn documents() -> Vec<PathBuf> {
    let root = repo_root();
    let mut docs = vec![root.join("README.md")];
    let docs_dir = root.join("docs");
    let mut listed: Vec<_> = std::fs::read_dir(&docs_dir)
        .expect("docs/ exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "md"))
        .collect();
    listed.sort();
    assert!(!listed.is_empty(), "docs/ contains no markdown files");
    docs.extend(listed);
    docs
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Extracts `](target)` markdown link targets from one line, skipping
/// fenced code (handled by the caller) and inline code spans.
fn link_targets(line: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let mut rest = line;
    while let Some(open) = rest.find("](") {
        let after = &rest[open + 2..];
        let Some(close) = after.find(')') else { break };
        targets.push(after[..close].trim().to_string());
        rest = &after[close + 1..];
    }
    // Reference-style definitions: `[label]: target`
    let trimmed = line.trim();
    if trimmed.starts_with('[') {
        if let Some(colon) = trimmed.find("]:") {
            if trimmed[..colon].len() > 1 {
                targets.push(trimmed[colon + 2..].trim().to_string());
            }
        }
    }
    targets
}

/// A target the lint should resolve on disk: not external, not a
/// pure in-page anchor.
fn is_intra_repo(target: &str) -> bool {
    !(target.is_empty()
        || target.starts_with('#')
        || target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:"))
}

#[test]
fn intra_repo_markdown_links_resolve() {
    let root = repo_root();
    let mut broken = Vec::new();
    let mut checked = 0usize;

    for doc in documents() {
        let text = std::fs::read_to_string(&doc)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", doc.display()));
        let base = doc.parent().unwrap_or(Path::new("")).to_path_buf();
        let mut in_fence = false;
        for (lineno, line) in text.lines().enumerate() {
            if line.trim_start().starts_with("```") {
                in_fence = !in_fence;
                continue;
            }
            if in_fence {
                continue;
            }
            for target in link_targets(line) {
                if !is_intra_repo(&target) {
                    continue;
                }
                // Strip an in-page anchor suffix: `FILE.md#section`.
                let path_part = target.split('#').next().unwrap_or("");
                if path_part.is_empty() {
                    continue; // pure anchor, nothing on disk to check
                }
                checked += 1;
                let resolved = if let Some(abs) = path_part.strip_prefix('/') {
                    root.join(abs)
                } else {
                    base.join(path_part)
                };
                if !resolved.exists() {
                    broken.push(format!(
                        "{}:{}: broken link `{}` (resolved to {})",
                        doc.display(),
                        lineno + 1,
                        target,
                        resolved.display()
                    ));
                }
            }
        }
    }

    assert!(checked > 0, "the lint found no intra-repo links to check");
    assert!(
        broken.is_empty(),
        "broken intra-repo doc links:\n{}",
        broken.join("\n")
    );
}

#[test]
fn every_doc_is_reachable_from_the_readme() {
    let root = repo_root();
    let readme = std::fs::read_to_string(root.join("README.md")).expect("README.md");
    let mut linked: BTreeSet<String> = BTreeSet::new();
    for line in readme.lines() {
        for target in link_targets(line) {
            if let Some(name) = target
                .split('#')
                .next()
                .and_then(|p| p.strip_prefix("docs/"))
            {
                linked.insert(name.to_string());
            }
        }
    }
    let mut unreachable = Vec::new();
    for doc in documents() {
        if doc.parent().is_some_and(|p| p.ends_with("docs")) {
            let name = doc.file_name().unwrap().to_string_lossy().to_string();
            if !linked.contains(&name) {
                unreachable.push(name);
            }
        }
    }
    assert!(
        unreachable.is_empty(),
        "docs not linked from README.md: {unreachable:?}"
    );
}
