//! Property-based tests for the distance kernels: metric axioms, the
//! published lower bounds, and cross-decomposition agreement.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tsj_datagen::{grow_tree, random_edit_script, ShapeProfile};
use tsj_ted::{
    histogram_bound, label_histogram, sed, sed_within, size_bound, ted, traversal_bound, CostModel,
    Strategy, TedEngine, TraversalStrings,
};
use tsj_tree::Tree;

fn random_tree(seed: u64, max_size: usize) -> Tree {
    let mut rng = StdRng::seed_from_u64(seed);
    let size = rng.gen_range(1..=max_size.max(1));
    let profile = ShapeProfile {
        max_fanout: 4,
        max_depth: 8,
        deepen_prob: rng.gen_range(0.0..0.8),
    };
    grow_tree(&mut rng, size, 5, &profile)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// TED is a metric: identity, symmetry, triangle inequality.
    #[test]
    fn ted_is_a_metric(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (ta, tb, tc) = (random_tree(a, 20), random_tree(b, 20), random_tree(c, 20));
        let mut engine = TedEngine::unit();

        prop_assert_eq!(engine.distance_trees(&ta, &ta), 0);
        let dab = engine.distance_trees(&ta, &tb);
        let dba = engine.distance_trees(&tb, &ta);
        prop_assert_eq!(dab, dba, "symmetry");
        if ta.structurally_eq(&tb) {
            prop_assert_eq!(dab, 0);
        } else {
            prop_assert!(dab > 0, "distinct trees must have positive distance");
        }
        let dac = engine.distance_trees(&ta, &tc);
        let dcb = engine.distance_trees(&tc, &tb);
        prop_assert!(dab <= dac + dcb, "triangle: {} > {} + {}", dab, dac, dcb);
    }

    /// Left, right, and dynamic decompositions compute the same value.
    #[test]
    fn decompositions_agree(a in any::<u64>(), b in any::<u64>()) {
        let (ta, tb) = (random_tree(a, 24), random_tree(b, 24));
        let left = TedEngine::new(CostModel::UNIT, Strategy::Left).distance_trees(&ta, &tb);
        let right = TedEngine::new(CostModel::UNIT, Strategy::Right).distance_trees(&ta, &tb);
        let dynamic = TedEngine::unit().distance_trees(&ta, &tb);
        prop_assert_eq!(left, right);
        prop_assert_eq!(left, dynamic);
    }

    /// A script of k random edits never yields a distance above k, and the
    /// size/histogram/traversal bounds never exceed the true distance.
    #[test]
    fn bounds_sandwich_ted(seed in any::<u64>(), k in 0usize..6) {
        let tree = random_tree(seed, 22);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcdef);
        let (edited, _) = random_edit_script(&tree, k, &mut rng, 5);
        let d = ted(&tree, &edited);
        prop_assert!(d <= k as u32, "TED {} > edit script length {}", d, k);

        prop_assert!(size_bound(tree.len(), edited.len()) <= d);
        let (ha, hb) = (label_histogram(&tree), label_histogram(&edited));
        prop_assert!(histogram_bound(&ha, &hb) <= d, "histogram bound violated");
        let (sa, sb) = (TraversalStrings::new(&tree), TraversalStrings::new(&edited));
        prop_assert!(traversal_bound(&sa, &sb) <= d, "Guha bound violated");
    }

    /// The traversal bound also holds for unrelated trees.
    #[test]
    fn guha_bound_on_unrelated_trees(a in any::<u64>(), b in any::<u64>()) {
        let (ta, tb) = (random_tree(a, 18), random_tree(b, 18));
        let d = ted(&ta, &tb);
        let (sa, sb) = (TraversalStrings::new(&ta), TraversalStrings::new(&tb));
        prop_assert!(traversal_bound(&sa, &sb) <= d);
    }

    /// Banded SED agrees with the full DP at every threshold.
    #[test]
    fn banded_sed_agrees(a in any::<u64>(), b in any::<u64>(), tau in 0u32..8) {
        let (ta, tb) = (random_tree(a, 20), random_tree(b, 20));
        let (pa, pb) = (ta.preorder_labels(), tb.preorder_labels());
        let full = sed(&pa, &pb);
        match sed_within(&pa, &pb, tau) {
            Some(d) => {
                prop_assert_eq!(d, full);
                prop_assert!(d <= tau);
            }
            None => prop_assert!(full > tau),
        }
    }

    /// TED against a single-leaf tree equals (almost) the tree size: keep
    /// the root if labels match, otherwise one more op.
    #[test]
    fn distance_to_leaf(seed in any::<u64>()) {
        let tree = random_tree(seed, 20);
        let leaf = Tree::leaf(tree.label(tree.root()));
        let d = ted(&tree, &leaf);
        prop_assert_eq!(d as usize, tree.len() - 1);
    }
}
