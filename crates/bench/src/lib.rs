//! Shared harness for regenerating the paper's tables and figures.
//!
//! The `experiments` binary (see `src/bin/experiments.rs`) drives the
//! sweeps; this library provides dataset handles, a method registry, and
//! plain-text table rendering so every figure prints the same rows/series
//! the paper plots.

#![warn(missing_docs)]

pub mod compare;

use partsj::{partsj_join_with, PartSjConfig};
use std::time::Duration;
use tsj_datagen::{
    collection_stats, sentiment_like, swissprot_like, synthetic, treebank_like, CollectionStats,
    SyntheticParams,
};
use tsj_ted::JoinOutcome;
use tsj_tree::Tree;

/// The four evaluation datasets of §4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// Swissprot-like: 100K flat medium trees in the paper.
    Swissprot,
    /// Treebank-like: 50K small deep trees.
    Treebank,
    /// Sentiment-like: 10K binarized sentiment parses.
    Sentiment,
    /// Zaki-style synthetic trees with Table 1 defaults.
    Synthetic,
}

impl Dataset {
    /// All four datasets in the paper's presentation order.
    pub const ALL: [Dataset; 4] = [
        Dataset::Swissprot,
        Dataset::Treebank,
        Dataset::Sentiment,
        Dataset::Synthetic,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Swissprot => "Swissprot",
            Dataset::Treebank => "Treebank",
            Dataset::Sentiment => "Sentiment",
            Dataset::Synthetic => "Synthetic",
        }
    }

    /// Paper cardinality of the full dataset.
    pub fn paper_cardinality(self) -> usize {
        match self {
            Dataset::Swissprot => 100_000,
            Dataset::Treebank => 50_000,
            Dataset::Sentiment => 10_000,
            Dataset::Synthetic => 10_000,
        }
    }

    /// Harness default cardinality (laptop scale; multiply with `--scale`).
    pub fn default_cardinality(self) -> usize {
        match self {
            Dataset::Swissprot => 2_000,
            Dataset::Treebank => 1_500,
            Dataset::Sentiment => 1_000,
            Dataset::Synthetic => 1_000,
        }
    }

    /// Generates `n` trees deterministically.
    pub fn generate(self, n: usize, seed: u64) -> Vec<Tree> {
        match self {
            Dataset::Swissprot => swissprot_like(n, seed),
            Dataset::Treebank => treebank_like(n, seed),
            Dataset::Sentiment => sentiment_like(n, seed),
            Dataset::Synthetic => synthetic(n, &SyntheticParams::default(), seed),
        }
    }

    /// The statistics the paper reports for the dataset:
    /// `(avg size, #labels, avg depth, max depth)`.
    pub fn paper_stats(self) -> (f64, usize, f64, u32) {
        match self {
            Dataset::Swissprot => (62.37, 84, 2.65, 4),
            Dataset::Treebank => (45.12, 218, 6.93, 35),
            Dataset::Sentiment => (37.31, 5, 10.84, 30),
            Dataset::Synthetic => (80.0, 20, 5.0, 5),
        }
    }
}

/// One join method registered with the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// The STR baseline (traversal-string bound).
    Str,
    /// The SET baseline (binary branch bound).
    Set,
    /// PartSJ, the paper's method (`PRT` in the figures).
    Prt,
}

impl Method {
    /// The three compared methods in the paper's order.
    pub const ALL: [Method; 3] = [Method::Str, Method::Set, Method::Prt];

    /// Figure label.
    pub fn name(self) -> &'static str {
        match self {
            Method::Str => "STR",
            Method::Set => "SET",
            Method::Prt => "PRT",
        }
    }

    /// Runs the method.
    pub fn run(self, trees: &[Tree], tau: u32) -> JoinOutcome {
        self.run_sharded(trees, tau, 1)
    }

    /// Runs the method; with `shards > 1`, `PRT` uses the sharded join
    /// (parallel candidate generation over `tsj_shard::ShardedIndex`,
    /// pools auto-sized to the machine). The baselines have no sharded
    /// variant and ignore the parameter.
    pub fn run_sharded(self, trees: &[Tree], tau: u32, shards: usize) -> JoinOutcome {
        self.run_sharded_with(trees, tau, shards, &PartSjConfig::default())
    }

    /// [`Method::run_sharded`] with a caller-supplied configuration —
    /// the hook the `--adaptive` experiments use to flip
    /// [`partsj::AdaptiveConfig`] on without forking the harness. The
    /// baselines have no configuration and ignore it.
    pub fn run_sharded_with(
        self,
        trees: &[Tree],
        tau: u32,
        shards: usize,
        config: &PartSjConfig,
    ) -> JoinOutcome {
        match self {
            Method::Str => tsj_baselines::str_join(trees, tau),
            Method::Set => tsj_baselines::set_join(trees, tau),
            Method::Prt if shards > 1 => tsj_shard::sharded_join(
                trees,
                tau,
                config,
                &tsj_shard::ShardConfig::with_shards(shards),
            ),
            Method::Prt => partsj_join_with(trees, tau, config),
        }
    }
}

/// Formats a duration as fractional seconds.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// The default verification chain's stage names, in chain order — the
/// per-stage columns of the candidate tables (Figures 11/13). Derived
/// from the engine itself so a renamed or newly spliced stage can never
/// desync the tables.
pub fn stage_columns() -> Vec<&'static str> {
    partsj::VerifyEngine::with_filters(0, &partsj::VerifyConfig::default()).stage_names()
}

/// One stage's counter from a stats breakdown; `0` when the method ran
/// without that stage (the STR/SET baselines, or a disabled toggle).
pub fn stage_count(stats: &tsj_ted::JoinStats, stage: &str) -> u64 {
    stats
        .stage_counts
        .iter()
        .find(|c| c.stage == stage)
        .map_or(0, |c| c.count)
}

/// Renders rows as an aligned plain-text table.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:<width$}", cell, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let mut out = String::new();
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Realized-vs-paper statistics row for the dataset description table.
pub fn stats_row(dataset: Dataset, stats: &CollectionStats) -> Vec<String> {
    let (p_size, p_labels, p_depth, p_max) = dataset.paper_stats();
    vec![
        dataset.name().to_string(),
        format!("{}", stats.cardinality),
        format!("{:.2} (paper {:.2})", stats.avg_size, p_size),
        format!("{} (paper {})", stats.distinct_labels, p_labels),
        format!("{:.2} (paper {:.2})", stats.avg_depth, p_depth),
        format!("{} (paper {})", stats.max_depth, p_max),
    ]
}

/// Convenience wrapper: generate a dataset and compute its stats.
pub fn dataset_with_stats(dataset: Dataset, n: usize, seed: u64) -> (Vec<Tree>, CollectionStats) {
    let trees = dataset.generate(n, seed);
    let stats = collection_stats(&trees);
    (trees, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_generate() {
        for dataset in Dataset::ALL {
            let trees = dataset.generate(40, 1);
            assert_eq!(trees.len(), 40);
        }
    }

    #[test]
    fn methods_agree_on_tiny_input() {
        let trees = Dataset::Synthetic.generate(60, 3);
        let expected = Method::Prt.run(&trees, 2);
        for method in [Method::Str, Method::Set] {
            assert_eq!(method.run(&trees, 2).pairs, expected.pairs);
        }
    }

    #[test]
    fn table_renders_aligned() {
        let table = render_table(
            &["a", "bb"],
            &[
                vec!["x".into(), "y".into()],
                vec!["longer".into(), "z".into()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with('a'));
    }
}
