//! The TCP cluster client: the PR 7 scatter/gather router over pooled
//! connections.
//!
//! [`ClusterClient`] is to a `catalogd` node set what
//! [`tsj_cluster::Cluster`] is to in-process nodes — and deliberately
//! *is* the same router: planning, replica choice, retry/backoff,
//! per-probe deadlines, health marking, per-node metrics and the typed
//! `Complete`/`Degraded` outcome all run through
//! [`tsj_cluster::route_requests`]; only the transport differs. Where
//! the in-process transport consults a deterministic fault injector,
//! [`TcpTransport`] meets *real* faults and maps them onto the same
//! [`Fault`] vocabulary:
//!
//! * refused / reset / closed connection → [`Fault::NodeDown`] —
//!   immediate failover, node marked unhealthy;
//! * socket read timeout → [`Fault::Timeout`] — charged
//!   `request_timeout_ms` against the probe's deadline (the connection
//!   is dropped: a late response would desync the stream);
//! * a server [`Frame::Error`] with [`ErrorCode::Internal`] →
//!   [`Fault::Transient`] — retried with backoff;
//! * any other server error or protocol violation → a fatal
//!   [`ClusterError`] (these are bugs or misconfigurations, not faults
//!   to retry through).
//!
//! Because the router is shared, the bit-identity contract extends
//! across the wire: a TCP join's pairs, candidate counts and
//! filter-stage counters are property-tested identical to
//! `Cluster::join` and single-node `Catalog::join`.

use crate::error::CatalogdError;
use crate::pool::{ConnPool, PoolConfig};
use crate::wire::{encode_probes, ErrorCode, Frame, PROTOCOL_VERSION};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;
use tsj_cluster::{
    plan_requests, route_requests, AttemptOutcome, Clock, ClusterError, ClusterJoin,
    ClusterMetrics, Fault, NodeMetricsSnapshot, NodeTransport, RetryPolicy, RouterEnv,
    ShardRequest, ShardResponse, Topology,
};
use tsj_obs::SystemClock;
use tsj_shard::ShardMap;
use tsj_tree::{LabelInterner, Tree};

/// Client tuning.
#[derive(Debug)]
pub struct ClientConfig {
    /// Retry/backoff/deadline policy — same shape and defaults as the
    /// in-process cluster's.
    pub retry: RetryPolicy,
    /// Connection pool tuning.
    pub pool: PoolConfig,
    /// Seed of the deterministic backoff jitter.
    pub backoff_seed: u64,
    /// The clock deadlines and backoff run on. [`tsj_obs::SystemClock`]
    /// by default (real waiting); tests inject a virtual clock for
    /// deterministic accounting.
    pub clock: std::sync::Arc<dyn Clock>,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            retry: RetryPolicy::default(),
            pool: PoolConfig::default(),
            backoff_seed: 0xCA7A_106D,
            clock: std::sync::Arc::new(SystemClock::new()),
        }
    }
}

/// What one node advertised in its [`Frame::HelloAck`].
#[derive(Debug, Clone)]
struct NodeFacts {
    snapshot_hash: u64,
    nodes: u32,
    replication: u32,
    tau: u32,
    shard_count: u32,
    tree_count: u32,
    owned_shards: Vec<u32>,
    shard_map: Vec<u8>,
}

/// A scatter/gather join client over a `catalogd` node set.
#[derive(Debug)]
pub struct ClusterClient {
    addrs: Vec<SocketAddr>,
    pool: ConnPool,
    topology: Topology,
    health: Vec<bool>,
    retry: RetryPolicy,
    backoff_seed: u64,
    clock: std::sync::Arc<dyn Clock>,
    metrics: ClusterMetrics,
    map: ShardMap,
    shard_count: usize,
    tau: u32,
    tree_count: usize,
    snapshot_hash: u64,
}

impl ClusterClient {
    /// Connects to every node (`addrs[n]` is node `n`), handshakes, and
    /// cross-checks what the set advertises: one protocol version, one
    /// snapshot hash, one (nodes, replication, tau, shard count).
    /// Placement is taken from the nodes' *advertised* owned shards, so
    /// the client follows what the servers actually hold. Nodes that
    /// cannot be reached come up unhealthy (requests fail over to
    /// replicas) — as long as at least one answers.
    pub fn connect(
        addrs: &[SocketAddr],
        cfg: ClientConfig,
    ) -> Result<ClusterClient, CatalogdError> {
        if addrs.is_empty() {
            return Err(CatalogdError::Handshake {
                context: "no node addresses given".into(),
            });
        }
        let pool = ConnPool::new(cfg.pool.clone());
        let mut facts: Vec<Option<NodeFacts>> = vec![None; addrs.len()];
        for (n, &addr) in addrs.iter().enumerate() {
            match hello(&pool, addr, 0) {
                Ok((got_node, node_facts)) => {
                    if got_node as usize != n {
                        return Err(CatalogdError::Handshake {
                            context: format!(
                                "{addr} answered as node {got_node}, expected node {n} \
                                 (address order must match node ids)"
                            ),
                        });
                    }
                    facts[n] = Some(node_facts);
                }
                Err(CatalogdError::Io { .. }) | Err(CatalogdError::Wire(_)) => {
                    // Unreachable now; it may come back — start it dead.
                }
                Err(e) => return Err(e),
            }
        }
        let Some(reference) = facts.iter().flatten().next().cloned() else {
            return Err(CatalogdError::Handshake {
                context: "no node answered the handshake".into(),
            });
        };
        if reference.nodes as usize != addrs.len() {
            return Err(CatalogdError::Handshake {
                context: format!(
                    "nodes advertise a {}-node set but {} addresses were given",
                    reference.nodes,
                    addrs.len()
                ),
            });
        }
        for (n, f) in facts.iter().enumerate() {
            let Some(f) = f else { continue };
            if (
                f.snapshot_hash,
                f.nodes,
                f.replication,
                f.tau,
                f.shard_count,
            ) != (
                reference.snapshot_hash,
                reference.nodes,
                reference.replication,
                reference.tau,
                reference.shard_count,
            ) {
                return Err(CatalogdError::Handshake {
                    context: format!("node {n} disagrees with the set: {f:?} vs {reference:?}"),
                });
            }
        }
        let topology = assemble_topology(addrs.len(), reference.shard_count as usize, &facts)?;
        let map = tsj_catalog::snapshot::decode_shard_map(
            &reference.shard_map,
            reference.shard_count as usize,
        )?;
        let health: Vec<bool> = facts.iter().map(Option::is_some).collect();
        Ok(ClusterClient {
            addrs: addrs.to_vec(),
            pool,
            topology,
            health,
            retry: cfg.retry,
            backoff_seed: cfg.backoff_seed,
            clock: cfg.clock,
            metrics: ClusterMetrics::new(addrs.len()),
            map,
            shard_count: reference.shard_count as usize,
            tau: reference.tau,
            tree_count: reference.tree_count as usize,
            snapshot_hash: reference.snapshot_hash,
        })
    }

    /// Scatter/gather join of `probes` against the node set at
    /// threshold `tau ≤ tau_frozen` — the TCP twin of
    /// [`tsj_cluster::Cluster::join`], same typed outcome, same
    /// degradation contract. `labels` must resolve every probe label
    /// (the interner the probes were parsed with).
    pub fn join(
        &mut self,
        probes: &[Tree],
        labels: &LabelInterner,
        tau: u32,
    ) -> Result<ClusterJoin, CatalogdError> {
        if tau > self.tau {
            return Err(ClusterError::TauExceedsFrozen {
                query: tau,
                frozen: self.tau,
            }
            .into());
        }
        let join_span = tsj_obs::tracer().span(&self.clock, "catalogd.join", "catalogd");
        let requests = plan_requests(probes, tau, &self.map, self.shard_count);
        let batch_frame = Frame::ProbeBatch(encode_probes(probes, labels)?).encode();
        let mut transport = TcpTransport {
            pool: &self.pool,
            addrs: &self.addrs,
            batch_frame,
            probe_count: probes.len() as u32,
            request_timeout_ms: self.retry.request_timeout_ms,
            clock: &*self.clock,
            conns: (0..self.addrs.len()).map(|_| None).collect(),
        };
        let mut env = RouterEnv {
            topology: &self.topology,
            health: &mut self.health,
            retry: &self.retry,
            backoff_seed: self.backoff_seed,
            clock: &*self.clock,
            metrics: &self.metrics,
        };
        let result = route_requests(&mut transport, requests, probes.len(), tau, &mut env);
        join_span.end();
        result.map_err(CatalogdError::from)
    }

    /// Per-node lifetime metrics, same shape as
    /// [`tsj_cluster::Cluster::metrics`].
    pub fn metrics(&self) -> Vec<NodeMetricsSnapshot> {
        self.metrics.per_node(&self.health)
    }

    /// The threshold the node set's snapshot was frozen for.
    pub fn tau(&self) -> u32 {
        self.tau
    }

    /// Catalog trees in the served snapshot.
    pub fn tree_count(&self) -> usize {
        self.tree_count
    }

    /// Number of shards in the served snapshot.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// The snapshot hash the node set agreed on.
    pub fn snapshot_hash(&self) -> u64 {
        self.snapshot_hash
    }

    /// Whether node `n` is currently believed alive.
    pub fn is_alive(&self, n: usize) -> bool {
        self.health.get(n).copied().unwrap_or(false)
    }

    /// The shard placement table the node set advertised.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Re-handshakes node `n` and, on success, marks it healthy again —
    /// the client-side recovery step after a restarted process. Pooled
    /// connections from before the failure are evicted first.
    pub fn reconnect(&mut self, n: usize) -> Result<(), CatalogdError> {
        let addr = *self.addrs.get(n).ok_or_else(|| CatalogdError::Handshake {
            context: format!("no node {n}"),
        })?;
        self.pool.evict_addr(addr);
        let (got_node, facts) = hello(&self.pool, addr, self.snapshot_hash)?;
        if got_node as usize != n {
            return Err(CatalogdError::Handshake {
                context: format!("{addr} answered as node {got_node}, expected {n}"),
            });
        }
        if facts.snapshot_hash != self.snapshot_hash {
            return Err(CatalogdError::Handshake {
                context: format!(
                    "node {n} restarted with snapshot {:#018x}, set serves {:#018x}",
                    facts.snapshot_hash, self.snapshot_hash
                ),
            });
        }
        self.health[n] = true;
        Ok(())
    }

    /// Fetches node `n`'s metrics export (the [`Frame::Metrics`] answer:
    /// Prometheus text ready for `tsj_obs::export::validate_prometheus`).
    pub fn node_metrics_text(&self, n: usize) -> Result<String, CatalogdError> {
        let addr = *self.addrs.get(n).ok_or_else(|| CatalogdError::Handshake {
            context: format!("no node {n}"),
        })?;
        let mut stream = self.pool.checkout(addr)?;
        stream
            .set_read_timeout(Some(Duration::from_millis(5_000)))
            .ok();
        Frame::Metrics.write_to(&mut stream)?;
        match Frame::read_from(&mut stream)? {
            Frame::MetricsResp { text } => {
                self.pool.checkin(addr, stream, true);
                Ok(text)
            }
            other => Err(CatalogdError::Protocol {
                context: format!("expected MetricsResp, got {other:?}"),
            }),
        }
    }

    /// Sends [`Frame::Shutdown`] to node `n` and waits for the ack —
    /// how the smoke job and the demo stop server processes cleanly.
    pub fn shutdown_node(&mut self, n: usize) -> Result<(), CatalogdError> {
        let addr = *self.addrs.get(n).ok_or_else(|| CatalogdError::Handshake {
            context: format!("no node {n}"),
        })?;
        let mut stream = self.pool.checkout(addr)?;
        stream
            .set_read_timeout(Some(Duration::from_millis(5_000)))
            .ok();
        Frame::Shutdown.write_to(&mut stream)?;
        match Frame::read_from(&mut stream)? {
            Frame::ShutdownAck => {
                self.health[n] = false;
                self.pool.evict_addr(addr);
                Ok(())
            }
            other => Err(CatalogdError::Protocol {
                context: format!("expected ShutdownAck, got {other:?}"),
            }),
        }
    }
}

/// One handshake round-trip against `addr`; the connection is pooled on
/// success.
fn hello(
    pool: &ConnPool,
    addr: SocketAddr,
    expect_hash: u64,
) -> Result<(u32, NodeFacts), CatalogdError> {
    let mut stream = pool.checkout(addr)?;
    stream
        .set_read_timeout(Some(Duration::from_millis(5_000)))
        .ok();
    Frame::Hello {
        version: PROTOCOL_VERSION,
        snapshot_hash: expect_hash,
    }
    .write_to(&mut stream)?;
    match Frame::read_from(&mut stream)? {
        Frame::HelloAck {
            version,
            snapshot_hash,
            node,
            nodes,
            replication,
            tau,
            shard_count,
            tree_count,
            owned_shards,
            shard_map,
        } => {
            if version != PROTOCOL_VERSION {
                return Err(CatalogdError::Handshake {
                    context: format!("{addr} speaks version {version}, client {PROTOCOL_VERSION}"),
                });
            }
            pool.checkin(addr, stream, true);
            Ok((
                node,
                NodeFacts {
                    snapshot_hash,
                    nodes,
                    replication,
                    tau,
                    shard_count,
                    tree_count,
                    owned_shards,
                    shard_map,
                },
            ))
        }
        Frame::Error { code, message } => Err(CatalogdError::Server { code, message }),
        other => Err(CatalogdError::Protocol {
            context: format!("expected HelloAck, got {other:?}"),
        }),
    }
}

/// Builds the shard→replicas table from what the nodes advertise,
/// ordering each shard's holders primary-first by ring distance from
/// the shard's canonical primary `s mod N` — the order
/// [`Topology::new`]'s round-robin placement produces, so the TCP
/// client and the in-process cluster route identically. Shards some
/// holders did not advertise (a node that was down during connect) fall
/// back to the canonical round-robin slots for the advertised
/// replication factor.
fn assemble_topology(
    nodes: usize,
    shard_count: usize,
    facts: &[Option<NodeFacts>],
) -> Result<Topology, CatalogdError> {
    let replication = facts
        .iter()
        .flatten()
        .map(|f| f.replication as usize)
        .max()
        .unwrap_or(1);
    let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); shard_count];
    for (n, f) in facts.iter().enumerate() {
        let Some(f) = f else { continue };
        for &s in &f.owned_shards {
            if (s as usize) < shard_count {
                assignment[s as usize].push(n);
            }
        }
    }
    for (s, holders) in assignment.iter_mut().enumerate() {
        if holders.is_empty() {
            // No reachable node advertised this shard: assume the
            // canonical placement so retries can find it if its
            // holders come back.
            *holders = (0..replication.min(nodes))
                .map(|k| (s + k) % nodes)
                .collect();
        } else {
            let primary = s % nodes;
            holders.sort_by_key(|&h| (h + nodes - primary) % nodes);
        }
    }
    Topology::from_assignment(nodes, assignment).map_err(CatalogdError::from)
}

/// A live connection to one node, with the probe batch registered.
#[derive(Debug)]
struct NodeConn {
    stream: TcpStream,
}

/// The TCP [`NodeTransport`]: one pooled connection per addressed node,
/// held for the duration of a join; real faults mapped onto the
/// router's [`Fault`] vocabulary (see the module docs).
#[derive(Debug)]
pub struct TcpTransport<'a> {
    pool: &'a ConnPool,
    addrs: &'a [SocketAddr],
    /// The encoded [`Frame::ProbeBatch`], sent once per fresh
    /// connection so retries resend it only after a reconnect.
    batch_frame: Vec<u8>,
    probe_count: u32,
    request_timeout_ms: u64,
    clock: &'a dyn Clock,
    conns: Vec<Option<NodeConn>>,
}

impl Drop for TcpTransport<'_> {
    fn drop(&mut self) {
        for (n, conn) in self.conns.iter_mut().enumerate() {
            if let Some(conn) = conn.take() {
                // Reset the read timeout before pooling: the next user
                // sets its own.
                conn.stream.set_read_timeout(None).ok();
                self.pool.checkin(self.addrs[n], conn.stream, true);
            }
        }
    }
}

/// What one TCP attempt produced before outcome mapping.
enum TcpAttempt {
    Served(ShardResponse, u64),
    Faulted(Fault),
    Fatal(ClusterError),
}

/// Establishes (or reuses) the join's connection to `node`, registering
/// the probe batch on fresh connections.
fn ensure_conn(
    pool: &ConnPool,
    addr: SocketAddr,
    batch_frame: &[u8],
    probe_count: u32,
    slot: &mut Option<NodeConn>,
) -> Result<Option<NodeConn>, ClusterError> {
    if let Some(conn) = slot.take() {
        return Ok(Some(conn));
    }
    let Ok(mut stream) = pool.checkout(addr) else {
        return Ok(None); // dial failed: the node is down
    };
    stream
        .set_read_timeout(Some(Duration::from_millis(5_000)))
        .ok();
    let sent = std::io::Write::write_all(&mut stream, batch_frame);
    if sent.is_err() {
        return Ok(None);
    }
    match Frame::read_from(&mut stream) {
        Ok(Frame::ProbeAck { count }) if count == probe_count => Ok(Some(NodeConn { stream })),
        Ok(Frame::Error { code, message }) => Err(ClusterError::Topology {
            context: format!("probe batch rejected ({code:?}): {message}"),
        }),
        Ok(_) | Err(_) => Ok(None),
    }
}

/// One `JoinShard` round-trip on an established connection.
fn attempt(
    conn: &mut NodeConn,
    req: &ShardRequest,
    tau: u32,
    timeout_ms: u64,
    clock: &dyn Clock,
) -> (TcpAttempt, bool) {
    let started = clock.now_ms();
    conn.stream
        .set_read_timeout(Some(Duration::from_millis(timeout_ms.max(1))))
        .ok();
    let frame = Frame::JoinShard {
        probe: req.probe,
        shard: req.shard,
        tau,
        classes: req.classes.clone(),
    };
    if frame.write_to(&mut conn.stream).is_err() {
        return (TcpAttempt::Faulted(Fault::NodeDown), false);
    }
    match Frame::read_from(&mut conn.stream) {
        Ok(Frame::JoinShardResp {
            probe,
            matches,
            stats,
        }) => {
            if probe != req.probe {
                return (
                    TcpAttempt::Fatal(ClusterError::Topology {
                        context: format!("response for probe {probe}, requested {}", req.probe),
                    }),
                    false,
                );
            }
            let latency = clock.now_ms().saturating_sub(started);
            (
                TcpAttempt::Served(
                    ShardResponse {
                        probe,
                        matches,
                        stats,
                    },
                    latency,
                ),
                true,
            )
        }
        Ok(Frame::Error {
            code: ErrorCode::Internal,
            ..
        }) => (TcpAttempt::Faulted(Fault::Transient), true),
        Ok(Frame::Error { code, message }) => (
            TcpAttempt::Fatal(ClusterError::Topology {
                context: format!("server error ({code:?}): {message}"),
            }),
            false,
        ),
        Ok(other) => (
            TcpAttempt::Fatal(ClusterError::Topology {
                context: format!("expected JoinShardResp, got {other:?}"),
            }),
            false,
        ),
        Err(crate::wire::WireError::Io { kind, .. })
            if kind == std::io::ErrorKind::WouldBlock || kind == std::io::ErrorKind::TimedOut =>
        {
            // A late response would desync the stream: the connection is
            // unusable after a timeout.
            (TcpAttempt::Faulted(Fault::Timeout), false)
        }
        Err(_) => (TcpAttempt::Faulted(Fault::NodeDown), false),
    }
}

impl NodeTransport for TcpTransport<'_> {
    fn scatter(
        &mut self,
        requests: &[ShardRequest],
        per_node: &[Vec<usize>],
        tau: u32,
    ) -> Result<Vec<Option<AttemptOutcome>>, ClusterError> {
        let mut outcomes: Vec<Option<AttemptOutcome>> = requests.iter().map(|_| None).collect();
        let pool = self.pool;
        let addrs = self.addrs;
        let batch_frame = &self.batch_frame;
        let probe_count = self.probe_count;
        let timeout = self.request_timeout_ms;
        let clock = self.clock;
        // Move each addressed node's connection into its worker; they
        // come back (with the outcomes) when the scope joins.
        let mut slots: Vec<Option<NodeConn>> = std::mem::take(&mut self.conns);
        type WorkerOut = (
            usize,
            Option<NodeConn>,
            Result<Vec<(usize, AttemptOutcome)>, ClusterError>,
        );
        let gathered: Vec<WorkerOut> = crossbeam::scope(|scope| {
            let handles: Vec<_> = per_node
                .iter()
                .enumerate()
                .filter(|(_, list)| !list.is_empty())
                .map(|(n, list)| {
                    let mut slot = slots[n].take();
                    scope.spawn(move |_| -> WorkerOut {
                        let mut out = Vec::with_capacity(list.len());
                        let mut conn = match ensure_conn(
                            pool,
                            addrs[n],
                            batch_frame,
                            probe_count,
                            &mut slot,
                        ) {
                            Ok(conn) => conn,
                            Err(fatal) => return (n, None, Err(fatal)),
                        };
                        for &r in list {
                            let req = &requests[r];
                            let outcome = match conn.as_mut() {
                                None => AttemptOutcome::Failed(Fault::NodeDown),
                                Some(c) => {
                                    let (result, keep) = attempt(c, req, tau, timeout, clock);
                                    if !keep {
                                        conn = None;
                                    }
                                    match result {
                                        TcpAttempt::Served(resp, latency_ms) => {
                                            AttemptOutcome::Served {
                                                resp,
                                                injected_delay_ms: 0,
                                                latency_ms,
                                            }
                                        }
                                        TcpAttempt::Faulted(fault) => AttemptOutcome::Failed(fault),
                                        TcpAttempt::Fatal(e) => return (n, conn, Err(e)),
                                    }
                                }
                            };
                            out.push((r, outcome));
                        }
                        (n, conn, Ok(out))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scatter worker panicked"))
                .collect()
        })
        .expect("scatter scope");
        for (n, conn, result) in gathered {
            slots[n] = conn;
            match result {
                Ok(list) => {
                    for (r, outcome) in list {
                        outcomes[r] = Some(outcome);
                    }
                }
                Err(fatal) => {
                    self.conns = slots;
                    return Err(fatal);
                }
            }
        }
        self.conns = slots;
        Ok(outcomes)
    }

    fn serve(
        &mut self,
        node: usize,
        req: &ShardRequest,
        _attempt: u32,
        tau: u32,
        deadline_left_ms: u64,
    ) -> Result<AttemptOutcome, ClusterError> {
        if deadline_left_ms == 0 {
            return Ok(AttemptOutcome::DeadlineExceeded);
        }
        let timeout = self.request_timeout_ms.min(deadline_left_ms);
        let conn = ensure_conn(
            self.pool,
            self.addrs[node],
            &self.batch_frame,
            self.probe_count,
            &mut self.conns[node],
        )?;
        let Some(mut conn) = conn else {
            return Ok(AttemptOutcome::Failed(Fault::NodeDown));
        };
        let (result, keep) = attempt(&mut conn, req, tau, timeout, self.clock);
        if keep {
            self.conns[node] = Some(conn);
        }
        match result {
            TcpAttempt::Served(resp, latency_ms) => Ok(AttemptOutcome::Served {
                resp,
                injected_delay_ms: 0,
                latency_ms,
            }),
            // The socket timeout was capped at the remaining deadline:
            // if the cap was the deadline (not the request timeout), the
            // attempt ran out of *probe* budget, not request budget.
            TcpAttempt::Faulted(Fault::Timeout) if timeout < self.request_timeout_ms => {
                Ok(AttemptOutcome::DeadlineExceeded)
            }
            TcpAttempt::Faulted(fault) => Ok(AttemptOutcome::Failed(fault)),
            TcpAttempt::Fatal(e) => Err(e),
        }
    }
}
