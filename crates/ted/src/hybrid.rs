//! RTED-inspired dynamic decomposition choice and the [`TedEngine`].
//!
//! The paper computes all exact distances with RTED (Pawlik & Augsten,
//! PVLDB 2011), a framework that picks, per subproblem, the decomposition
//! path minimizing the number of relevant subproblems. Full RTED requires
//! Demaine-style general single-path functions; as documented in
//! `DESIGN.md`, we reproduce its *decision* at tree-pair granularity over
//! the two classical single-path algorithms:
//!
//! * **left decomposition** — Zhang–Shasha on the trees as given;
//! * **right decomposition** — Zhang–Shasha on both mirror images, which is
//!   equivalent to decomposing the originals along right paths.
//!
//! Each [`PreparedTree`] carries both preprocessed forms and their
//! relevant-subproblem cost estimates; [`TedEngine::distance`] multiplies
//! the per-tree costs and runs the cheaper side. Both sides are exact, so
//! the choice affects only running time — never the reported distance.

use crate::cost::CostModel;
use crate::ted_tree::{TedBuildScratch, TedTree};
use crate::zs::{tree_distance, TedWorkspace};
use tsj_tree::Tree;

/// Which decomposition a distance computation used (or must use).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Always decompose along left paths (classic Zhang–Shasha).
    Left,
    /// Always decompose along right paths (mirrored Zhang–Shasha).
    Right,
    /// Pick the cheaper decomposition per tree pair (RTED-style).
    Dynamic,
}

/// A tree preprocessed for repeated distance computations.
#[derive(Debug, Clone)]
pub struct PreparedTree {
    left: TedTree,
    right: TedTree,
    size: usize,
}

impl PreparedTree {
    /// Preprocesses both decompositions of `tree`.
    pub fn new(tree: &Tree) -> PreparedTree {
        PreparedTree {
            left: TedTree::new(tree),
            right: TedTree::mirrored(tree),
            size: tree.len(),
        }
    }

    /// [`PreparedTree::new`] using caller-provided walk temporaries, for
    /// batch preparation of many trees through one scratch.
    pub fn new_with(tree: &Tree, scratch: &mut TedBuildScratch) -> PreparedTree {
        PreparedTree {
            left: TedTree::new_with(tree, scratch),
            right: TedTree::mirrored_with(tree, scratch),
            size: tree.len(),
        }
    }

    /// Rebuilds both decompositions in place for a new `tree`.
    ///
    /// Equivalent to `*self = PreparedTree::new(tree)` but reuses every
    /// array (and the walk temporaries in `scratch`), so preparing a
    /// stream of probe trees is allocation-free in steady state.
    pub fn rebuild(&mut self, tree: &Tree, scratch: &mut TedBuildScratch) {
        self.left.rebuild(tree, false, scratch);
        self.right.rebuild(tree, true, scratch);
        self.size = tree.len();
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.size
    }

    /// Trees are never empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Work estimate of the left decomposition.
    pub fn left_cost(&self) -> u64 {
        self.left.decomposition_cost()
    }

    /// Work estimate of the right decomposition.
    pub fn right_cost(&self) -> u64 {
        self.right.decomposition_cost()
    }
}

/// A reusable tree-edit-distance computer: one cost model, one scratch
/// workspace, and counters for instrumentation.
///
/// ```
/// use tsj_ted::TedEngine;
/// use tsj_tree::{parse_bracket, LabelInterner};
/// let mut labels = LabelInterner::new();
/// let a = parse_bracket("{a{b}{c}}", &mut labels).unwrap();
/// let b = parse_bracket("{a{b}{z}}", &mut labels).unwrap();
/// let mut engine = TedEngine::unit();
/// assert_eq!(engine.distance_trees(&a, &b), 1);
/// assert_eq!(engine.computations(), 1);
/// ```
#[derive(Debug)]
pub struct TedEngine {
    costs: CostModel,
    strategy: Strategy,
    ws: TedWorkspace,
    computations: u64,
}

impl TedEngine {
    /// Engine with unit costs and dynamic decomposition (paper default).
    pub fn unit() -> TedEngine {
        TedEngine::new(CostModel::UNIT, Strategy::Dynamic)
    }

    /// Engine with explicit costs and strategy.
    pub fn new(costs: CostModel, strategy: Strategy) -> TedEngine {
        TedEngine {
            costs,
            strategy,
            ws: TedWorkspace::new(),
            computations: 0,
        }
    }

    /// The engine's cost model.
    pub fn costs(&self) -> &CostModel {
        &self.costs
    }

    /// Number of exact distance computations performed so far.
    ///
    /// The evaluation section charges joins by exact TED computations; the
    /// harness reads this counter to report them.
    pub fn computations(&self) -> u64 {
        self.computations
    }

    /// Resets the computation counter.
    pub fn reset_counters(&mut self) {
        self.computations = 0;
    }

    /// Exact distance between two prepared trees.
    pub fn distance(&mut self, a: &PreparedTree, b: &PreparedTree) -> u32 {
        self.computations += 1;
        let use_right = match self.strategy {
            Strategy::Left => false,
            Strategy::Right => true,
            Strategy::Dynamic => {
                // Compare estimated relevant-subproblem counts; the DP work
                // is (cost of a's side) × (cost of b's side).
                let left = a.left_cost().saturating_mul(b.left_cost());
                let right = a.right_cost().saturating_mul(b.right_cost());
                right < left
            }
        };
        if use_right {
            tree_distance(&a.right, &b.right, &self.costs, &mut self.ws)
        } else {
            tree_distance(&a.left, &b.left, &self.costs, &mut self.ws)
        }
    }

    /// Exact distance between two raw trees (preprocesses internally).
    pub fn distance_trees(&mut self, a: &Tree, b: &Tree) -> u32 {
        self.distance(&PreparedTree::new(a), &PreparedTree::new(b))
    }

    /// Threshold test: is `TED(a, b) ≤ tau`?
    ///
    /// Applies the size lower bound before running the cubic DP — each edit
    /// operation changes the tree size by at most one (§3.2, footnote 1).
    pub fn within(&mut self, a: &PreparedTree, b: &PreparedTree, tau: u32) -> Option<u32> {
        let diff = a.len().abs_diff(b.len()) as u32;
        if diff > tau {
            return None;
        }
        let d = self.distance(a, b);
        (d <= tau).then_some(d)
    }
}

/// Convenience: exact unit-cost TED between two trees with the dynamic
/// strategy. Allocates a fresh engine; prefer [`TedEngine`] in loops.
pub fn ted(a: &Tree, b: &Tree) -> u32 {
    TedEngine::unit().distance_trees(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsj_tree::{parse_bracket, LabelInterner};

    fn pair(a: &str, b: &str) -> (Tree, Tree) {
        let mut labels = LabelInterner::new();
        (
            parse_bracket(a, &mut labels).unwrap(),
            parse_bracket(b, &mut labels).unwrap(),
        )
    }

    #[test]
    fn all_strategies_agree() {
        let cases = [
            ("{f{d{a}{c{b}}}{e}}", "{f{c{d{a}{b}}}{e}}", 2),
            ("{1{2}{1{3}}}", "{1{2{1}{3}}}", 3),
            ("{a{b{c{d{e}}}}}", "{a{b{c{d}}}}", 1),
            ("{r{a}{b}{c}{d}{e}}", "{r{e}{d}{c}{b}{a}}", 4),
        ];
        for (sa, sb, expected) in cases {
            let (ta, tb) = pair(sa, sb);
            for strategy in [Strategy::Left, Strategy::Right, Strategy::Dynamic] {
                let mut engine = TedEngine::new(CostModel::UNIT, strategy);
                assert_eq!(
                    engine.distance_trees(&ta, &tb),
                    expected,
                    "strategy {strategy:?} on {sa} vs {sb}"
                );
            }
        }
    }

    #[test]
    fn dynamic_prefers_cheap_side_for_skewed_trees() {
        // Right combs are pathological for left decomposition; the dynamic
        // engine must not be slower than the better static choice in work
        // estimate terms.
        let mut s = String::from("{a");
        for _ in 0..30 {
            s.push_str("{x}{b");
        }
        s.push('}');
        for _ in 0..30 {
            s.push('}');
        }
        let mut labels = LabelInterner::new();
        let t1 = parse_bracket(&s, &mut labels).unwrap();
        let p = PreparedTree::new(&t1);
        assert!(
            p.left_cost() != p.right_cost(),
            "skewed tree should have asymmetric costs"
        );
    }

    #[test]
    fn within_applies_size_filter() {
        let (ta, tb) = pair("{a{b}{c}{d}{e}}", "{a}");
        let mut engine = TedEngine::unit();
        assert_eq!(
            engine.within(&PreparedTree::new(&ta), &PreparedTree::new(&tb), 2),
            None
        );
        // Size filter rejected the pair before any DP ran.
        assert_eq!(engine.computations(), 0);
        assert_eq!(
            engine.within(&PreparedTree::new(&ta), &PreparedTree::new(&tb), 4),
            Some(4)
        );
        assert_eq!(engine.computations(), 1);
    }

    #[test]
    fn counter_counts() {
        let (ta, tb) = pair("{a}", "{b}");
        let mut engine = TedEngine::unit();
        for _ in 0..5 {
            engine.distance_trees(&ta, &tb);
        }
        assert_eq!(engine.computations(), 5);
        engine.reset_counters();
        assert_eq!(engine.computations(), 0);
    }

    #[test]
    fn one_shot_helper() {
        let (ta, tb) = pair("{a{b}}", "{a{c}}");
        assert_eq!(ted(&ta, &tb), 1);
    }
}
