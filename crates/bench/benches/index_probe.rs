//! Micro-benchmarks of the two-layer subgraph index (§3.4): insertion of
//! a partitioned tree and per-node probes under the three window policies.
//! Probe cost is the core of PartSJ's candidate-generation bars.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use partsj::{
    build_subgraphs, max_min_size, select_cuts, MatchCache, MatchSemantics, SubgraphIndex,
    TwigKeys, WindowPolicy,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use tsj_datagen::{grow_tree, mutate, ShapeProfile};
use tsj_tree::{BinaryTree, Label, Tree};

fn sample_trees(count: usize, size: usize, seed: u64) -> Vec<Tree> {
    let profile = ShapeProfile {
        max_fanout: 4,
        max_depth: 12,
        deepen_prob: 0.3,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let base = grow_tree(&mut rng, size, 20, &profile);
    (0..count)
        .map(|_| mutate(&base, 0.05, &mut rng, 20))
        .collect()
}

fn build_index(trees: &[Tree], tau: u32, window: WindowPolicy) -> (SubgraphIndex, Vec<BinaryTree>) {
    let delta = 2 * tau as usize + 1;
    let mut index = SubgraphIndex::new(tau, window);
    let binaries: Vec<BinaryTree> = trees.iter().map(BinaryTree::from_tree).collect();
    for (i, (tree, binary)) in trees.iter().zip(&binaries).enumerate() {
        if tree.len() < delta {
            continue;
        }
        let gamma = max_min_size(binary, delta);
        let cuts = select_cuts(binary, delta, gamma);
        let sgs = build_subgraphs(binary, &tree.postorder_numbers(), &cuts, i as u32);
        index.insert_tree(tree.len() as u32, sgs);
    }
    (index, binaries)
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("index/insert_tree");
    for tau in [1u32, 3, 5] {
        let trees = sample_trees(1, 80, 7);
        let tree = &trees[0];
        let binary = BinaryTree::from_tree(tree);
        let delta = 2 * tau as usize + 1;
        let gamma = max_min_size(&binary, delta);
        let cuts = select_cuts(&binary, delta, gamma);
        let posts = tree.postorder_numbers();
        group.bench_with_input(BenchmarkId::new("tau", tau), &tau, |bench, &tau| {
            bench.iter(|| {
                let mut index = SubgraphIndex::new(tau, WindowPolicy::Safe);
                let sgs = build_subgraphs(&binary, &posts, &cuts, 0);
                index.insert_tree(tree.len() as u32, sgs);
                black_box(index.len())
            })
        });
    }
    group.finish();
}

fn bench_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("index/probe_all_nodes");
    let tau = 3u32;
    let trees = sample_trees(200, 60, 9);
    for (name, window) in [
        ("safe", WindowPolicy::Safe),
        ("tight", WindowPolicy::Tight),
        ("paper", WindowPolicy::PaperAbsolute),
    ] {
        let (index, _) = build_index(&trees, tau, window);
        let probe_tree = &trees[0];
        let probe_bin = BinaryTree::from_tree(probe_tree);
        let posts = probe_tree.postorder_numbers();
        let size = probe_tree.len() as u32;
        group.bench_function(name, |bench| {
            // The production probe shape: size layers resolved once per
            // tree, twig keys once per node, match scratch reused.
            bench.iter(|| {
                let mut hits = 0u64;
                let layers: Vec<_> = (size.saturating_sub(tau)..=size)
                    .filter_map(|n| index.layer_id(n))
                    .collect();
                let mut match_cache = MatchCache::new();
                for node in probe_bin.node_ids() {
                    let label = probe_bin.label(node);
                    let left = probe_bin
                        .left(node)
                        .map_or(Label::EPSILON, |ch| probe_bin.label(ch));
                    let right = probe_bin
                        .right(node)
                        .map_or(Label::EPSILON, |ch| probe_bin.label(ch));
                    let keys = TwigKeys::new(label, left, right);
                    match_cache.begin_node();
                    let pos = index.probe_position(posts[node.index()], size);
                    for &layer in &layers {
                        index.layer(layer).probe(pos, &keys, |handle| {
                            if index.matches_at(
                                handle,
                                &probe_bin,
                                node,
                                MatchSemantics::Exact,
                                &mut match_cache,
                            ) {
                                hits += 1;
                            }
                        });
                    }
                }
                black_box(hits)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_insert, bench_probe);
criterion_main!(benches);
