//! # tsj-cluster
//!
//! Fault-tolerant, in-process cluster serving for frozen tree-similarity
//! catalogs: N catalog "nodes" — each holding a subset of the snapshot's
//! shard sections, with configurable replication — behind a
//! scatter/gather [`Cluster::join`] router.
//!
//! The shard boundary does the heavy lifting: a probe of `|T|` nodes at
//! threshold `τ` touches only the size classes `[|T| − τ, |T| + τ]`
//! ([`partsj::window_of`]), every catalog tree's postings live in
//! exactly **one** shard, and snapshot sections decode independently
//! ([`tsj_catalog::SnapshotReader::shard`]). So the router scatters one
//! request per owning shard, nodes serve them with zero cross-node
//! coordination, and the gathered union is **bit-identical** — pairs,
//! candidate counts *and* filter-stage counters — to single-node
//! `Catalog::join` (property-tested across nodes × replication × shards
//! × τ, with the adaptive chain reordering off).
//!
//! Fault tolerance is the headline, not an afterthought. Every node sits
//! behind a deterministic [`FaultInjector`] (stateless seeded hashing:
//! node down, delays, timeouts, transient errors, corrupted shard
//! sections on load), and the router carries a real resilience policy
//! ([`RetryPolicy`]): per-probe deadlines, bounded retries with
//! exponential backoff + deterministic jitter against replicas,
//! immediate failover from dead nodes, and — when every replica of a
//! shard is lost — a typed [`Degraded`] report naming exactly which
//! `(probe, size class)` combinations went unserved alongside the pairs
//! it could still prove. Never a silent wrong answer, never a panic.
//!
//! ```
//! use tsj_cluster::{Cluster, ClusterConfig};
//! use partsj::PartSjConfig;
//! use tsj_catalog::Catalog;
//! use tsj_shard::ShardConfig;
//! use tsj_tree::{parse_bracket, LabelInterner};
//!
//! let mut labels = LabelInterner::new();
//! let trees: Vec<_> = ["{item{kbd}{price}}", "{item{dock}{ports}}"]
//!     .iter()
//!     .map(|s| parse_bracket(s, &mut labels).unwrap())
//!     .collect();
//! let catalog = Catalog::freeze(
//!     trees,
//!     labels.clone(),
//!     1,
//!     &PartSjConfig::default(),
//!     &ShardConfig::with_shards(4),
//! );
//!
//! // Split the snapshot across 2 nodes, each shard on both (R = 2).
//! let mut cluster =
//!     Cluster::from_snapshot(catalog.to_bytes(), &ClusterConfig::new(2, 2)).unwrap();
//! let probe = parse_bracket("{item{dock}{plug}}", &mut labels).unwrap();
//! let served = cluster
//!     .join(&[probe.clone()], 1, &PartSjConfig::default())
//!     .unwrap();
//! assert!(served.is_complete());
//! assert_eq!(served.outcome.pairs, vec![(1, 0)]);
//!
//! // Kill a node: the replica serves the identical result.
//! cluster.kill_node(0);
//! let failed_over = cluster.join(&[probe], 1, &PartSjConfig::default()).unwrap();
//! assert!(failed_over.is_complete());
//! assert_eq!(failed_over.outcome.pairs, vec![(1, 0)]);
//! ```
//!
//! See `examples/cluster_failover.rs` for the full kill-one / kill-both /
//! recover arc, and the README's "Cluster serving & fault tolerance"
//! section for the degradation contract and how to add a fault type.

#![warn(missing_docs)]

mod cluster;
mod error;
mod fault;
mod metrics;
mod node;
mod outcome;
mod retry;
mod router;
mod topology;
mod transport;

/// The injectable clock, promoted into [`tsj_obs`] (so trace spans and
/// the router share one notion of time) and re-exported here unchanged.
pub use tsj_obs::{Clock, SystemClock, VirtualClock};

pub use cluster::{Cluster, ClusterConfig};
pub use error::ClusterError;
pub use fault::{corrupt_range, mix, mix_unit, Fault, FaultInjector, FaultPlan};
pub use metrics::{ClusterMetrics, NodeMetricsSnapshot};
pub use node::{Node, NodeScratch, ProbeCtx, ShardRequest, ShardResponse};
pub use outcome::{ClusterJoin, Degraded, RequestStats, Telemetry};
pub use retry::RetryPolicy;
pub use router::{plan_requests, route_requests, RouterEnv};
pub use topology::Topology;
pub use transport::{AttemptOutcome, LocalTransport, NodeTransport};
