//! Incremental (streaming) similarity join.
//!
//! The paper's §4.3 closes by motivating "streaming workloads where tree
//! objects (e.g., XML and HTML entities) are inserted and updated at a
//! high rate". Algorithm 1's inner loop is naturally incremental — the
//! index is built on the fly — but it relies on ascending size order to
//! probe only `[|T| − τ, |T|]`. A stream arrives in arbitrary order, so
//! [`StreamingJoin::insert`] probes the symmetric window
//! `[|T| − τ, |T| + τ]` and then publishes the new tree's subgraphs,
//! reporting the partners found among all previously inserted trees.

use crate::config::PartSjConfig;
use crate::index::{LayerId, MatchCache, SubgraphIndex};
use crate::partition::cuts_for;
use crate::probe::{probe_tree_nodes, resolve_layers, ProbeCounters, ProbeScratch, StampSink};
use crate::subgraph::build_subgraphs;
use crate::verify::{VerifyData, VerifyEngine, VerifyPrep};
use tsj_ted::TreeIdx;
use tsj_tree::{FxHashMap, Tree};

/// An online similarity self-join: insert trees one at a time and learn,
/// immediately, which earlier trees are within `τ`.
///
/// ```
/// use partsj::{PartSjConfig, StreamingJoin};
/// use tsj_tree::{parse_bracket, LabelInterner};
///
/// let mut labels = LabelInterner::new();
/// let mut join = StreamingJoin::new(1, PartSjConfig::default());
/// let t0 = parse_bracket("{a{b}{c}}", &mut labels).unwrap();
/// let t1 = parse_bracket("{a{b}{z}}", &mut labels).unwrap();
/// let t2 = parse_bracket("{q{r{s{t}}}}", &mut labels).unwrap();
/// assert!(join.insert(&t0).is_empty());
/// assert_eq!(join.insert(&t1), vec![0]); // one rename away from t0
/// assert!(join.insert(&t2).is_empty());
/// assert_eq!(join.len(), 3);
/// ```
#[derive(Debug)]
pub struct StreamingJoin {
    tau: u32,
    config: PartSjConfig,
    index: SubgraphIndex,
    small_by_size: FxHashMap<u32, Vec<TreeIdx>>,
    data: Vec<VerifyData>,
    stamp: Vec<u32>,
    verify: VerifyEngine,
    pairs_found: u64,
    // Per-insert scratch, held across inserts so the steady-state probe
    // path allocates nothing proportional to the stream or probe size:
    // LC-RS/postorder preparation, verify-data build temporaries, the
    // candidate list, the resolved layer window and the match memo.
    probe_scratch: ProbeScratch,
    verify_prep: VerifyPrep,
    candidates: Vec<TreeIdx>,
    layer_window: Vec<LayerId>,
    match_cache: MatchCache,
}

impl StreamingJoin {
    /// Creates an empty streaming join at threshold `tau`.
    pub fn new(tau: u32, config: PartSjConfig) -> StreamingJoin {
        StreamingJoin {
            tau,
            config,
            index: SubgraphIndex::new(tau, config.window),
            small_by_size: FxHashMap::default(),
            data: Vec::new(),
            stamp: Vec::new(),
            verify: VerifyEngine::new(tau, &config),
            pairs_found: 0,
            probe_scratch: ProbeScratch::new(),
            verify_prep: VerifyPrep::new(),
            candidates: Vec::new(),
            layer_window: Vec::new(),
            match_cache: MatchCache::new(),
        }
    }

    /// Number of trees inserted so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether no trees have been inserted.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Total result pairs reported so far.
    pub fn pairs_found(&self) -> u64 {
        self.pairs_found
    }

    /// Exact TED computations performed so far.
    pub fn ted_calls(&self) -> u64 {
        self.verify.ted_calls()
    }

    /// The verification engine (per-stage counter diagnostics).
    pub fn verify_engine(&self) -> &VerifyEngine {
        &self.verify
    }

    /// Inserts `tree` and returns the indices (insertion order, 0-based)
    /// of all previously inserted trees within `τ`, ascending.
    pub fn insert(&mut self, tree: &Tree) -> Vec<TreeIdx> {
        let delta = 2 * self.tau as usize + 1;
        let id = self.data.len() as TreeIdx;
        let marker = id;
        let size = tree.len() as u32;
        let lo = size.saturating_sub(self.tau).max(1);
        let hi = size + self.tau;

        self.candidates.clear();
        for n in lo..=hi {
            if let Some(list) = self.small_by_size.get(&n) {
                for &j in list {
                    if self.stamp[j as usize] != marker {
                        self.stamp[j as usize] = marker;
                        self.candidates.push(j);
                    }
                }
            }
        }

        // Layer ids are plain data (no borrow of the index), so the
        // window survives until the post-probe `insert_tree` mutation.
        resolve_layers(&self.index, lo, hi, &mut self.layer_window);
        let mut counters = ProbeCounters::default();

        let (binary, posts) = self.probe_scratch.prepare(tree);
        // Split borrows: the probe loop reads the index while the sink
        // stamps/collects into their own fields.
        let mut sink = StampSink {
            stamp: &mut self.stamp,
            marker,
            candidates: &mut self.candidates,
        };
        probe_tree_nodes(
            &self.index,
            &self.layer_window,
            binary,
            posts,
            size,
            self.config.matching,
            &mut self.match_cache,
            &mut counters,
            &mut sink,
        );

        // The new tree's data is kept forever (`self.data`), so it is
        // built owned — only the walk temporaries are reused.
        let data = VerifyData::for_config_with(tree, &self.config.verify, &mut self.verify_prep);
        let verify = &mut self.verify;
        let known = &self.data;
        let mut partners: Vec<TreeIdx> = self
            .candidates
            .iter()
            .filter(|&&j| verify.check(&known[j as usize], &data).is_some())
            .copied()
            .collect();
        partners.sort_unstable();
        self.pairs_found += partners.len() as u64;

        // Publish the new tree.
        if (size as usize) < delta {
            self.small_by_size.entry(size).or_default().push(id);
        } else {
            let cuts = cuts_for(binary, delta, self.config.partitioning, u64::from(id));
            let subgraphs = build_subgraphs(binary, posts, &cuts, id);
            self.index.insert_tree(size, subgraphs);
        }
        self.data.push(data);
        self.stamp.push(u32::MAX);
        partners
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::partsj_join;
    use tsj_tree::{parse_bracket, LabelInterner};

    fn collection(specs: &[&str]) -> Vec<Tree> {
        let mut labels = LabelInterner::new();
        specs
            .iter()
            .map(|s| parse_bracket(s, &mut labels).unwrap())
            .collect()
    }

    /// Streaming over any insertion order must reproduce the batch join.
    fn check_stream_matches_batch(trees: &[Tree], tau: u32) {
        let batch = partsj_join(trees, tau);
        let mut stream = StreamingJoin::new(tau, PartSjConfig::default());
        let mut pairs: Vec<(TreeIdx, TreeIdx)> = Vec::new();
        for (i, tree) in trees.iter().enumerate() {
            for j in stream.insert(tree) {
                pairs.push((j.min(i as u32), j.max(i as u32)));
            }
        }
        pairs.sort_unstable();
        assert_eq!(pairs, batch.pairs);
        assert_eq!(stream.pairs_found(), batch.pairs.len() as u64);
    }

    #[test]
    fn stream_matches_batch_in_given_order() {
        let trees = collection(&[
            "{a{b}{c}{d}}",
            "{a{b}{c}{e}}",
            "{a{b}{c}}",
            "{z{y}{x}{w}{v}}",
            "{a}",
            "{a{b}}",
        ]);
        for tau in 0..=3 {
            check_stream_matches_batch(&trees, tau);
        }
    }

    #[test]
    fn stream_matches_batch_in_descending_size_order() {
        // The batch algorithm sorts ascending; the stream must cope with
        // the opposite order (larger trees first probe an empty window,
        // smaller trees later must still find them via the +tau side).
        let mut trees = collection(&[
            "{a{b}{c}{d}{e}}",
            "{a{b}{c}{d}}",
            "{a{b}{c}}",
            "{a{b}}",
            "{a}",
        ]);
        for tau in 1..=2 {
            check_stream_matches_batch(&trees, tau);
        }
        trees.reverse();
        for tau in 1..=2 {
            check_stream_matches_batch(&trees, tau);
        }
    }

    #[test]
    fn streaming_on_generated_collection() {
        let trees = tsj_datagen::synthetic(
            80,
            &tsj_datagen::SyntheticParams {
                avg_size: 30,
                ..Default::default()
            },
            13,
        );
        for tau in [1u32, 2] {
            check_stream_matches_batch(&trees, tau);
        }
    }

    #[test]
    fn counters_track_work() {
        let trees = collection(&["{a{b}{c}}", "{a{b}{c}}", "{a{b}{d}}"]);
        let mut stream = StreamingJoin::new(1, PartSjConfig::default());
        for tree in &trees {
            stream.insert(tree);
        }
        assert_eq!(stream.len(), 3);
        assert!(!stream.is_empty());
        assert_eq!(stream.pairs_found(), 3);
        // All three pairs are identical or one rename apart: the
        // shape-accept stage resolves them without any exact TED.
        assert_eq!(stream.ted_calls(), 0);
        assert_eq!(stream.verify_engine().early_accepts(), 3);
    }

    #[test]
    fn filter_free_stream_pays_ted_per_pair() {
        let trees = collection(&["{a{b}{c}}", "{a{b}{c}}", "{a{b}{d}}"]);
        let config = PartSjConfig {
            verify: crate::config::VerifyConfig::NONE,
            ..Default::default()
        };
        let mut stream = StreamingJoin::new(1, config);
        for tree in &trees {
            stream.insert(tree);
        }
        assert_eq!(stream.pairs_found(), 3);
        assert!(stream.ted_calls() >= 3);
    }
}
