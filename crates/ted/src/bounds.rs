//! Lower bounds on tree edit distance (unit costs).
//!
//! Filters prune a candidate pair whenever *any* lower bound on
//! `TED(T1, T2)` exceeds the join threshold `τ`. This module collects the
//! cheap bounds shared by the baselines:
//!
//! * **size bound** — every operation changes `|T|` by at most one, so
//!   `TED ≥ ||T1| − |T2||` (§3.2 footnote 1, used by all methods);
//! * **label histogram bound** — an insertion/deletion changes the label
//!   multiset by one element and a rename by two, so
//!   `TED ≥ ⌈L1(hist1, hist2) / 2⌉` (the label filter of Kailing et al.);
//! * **traversal string bound** — `max(SED(pre1, pre2), SED(post1, post2))
//!   ≤ TED` (Guha et al., the STR baseline's filter).

use crate::sed::{sed, sed_with, sed_within, sed_within_with, SedScratch};
use tsj_tree::{Label, Tree};

/// Size lower bound: `||a| − |b||`.
#[inline]
pub fn size_bound(a: usize, b: usize) -> u32 {
    a.abs_diff(b) as u32
}

/// A tree's label multiset in sorted order, for [`histogram_bound`].
pub fn label_histogram(tree: &Tree) -> Vec<Label> {
    let mut labels: Vec<Label> = tree.node_ids().map(|n| tree.label(n)).collect();
    labels.sort_unstable();
    labels
}

/// One lane's worth of histogram entries for the chunked merge fast path.
const CHUNK: usize = 8;

/// Whether two `CHUNK`-sized windows are pairwise equal, as a single
/// branch: the `&=` reduction over fixed-size windows compiles to one
/// vector compare per chunk instead of eight data-dependent branches.
#[inline(always)]
fn chunk_eq<T: Copy + Eq>(a: &[T], b: &[T]) -> bool {
    let mut eq = true;
    for k in 0..CHUNK {
        eq &= a[k] == b[k];
    }
    eq
}

/// Size of the multiset intersection of two sorted slices — the shared
/// kernel of [`histogram_bound`] and [`degree_bound`].
///
/// Near-duplicate histograms (the common case for surviving candidates)
/// are dominated by long identical runs, which the chunked fast path
/// skips `CHUNK` entries at a time with a vectorizable compare. On
/// divergence it falls back to a branchless scalar advance.
#[inline]
fn sorted_common<T: Copy + Ord>(a: &[T], b: &[T]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut common = 0usize;
    while i < a.len() && j < b.len() {
        if i + CHUNK <= a.len()
            && j + CHUNK <= b.len()
            && chunk_eq(&a[i..i + CHUNK], &b[j..j + CHUNK])
        {
            common += CHUNK;
            i += CHUNK;
            j += CHUNK;
            continue;
        }
        let (x, y) = (a[i], b[j]);
        common += usize::from(x == y);
        i += usize::from(x <= y);
        j += usize::from(y <= x);
    }
    common
}

/// Label histogram lower bound: `⌈L1 / 2⌉` where `L1` is the symmetric
/// multiset difference size of the two (pre-sorted) label multisets.
pub fn histogram_bound(a: &[Label], b: &[Label]) -> u32 {
    debug_assert!(a.windows(2).all(|w| w[0] <= w[1]), "histogram not sorted");
    debug_assert!(b.windows(2).all(|w| w[0] <= w[1]), "histogram not sorted");
    let common = sorted_common(a, b);
    let l1 = (a.len() - common) + (b.len() - common);
    (l1 as u32).div_ceil(2)
}

/// A tree's multiset of node degrees (child counts) in sorted order, for
/// [`degree_bound`].
pub fn degree_histogram(tree: &Tree) -> Vec<u32> {
    let mut degrees: Vec<u32> = tree
        .node_ids()
        .map(|n| tree.children(n).len() as u32)
        .collect();
    degrees.sort_unstable();
    degrees
}

/// Degree histogram lower bound: `⌈L1 / 3⌉`.
///
/// A deletion removes one histogram entry and moves its parent's degree
/// (L1 change ≤ 3); insertion is symmetric; renaming changes nothing —
/// the degree-based filter of Kailing et al. (reference \[16\]) with a
/// conservatively derived constant.
pub fn degree_bound(a: &[u32], b: &[u32]) -> u32 {
    debug_assert!(a.windows(2).all(|w| w[0] <= w[1]), "histogram not sorted");
    debug_assert!(b.windows(2).all(|w| w[0] <= w[1]), "histogram not sorted");
    let common = sorted_common(a, b);
    let l1 = (a.len() - common) + (b.len() - common);
    (l1 as u32).div_ceil(3)
}

/// Precomputed traversal strings for the Guha et al. bound.
#[derive(Debug, Clone)]
pub struct TraversalStrings {
    /// Labels in preorder.
    pub preorder: Vec<Label>,
    /// Labels in postorder.
    pub postorder: Vec<Label>,
}

impl TraversalStrings {
    /// Extracts both traversal strings from `tree`.
    pub fn new(tree: &Tree) -> TraversalStrings {
        TraversalStrings {
            preorder: tree.preorder_labels(),
            postorder: tree.postorder_labels(),
        }
    }
}

/// Traversal-string lower bound: `max(SED(pre), SED(post)) ≤ TED`.
pub fn traversal_bound(a: &TraversalStrings, b: &TraversalStrings) -> u32 {
    sed(&a.preorder, &b.preorder).max(sed(&a.postorder, &b.postorder))
}

/// [`traversal_bound`] with caller-provided SED row buffers; allocation-
/// free in steady state.
pub fn traversal_bound_with(
    a: &TraversalStrings,
    b: &TraversalStrings,
    scratch: &mut SedScratch,
) -> u32 {
    sed_with(&a.preorder, &b.preorder, scratch).max(sed_with(&a.postorder, &b.postorder, scratch))
}

/// Threshold form of [`traversal_bound`]: `true` iff both banded string
/// distances stay within `tau`, i.e. the pair survives the STR filter.
pub fn traversal_within(a: &TraversalStrings, b: &TraversalStrings, tau: u32) -> bool {
    sed_within(&a.preorder, &b.preorder, tau).is_some()
        && sed_within(&a.postorder, &b.postorder, tau).is_some()
}

/// [`traversal_within`] with caller-provided SED band buffers; allocation-
/// free in steady state.
pub fn traversal_within_with(
    a: &TraversalStrings,
    b: &TraversalStrings,
    tau: u32,
    scratch: &mut SedScratch,
) -> bool {
    sed_within_with(&a.preorder, &b.preorder, tau, scratch).is_some()
        && sed_within_with(&a.postorder, &b.postorder, tau, scratch).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hybrid::ted;
    use tsj_tree::{parse_bracket, LabelInterner};

    fn pair(a: &str, b: &str) -> (Tree, Tree) {
        let mut labels = LabelInterner::new();
        (
            parse_bracket(a, &mut labels).unwrap(),
            parse_bracket(b, &mut labels).unwrap(),
        )
    }

    #[test]
    fn size_bound_basics() {
        assert_eq!(size_bound(10, 10), 0);
        assert_eq!(size_bound(3, 10), 7);
        assert_eq!(size_bound(10, 3), 7);
    }

    #[test]
    fn histogram_bound_basics() {
        let (a, b) = pair("{a{b}{c}}", "{a{b}{c}}");
        let (ha, hb) = (label_histogram(&a), label_histogram(&b));
        assert_eq!(histogram_bound(&ha, &hb), 0);

        let (a, b) = pair("{a{b}{c}}", "{x{y}{z}}");
        let (ha, hb) = (label_histogram(&a), label_histogram(&b));
        // Disjoint multisets of size 3: L1 = 6, bound = 3.
        assert_eq!(histogram_bound(&ha, &hb), 3);
    }

    #[test]
    fn histogram_bound_respects_multiplicity() {
        let (a, b) = pair("{a{a}{a}}", "{a{a}{b}}");
        let (ha, hb) = (label_histogram(&a), label_histogram(&b));
        // Multisets {a,a,a} vs {a,a,b}: L1 = 2, bound = 1.
        assert_eq!(histogram_bound(&ha, &hb), 1);
    }

    #[test]
    fn paper_figure3_traversal_bound() {
        // §2: SED(pre) = 0, SED(post) = 2, TED = 3; bound = 2 ≤ 3.
        let (a, b) = pair("{1{2}{1{3}}}", "{1{2{1}{3}}}");
        let (sa, sb) = (TraversalStrings::new(&a), TraversalStrings::new(&b));
        assert_eq!(sed(&sa.preorder, &sb.preorder), 0);
        assert_eq!(sed(&sa.postorder, &sb.postorder), 2);
        assert_eq!(traversal_bound(&sa, &sb), 2);
        assert_eq!(ted(&a, &b), 3);
    }

    #[test]
    fn traversal_within_matches_bound() {
        let (a, b) = pair("{1{2}{1{3}}}", "{1{2{1}{3}}}");
        let (sa, sb) = (TraversalStrings::new(&a), TraversalStrings::new(&b));
        assert!(!traversal_within(&sa, &sb, 1));
        assert!(traversal_within(&sa, &sb, 2));
        assert!(traversal_within(&sa, &sb, 5));
    }

    #[test]
    fn degree_bound_basics() {
        let (a, b) = pair("{a{b}{c}}", "{a{b}{c}}");
        assert_eq!(
            degree_bound(&degree_histogram(&a), &degree_histogram(&b)),
            0
        );
        // Star vs path of the same size: degrees {3,0,0,0} vs {1,1,1,0}.
        let (a, b) = pair("{r{a}{b}{c}}", "{r{a{b{c}}}}");
        let bound = degree_bound(&degree_histogram(&a), &degree_histogram(&b));
        assert!(bound >= 1);
        assert!(bound <= crate::hybrid::ted(&a, &b));
    }

    #[test]
    fn bounds_never_exceed_ted_on_fixed_cases() {
        let cases = [
            ("{a{b}{c}}", "{a{b}{c}}"),
            ("{a{b}{c}}", "{z{b}{c}}"),
            ("{f{d{a}{c{b}}}{e}}", "{f{c{d{a}{b}}}{e}}"),
            ("{a{b{c{d}}}}", "{d{c{b{a}}}}"),
            ("{r{a}{b}{c}}", "{r}"),
            ("{m{n{o}{p}}{q{r}}}", "{m{q{r}}{n{o}{p}}}"),
        ];
        for (sa, sb) in cases {
            let (a, b) = pair(sa, sb);
            let real = ted(&a, &b);
            assert!(size_bound(a.len(), b.len()) <= real, "{sa} vs {sb}");
            let (ha, hb) = (label_histogram(&a), label_histogram(&b));
            assert!(histogram_bound(&ha, &hb) <= real, "{sa} vs {sb}");
            let (da, db) = (degree_histogram(&a), degree_histogram(&b));
            assert!(degree_bound(&da, &db) <= real, "degree: {sa} vs {sb}");
            let (ta, tb) = (TraversalStrings::new(&a), TraversalStrings::new(&b));
            assert!(traversal_bound(&ta, &tb) <= real, "{sa} vs {sb}");
        }
    }
}
