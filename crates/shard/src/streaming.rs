//! Sliding-window streaming join over the sharded dynamic index.
//!
//! [`partsj::StreamingJoin`] is insert-only: its index grows forever,
//! which no high-rate monitor can afford. [`ShardedStreamingJoin`]
//! rebuilds the streaming scenario on [`ShardedIndex`], adding the two
//! operations a sliding window needs — [`ShardedStreamingJoin::remove`]
//! (explicit deletion) and automatic **eviction** under an
//! [`EvictionPolicy`] (by window count or by logical timestamp). Evicted
//! trees stop appearing as partners immediately; their postings are
//! tombstoned and reclaimed by per-shard compaction, so index memory
//! tracks the live window rather than the stream's lifetime.
//!
//! The streaming index always routes with the default hash
//! [`crate::ShardMap`]: a balanced map is derived from the *observed*
//! size histogram, which a stream only reveals after the routing
//! decisions are already made (`AdaptiveConfig::balanced_shards` is a
//! batch/freeze-time knob). Adaptive verify-chain reordering, by
//! contrast, applies here like everywhere else — the engine below is
//! built from the supplied `PartSjConfig`.
//!
//! Per-tree bookkeeping (`4 B` stamp + liveness bit + size) still grows
//! with the total stream length — ids are never recycled, keeping
//! reported partner indices stable. At one insert per millisecond that
//! is ~midnight-of-49-days before `u32` ids wrap; recycle ids upstream
//! if you need longer-lived monitors.
//!
//! ```
//! use partsj::PartSjConfig;
//! use tsj_shard::{EvictionPolicy, ShardConfig, ShardedStreamingJoin};
//! use tsj_tree::{parse_bracket, LabelInterner};
//!
//! let mut labels = LabelInterner::new();
//! let mut join = ShardedStreamingJoin::new(
//!     1,
//!     PartSjConfig::default(),
//!     ShardConfig::default(),
//!     EvictionPolicy::SlidingCount(2), // keep the 2 most recent trees
//! );
//! let t0 = parse_bracket("{a{b}{c}}", &mut labels).unwrap();
//! let t1 = parse_bracket("{a{b}{z}}", &mut labels).unwrap();
//! assert!(join.insert(&t0).is_empty());
//! assert_eq!(join.insert(&t1), vec![0]);
//! // The third insert slides t0 out of the window: a re-submission of
//! // t0's exact shape only finds t1 now.
//! let t2 = parse_bracket("{a{b}{c}}", &mut labels).unwrap();
//! assert_eq!(join.insert(&t2), vec![1]);
//! // …and the next one finds only t2 (t1 was evicted in turn).
//! let t3 = parse_bracket("{a{b}{c}}", &mut labels).unwrap();
//! assert_eq!(join.insert(&t3), vec![2]);
//! assert_eq!(join.evictions(), 2);
//! ```

use crate::index::{ShardConfig, ShardedIndex};
use partsj::partition::cuts_for;
use partsj::probe::ProbeCounters;
use partsj::subgraph::build_subgraphs;
use partsj::{
    LayerId, MatchCache, PartSjConfig, ProbeScratch, StampSink, VerifyData, VerifyEngine,
    VerifyPrep,
};
use std::collections::VecDeque;
use tsj_ted::TreeIdx;
use tsj_tree::{FxHashMap, Tree};

/// When the sliding window lets go of a tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Never evict — the plain streaming join, dynamic index included.
    #[default]
    Retain,
    /// Keep at most this many most-recent trees (`0` keeps none).
    SlidingCount(usize),
    /// Keep trees whose logical timestamp is within `horizon` of the
    /// newest insert: a tree stamped `t` is evicted once an insert
    /// arrives at `now ≥ t + horizon`. [`ShardedStreamingJoin::insert`]
    /// stamps arrival ordinals (0, 1, 2, …); use
    /// [`ShardedStreamingJoin::insert_at`] for caller-supplied
    /// (monotonic) timestamps.
    SlidingTime(u64),
}

/// An online similarity self-join over a sliding window: insert trees as
/// they arrive, learn each newcomer's partners among the *live* window,
/// and let the policy expire old trees. See the [module
/// docs](crate::streaming) for an example.
#[derive(Debug)]
pub struct ShardedStreamingJoin {
    tau: u32,
    config: PartSjConfig,
    eviction: EvictionPolicy,
    index: ShardedIndex,
    small_by_size: FxHashMap<u32, Vec<TreeIdx>>,
    /// Verification inputs; `None` once evicted (frees the bulk of the
    /// per-tree memory).
    data: Vec<Option<VerifyData>>,
    stamp: Vec<u32>,
    caches: Vec<MatchCache>,
    shard_scratch: Vec<usize>,
    layer_scratch: Vec<LayerId>,
    candidates: Vec<TreeIdx>,
    probe_scratch: ProbeScratch,
    verify_prep: VerifyPrep,
    arrivals: VecDeque<(TreeIdx, u64)>,
    /// Next auto-assigned timestamp for [`Self::insert`].
    clock: u64,
    /// Largest timestamp seen (monotonicity guard; equal is allowed).
    last_ts: u64,
    verify: VerifyEngine,
    pairs_found: u64,
    evictions: u64,
    /// Hoisted observability handle (global registry, sampled at
    /// construction); the paired live-trees/postings gauges are kept by
    /// the index itself.
    obs_evictions: Option<tsj_obs::Counter>,
}

impl ShardedStreamingJoin {
    /// Creates an empty sliding-window join at threshold `tau`.
    pub fn new(
        tau: u32,
        config: PartSjConfig,
        shard_cfg: ShardConfig,
        eviction: EvictionPolicy,
    ) -> ShardedStreamingJoin {
        let index = ShardedIndex::new(tau, config.window, &shard_cfg);
        let caches = (0..index.shard_count())
            .map(|_| MatchCache::new())
            .collect();
        ShardedStreamingJoin {
            tau,
            config,
            eviction,
            index,
            small_by_size: FxHashMap::default(),
            data: Vec::new(),
            stamp: Vec::new(),
            caches,
            shard_scratch: Vec::new(),
            layer_scratch: Vec::new(),
            candidates: Vec::new(),
            probe_scratch: ProbeScratch::new(),
            verify_prep: VerifyPrep::default(),
            arrivals: VecDeque::new(),
            clock: 0,
            last_ts: 0,
            verify: VerifyEngine::new(tau, &config),
            pairs_found: 0,
            evictions: 0,
            obs_evictions: tsj_obs::global()
                .is_enabled()
                .then(|| tsj_obs::global().counter("tsj_shard_evictions_total")),
        }
    }

    /// Trees ever inserted (evicted ones included).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing was ever inserted.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Trees currently live in the window.
    pub fn live(&self) -> usize {
        self.index.live_trees()
    }

    /// Total result pairs reported so far.
    pub fn pairs_found(&self) -> u64 {
        self.pairs_found
    }

    /// Trees expired by the eviction policy or [`Self::remove`].
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Shard compactions performed so far (tombstone reclamation).
    pub fn compactions(&self) -> u64 {
        self.index.compactions()
    }

    /// Exact TED computations performed so far.
    pub fn ted_calls(&self) -> u64 {
        self.verify.ted_calls()
    }

    /// The verification engine (per-stage counter diagnostics).
    pub fn verify_engine(&self) -> &VerifyEngine {
        &self.verify
    }

    /// The underlying sharded index (diagnostics).
    pub fn index(&self) -> &ShardedIndex {
        &self.index
    }

    /// Inserts `tree` at the next arrival ordinal and returns the live
    /// partners within `τ`, ascending. Equivalent to
    /// `insert_at(tree, arrival_ordinal)`.
    pub fn insert(&mut self, tree: &Tree) -> Vec<TreeIdx> {
        self.insert_at(tree, self.clock)
    }

    /// Inserts `tree` at logical time `ts` (must be ≥ every earlier
    /// timestamp; equal timestamps — simultaneous arrivals — are fine)
    /// and returns the live partners within `τ`, ascending.
    ///
    /// # Panics
    /// Panics if `ts` is smaller than a previously supplied timestamp.
    pub fn insert_at(&mut self, tree: &Tree, ts: u64) -> Vec<TreeIdx> {
        assert!(ts >= self.last_ts, "timestamps must be monotonic");
        self.last_ts = ts;
        self.clock = ts + 1;
        self.evict_for(ts);

        let delta = 2 * self.tau as usize + 1;
        let id = self.data.len() as TreeIdx;
        let size = tree.len() as u32;
        let lo = size.saturating_sub(self.tau).max(1);
        let hi = size + self.tau;

        // Candidates from the small-tree side lists (live only).
        self.candidates.clear();
        for n in lo..=hi {
            if let Some(list) = self.small_by_size.get(&n) {
                for &j in list {
                    if self.index.is_alive(j) && self.stamp[j as usize] != id {
                        self.stamp[j as usize] = id;
                        self.candidates.push(j);
                    }
                }
            }
        }

        // Candidates from the sharded index (dead trees filtered inside).
        let (binary, posts) = self.probe_scratch.prepare(tree);
        let mut counters = ProbeCounters::default();
        let mut sink = StampSink {
            stamp: &mut self.stamp,
            marker: id,
            candidates: &mut self.candidates,
        };
        self.index.probe_tree(
            binary,
            posts,
            size,
            lo,
            hi,
            self.config.matching,
            &mut self.caches,
            &mut self.shard_scratch,
            &mut self.layer_scratch,
            &mut counters,
            &mut sink,
        );

        // Verify against the live window. The newcomer's data is owned —
        // it outlives the insert in `self.data` — so only the build
        // temporaries come from the reusable prep.
        let data = VerifyData::for_config_with(tree, &self.config.verify, &mut self.verify_prep);
        let verify = &mut self.verify;
        let known = &self.data;
        let mut partners: Vec<TreeIdx> = self
            .candidates
            .iter()
            .filter(|&&j| {
                let other = known[j as usize]
                    .as_ref()
                    .expect("live candidate has verification data");
                verify.check(other, &data).is_some()
            })
            .copied()
            .collect();
        partners.sort_unstable();
        self.pairs_found += partners.len() as u64;

        // Publish the newcomer.
        if (size as usize) < delta {
            self.index.track(id, size);
            self.small_by_size.entry(size).or_default().push(id);
        } else {
            let cuts = cuts_for(binary, delta, self.config.partitioning, u64::from(id));
            let subgraphs = build_subgraphs(binary, posts, &cuts, id);
            self.index.insert_tree(id, size, subgraphs);
        }
        self.data.push(Some(data));
        self.stamp.push(u32::MAX);
        self.arrivals.push_back((id, ts));
        partners
    }

    /// Explicitly removes a live tree from the window (deletion, not
    /// policy eviction — but counted in [`Self::evictions`] all the
    /// same). Returns `false` if `id` is unknown or already gone.
    pub fn remove(&mut self, id: TreeIdx) -> bool {
        if !self.index.is_alive(id) {
            return false;
        }
        self.expire(id);
        true
    }

    /// Applies the eviction policy for an insert arriving at `now`.
    fn evict_for(&mut self, now: u64) {
        match self.eviction {
            EvictionPolicy::Retain => {}
            EvictionPolicy::SlidingCount(k) => {
                // After the pending insert the window holds ≤ k trees.
                let keep = k.saturating_sub(1);
                while self.index.live_trees() > keep {
                    let Some((id, _)) = self.arrivals.pop_front() else {
                        break;
                    };
                    if self.index.is_alive(id) {
                        self.expire(id);
                    }
                }
            }
            EvictionPolicy::SlidingTime(horizon) => {
                while let Some(&(id, ts)) = self.arrivals.front() {
                    if now < ts.saturating_add(horizon) {
                        break;
                    }
                    self.arrivals.pop_front();
                    if self.index.is_alive(id) {
                        self.expire(id);
                    }
                }
            }
        }
    }

    /// Drops one live tree: liveness bit, tombstones (with compaction),
    /// prepared handle, and its small side-list slot if any.
    fn expire(&mut self, id: TreeIdx) {
        let size = self.index.size_of(id).expect("live tree has a size");
        self.index.remove_tree(id);
        self.data[id as usize] = None;
        if (size as usize) < 2 * self.tau as usize + 1 {
            if let Some(list) = self.small_by_size.get_mut(&size) {
                list.retain(|&j| j != id);
            }
        }
        self.evictions += 1;
        if let Some(counter) = &self.obs_evictions {
            counter.inc();
        }
    }
}
