//! Node edit operations on general trees (§2 of the paper).
//!
//! Three operations are defined on rooted ordered labeled trees:
//!
//! * **Insertion** adds a node `Nx` between a parent `Np` and a consecutive
//!   run of `Np`'s children, which become `Nx`'s children.
//! * **Deletion** removes a non-root node, splicing its children into its
//!   parent's child list in place (the inverse of insertion).
//! * **Renaming** changes a node's label.
//!
//! Applying an operation produces a *new* tree with fresh (preorder) node
//! ids; id stability across edits is deliberately not promised because
//! deletions compact the arena.
//!
//! These operations drive the decay-factor data generator and, crucially,
//! the property tests for Lemma 1/2: `TED(t, apply_edits(t, ops)) ≤
//! ops.len()` because each operation is a unit-cost edit.

use crate::error::EditError;
use crate::label::Label;
use crate::tree::{NodeId, Tree, TreeBuilder};

/// A single node edit operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditOp {
    /// Change the label of `node` to `label`.
    Rename {
        /// Node to relabel.
        node: NodeId,
        /// New label.
        label: Label,
    },
    /// Remove `node` (non-root), splicing its children into its parent.
    Delete {
        /// Node to remove.
        node: NodeId,
    },
    /// Insert a new node labeled `label` as a child of `parent` at child
    /// position `start`, adopting the `count` consecutive existing children
    /// `children[start .. start + count]`.
    Insert {
        /// Parent under which the new node is placed.
        parent: NodeId,
        /// Position in the parent's child list.
        start: usize,
        /// Number of consecutive children adopted by the new node.
        count: usize,
        /// Label of the inserted node.
        label: Label,
    },
}

/// Applies one edit operation, returning the edited tree.
pub fn apply_edit(tree: &Tree, op: &EditOp) -> Result<Tree, EditError> {
    // Work on an explicit mutable copy of the child structure; node ids
    // index these vectors. Slot `labels.len()` is reserved for an insert.
    let n = tree.len();
    let mut labels: Vec<Label> = tree.node_ids().map(|id| tree.label(id)).collect();
    let mut children: Vec<Vec<NodeId>> = tree
        .node_ids()
        .map(|id| tree.children(id).to_vec())
        .collect();
    let root = tree.root();

    let check = |node: NodeId| -> Result<(), EditError> {
        if node.index() < n {
            Ok(())
        } else {
            Err(EditError::UnknownNode)
        }
    };

    match *op {
        EditOp::Rename { node, label } => {
            check(node)?;
            labels[node.index()] = label;
        }
        EditOp::Delete { node } => {
            check(node)?;
            let parent = tree.parent(node).ok_or(EditError::DeleteRoot)?;
            let pos = children[parent.index()]
                .iter()
                .position(|&c| c == node)
                .expect("child link consistent with parent link");
            let grandchildren = std::mem::take(&mut children[node.index()]);
            children[parent.index()].splice(pos..=pos, grandchildren);
        }
        EditOp::Insert {
            parent,
            start,
            count,
            label,
        } => {
            check(parent)?;
            let available = children[parent.index()].len();
            if start > available || start + count > available {
                return Err(EditError::BadChildRange {
                    start,
                    count,
                    available,
                });
            }
            let new_id = NodeId::from_index(labels.len());
            labels.push(label);
            let adopted: Vec<NodeId> = children[parent.index()]
                .splice(start..start + count, [new_id])
                .collect();
            children.push(adopted);
        }
    }

    // Rebuild a compact tree in preorder over the edited structure.
    let mut builder = TreeBuilder::with_capacity(labels.len());
    let new_root = builder.root(labels[root.index()]);
    let mut stack: Vec<(NodeId, crate::tree::NodeId)> = children[root.index()]
        .iter()
        .rev()
        .map(|&c| (c, new_root))
        .collect();
    while let Some((old, parent)) = stack.pop() {
        let id = builder.child(parent, labels[old.index()]);
        for &c in children[old.index()].iter().rev() {
            stack.push((c, id));
        }
    }
    Ok(builder.build())
}

/// Applies a sequence of operations left to right.
///
/// Node ids in each operation refer to the tree produced by the *previous*
/// operation, so callers generating random scripts should derive each op
/// from the intermediate tree.
pub fn apply_edits(tree: &Tree, ops: &[EditOp]) -> Result<Tree, EditError> {
    let mut current = tree.clone();
    for op in ops {
        current = apply_edit(&current, op)?;
    }
    Ok(current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::LabelInterner;
    use crate::parser::{parse_bracket, to_bracket};

    fn t(input: &str, labels: &mut LabelInterner) -> Tree {
        parse_bracket(input, labels).unwrap()
    }

    #[test]
    fn rename_changes_one_label() {
        let mut labels = LabelInterner::new();
        let tree = t("{a{b}{c}}", &mut labels);
        let b_node = tree.children(tree.root())[0];
        let new = apply_edit(
            &tree,
            &EditOp::Rename {
                node: b_node,
                label: labels.intern("z"),
            },
        )
        .unwrap();
        assert_eq!(to_bracket(&new, &labels), "{a{z}{c}}");
    }

    #[test]
    fn delete_splices_children() {
        // Figure 2: T1 -> T2 deletes N4; N4's child N5 takes its place.
        let mut labels = LabelInterner::new();
        let tree = t("{1{2{3}{4{5}}{6}}{7}}", &mut labels);
        let n2 = tree.children(tree.root())[0];
        let n4 = tree.children(n2)[1];
        let new = apply_edit(&tree, &EditOp::Delete { node: n4 }).unwrap();
        assert_eq!(to_bracket(&new, &labels), "{1{2{3}{5}{6}}{7}}");
        new.validate().unwrap();
    }

    #[test]
    fn delete_leaf() {
        let mut labels = LabelInterner::new();
        let tree = t("{a{b}{c}}", &mut labels);
        let c_node = tree.children(tree.root())[1];
        let new = apply_edit(&tree, &EditOp::Delete { node: c_node }).unwrap();
        assert_eq!(to_bracket(&new, &labels), "{a{b}}");
    }

    #[test]
    fn delete_root_rejected() {
        let mut labels = LabelInterner::new();
        let tree = t("{a{b}}", &mut labels);
        let err = apply_edit(&tree, &EditOp::Delete { node: tree.root() });
        assert_eq!(err.unwrap_err(), EditError::DeleteRoot);
    }

    #[test]
    fn insert_adopts_consecutive_children() {
        // Figure 2: T2 -> T3 inserts N8 between N1 and {N6, N7}.
        let mut labels = LabelInterner::new();
        let tree = t("{1{2{3}{5}{6}}{7}}", &mut labels);
        let n2 = tree.children(tree.root())[0];
        // Insert "8" as child of node 2, adopting children [1..3) = {5, 6}.
        let new = apply_edit(
            &tree,
            &EditOp::Insert {
                parent: n2,
                start: 1,
                count: 2,
                label: labels.intern("8"),
            },
        )
        .unwrap();
        assert_eq!(to_bracket(&new, &labels), "{1{2{3}{8{5}{6}}}{7}}");
        new.validate().unwrap();
    }

    #[test]
    fn insert_leaf_adopting_nothing() {
        let mut labels = LabelInterner::new();
        let tree = t("{a{b}}", &mut labels);
        let new = apply_edit(
            &tree,
            &EditOp::Insert {
                parent: tree.root(),
                start: 1,
                count: 0,
                label: labels.intern("x"),
            },
        )
        .unwrap();
        assert_eq!(to_bracket(&new, &labels), "{a{b}{x}}");
    }

    #[test]
    fn insert_bad_range_rejected() {
        let mut labels = LabelInterner::new();
        let tree = t("{a{b}}", &mut labels);
        let err = apply_edit(
            &tree,
            &EditOp::Insert {
                parent: tree.root(),
                start: 0,
                count: 2,
                label: labels.intern("x"),
            },
        );
        assert!(matches!(err, Err(EditError::BadChildRange { .. })));
    }

    #[test]
    fn unknown_node_rejected() {
        let mut labels = LabelInterner::new();
        let tree = t("{a}", &mut labels);
        let bogus = NodeId::from_index(99);
        assert!(matches!(
            apply_edit(&tree, &EditOp::Delete { node: bogus }),
            Err(EditError::UnknownNode)
        ));
    }

    #[test]
    fn insert_then_delete_round_trips() {
        let mut labels = LabelInterner::new();
        let tree = t("{r{a}{b}{c}}", &mut labels);
        let inserted = apply_edit(
            &tree,
            &EditOp::Insert {
                parent: tree.root(),
                start: 0,
                count: 3,
                label: labels.intern("m"),
            },
        )
        .unwrap();
        assert_eq!(to_bracket(&inserted, &labels), "{r{m{a}{b}{c}}}");
        // Deleting the inserted node restores the original structure.
        let m_node = inserted.children(inserted.root())[0];
        let restored = apply_edit(&inserted, &EditOp::Delete { node: m_node }).unwrap();
        assert!(restored.structurally_eq(&tree));
    }

    #[test]
    fn figure2_full_sequence() {
        // T1 --delete N4--> T2 --insert N8--> T3 --rename N5--> T4.
        let mut labels = LabelInterner::new();
        let t1 = t("{1{2{3}{4{5}}{6}}{7}}", &mut labels);
        let n2 = t1.children(t1.root())[0];
        let n4 = t1.children(n2)[1];
        let t2 = apply_edit(&t1, &EditOp::Delete { node: n4 }).unwrap();
        let n2 = t2.children(t2.root())[0];
        let t3 = apply_edit(
            &t2,
            &EditOp::Insert {
                parent: n2,
                start: 1,
                count: 2,
                label: labels.intern("8"),
            },
        )
        .unwrap();
        let n2 = t3.children(t3.root())[0];
        let n8 = t3.children(n2)[1];
        let n5 = t3.children(n8)[0];
        let t4 = apply_edit(
            &t3,
            &EditOp::Rename {
                node: n5,
                label: labels.intern("9"),
            },
        )
        .unwrap();
        assert_eq!(to_bracket(&t4, &labels), "{1{2{3}{8{9}{6}}}{7}}");
    }
}
