//! Sentences with similar parse structure — the paper's computational
//! linguistics motivation: "finding sentences that have similar parsing
//! structures would be useful ... for semantic categorization".
//!
//! We build small constituency parse trees for templated sentences. Two
//! sentences instantiated from the same template parse to trees that
//! differ only in their leaf words, so a TED join with a leaf-sized
//! threshold groups paraphrase-like structures together.
//!
//! ```bash
//! cargo run --release --example parse_paraphrase
//! ```

use tree_similarity_join::prelude::*;

/// Builds the parse tree `(S (NP det noun) (VP verb (NP det noun)))`.
fn svo(labels: &mut LabelInterner, words: [&str; 5]) -> Tree {
    let mut b = TreeBuilder::new();
    let s = b.root(labels.intern("S"));
    let np1 = b.child(s, labels.intern("NP"));
    b.child(np1, labels.intern(words[0]));
    b.child(np1, labels.intern(words[1]));
    let vp = b.child(s, labels.intern("VP"));
    b.child(vp, labels.intern(words[2]));
    let np2 = b.child(vp, labels.intern("NP"));
    b.child(np2, labels.intern(words[3]));
    b.child(np2, labels.intern(words[4]));
    b.build()
}

/// Builds the parse tree `(S (NP det noun) (VP verb (PP prep (NP det noun))))`.
fn sv_pp(labels: &mut LabelInterner, words: [&str; 6]) -> Tree {
    let mut b = TreeBuilder::new();
    let s = b.root(labels.intern("S"));
    let np1 = b.child(s, labels.intern("NP"));
    b.child(np1, labels.intern(words[0]));
    b.child(np1, labels.intern(words[1]));
    let vp = b.child(s, labels.intern("VP"));
    b.child(vp, labels.intern(words[2]));
    let pp = b.child(vp, labels.intern("PP"));
    b.child(pp, labels.intern(words[3]));
    let np2 = b.child(pp, labels.intern("NP"));
    b.child(np2, labels.intern(words[4]));
    b.child(np2, labels.intern(words[5]));
    b.build()
}

fn main() {
    let mut labels = LabelInterner::new();
    let sentences = [
        (
            "the cat chased the mouse",
            svo(&mut labels, ["the", "cat", "chased", "the", "mouse"]),
        ),
        (
            "the dog chased the cat",
            svo(&mut labels, ["the", "dog", "chased", "the", "cat"]),
        ),
        (
            "a bird watched the sky",
            svo(&mut labels, ["a", "bird", "watched", "the", "sky"]),
        ),
        (
            "the cat slept on the mat",
            sv_pp(&mut labels, ["the", "cat", "slept", "on", "the", "mat"]),
        ),
        (
            "a dog sat under a tree",
            sv_pp(&mut labels, ["a", "dog", "sat", "under", "a", "tree"]),
        ),
        (
            "the bird sang in the rain",
            sv_pp(&mut labels, ["the", "bird", "sang", "in", "the", "rain"]),
        ),
    ];
    let trees: Vec<Tree> = sentences.iter().map(|(_, t)| t.clone()).collect();

    println!("parse-structure join over {} sentences\n", trees.len());

    // Same-template trees differ only in word leaves (≤ 4-5 renames);
    // cross-template pairs differ structurally as well.
    for tau in [3u32, 5] {
        let outcome = partsj_join(&trees, tau);
        println!("tau = {tau}:");
        for &(a, b) in &outcome.pairs {
            println!(
                "  \"{}\"  ~  \"{}\"",
                sentences[a as usize].0, sentences[b as usize].0
            );
        }
        println!();
    }

    println!(
        "at tau = 3 only same-template sentences pair up; raising tau to 5\n\
         starts to bridge the SVO and PP templates."
    );
}
