//! # tsj-ted
//!
//! Exact tree edit distance (TED) and string edit distance kernels for the
//! reproduction of *Scaling Similarity Joins over Tree-Structured Data*
//! (Tang, Cai & Mamoulis, VLDB 2015).
//!
//! * [`zs`] — the Zhang–Shasha O(n²)-space dynamic program;
//! * [`hybrid`] — an RTED-inspired engine that dynamically picks between
//!   left-path and mirrored (right-path) decompositions per tree pair (see
//!   DESIGN.md for the substitution note);
//! * [`sed`](mod@sed) — full and banded (threshold-aware) string edit distance;
//! * [`bounds`] — the TED lower bounds used by the filtering baselines.

#![warn(missing_docs)]

pub mod bounds;
pub mod cost;
pub mod hybrid;
pub mod outcome;
pub mod sed;
pub mod ted_tree;
pub mod zs;

pub use bounds::{
    degree_bound, degree_histogram, histogram_bound, label_histogram, size_bound, traversal_bound,
    traversal_bound_with, traversal_within, traversal_within_with, TraversalStrings,
};
pub use cost::CostModel;
pub use hybrid::{ted, PreparedTree, Strategy, TedEngine};
pub use outcome::{JoinOutcome, JoinStats, StageCount, TreeIdx};
pub use sed::{sed, sed_with, sed_within, sed_within_with, SedScratch};
pub use ted_tree::{TedBuildScratch, TedTree};
pub use zs::{tree_distance, zhang_shasha, TedWorkspace};
