//! Heavy randomized sweep comparing Tight/PaperAbsolute vs brute force.
use partsj::{partsj_join_with, PartSjConfig, WindowPolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tsj_baselines::brute_force_join;
use tsj_datagen::{grow_tree, random_edit_script, ShapeProfile};
use tsj_tree::Tree;

fn random_collection(seed: u64, count: usize, labels: u32) -> Vec<Tree> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trees: Vec<Tree> = Vec::with_capacity(count);
    for i in 0..count {
        if i >= 2 && rng.gen_bool(0.55) {
            let base_idx = rng.gen_range(0..trees.len());
            let edits = rng.gen_range(0..5usize);
            let (edited, _) = random_edit_script(&trees[base_idx], edits, &mut rng, labels);
            trees.push(edited);
        } else {
            let size = rng.gen_range(4..40usize);
            let profile = ShapeProfile {
                max_fanout: 5,
                max_depth: 12,
                deepen_prob: rng.gen_range(0.0..0.7),
            };
            let t = grow_tree(
                &mut StdRng::seed_from_u64(rng.gen()),
                size,
                labels,
                &profile,
            );
            trees.push(t);
        }
    }
    trees
}

#[test]
#[ignore = "heavy randomized sweep; run explicitly"]
fn window_policy_sweep() {
    let mut tight_misses = 0u32;
    let mut paper_misses = 0u32;
    let mut total = 0u32;
    for seed in 0..200u64 {
        let trees = random_collection(seed.wrapping_mul(0x9e3779b97f4a7c15), 24, 5);
        for tau in 1..=3u32 {
            total += 1;
            let expected = brute_force_join(&trees, tau);
            for (window, counter) in [
                (WindowPolicy::Tight, &mut tight_misses),
                (WindowPolicy::PaperAbsolute, &mut paper_misses),
            ] {
                let outcome = partsj_join_with(
                    &trees,
                    tau,
                    &PartSjConfig {
                        window,
                        ..Default::default()
                    },
                );
                if outcome.pairs != expected.pairs {
                    *counter += 1;
                    if outcome.pairs.len() > expected.pairs.len() {
                        eprintln!("!!! {window:?} produced EXTRA pairs at seed {seed} tau {tau}");
                    }
                }
            }
        }
    }
    println!("runs: {total}, tight misses: {tight_misses}, paper-absolute misses: {paper_misses}");
}
